// Budget planning with the complementary objectives of Section 5: given a
// workload, sweep candidate budgets and report, for each, the utility
// A^BCC can reach — alongside the GMC3 view (cheapest budget per utility
// target) and the ECC sweet spot (the set with the best utility-to-cost
// ratio). Together these answer the analyst's question "how much budget
// should we ask for next quarter?".
//
// Run with:
//
//	go run ./examples/budgetplanner
package main

import (
	"fmt"

	bcc "repro"
)

func main() {
	const seed = 42
	base := bcc.BestBuy(seed, 0)
	total := base.TotalUtility()
	fmt.Printf("workload: BestBuy-like, %d queries, total utility %.0f\n\n",
		base.NumQueries(), total)

	// Forward view: utility as a function of budget.
	fmt.Println("budget → achievable utility (A^BCC):")
	for _, budget := range []float64{25, 50, 100, 200, 400} {
		res := bcc.Solve(base.WithBudget(budget), bcc.Options{Seed: seed})
		bar := ""
		for i := 0.0; i < 40*res.Utility/total; i++ {
			bar += "#"
		}
		fmt.Printf("  %4.0f  %6.0f (%4.1f%%) %s\n", budget, res.Utility,
			100*res.Utility/total, bar)
	}

	// Backward view: cheapest budget per utility target.
	fmt.Println("\nutility target → cheapest budget (A^GMC3):")
	for _, f := range []float64{0.25, 0.5, 0.75, 0.9} {
		gm := bcc.SolveGMC3(base, total*f, bcc.GMC3Options{Seed: seed})
		status := "ok"
		if !gm.Achieved {
			status = "unreachable"
		}
		fmt.Printf("  %3.0f%%  cost %6.0f  (%s)\n", f*100, gm.Cost, status)
	}

	// Sweet spot: the most cost-effective classifier set of all.
	ec := bcc.SolveECC(base)
	fmt.Printf("\nECC sweet spot: %d classifiers, utility %.0f at cost %.0f (ratio %.2f)\n",
		ec.Solution.Size(), ec.Utility, ec.Cost, ec.Ratio)
	fmt.Println("   → everything below this cost is 'cheap wins'; beyond it, returns diminish.")
}
