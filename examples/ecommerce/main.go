// E-commerce catalog curation: a quarterly classifier-construction round
// over a realistic workload (the simulated private e-commerce dataset of
// the paper's evaluation: ~5000 queries, analyst costs and utilities,
// category structure).
//
// The example compares the paper's algorithm A^BCC against the greedy
// baselines at the real quarterly budget the paper reports (≈2000), then
// shows the diminishing-returns analysis of §6.2: how much budget a
// company actually needs for 50%, 65% and 75% of the total utility.
//
// Run with:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"

	bcc "repro"
)

func main() {
	const seed = 1
	const quarterlyBudget = 2000

	in := bcc.Private(seed, quarterlyBudget)
	fmt.Printf("workload: %d queries, %d properties, %d candidate classifiers\n",
		in.NumQueries(), in.NumProperties(), len(in.Classifiers()))
	fmt.Printf("total utility if everything were covered: %.0f\n\n", in.TotalUtility())

	fmt.Printf("quarterly budget %v:\n", quarterlyBudget)
	type run struct {
		name string
		res  bcc.Result
	}
	runs := []run{
		{"RAND", bcc.SolveRand(in, seed)},
		{"IG2 ", bcc.SolveIG2(in)},
		{"IG1 ", bcc.SolveIG1(in)},
		{"A^BCC", bcc.Solve(in, bcc.Options{Seed: seed})},
	}
	for _, r := range runs {
		fmt.Printf("  %-6s utility %7.0f  (%.0f%% of total)  cost %6.0f  covered %d queries  [%v]\n",
			r.name, r.res.Utility, 100*r.res.Utility/in.TotalUtility(),
			r.res.Cost, r.res.Covered, r.res.Duration.Round(1e6))
	}

	// Utility split by covered query length (§6.2 reports ≈47% singletons,
	// ≈51% length-2 at this budget).
	abcc := runs[len(runs)-1].res
	byLen := map[int]float64{}
	for _, q := range abcc.Solution.CoveredQueries() {
		byLen[q.Length()] += q.Utility
	}
	fmt.Printf("\nA^BCC utility by query length:")
	for l := 1; l <= in.MaxQueryLength(); l++ {
		if byLen[l] > 0 {
			fmt.Printf("  len %d: %.0f%%", l, 100*byLen[l]/abcc.Utility)
		}
	}
	fmt.Println()

	// Diminishing returns: budget needed for increasing utility fractions.
	fmt.Println("\ndiminishing returns (cheapest budget per utility fraction):")
	for _, f := range []float64{0.5, 0.65, 0.75} {
		gm := bcc.SolveGMC3(in, in.TotalUtility()*f, bcc.GMC3Options{Seed: seed})
		fmt.Printf("  %2.0f%% of utility needs budget ≈ %6.0f\n", f*100, gm.Cost)
	}
}
