// Quickstart: the paper's running example — an e-commerce platform must
// decide which binary classifiers to train so that search queries like
// "wooden table" can be answered, without exceeding a labeling budget.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	bcc "repro"
)

func main() {
	b := bcc.NewBuilder()

	// The workload: three search queries with analyst-estimated utilities
	// (how valuable it is to compute each query's full result set).
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(3, "round", "table")
	b.AddQuery(5, "running", "shoes")

	// Classifier construction costs (e.g. thousands of labeled examples).
	// A "wooden table" classifier is cheap to train (little visual
	// variability) but useful only for that query; the generic "wooden"
	// classifier costs more and helps several queries.
	b.SetCost(4, "wooden")
	b.SetCost(2, "table")
	b.SetCost(3, "round")
	b.SetCost(3, "wooden", "table")
	b.SetCost(5, "round", "table")
	b.SetCost(6, "running", "shoes")
	b.SetCost(9, "running") // hard to recognize "suitable for running" alone
	b.SetCost(9, "shoes")
	// "round wooden" with no context is considered impractical to train:
	b.SetCost(math.Inf(1), "round", "wooden")

	for _, budget := range []float64{3, 6, 9, 15} {
		in, err := b.Instance(budget)
		if err != nil {
			panic(err)
		}
		res := bcc.Solve(in, bcc.Options{})
		fmt.Printf("budget %4.0f → utility %4.0f (cost %4.0f), classifiers:",
			budget, res.Utility, res.Cost)
		for _, c := range res.Solution.Classifiers() {
			fmt.Printf(" %s", in.Universe().Format(c.Props))
		}
		fmt.Println()
	}

	// With a flexible budget, which classifier set gives the most utility
	// per unit of labeling cost?
	in, _ := b.Instance(0)
	ecc := bcc.SolveECC(in)
	fmt.Printf("\nbest bang-for-buck: ratio %.2f (utility %.0f / cost %.0f)\n",
		ecc.Ratio, ecc.Utility, ecc.Cost)

	// And the cheapest way to reach at least 70%% of the total utility?
	target := in.TotalUtility() * 0.7
	gm := bcc.SolveGMC3(in, target, bcc.GMC3Options{})
	fmt.Printf("cheapest ≥%.0f utility: cost %.0f (achieved=%v)\n",
		target, gm.Cost, gm.Achieved)
}
