// Scalability walk-through: the paper's synthetic generator at increasing
// workload sizes, showing the effect of the preprocessing step (Figures
// 3e/3f) and how solve time and utility scale.
//
// Run with:
//
//	go run ./examples/scalability            # quick sizes
//	go run ./examples/scalability -n 100000  # one big run
package main

import (
	"flag"
	"fmt"

	bcc "repro"
)

func main() {
	one := flag.Int("n", 0, "run a single size instead of the sweep")
	flag.Parse()

	sizes := []int{5000, 10000, 25000}
	if *one > 0 {
		sizes = []int{*one}
	}

	const budget = 5000
	fmt.Printf("%-8s  %-22s  %-22s  %s\n", "queries", "with preprocessing", "without preprocessing", "utility ratio")
	for _, n := range sizes {
		in := bcc.Synthetic(1, n, budget)
		with := bcc.Solve(in, bcc.Options{Seed: 1})
		without := bcc.Solve(in, bcc.Options{Seed: 1, DisablePruning: true})
		fmt.Printf("%-8d  u=%-7.0f t=%-10v  u=%-7.0f t=%-10v  %.3f\n",
			n,
			with.Utility, with.Duration.Round(1e6),
			without.Utility, without.Duration.Round(1e6),
			with.Utility/without.Utility)
	}
}
