// Query-log ingestion: the full pipeline from a raw search log to a
// classifier construction plan — parse the log (frequencies become
// utilities), attach analyst cost estimates, and solve BCC, the
// partial-cover variant, and the overlap-aware variant side by side.
//
// Run with:
//
//	go run ./examples/querylog                 # built-in sample log
//	go run ./examples/querylog -log search.tsv # your own log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	bcc "repro"
)

const sampleLog = `# term[s] <TAB> search count
wooden table	1542
running shoes	987
table	2210
wooden	310
round table	404
leather sofa	760
sofa	1530
leather	201
garden chair	356
chair	1204
wooden chair	512
round mirror	187
leather shoes	423
`

func main() {
	logPath := flag.String("log", "", "query log path (default: built-in sample)")
	budget := flag.Float64("budget", 10, "construction budget")
	flag.Parse()

	var r io.Reader = strings.NewReader(sampleLog)
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	builder, stats, err := bcc.ParseQueryLog(r, bcc.LogOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("parsed %d lines → %d queries over %d properties (dropped: %d long, %d empty)\n",
		stats.Lines, stats.Kept, stats.Properties, stats.DroppedLong, stats.DroppedEmpty)

	// Analyst cost model: visually concrete nouns are cheap, abstract
	// attributes cost more, conjunctions sit in between.
	builder.SetDefaultCost(func(s bcc.PropSet) float64 {
		return 1.5 + 0.5*float64(s.Len())
	})
	builder.SetCost(4, "running") // hard without shoe context
	builder.SetCost(3, "leather")

	in, err := builder.Instance(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res := bcc.Solve(in, bcc.Options{})
	fmt.Printf("\nBCC plan (budget %.0f): utility %.0f of %.0f, cost %.1f\n",
		*budget, res.Utility, in.TotalUtility(), res.Cost)
	for _, c := range res.Solution.Classifiers() {
		fmt.Printf("  build %-24s (cost %.1f)\n", in.Universe().Format(c.Props), c.Cost)
	}

	// Partial-cover view: partially-filtered result sets retain value.
	pr := bcc.SolvePartial(in, bcc.GainLinear)
	fmt.Printf("\npartial-cover (linear gain): utility %.1f at cost %.1f\n", pr.Utility, pr.Cost)

	// Overlap-aware view: labeling a property once serves every classifier
	// that tests it, so the same budget reaches further.
	ov := bcc.SolveOverlap(in, bcc.OverlapCostModel{
		Label:    func(bcc.PropID) float64 { return 1.2 },
		Assembly: func(s bcc.PropSet) float64 { return 0.6 * float64(s.Len()) },
	})
	fmt.Printf("overlap-aware: utility %.0f at shared cost %.1f (additive would be %.1f)\n",
		ov.Utility, ov.Cost, ov.AdditiveCost)
}
