// Command bcceval is the solution-quality gate: it evaluates every
// registered algorithm on the golden eval suite (small reproducible
// instances with pinned best-known utilities, compiled into the binary)
// and exits non-zero when any algorithm's utility ratio falls below its
// pinned floor. `make eval-smoke` runs it in CI so a solver refactor
// that silently costs quality fails the build.
//
// Usage:
//
//	bcceval [-suite suite.jsonl] [-dataset name] [-algo name]
//	        [-min-ratio r] [-seed 42] [-json] [-out report.json]
//	        [-update-golden]
//
// Without flags it evaluates the embedded golden suite with the
// registry's per-algorithm floors and prints the verdict table.
// -min-ratio overrides every floor with one global threshold. -json
// emits the versioned bcc-eval/1 report instead of text.
// -update-golden regenerates the suite from its named seeds
// (internal/eval.Suite), re-pins best-known utilities, and rewrites the
// fixture at -suite (default internal/eval/testdata/suite.jsonl) —
// run it after deliberately changing the grid or the reference
// algorithms, then commit the diff.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eval"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// goldenPath is where -update-golden writes by default: the committed
// fixture, relative to the repo root.
const goldenPath = "internal/eval/testdata/suite.jsonl"

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bcceval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suitePath = fs.String("suite", "", "suite JSONL to evaluate (default: the embedded golden suite)")
		dsName    = fs.String("dataset", "", "restrict to one dataset by name")
		algoName  = fs.String("algo", "", "restrict to one algorithm by registry name")
		minRatio  = fs.Float64("min-ratio", -1, "override every per-algorithm floor with this global minimum (negative keeps the pinned floors)")
		seed      = fs.Int64("seed", eval.PinSeed, "solver seed (floors are pinned at the default)")
		asJSON    = fs.Bool("json", false, "emit the bcc-eval/1 JSON report instead of text")
		out       = fs.String("out", "", "write the report to this path instead of stdout")
		update    = fs.Bool("update-golden", false, "regenerate the golden suite from its named seeds and rewrite -suite (default "+goldenPath+")")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "bcceval", obs.ReadBuild())
		return 0
	}
	ctx := context.Background()

	if *update {
		path := *suitePath
		if path == "" {
			path = goldenPath
		}
		suite, err := eval.BuildSuite(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "bcceval: %v\n", err)
			return 1
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "bcceval: %v\n", err)
			return 1
		}
		if err := eval.WriteSuite(f, suite); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "bcceval: writing %s: %v\n", path, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "bcceval: closing %s: %v\n", path, err)
			return 1
		}
		fmt.Fprintf(stderr, "bcceval: wrote %d datasets to %s\n", len(suite), path)
		return 0
	}

	var (
		suite []eval.Dataset
		err   error
	)
	if *suitePath != "" {
		suite, err = eval.ReadSuiteFile(*suitePath)
	} else {
		suite, err = eval.DefaultSuite()
	}
	if err != nil {
		fmt.Fprintf(stderr, "bcceval: %v\n", err)
		return 1
	}

	rep, err := eval.Evaluate(ctx, suite, eval.Options{
		Seed:     *seed,
		Dataset:  *dsName,
		Algo:     *algoName,
		MinRatio: *minRatio,
	})
	if err != nil {
		fmt.Fprintf(stderr, "bcceval: %v\n", err)
		return 1
	}
	build := obs.ReadBuild()
	rep.Build = &build

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bcceval: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if *asJSON {
		err = rep.WriteJSON(w)
	} else {
		err = rep.WriteText(w)
	}
	if err != nil {
		fmt.Fprintf(stderr, "bcceval: writing report: %v\n", err)
		return 1
	}
	if !rep.Pass {
		fmt.Fprintln(stderr, "bcceval: quality gate FAILED")
		return 1
	}
	return 0
}
