package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

// runEval invokes the CLI entry point in-process and returns its exit
// code plus both streams.
func runEval(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// The pass path: the embedded golden suite at the pinned floors must
// clear the gate with exit 0.
func TestGatePassesOnGoldenSuite(t *testing.T) {
	code, out, errOut := runEval(t, "-dataset", "private-sub24-b20")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "PASS") || strings.Contains(out, "FAIL") {
		t.Fatalf("unexpected verdict table:\n%s", out)
	}
}

// The failure path the CI gate depends on: artificially raising the
// floor above what any solver can reach must exit non-zero. If this
// breaks, `make eval-smoke` can no longer fail the build.
func TestGateFailsOnRaisedFloor(t *testing.T) {
	code, out, errOut := runEval(t, "-dataset", "private-sub18-b8", "-min-ratio", "1.01")
	if code == 0 {
		t.Fatalf("gate passed with an unachievable -min-ratio 1.01\nstdout:\n%s", out)
	}
	if !strings.Contains(errOut, "quality gate FAILED") {
		t.Fatalf("stderr does not announce the failure:\n%s", errOut)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("verdict table shows no FAIL rows:\n%s", out)
	}
}

// -json must emit a parseable bcc-eval/1 report with build provenance.
func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	code, _, errOut := runEval(t, "-dataset", "private-sub24-b20", "-json", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep eval.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, raw)
	}
	if rep.Schema != eval.Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, eval.Schema)
	}
	if rep.Build == nil {
		t.Fatal("CLI report carries no build provenance")
	}
	if !rep.Pass || len(rep.Results) == 0 {
		t.Fatalf("report = pass:%v results:%d", rep.Pass, len(rep.Results))
	}
}

func TestBadInputsExitNonZero(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":    {"-no-such-flag"},
		"unknown dataset": {"-dataset", "no-such"},
		"unknown algo":    {"-algo", "no-such"},
		"missing suite":   {"-suite", "does-not-exist.jsonl"},
	} {
		if code, _, _ := runEval(t, args...); code == 0 {
			t.Errorf("%s: exit 0", name)
		}
	}
}
