//go:build !race

package main

// raceEnabled mirrors the test binary's race instrumentation so the
// soak builds its bccserver subprocess the same way.
const raceEnabled = false
