// Command bccserver runs the BCC solving service: a JSON HTTP API over
// the solver façades with canonical instance fingerprinting, a
// single-flight solution cache, a bounded worker pool, per-request
// deadlines (HTTP 200 + status=deadline carrying the anytime result),
// load-shedding with 429, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	bccserver [-addr :8080] [-workers N] [-queue N]
//	          [-shed-tier-depth N]
//	          [-cache-size N] [-cache-ttl 15m]
//	          [-deadline 30s] [-max-deadline 2m]
//	          [-warm instance.json] [-drain 15s]
//	          [-snapshot cache.bccsnap] [-snapshot-interval 5m]
//	          [-jobs-dir /var/lib/bcc/jobs] [-job-workers N]
//	          [-job-checkpoint 2s] [-job-deadline 10m]
//	          [-wal-dir /var/lib/bcc/wal] [-window 30s] [-retention 1h]
//	          [-pipeline-algo submod] [-pipeline-budget 10]
//
// With -snapshot the solution cache survives restarts: the file is
// restored at boot (a missing, corrupt or version-mismatched snapshot
// is logged and ignored — the server starts cold, never crashes),
// rewritten atomically every -snapshot-interval, and saved one last
// time on graceful drain.
//
// With -shed-tier-depth the server downgrades exact-tier requests
// (algo=abcc) to the fast approximate tier (algo=submod) whenever more
// than that many solves are already queued, instead of letting them
// wait out the backlog; downgraded responses carry "algo_served":
// "submod" next to the requested algo, and the bcc_shed_tier_total
// counter tracks how often it happens. 0 (the default) disables tier
// shedding — a full queue still answers 429 either way.
//
// With -jobs-dir the async job endpoints (POST /v1/jobs and friends)
// come up, backed by a crash-safe store in that directory: jobs run in
// checkpointed anytime slices on a dedicated worker pool, and on
// restart with the same directory incomplete jobs are requeued and
// warm-started from their last checkpoint. Without the flag the job
// routes answer 501.
//
// With -wal-dir the continuous workload pipeline comes up: POST
// /v1/ingest appends timestamped query-log lines to a crash-safe WAL in
// that directory (fsynced before the 200 — an acknowledged line is
// never lost), a supervised scheduler tumbles the log into -window
// batches and re-solves each as a checkpointed job, and GET
// /v1/plan/current serves the last-good plan with its staleness. When
// behind, the scheduler coalesces or skips stale windows (counted in
// /metrics) rather than queueing without bound, and sheds ingest with
// 429 + Retry-After past -pipeline-max-backlog. -wal-dir implies jobs:
// if -jobs-dir is empty the job store lands in <wal-dir>/jobs. Without
// the flag the pipeline routes answer 501.
//
// Endpoints:
//
//	POST /v1/solve            solve one instance (see internal/server.SolveRequest)
//	POST /v1/solve/batch      solve many in one call
//	POST /v1/jobs             submit a durable async solve job (with -jobs-dir)
//	GET  /v1/jobs             list jobs; /v1/jobs/{id}[/result|/cancel] per job
//	POST /v1/ingest           append query-log lines to the durable WAL (with -wal-dir)
//	GET  /v1/plan/current     last-good published plan + staleness (with -wal-dir)
//	GET  /v1/healthz          liveness
//	GET  /v1/statz            counters: cache hits, queue depth, shed requests, ...
//	GET  /metrics             Prometheus text exposition
//
// With -debug-addr a second listener serves net/http/pprof and /metrics,
// kept off the main address so profiling never faces production traffic.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 4, "solver worker pool size")
		queue       = flag.Int("queue", 64, "admission queue capacity (full queue answers 429)")
		shedDepth   = flag.Int("shed-tier-depth", 0, "queue depth past which abcc requests are served by submod (0 disables)")
		cacheSize   = flag.Int("cache-size", 1024, "solution cache capacity in entries (negative disables)")
		cacheTTL    = flag.Duration("cache-ttl", 15*time.Minute, "solution cache entry TTL (0 disables expiry)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request solve deadline")
		maxDeadline = flag.Duration("max-deadline", 2*time.Minute, "cap on any requested deadline")
		maxBody     = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxBatch    = flag.Int("max-batch", 64, "cap on requests per batch call")
		warm        = flag.String("warm", "", "JSON instance to solve and cache at startup (e.g. examples/instances/quickstart.json)")
		snapshot    = flag.String("snapshot", "", "cache snapshot file: restored at boot, saved periodically and on drain")
		snapEvery   = flag.Duration("snapshot-interval", 5*time.Minute, "how often to rewrite the cache snapshot (0 disables the timer)")
		backendID   = flag.String("backend-id", "", "stable backend identity for the X-BCC-Backend header (empty = hostname-pid-random)")
		jobsDir     = flag.String("jobs-dir", "", "directory for the durable async-job store (empty = job endpoints answer 501)")
		jobWorkers  = flag.Int("job-workers", 2, "async-job worker pool size (with -jobs-dir)")
		jobMaxJobs  = flag.Int("job-max-jobs", 256, "max jobs tracked at once; a full store answers 429 (with -jobs-dir)")
		jobCkpt     = flag.Duration("job-checkpoint", 2*time.Second, "initial checkpoint slice length for async jobs (doubles per slice)")
		jobDeadline = flag.Duration("job-deadline", 10*time.Minute, "default cumulative solve deadline per async job")
		jobMaxDl    = flag.Duration("job-max-deadline", time.Hour, "cap on any requested async-job deadline")
		walDir      = flag.String("wal-dir", "", "directory for the durable query-log WAL (empty = pipeline endpoints answer 501)")
		window      = flag.Duration("window", 30*time.Second, "tumbling re-solve window for the continuous pipeline (with -wal-dir)")
		retention   = flag.Duration("retention", time.Hour, "how long consumed WAL segments are kept before compaction (with -wal-dir)")
		pipeAlgo    = flag.String("pipeline-algo", "submod", "solver for pipeline window solves (with -wal-dir)")
		pipeBudget  = flag.Float64("pipeline-budget", 10, "classifier budget for pipeline window solves (with -wal-dir)")
		pipeSeed    = flag.Int64("pipeline-seed", 1, "seed for pipeline window solves (with -wal-dir)")
		pipeBacklog = flag.Int64("pipeline-max-backlog", 100000, "unconsumed WAL records past which ingest sheds 429 (with -wal-dir)")
		drain       = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
		debugAddr   = flag.String("debug-addr", "", "optional second listen address for net/http/pprof and /metrics")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccserver", obs.ReadBuild())
		return
	}

	srv := server.New(server.Config{
		Workers:               *workers,
		Queue:                 *queue,
		ShedTierDepth:         *shedDepth,
		CacheSize:             *cacheSize,
		CacheTTL:              *cacheTTL,
		DefaultDeadline:       *deadline,
		MaxDeadline:           *maxDeadline,
		MaxBodyBytes:          *maxBody,
		MaxBatch:              *maxBatch,
		BackendID:             *backendID,
		JobWorkers:            *jobWorkers,
		JobMaxJobs:            *jobMaxJobs,
		JobCheckpointInterval: *jobCkpt,
		JobDefaultDeadline:    *jobDeadline,
		JobMaxDeadline:        *jobMaxDl,
		PipelineWindow:        *window,
		PipelineRetention:     *retention,
		PipelineMaxBacklog:    *pipeBacklog,
		PipelineAlgo:          *pipeAlgo,
		PipelineBudget:        *pipeBudget,
		PipelineSeed:          *pipeSeed,
	})

	if *jobsDir != "" {
		// OpenJobs scans the store, requeues incomplete jobs (warm-started
		// from their last checkpoint) and logs what it resumed.
		if err := srv.OpenJobs(*jobsDir, log.Printf); err != nil {
			log.Fatalf("bccserver: opening job store %s: %v", *jobsDir, err)
		}
		log.Printf("bccserver: durable jobs on %s (workers=%d checkpoint=%v deadline=%v)",
			*jobsDir, *jobWorkers, *jobCkpt, *jobDeadline)
	}

	if *walDir != "" {
		// Window solves run as durable jobs; with no explicit -jobs-dir the
		// store lands next to the WAL so one directory carries the whole
		// pipeline's crash-safe state.
		if *jobsDir == "" {
			dir := filepath.Join(*walDir, "jobs")
			if err := srv.OpenJobs(dir, log.Printf); err != nil {
				log.Fatalf("bccserver: opening job store %s: %v", dir, err)
			}
			log.Printf("bccserver: durable jobs on %s (workers=%d checkpoint=%v deadline=%v)",
				dir, *jobWorkers, *jobCkpt, *jobDeadline)
		}
		if err := srv.OpenPipeline(*walDir, log.Printf); err != nil {
			log.Fatalf("bccserver: opening pipeline on %s: %v", *walDir, err)
		}
		log.Printf("bccserver: continuous pipeline on %s (window=%v retention=%v algo=%s budget=%v max-backlog=%d)",
			*walDir, *window, *retention, *pipeAlgo, *pipeBudget, *pipeBacklog)
	}

	if *snapshot != "" {
		restoreSnapshot(srv, *snapshot)
	}

	if *warm != "" {
		if err := warmCache(srv, *warm); err != nil {
			log.Fatalf("bccserver: warming cache from %s: %v", *warm, err)
		}
	}

	// WriteTimeout must outlast the longest admissible solve plus queue
	// wait, or the server would cut the connection under a response it is
	// still legitimately computing; everything shorter is a stuck client.
	writeTimeout := *maxDeadline + 30*time.Second
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *snapshot != "" && *snapEvery > 0 {
		go snapshotLoop(ctx, srv, *snapshot, *snapEvery)
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      writeTimeout,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("bccserver: debug listener: %v", err)
			}
		}()
		log.Printf("bccserver: debug endpoints (pprof, /metrics) on %s", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("bccserver: listening on %s as backend %s (workers=%d queue=%d cache=%d ttl=%v)",
		*addr, srv.BackendID(), *workers, *queue, *cacheSize, *cacheTTL)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bccserver: %v", err)
		}
	case <-ctx.Done():
		log.Printf("bccserver: signal received, draining for up to %v", *drain)
		// Flip /v1/healthz to 503 first: a load balancer's next probe sees
		// it while Shutdown still finishes requests already accepted.
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("bccserver: shutdown: %v", err)
		}
		if debugSrv != nil {
			if err := debugSrv.Shutdown(shutdownCtx); err != nil {
				log.Printf("bccserver: debug shutdown: %v", err)
			}
		}
		srv.Close() // drain queued and in-flight solves
		if *snapshot != "" {
			saveSnapshot(srv, *snapshot)
		}
		log.Printf("bccserver: drained, bye")
	}
}

// restoreSnapshot warms the cache from a -snapshot file. Any failure is
// survivable by design — a missing file is a normal first boot, a
// corrupt or version-mismatched one is logged and ignored (the server
// starts cold); only the happy path changes behavior.
func restoreSnapshot(srv *server.Server, path string) {
	n, err := srv.RestoreSnapshot(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		log.Printf("bccserver: no snapshot at %s, starting cold", path)
	case err != nil:
		log.Printf("bccserver: ignoring unusable snapshot %s: %v", path, err)
	default:
		log.Printf("bccserver: restored %d cache entries from %s", n, path)
	}
}

// saveSnapshot persists the cache, logging rather than failing: losing
// a snapshot costs warm-start time on the next boot, never correctness.
func saveSnapshot(srv *server.Server, path string) {
	if n, err := srv.SaveSnapshot(path); err != nil {
		log.Printf("bccserver: saving snapshot %s: %v", path, err)
	} else {
		log.Printf("bccserver: saved %d cache entries to %s", n, path)
	}
}

// snapshotLoop rewrites the snapshot every interval until shutdown (the
// drain path writes the final one).
func snapshotLoop(ctx context.Context, srv *server.Server, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			saveSnapshot(srv, path)
		}
	}
}

// warmCache solves the given instance file through the full service path
// so the first real request for it is a cache hit, and logs the
// fingerprint so operators can correlate with bccsolve -fingerprint.
func warmCache(srv *server.Server, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ff dataset.FileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("decoding instance: %w", err)
	}
	resp, apiErr := srv.Solve(context.Background(), &server.SolveRequest{Instance: ff})
	if apiErr != nil {
		return apiErr
	}
	log.Printf("bccserver: warmed cache with %s (fingerprint=%s utility=%.2f cost=%.2f status=%s)",
		path, resp.Fingerprint, resp.Utility, resp.Cost, resp.Status)
	return nil
}
