// Kill-and-resume acceptance soak for the continuous workload pipeline:
// builds the real bccserver binary, starts it with a WAL directory,
// ingests timestamped query-log lines, lets one window publish, then
// SIGKILLs the process with a window's worth of acknowledged records
// still unconsumed (ideally mid-solve), restarts it on the same
// -wal-dir and asserts conservation: every acknowledged record is
// eventually accounted for exactly once (solved, skipped or failed —
// never lost, never double-counted), the plan is re-published with
// bcc_pipeline_windows_solved_total advancing, and the staleness gauge
// bcc_pipeline_plan_age_seconds is exposed.
//
// Like the jobs soak it SIGKILLs subprocesses and is gated behind a
// flag:
//
//	go test -race -run TestPipelineKillResume -pipeline.soak ./cmd/bccserver
//
// (or `make pipeline-smoke`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/api"
)

var pipelineSoak = flag.Bool("pipeline.soak", false,
	"run the pipeline kill-and-resume soak (builds and SIGKILLs real bccserver processes)")

func TestPipelineKillResume(t *testing.T) {
	if !*pipelineSoak {
		t.Skip("pipeline kill-and-resume soak disabled; run with -pipeline.soak")
	}
	if runtime.GOOS == "windows" {
		t.Skip("soak relies on SIGKILL/SIGTERM process control")
	}

	bin := buildServerBinary(t)
	walDir := t.TempDir()
	var acked uint64

	// First life: publish one plan from a small window, then acknowledge
	// a big batch (hundreds of distinct queries, so the evo window solve
	// spans checkpoint slices) and die hard while it is unconsumed.
	srv1 := startPipelineProc(t, bin, walDir)
	acked += ingestSoakLines(t, srv1.base, 20, 0)
	waitPipelineStatz(t, srv1.base, "first window published", time.Minute,
		func(ps *pipelineStatz) bool { return ps.WindowsSolved >= 1 })
	planBefore := currentPlanAt(t, srv1.base)
	if planBefore.Plan == nil || planBefore.Plan.Utility <= 0 {
		t.Fatalf("first published plan = %+v, want positive utility", planBefore)
	}

	acked += ingestSoakLines(t, srv1.base, 600, 1)
	// Best effort: catch the scheduler mid-solve so restart exercises the
	// adopt-inflight path. Conservation must hold either way, so a solve
	// that finishes faster than our polling only weakens the scenario,
	// not the assertions.
	waitPipelineStatz(t, srv1.base, "big window in flight or consumed", time.Minute,
		func(ps *pipelineStatz) bool { return ps.Inflight || ps.sum() == acked })
	srv1.sigkill(t)

	// Second life: same WAL dir. Every acknowledged record must be
	// accounted for exactly once and a plan must be served again.
	srv2 := startPipelineProc(t, bin, walDir)
	defer srv2.sigterm(t)

	waitPipelineStatz(t, srv2.base, "conservation after restart", 3*time.Minute,
		func(ps *pipelineStatz) bool { return ps.sum() == acked && !ps.Inflight })
	ps := pipelineStatzAt(t, srv2.base)
	if ps.sum() != acked || ps.RecordsTotal > acked {
		t.Fatalf("conservation broken: total=%d skipped=%d failed=%d, acked=%d",
			ps.RecordsTotal, ps.RecordsSkipped, ps.RecordsFailed, acked)
	}
	if ps.BacklogRecords != 0 {
		t.Fatalf("backlog = %d after all windows consumed, want 0", ps.BacklogRecords)
	}
	if ps.WindowsSolved < 1 {
		t.Fatalf("windows_solved = %d after restart, want >= 1", ps.WindowsSolved)
	}
	solvedAfterRestart := ps.WindowsSolved

	plan := currentPlanAt(t, srv2.base)
	if plan.Plan == nil || plan.Plan.Utility <= 0 {
		t.Fatalf("plan after restart = %+v, want positive utility", plan)
	}
	if age, ok := scrapeGauge(t, srv2.base, "bcc_pipeline_plan_age_seconds"); !ok || age < 0 {
		t.Fatalf("bcc_pipeline_plan_age_seconds = %v (present=%v), want exposed and >= 0", age, ok)
	}
	if v := scrapeCounter(t, srv2.base, "bcc_pipeline_windows_solved_total"); v < 1 {
		t.Fatalf("bcc_pipeline_windows_solved_total = %v, want >= 1", v)
	}

	// Third batch: the resumed scheduler keeps solving, the seq advances.
	acked += ingestSoakLines(t, srv2.base, 30, 2)
	waitPipelineStatz(t, srv2.base, "post-restart window published", time.Minute,
		func(ps *pipelineStatz) bool { return ps.sum() == acked && ps.WindowsSolved > solvedAfterRestart })
	ps = pipelineStatzAt(t, srv2.base)
	t.Logf("soak done: acked=%d total=%d skipped=%d failed=%d windows_solved=%d",
		acked, ps.RecordsTotal, ps.RecordsSkipped, ps.RecordsFailed, ps.WindowsSolved)
}

// startPipelineProc launches bccserver with the pipeline on walDir (the
// job store lands in <walDir>/jobs via the -wal-dir default), a 1s
// window and tight checkpoints, and waits for /v1/healthz.
func startPipelineProc(t *testing.T, bin, walDir string) *serverProc {
	t.Helper()
	addr := freeLoopbackAddr(t)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-wal-dir", walDir,
		"-window", "1s",
		"-pipeline-algo", "evo",
		"-pipeline-budget", "50",
		"-job-checkpoint", "200ms",
		"-job-workers", "1",
		"-workers", "1",
		"-cache-size", "-1",
		"-drain", "5s",
	)
	logs := &bytes.Buffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting bccserver: %v", err)
	}
	p := &serverProc{cmd: cmd, base: "http://" + addr, logs: logs}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("bccserver[%s] logs:\n%s", addr, logs.String())
		}
	})
	waitHealthy(t, p.base, 30*time.Second)
	return p
}

// ingestSoakLines acknowledges n distinct-pair query-log lines stamped
// now and returns how many the server accepted (fatal unless all n).
// Distinct pairs keep the assembled window instance at n queries, so a
// 600-line batch forces a multi-slice evo solve.
func ingestSoakLines(t *testing.T, base string, n, generation int) uint64 {
	t.Helper()
	now := time.Now().Unix()
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		a, b := i%40, 40+i/40
		lines = append(lines, fmt.Sprintf("%d\tgen%d-t%02d gen%d-t%02d\t%d", now, generation, a, generation, b, 1+i%9))
	}
	body, err := json.Marshal(api.IngestRequest{Lines: lines})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest answered %d: %s", resp.StatusCode, data)
	}
	var ack api.IngestResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatalf("decoding ingest response %s: %v", data, err)
	}
	if ack.Accepted != n {
		t.Fatalf("accepted %d of %d lines", ack.Accepted, n)
	}
	return uint64(n)
}

// pipelineStatz is the subset of the /v1/statz pipeline section the
// soak asserts on.
type pipelineStatz struct {
	Inflight       bool   `json:"inflight"`
	WindowsSolved  uint64 `json:"windows_solved"`
	RecordsTotal   uint64 `json:"records_total"`
	RecordsSkipped uint64 `json:"records_skipped"`
	RecordsFailed  uint64 `json:"records_failed"`
	BacklogRecords int64  `json:"backlog_records"`
}

// sum is the conservation left-hand side: every acknowledged record
// must land in exactly one of these buckets.
func (ps *pipelineStatz) sum() uint64 {
	return ps.RecordsTotal + ps.RecordsSkipped + ps.RecordsFailed
}

func pipelineStatzAt(t *testing.T, base string) *pipelineStatz {
	t.Helper()
	resp, err := http.Get(base + "/v1/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Pipeline *pipelineStatz `json:"pipeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statz: %v", err)
	}
	if st.Pipeline == nil {
		t.Fatal("statz has no pipeline section")
	}
	return st.Pipeline
}

func waitPipelineStatz(t *testing.T, base, what string, within time.Duration, cond func(*pipelineStatz) bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond(pipelineStatzAt(t, base)) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s: not reached within %v (last: %+v)", what, within, pipelineStatzAt(t, base))
}

func currentPlanAt(t *testing.T, base string) *api.CurrentPlanResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/plan/current")
	if err != nil {
		t.Fatalf("plan/current: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan/current answered %d: %s", resp.StatusCode, data)
	}
	var plan api.CurrentPlanResponse
	if err := json.Unmarshal(data, &plan); err != nil {
		t.Fatalf("decoding plan %s: %v", data, err)
	}
	return &plan
}

// scrapeGauge reads one gauge from /metrics, reporting presence — a
// gauge legitimately at 0 (or negative) must still count as exposed.
func scrapeGauge(t *testing.T, base, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parsing %s value %q: %v", name, m[1], err)
	}
	return v, true
}
