// Kill-and-resume acceptance soak: builds the real bccserver binary,
// starts it with a durable job store, submits a GMC3 job big enough to
// span many checkpoint slices, SIGKILLs the process mid-solve, restarts
// it on the same -jobs-dir and asserts the same job completes from its
// checkpoint (Resumes > 0, bcc_jobs_resumed_total > 0).
//
// The soak SIGKILLs subprocesses and takes on the order of a minute
// under -race, so it is gated behind an explicit flag:
//
//	go test -race -run TestKillResume -jobs.soak ./cmd/bccserver
//
// (or `make jobs-smoke`). Without -jobs.soak the test skips and the
// package contributes nothing to a plain `go test ./...`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
)

var jobsSoak = flag.Bool("jobs.soak", false,
	"run the kill-and-resume job soak (builds and SIGKILLs real bccserver processes)")

func TestKillResume(t *testing.T) {
	if !*jobsSoak {
		t.Skip("kill-and-resume soak disabled; run with -jobs.soak")
	}
	if runtime.GOOS == "windows" {
		t.Skip("soak relies on SIGKILL/SIGTERM process control")
	}

	bin := buildServerBinary(t)

	t.Run("gmc3", func(t *testing.T) {
		res := runKillResume(t, bin, soakJobRequest(t))
		if res.Achieved == nil || !*res.Achieved {
			t.Fatalf("result did not reach the target: %+v", res)
		}
	})
	t.Run("evo", func(t *testing.T) {
		res := runKillResume(t, bin, evoJobRequest(t))
		if res.Utility <= 0 {
			t.Fatalf("resumed evo job utility = %v, want > 0", res.Utility)
		}
	})
}

// runKillResume drives one job through the SIGKILL/restart pattern:
// submit, wait for a persisted checkpoint, kill the server hard,
// restart it on the same store, and assert the same job completes from
// its checkpoint with at least one recorded resume. Returns the final
// result for algorithm-specific assertions.
func runKillResume(t *testing.T, bin string, req *api.JobRequest) *api.SolveResponse {
	t.Helper()
	jobsDir := t.TempDir()

	// First life: serve, accept the job, checkpoint, die hard.
	srv1 := startServerProc(t, bin, jobsDir)
	st := submitJob(t, srv1.base, req)
	if st.State != api.JobQueued && st.State != api.JobRunning {
		t.Fatalf("submitted job state = %q, want queued/running", st.State)
	}
	id := st.ID
	t.Logf("submitted job %s (algo %s, target %.0f)", id, req.Algo, req.Target)

	// Kill only once a checkpoint is provably on disk — the metric counts
	// successful persisted checkpoint writes, not in-memory incumbents.
	waitCounter(t, srv1.base, "bcc_jobs_checkpoints_total", 1, 2*time.Minute)
	if cur := jobStatusAt(t, srv1.base, id); api.JobTerminal(cur.State) {
		t.Fatalf("job reached %q before the kill; grow the soak instance", cur.State)
	}
	srv1.sigkill(t)

	// Second life: same store, fresh process (and a fresh port, so the
	// restart never races the kernel releasing the old listener).
	srv2 := startServerProc(t, bin, jobsDir)
	defer srv2.sigterm(t)

	final := awaitTerminalJob(t, srv2.base, id, 5*time.Minute)
	if final.State != api.JobCompleted {
		t.Fatalf("resumed job state = %q (error %q), want completed", final.State, final.Error)
	}
	if final.Resumes < 1 {
		t.Fatalf("Resumes = %d, want >= 1 after a SIGKILL restart", final.Resumes)
	}
	if final.Progress == nil || final.Progress.Slices < 2 {
		t.Fatalf("Progress = %+v, want >= 2 slices (checkpointed solve)", final.Progress)
	}

	res := jobResult(t, srv2.base, id)
	if res.Algo != req.Algo || res.Fingerprint != final.Fingerprint {
		t.Fatalf("result algo=%q fingerprint=%q, want %s/%q", res.Algo, res.Fingerprint, req.Algo, final.Fingerprint)
	}

	if v := scrapeCounter(t, srv2.base, "bcc_jobs_resumed_total"); v < 1 {
		t.Fatalf("bcc_jobs_resumed_total = %v, want >= 1", v)
	}
	t.Logf("job %s completed after resume: %d slices, %.0fms solve, cost %.1f",
		id, final.Progress.Slices, final.Progress.ElapsedMS, res.Cost)
	return res
}

// buildServerBinary compiles bccserver (race-instrumented whenever the
// test binary is, via raceFlag) into the test temp dir.
func buildServerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bccserver")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "repro/cmd/bccserver")
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bccserver: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := string(bytes.TrimSpace(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// serverProc is one bccserver subprocess lifetime.
type serverProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
	logs *bytes.Buffer
}

// startServerProc launches bccserver on a fresh loopback port with the
// given job store and a tight 200ms checkpoint interval, and waits for
// it to answer /v1/healthz.
func startServerProc(t *testing.T, bin, jobsDir string) *serverProc {
	t.Helper()
	addr := freeLoopbackAddr(t)
	cmd := exec.Command(bin,
		"-addr", addr,
		"-jobs-dir", jobsDir,
		"-job-checkpoint", "200ms",
		"-job-workers", "1",
		"-workers", "1",
		"-cache-size", "-1",
		"-drain", "5s",
	)
	logs := &bytes.Buffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting bccserver: %v", err)
	}
	p := &serverProc{cmd: cmd, base: "http://" + addr, logs: logs}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		if t.Failed() {
			t.Logf("bccserver[%s] logs:\n%s", addr, logs.String())
		}
	})
	waitHealthy(t, p.base, 30*time.Second)
	return p
}

func (p *serverProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	p.cmd.Wait()
}

func (p *serverProc) sigterm(t *testing.T) {
	t.Helper()
	if p.cmd.ProcessState != nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Log("graceful shutdown timed out; killing")
		p.cmd.Process.Kill()
		<-done
	}
}

func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("picking port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s not healthy within %v", base, within)
}

// soakJobRequest builds a GMC3 job over a synthetic instance sized so
// the solve spans many 200ms checkpoint slices (tens of seconds under
// -race) without making the soak unbounded.
func soakJobRequest(t *testing.T) *api.JobRequest {
	t.Helper()
	in := dataset.Synthetic(7, 150, 1)
	total := 0.0
	for _, q := range in.Queries() {
		total += q.Utility
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, in); err != nil {
		t.Fatalf("serializing instance: %v", err)
	}
	var ff dataset.FileFormat
	if err := json.Unmarshal(buf.Bytes(), &ff); err != nil {
		t.Fatalf("decoding instance: %v", err)
	}
	return &api.JobRequest{
		SolveRequest: api.SolveRequest{
			Instance: ff,
			Algo:     "gmc3",
			Target:   total * 0.8,
			Seed:     7,
		},
		JobDeadlineMS: (20 * time.Minute).Milliseconds(),
	}
}

// evoJobRequest builds an evolutionary job over a synthetic instance
// large enough that the full evolution spans several doubling slices
// (seconds plain, tens of seconds under -race) before the solver
// terminates on its own.
func evoJobRequest(t *testing.T) *api.JobRequest {
	t.Helper()
	in := dataset.Synthetic(7, 1500, 500)
	var buf bytes.Buffer
	if err := dataset.Write(&buf, in); err != nil {
		t.Fatalf("serializing instance: %v", err)
	}
	var ff dataset.FileFormat
	if err := json.Unmarshal(buf.Bytes(), &ff); err != nil {
		t.Fatalf("decoding instance: %v", err)
	}
	return &api.JobRequest{
		SolveRequest: api.SolveRequest{
			Instance: ff,
			Algo:     "evo",
			Seed:     7,
		},
		JobDeadlineMS: (20 * time.Minute).Milliseconds(),
	}
}

func submitJob(t *testing.T, base string, req *api.JobRequest) *api.JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submitting job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit answered %d: %s", resp.StatusCode, b)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return &st
}

func jobStatusAt(t *testing.T, base, id string) *api.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("job status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status answered %d: %s", resp.StatusCode, b)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return &st
}

func awaitTerminalJob(t *testing.T, base, id string, within time.Duration) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		st := jobStatusAt(t, base, id)
		if api.JobTerminal(st.State) {
			return st
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %v", id, within)
	return nil
}

func jobResult(t *testing.T, base, id string) *api.SolveResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("job result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("result answered %d: %s", resp.StatusCode, b)
	}
	var res api.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return &res
}

// scrapeCounter reads one counter from /metrics (0 when absent).
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parsing %s value %q: %v", name, m[1], err)
	}
	return v
}

func waitCounter(t *testing.T, base, name string, min float64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if scrapeCounter(t, base, name) >= min {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s did not reach %v within %v", name, min, within)
}
