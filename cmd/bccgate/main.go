// Command bccgate fronts N bccserver backends with a fingerprint-
// affine routing tier (internal/cluster): it speaks the exact same
// HTTP API as a single backend, so clients point at the gateway and
// scale-out becomes an operational detail.
//
//	bccgate -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Routing: each request's instance is fingerprinted at the edge and
// rendezvous-hashed over the membership, so identical instances always
// land on the backend whose solution cache is already warm; membership
// changes remap only ~1/N of the keys. Unhealthy, draining or
// breaker-open backends are routed around (power-of-two-choices by
// observed load), slow primaries are hedged after -hedge-after, and
// batches are scattered by per-item affinity and gathered back in
// input order. The X-BCC-Backend response header names the backend
// that answered each request.
//
// Membership is live: SIGHUP re-reads -backends-file (when given) and
// applies the new set without a restart, preserving the health,
// breaker and accounting state of backends present before and after;
// without a file, SIGHUP forces an immediate re-probe of the current
// members. SIGINT/SIGTERM drains gracefully: /v1/healthz flips to 503
// first, then in-flight requests finish.
//
// Async jobs route through the gateway too: a submission is pinned to
// its fingerprint-affine backend, the gateway hands out its own job ID,
// and if the owning backend dies mid-job the next poll transparently
// resubmits the job to a survivor (once) under the same ID — the status
// body reports the move via "resubmitted" and "backend". GET /v1/jobs
// scatter-gathers the listing across all eligible backends.
//
// Endpoints (same shapes as bccserver):
//
//	POST /v1/solve        route one solve by fingerprint affinity
//	POST /v1/solve/batch  scatter-gather by per-item affinity
//	POST /v1/jobs         submit a durable async job to its affine backend
//	GET  /v1/jobs         merged job listing; /v1/jobs/{id}[/result|/cancel] per job
//	GET  /v1/healthz      200 while serving and ≥1 backend is eligible
//	GET  /v1/statz        gateway + per-backend routing counters
//	GET  /metrics         Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backends      = flag.String("backends", "", "comma-separated backend base URLs (required unless -backends-file)")
		backendsFile  = flag.String("backends-file", "", "file with backend URLs (one per line, # comments); SIGHUP re-reads it")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "backend health probe period")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge delay: 0 derives it from observed latency, <0 disables hedging")
		hedgeQuantile = flag.Float64("hedge-quantile", 0.9, "latency quantile the auto hedge delay tracks")
		maxAttempts   = flag.Int("max-attempts", 1, "client attempts per backend call (cross-backend failover is separate)")
		breakerFails  = flag.Int("breaker-failures", 3, "consecutive failures that open a backend's breaker")
		breakerCool   = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open backend breaker rejects before probing")
		maxBody       = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		maxBatch      = flag.Int("max-batch", 64, "cap on requests per batch call")
		drain         = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
		version       = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccgate", obs.ReadBuild())
		return
	}

	urls, err := initialBackends(*backends, *backendsFile)
	if err != nil {
		log.Fatalf("bccgate: %v", err)
	}

	c, err := cluster.New(cluster.Config{
		Backends:      urls,
		ProbeInterval: *probeInterval,
		HedgeAfter:    *hedgeAfter,
		HedgeQuantile: *hedgeQuantile,
		MaxAttempts:   *maxAttempts,
		Breaker: &resilience.BreakerConfig{
			ConsecutiveFailures: *breakerFails,
			Cooldown:            *breakerCool,
		},
	})
	if err != nil {
		log.Fatalf("bccgate: %v", err)
	}
	defer c.Close()

	gw := cluster.NewGateway(c, cluster.GatewayConfig{
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		// The gateway's writes must outlast the slowest admissible backend
		// solve plus a failover; the backends already cap their own work.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP: live membership reload (or a forced re-probe without a
	// file). Runs off the signal goroutine; SetBackends swaps atomically
	// under traffic.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *backendsFile == "" {
				log.Printf("bccgate: SIGHUP with no -backends-file: re-probing current members")
				c.ProbeNow()
				continue
			}
			urls, err := readBackendsFile(*backendsFile)
			if err != nil {
				log.Printf("bccgate: SIGHUP reload failed, keeping current membership: %v", err)
				continue
			}
			if err := c.SetBackends(urls); err != nil {
				log.Printf("bccgate: SIGHUP reload rejected, keeping current membership: %v", err)
				continue
			}
			log.Printf("bccgate: membership reloaded from %s: %s", *backendsFile, strings.Join(c.Backends(), ", "))
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("bccgate: listening on %s fronting %d backends: %s",
		*addr, len(c.Backends()), strings.Join(c.Backends(), ", "))

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bccgate: %v", err)
		}
	case <-ctx.Done():
		log.Printf("bccgate: signal received, draining for up to %v", *drain)
		// Healthz flips first so an upstream balancer's next probe stops
		// sending traffic while Shutdown finishes accepted requests.
		gw.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("bccgate: shutdown: %v", err)
		}
		log.Printf("bccgate: drained, bye")
	}
}

// initialBackends resolves the startup membership: -backends-file wins
// when both are given (it is also the SIGHUP reload source), else the
// -backends flag.
func initialBackends(flagList, file string) ([]string, error) {
	if file != "" {
		return readBackendsFile(file)
	}
	if flagList == "" {
		return nil, errors.New("either -backends or -backends-file is required")
	}
	return strings.Split(flagList, ","), nil
}

// readBackendsFile parses a membership file: one URL per line, blank
// lines and #-comments ignored.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		urls = append(urls, line)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("%s names no backends", path)
	}
	return urls, nil
}
