// Command bccload drives load — and, on request, chaos — through a BCC
// solving service using the resilient bcc.Client (retries, Retry-After
// aware backoff, circuit breaker).
//
// Against a running server:
//
//	bccload -addr http://localhost:8080 -concurrency 8 -duration 10s
//
// Against several services at once — e.g. a bccgate gateway next to its
// backends, or two gateway replicas — with per-target outcome counts in
// the report (each target gets its own client, so one target's breaker
// opening never gates the others):
//
//	bccload -targets http://gate:8090,http://backend-1:8080 -duration 10s
//
// Self-contained chaos mode — no external server needed: -chaos starts
// an in-process bccserver on a loopback port, arms probabilistic panic
// and stall faults at the serving stack's injection points
// (server.admit, server.pool.dequeue, solvecache.get, solvecache.put,
// core.phase), runs the load through it, then drains and reports. Every
// request still gets a valid answer: panics become JSON 500s, shed
// requests 429s with Retry-After, and the client's breaker/retry
// machinery is exercised for real.
//
//	bccload -chaos -duration 10s
//	bccload -chaos -faults "server.admit:0.05,solvecache.get:0.02" -duration 5s
//
// Job mode (-jobs) drives the durable async job API instead of the
// synchronous solve path: every op submits a job, polls it to a
// terminal state, and the report classifies outcomes as completed /
// resumed / failed / canceled / rejected / lost. It composes with
// -chaos (the in-process server gets a throwaway jobs directory and
// accepts jobs.* fault points) and a non-zero "lost" count exits 1 —
// an accepted job that vanishes is a durability bug, not noise:
//
//	bccload -chaos -jobs -duration 10s
//	bccload -chaos -jobs -faults "jobs.store.append:0.05,jobs.checkpoint:0.1" -duration 5s
//
// Ingest mode (-ingest) drives the continuous workload pipeline: every
// op posts a fresh batch of timestamped query-log lines to /v1/ingest
// (429 backlog sheds are classified outcomes, not noise), and the
// report ends with the last-good plan read back from /v1/plan/current.
// It composes with -chaos (the in-process server gets a throwaway WAL
// directory and a 1s window):
//
//	bccload -ingest -addr http://localhost:8080 -duration 30s
//	bccload -chaos -ingest -duration 10s
//
// The final report tallies ops, statuses, error classes, cache hits and
// the client's breaker state; -json emits it machine-readable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/guard"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "service base URL (ignored with -chaos)")
		targets     = flag.String("targets", "", "comma-separated service base URLs to spread load across (overrides -addr; adds per-target counts)")
		concurrency = flag.Int("concurrency", 8, "concurrent load workers")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		instances   = flag.Int("instances", 8, "distinct synthetic instances in the workload")
		seed        = flag.Int64("seed", 1, "workload and fault randomness seed")
		algo        = flag.String("algo", "", "solver algo for every request (empty = server default)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request solve deadline in ms (0 = server default)")
		batchEvery  = flag.Int("batch-every", 6, "every Nth op is a batch call (0 disables batching)")
		batchSize   = flag.Int("batch-size", 3, "requests per batch call")
		attempts    = flag.Int("max-attempts", 4, "client retry attempts per call")
		noBreaker   = flag.Bool("no-breaker", false, "disable the client circuit breaker")
		chaos       = flag.Bool("chaos", false, "run a self-contained in-process server with armed faults")
		faultSpec   = flag.String("faults", "server.admit:0.02,server.pool.dequeue:0.02,solvecache.get:0.01,solvecache.put:0.01,core.phase:0.02",
			"chaos faults as point:probability,... (panic faults; with -chaos)")
		ingestMode      = flag.Bool("ingest", false, "drive the continuous pipeline: POST timestamped query-log lines at /v1/ingest, read back /v1/plan/current")
		ingestBatch     = flag.Int("ingest-batch", 16, "query-log lines per ingest call in -ingest mode")
		jobsMode        = flag.Bool("jobs", false, "drive the async job API: submit, poll to terminal, classify completed/resumed/canceled/lost")
		jobsPoll        = flag.Duration("jobs-poll", 100*time.Millisecond, "status poll interval in -jobs mode")
		jobsCancelEvery = flag.Int("jobs-cancel-every", 8, "cancel every Nth submitted job in -jobs mode (0 disables)")
		opDelay         = flag.Duration("op-delay", 0, "pause between one worker's ops (0 = closed loop)")
		jsonOut         = flag.Bool("json", false, "print the report as JSON")
		version         = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccload", obs.ReadBuild())
		return
	}

	base := *addr
	var chaosSrv *chaosServer
	if *chaos {
		if *targets != "" {
			log.Fatalf("bccload: -chaos and -targets are mutually exclusive")
		}
		var err error
		chaosSrv, err = startChaosServer(*faultSpec, *seed)
		if err != nil {
			log.Fatalf("bccload: starting chaos server: %v", err)
		}
		defer chaosSrv.stop()
		base = chaosSrv.baseURL
		log.Printf("bccload: chaos server on %s, faults: %s", base, *faultSpec)
	}

	newClient := func(baseURL string) *client.Client {
		cl, err := client.New(client.Config{
			BaseURL:     baseURL,
			MaxAttempts: *attempts,
			// A ratio policy suits chaos runs: scattered induced faults must
			// not latch the breaker open the way a consecutive-only policy
			// would under a high-failure burst.
			Breaker:        &resilience.BreakerConfig{FailureRatio: 0.6, Cooldown: 2 * time.Second},
			DisableBreaker: *noBreaker,
			Registry:       obs.NewRegistry(),
		})
		if err != nil {
			log.Fatalf("bccload: %v", err)
		}
		return cl
	}

	// -targets spreads the run over several services (each with its own
	// client, so one target's breaker opening never gates another) and
	// the report gains per-target outcome rows.
	var loadTargets []loadgen.Target
	targetDesc := base
	if *targets != "" {
		for _, u := range strings.Split(*targets, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			loadTargets = append(loadTargets, loadgen.Target{Name: u, Client: newClient(u)})
		}
		if len(loadTargets) == 0 {
			log.Fatalf("bccload: -targets %q names no usable URL", *targets)
		}
		targetDesc = fmt.Sprintf("%d targets (%s)", len(loadTargets), *targets)
	}
	var cl *client.Client
	if len(loadTargets) == 0 {
		cl = newClient(base)
	}

	reqs := loadgen.SyntheticWorkload(*instances, *seed)
	for i := range reqs {
		reqs[i].Algo = *algo
		if !*jobsMode {
			// Jobs ignore the per-request deadline; -deadline-ms becomes the
			// job-level deadline in the jobs branch below instead.
			reqs[i].DeadlineMS = *deadlineMS
		}
	}

	if *ingestMode {
		if *jobsMode {
			log.Fatalf("bccload: -ingest and -jobs are mutually exclusive")
		}
		if cl == nil {
			// -targets spreads solves; ingest drives one pipeline, so it
			// takes the first target's client.
			cl = loadTargets[0].Client
		}
		log.Printf("bccload: driving %d ingest workers against %s for %v", *concurrency, targetDesc, *duration)
		irep, err := loadgen.RunIngest(context.Background(), loadgen.IngestConfig{
			Client:      cl,
			Concurrency: *concurrency,
			Duration:    *duration,
			BatchSize:   *ingestBatch,
			Seed:        *seed,
			OpDelay:     *opDelay,
		})
		if err != nil {
			log.Fatalf("bccload: %v", err)
		}
		if chaosSrv != nil {
			chaosSrv.drainAndReport(cl)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(irep); err != nil {
				log.Fatalf("bccload: %v", err)
			}
			return
		}
		fmt.Print(irep.String())
		return
	}

	if *jobsMode {
		var jts []jobTarget
		for _, lt := range loadTargets {
			jts = append(jts, jobTarget{name: lt.Name, cl: lt.Client})
		}
		if len(jts) == 0 {
			jts = []jobTarget{{name: base, cl: cl}}
		}
		log.Printf("bccload: driving %d job workers against %s for %v", *concurrency, targetDesc, *duration)
		jrep := runJobsLoad(jts, reqs, *concurrency, *duration, *jobsPoll, *deadlineMS, *jobsCancelEvery)
		if chaosSrv != nil {
			chaosSrv.drainAndReport(jts[0].cl)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(jrep); err != nil {
				log.Fatalf("bccload: %v", err)
			}
			return
		}
		fmt.Print(jrep.String())
		if jrep.Lost > 0 {
			os.Exit(1)
		}
		return
	}

	log.Printf("bccload: driving %d workers against %s for %v", *concurrency, targetDesc, *duration)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Client:      cl,
		Targets:     loadTargets,
		Requests:    reqs,
		Concurrency: *concurrency,
		Duration:    *duration,
		BatchEvery:  *batchEvery,
		BatchSize:   *batchSize,
		OpDelay:     *opDelay,
	})
	if err != nil {
		log.Fatalf("bccload: %v", err)
	}

	if chaosSrv != nil {
		chaosSrv.drainAndReport(cl)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("bccload: %v", err)
		}
		return
	}
	fmt.Print(rep.String())
}

// chaosServer is the self-contained in-process target of -chaos: a real
// server.Server behind a real loopback listener, so the client's whole
// HTTP stack (including transport errors and Retry-After headers) is
// exercised, plus the armed guard faults.
type chaosServer struct {
	srv     *server.Server
	httpSrv *http.Server
	baseURL string
	points  []string
	jobsDir string
	walDir  string
}

// startChaosServer listens on an ephemeral loopback port and arms the
// requested faults. Probabilities are driven by a seeded RNG under a
// mutex-free trick: guard serializes fault callbacks per Inject call
// site anyway, and rand.Rand is only touched inside them — one shared
// lock via a channel keeps it race-clean.
func startChaosServer(faultSpec string, seed int64) (*chaosServer, error) {
	srv := server.New(server.Config{
		Workers: 2,
		// A short queue makes real shedding (429 + Retry-After) part of
		// every chaos run, not a rare corner.
		Queue:           8,
		CacheTTL:        time.Minute,
		DefaultDeadline: 5 * time.Second,
		// Short checkpoint slices so -jobs chaos runs exercise several
		// checkpoints per job, not one long slice.
		JobCheckpointInterval: 200 * time.Millisecond,
		// A short window so -ingest chaos runs see several publishes.
		PipelineWindow: time.Second,
	})

	// Jobs are always on for the chaos server (a throwaway store dir) so
	// -chaos composes with -jobs and with jobs.* fault points.
	jobsDir, err := os.MkdirTemp("", "bccload-jobs-")
	if err != nil {
		return nil, err
	}
	if err := srv.OpenJobs(jobsDir, log.Printf); err != nil {
		os.RemoveAll(jobsDir)
		return nil, err
	}

	// Likewise the pipeline (a throwaway WAL dir) so -chaos composes with
	// -ingest.
	walDir, err := os.MkdirTemp("", "bccload-wal-")
	if err != nil {
		srv.Close()
		os.RemoveAll(jobsDir)
		return nil, err
	}
	if err := srv.OpenPipeline(walDir, log.Printf); err != nil {
		srv.Close()
		os.RemoveAll(jobsDir)
		os.RemoveAll(walDir)
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		os.RemoveAll(jobsDir)
		os.RemoveAll(walDir)
		return nil, err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      3 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("bccload: chaos listener: %v", err)
		}
	}()

	cs := &chaosServer{srv: srv, httpSrv: httpSrv, baseURL: "http://" + ln.Addr().String(), jobsDir: jobsDir, walDir: walDir}
	points, err := armFaults(faultSpec, seed)
	if err != nil {
		cs.stop()
		return nil, err
	}
	cs.points = points
	return cs, nil
}

// armFaults parses "point:prob,..." and arms a probabilistic panic
// fault at each point. Faults fire through guard.Inject from many
// goroutines; the RNG is guarded by a channel-based lock.
func armFaults(spec string, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	lock := make(chan struct{}, 1)
	var points []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, probStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fault %q: want point:probability", part)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault %q: probability must be in [0,1]", part)
		}
		point = strings.TrimSpace(point)
		p := prob
		guard.Arm(point, func() {
			lock <- struct{}{}
			hit := rng.Float64() < p
			<-lock
			if hit {
				panic(fmt.Sprintf("chaos: induced fault at %s", point))
			}
		})
		points = append(points, point)
	}
	return points, nil
}

// drainAndReport ends a chaos run the way a production shutdown would:
// BeginDrain (healthz must flip to 503), disarm, stop the listener,
// drain the pool, and print the server's own accounting next to the
// client's.
func (c *chaosServer) drainAndReport(cl *client.Client) {
	c.srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := cl.Healthz(ctx); err == nil {
		log.Printf("bccload: WARNING: healthz still 200 after BeginDrain")
	} else {
		log.Printf("bccload: healthz reports draining as expected: %v", err)
	}
	guard.DisarmAll()
	c.stopListener()
	c.srv.Close()

	st := c.srv.Statz()
	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Printf("server statz after drain:\n%s\n", out)
	if c.jobsDir != "" {
		os.RemoveAll(c.jobsDir)
	}
	if c.walDir != "" {
		os.RemoveAll(c.walDir)
	}
}

func (c *chaosServer) stopListener() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = c.httpSrv.Shutdown(ctx)
}

func (c *chaosServer) stop() {
	guard.DisarmAll()
	c.stopListener()
	c.srv.Close()
	if c.jobsDir != "" {
		os.RemoveAll(c.jobsDir)
	}
	if c.walDir != "" {
		os.RemoveAll(c.walDir)
	}
}
