package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/client"
)

// Job-mode load (-jobs): every op submits a durable async job, polls it
// to a terminal state through the job API, and classifies the outcome.
// The report proves the durability contract under load (and chaos): a
// submission the server acknowledged must never be lost, whatever the
// faults did to the run.

// jobTarget pairs a client with its display name for per-target rows.
type jobTarget struct {
	name string
	cl   *client.Client
}

// jobsReport tallies one job-mode run.
type jobsReport struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	// Resumed counts completed jobs that survived at least one resume
	// (crash or drain recovery) on the way — a subset of Completed.
	Resumed  uint64 `json:"resumed"`
	Failed   uint64 `json:"failed"`
	Canceled uint64 `json:"canceled"`
	// Rejected counts submissions the service refused up front (429 full
	// store, 503 draining, ...) — never durably accepted, so not at risk.
	Rejected uint64 `json:"rejected"`
	// Lost counts jobs the service accepted but never answered a
	// terminal state for. The durability contract makes any non-zero
	// value a bug.
	Lost uint64 `json:"lost"`
}

func (r *jobsReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: submitted=%d completed=%d (resumed=%d) failed=%d canceled=%d rejected=%d lost=%d\n",
		r.Submitted, r.Completed, r.Resumed, r.Failed, r.Canceled, r.Rejected, r.Lost)
	if r.Lost > 0 {
		b.WriteString("WARNING: accepted jobs were lost — the durability contract is broken\n")
	}
	return b.String()
}

// runJobsLoad drives concurrency workers submitting and awaiting jobs
// for the given duration. Every cancelEvery-th submission is canceled
// right away to exercise that path (0 disables). Jobs in flight when
// the clock runs out are still awaited (with a grace period) — walking
// away from them would misreport slow jobs as lost.
func runJobsLoad(targets []jobTarget, reqs []api.SolveRequest, concurrency int, duration, poll time.Duration, jobDeadlineMS int64, cancelEvery int) *jobsReport {
	rep := &jobsReport{}
	var (
		submitted, completed, resumed, failed, canceled, rejected, lost atomic.Uint64
		ops                                                             atomic.Uint64
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := ops.Add(1)
				req := reqs[int(n)%len(reqs)]
				t := targets[int(n)%len(targets)]
				jreq := &api.JobRequest{SolveRequest: req, JobDeadlineMS: jobDeadlineMS}

				subCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				st, err := t.cl.SubmitJob(subCtx, jreq)
				cancel()
				if err != nil {
					rejected.Add(1)
					continue
				}
				submitted.Add(1)

				if cancelEvery > 0 && n%uint64(cancelEvery) == 0 {
					cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_, _ = t.cl.CancelJob(cctx, st.ID)
					cancel()
					// Fall through to await: a cancel can race completion, and
					// either terminal answer is a correctly tracked job.
				}

				// Grace beyond the run end: an accepted job deserves its
				// terminal answer before we judge it lost.
				grace := time.Until(deadline) + duration + 30*time.Second
				actx, cancelAwait := context.WithTimeout(context.Background(), grace)
				result, final, err := t.cl.AwaitJob(actx, st.ID, poll)
				cancelAwait()
				switch {
				case err != nil:
					lost.Add(1)
				case final == nil:
					lost.Add(1)
				case final.State == api.JobCompleted && result != nil:
					completed.Add(1)
					if final.Resumes > 0 {
						resumed.Add(1)
					}
				case final.State == api.JobCanceled:
					canceled.Add(1)
				case final.State == api.JobFailed:
					failed.Add(1)
				default:
					lost.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	rep.Submitted = submitted.Load()
	rep.Completed = completed.Load()
	rep.Resumed = resumed.Load()
	rep.Failed = failed.Load()
	rep.Canceled = canceled.Load()
	rep.Rejected = rejected.Load()
	rep.Lost = lost.Load()
	if rep.Lost > 0 {
		log.Printf("bccload: %d accepted jobs lost — durability contract violated", rep.Lost)
	}
	return rep
}
