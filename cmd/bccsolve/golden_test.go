// Golden determinism test for the CLI contract behind
// `bccsolve -algo evo -seed N`: the same seed must reproduce the same
// plan bit for bit, across runs and across code motion that does not
// intend to change the search. The pinned output below is the contract;
// update it deliberately when the evolutionary search itself changes.
package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// goldenEvo is the normalized bccsolve output (time token stripped,
// whitespace runs collapsed) for dataset.Synthetic(5, 40, 60) with
// -algo evo -seed 42.
const goldenEvo = `evo: utility=261.00 cost=59.00 budget=60.00 covered=8/40
{s3239} cost=7.00
{s6309} cost=0.00
{s3407} cost=6.00
{s4470} cost=4.00
{s6873} cost=6.00
{s9383} cost=4.00
{s801 s5759} cost=1.00
{s6892 s9863} cost=12.00
{s1454 s6492 s8589} cost=7.00
{s110 s5759 s6900 s8813} cost=6.00
{s1806 s3224 s4393 s9081 s9998} cost=6.00
{s1806 s4393 s8181 s9081 s9998} cost=0.00`

func TestEvoSeedGolden(t *testing.T) {
	bin := buildSolveBinary(t)
	inst := filepath.Join(t.TempDir(), "inst.json")
	if err := dataset.WriteFile(inst, dataset.Synthetic(5, 40, 60)); err != nil {
		t.Fatalf("writing instance: %v", err)
	}

	run := func() string {
		cmd := exec.Command(bin, "-in", inst, "-algo", "evo", "-seed", "42", "-v")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("bccsolve: %v\n%s", err, out)
		}
		return normalizeSolveOutput(string(out))
	}

	first := run()
	if first != goldenEvo {
		t.Errorf("evo seed-42 output drifted from the golden pin.\ngot:\n%s\nwant:\n%s", first, goldenEvo)
	}
	if second := run(); second != first {
		t.Errorf("two -seed 42 runs diverged.\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// goldenWarmAbcc pins the -warm-from contract: seeding a solve with its
// own previous plan must repair every classifier, reproduce the exact
// cold answer, and say so. Normalized like goldenEvo.
const goldenWarmAbcc = `warm-from: 12 of 12 classifiers survived repair
abcc: utility=261.00 cost=59.00 budget=60.00 covered=8/40
{s3239} cost=7.00
{s6309} cost=0.00
{s3407} cost=6.00
{s4470} cost=4.00
{s6873} cost=6.00
{s9383} cost=4.00
{s801 s5759} cost=1.00
{s6892 s9863} cost=12.00
{s1454 s6492 s8589} cost=7.00
{s110 s5759 s6900 s8813} cost=6.00
{s1806 s3224 s4393 s9081 s9998} cost=6.00
{s1806 s4393 s8181 s9081 s9998} cost=0.00`

func TestWarmFromGolden(t *testing.T) {
	bin := buildSolveBinary(t)
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	if err := dataset.WriteFile(inst, dataset.Synthetic(5, 40, 60)); err != nil {
		t.Fatalf("writing instance: %v", err)
	}

	// Cold run writes the plan the warm run will seed from.
	plan := filepath.Join(dir, "plan.json")
	cold, err := exec.Command(bin, "-in", inst, "-algo", "abcc", "-seed", "42", "-v", "-plan", plan).CombinedOutput()
	if err != nil {
		t.Fatalf("cold bccsolve: %v\n%s", err, cold)
	}

	warm, err := exec.Command(bin, "-in", inst, "-algo", "abcc", "-seed", "42", "-v", "-warm-from", plan).CombinedOutput()
	if err != nil {
		t.Fatalf("warm bccsolve: %v\n%s", err, warm)
	}
	if got := normalizeSolveOutput(string(warm)); got != goldenWarmAbcc {
		t.Errorf("-warm-from output drifted from the golden pin.\ngot:\n%s\nwant:\n%s", got, goldenWarmAbcc)
	}

	// The warm answer is the cold answer: repair plus seeding changes
	// where the search starts, never what it returns here.
	if gotCold := normalizeSolveOutput(string(cold)); "warm-from: 12 of 12 classifiers survived repair\n"+gotCold != goldenWarmAbcc {
		t.Errorf("cold output does not match the warm pin.\ncold:\n%s", gotCold)
	}

	// A plan with no usable classifiers is an error, not a crash.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"classifiers":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-in", inst, "-warm-from", bad).CombinedOutput(); err == nil {
		t.Errorf("empty warm plan accepted:\n%s", out)
	}
}

var timeToken = regexp.MustCompile(` time=\S+`)

// normalizeSolveOutput strips the wall-clock token (the only
// nondeterministic field) and collapses alignment padding so the golden
// string stays readable.
func normalizeSolveOutput(out string) string {
	out = timeToken.ReplaceAllString(out, "")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i, l := range lines {
		lines[i] = strings.Join(strings.Fields(l), " ")
	}
	return strings.Join(lines, "\n")
}

// buildSolveBinary compiles bccsolve into the test temp dir.
func buildSolveBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bccsolve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/bccsolve")
	cmd.Dir = solveRepoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bccsolve: %v\n%s", err, out)
	}
	return bin
}

func solveRepoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := string(bytes.TrimSpace(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
