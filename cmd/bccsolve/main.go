// Command bccsolve solves a BCC instance stored as JSON (see
// internal/dataset.FileFormat) and prints the selected classifiers with
// their utility/cost accounting. The algorithm table is the solver
// registry (internal/algo); run bccsolve -h for the generated list.
//
// Usage:
//
//	bccsolve -in instance.json [-algo NAME] [-budget B]
//	bccsolve -in instance.json -gmc3-target T
//	bccsolve -in instance.json -ecc
//	bccsolve -in instance.json -plan plan.json   # machine-readable plan
//	bccsolve -in instance.json -plan -           # human-readable plan
//	bccsolve -in instance.json -trace            # per-stage timing on stderr
//	bccsolve -in instance.json -warm-from plan.json  # warm-start from a previous plan
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	bcc "repro"
	"repro/internal/algo"
	"repro/internal/dataset"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		inPath     = flag.String("in", "", "path to the JSON instance (required)")
		algoName   = flag.String("algo", "abcc", "BCC algorithm; one of:\n"+algo.Usage())
		budget     = flag.Float64("budget", -1, "override the instance's budget")
		seed       = flag.Int64("seed", 1, "random seed")
		gmc3Target = flag.Float64("gmc3-target", 0, "solve GMC3 for this utility target instead of BCC (shorthand for -algo gmc3)")
		eccMode    = flag.Bool("ecc", false, "solve ECC (max utility/cost) instead of BCC (shorthand for -algo ecc)")
		verbose    = flag.Bool("v", false, "print the selected classifiers")
		planOut    = flag.String("plan", "", "write a construction plan: '-' for text on stdout, else a JSON path")
		timeout    = flag.Duration("timeout", 0, "deadline for the solve; the best solution found so far is returned (exit code 3 when truncated)")
		warmFrom   = flag.String("warm-from", "", "warm-start from a previous plan's JSON ({\"classifiers\":[{\"props\":[...]}]}, as written by -plan or the server); repaired to this instance's budget first")
		fprint     = flag.Bool("fingerprint", false, "print the instance's canonical hash (the bccserver cache key prefix) and exit")
		trace      = flag.Bool("trace", false, "print a per-stage timing breakdown on stderr after the solve")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccsolve", obs.ReadBuild())
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	in, err := dataset.ReadFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
		os.Exit(1)
	}
	if *budget >= 0 {
		in = in.WithBudget(*budget)
	}
	if *fprint {
		fmt.Println(bcc.Fingerprint(in))
		return
	}

	// The legacy mode flags are shorthands for registry names.
	name := *algoName
	switch {
	case *eccMode:
		name = "ecc"
	case *gmc3Target > 0:
		name = "gmc3"
	}
	d, ok := algo.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "bccsolve: unknown algorithm %q; supported:\n%s", name, algo.Usage())
		os.Exit(2)
	}
	if d.NeedsTarget && !(*gmc3Target > 0) {
		fmt.Fprintf(os.Stderr, "bccsolve: algorithm %q needs a positive -gmc3-target\n", name)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var rec *obs.Recorder
	if *trace {
		rec = &obs.Recorder{}
		ctx = obs.WithRecorder(ctx, rec)
	}

	params := algo.Params{Seed: *seed, Target: *gmc3Target}
	if *warmFrom != "" {
		plan, err := readWarmPlan(*warmFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bccsolve: -warm-from: %v\n", err)
			os.Exit(1)
		}
		if !d.WarmStart {
			fmt.Fprintf(os.Stderr, "bccsolve: algorithm %q cannot consume warm starts; -warm-from ignored\n", name)
		} else {
			// Repair never fails: stale or over-budget classifiers are
			// dropped, and an empty survivor set just means a cold solve.
			params.Warm = incr.Repair(in, plan)
			fmt.Fprintf(os.Stderr, "warm-from: %d of %d classifiers survived repair\n", len(params.Warm), len(plan))
		}
	}

	out, err := d.Run(ctx, in, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
		os.Exit(1)
	}
	switch {
	case out.Ratio != nil || name == "ecc":
		ratio := math.Inf(1)
		if out.Ratio != nil {
			ratio = *out.Ratio
		}
		fmt.Printf("ECC: ratio=%.4f utility=%.2f cost=%.2f time=%v\n",
			ratio, out.Utility, out.Cost, out.Duration)
	case out.Achieved != nil:
		fmt.Printf("GMC3: cost=%.2f utility=%.2f target=%.2f achieved=%v time=%v\n",
			out.Cost, out.Utility, *gmc3Target, *out.Achieved, out.Duration)
	default:
		fmt.Printf("%s: utility=%.2f cost=%.2f budget=%.2f covered=%d/%d time=%v\n",
			name, out.Utility, out.Cost, in.Budget(), out.Covered, in.NumQueries(), out.Duration)
	}
	sol := out.Solution

	if *trace {
		if err := rec.WriteTable(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
		}
	}

	if *verbose && sol != nil {
		u := in.Universe()
		for _, c := range sol.Classifiers() {
			fmt.Printf("  %-40s cost=%.2f\n", u.Format(c.Props), c.Cost)
		}
	}

	if *planOut != "" && sol != nil {
		plan := report.Build(sol, 10)
		switch *planOut {
		case "-":
			if err := plan.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
		default:
			f, err := os.Create(*planOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := plan.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if out.Status != bcc.Complete {
		fmt.Printf("status=%s\n", out.Status)
		os.Exit(3)
	}
}

// readWarmPlan extracts the classifier property lists from a plan JSON
// file. The shape it reads ({"classifiers":[{"props":[...]}]}) is
// shared by bccsolve -plan output, the server's solve responses, and
// published pipeline plans, so any of them can seed a local re-solve.
func readWarmPlan(path string) ([][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Classifiers []struct {
			Props []string `json:"props"`
		} `json:"classifiers"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if len(doc.Classifiers) == 0 {
		return nil, fmt.Errorf("%s has no classifiers to warm-start from", path)
	}
	plan := make([][]string, len(doc.Classifiers))
	for i, c := range doc.Classifiers {
		plan[i] = c.Props
	}
	return plan, nil
}
