// Command bccsolve solves a BCC instance stored as JSON (see
// internal/dataset.FileFormat) and prints the selected classifiers with
// their utility/cost accounting.
//
// Usage:
//
//	bccsolve -in instance.json [-algo abcc|rand|ig1|ig2|brute] [-budget B]
//	bccsolve -in instance.json -gmc3-target T
//	bccsolve -in instance.json -ecc
//	bccsolve -in instance.json -plan plan.json   # machine-readable plan
//	bccsolve -in instance.json -plan -           # human-readable plan
//	bccsolve -in instance.json -trace            # per-stage timing on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	bcc "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		inPath     = flag.String("in", "", "path to the JSON instance (required)")
		algo       = flag.String("algo", "abcc", "BCC algorithm: abcc, rand, ig1, ig2, brute")
		budget     = flag.Float64("budget", -1, "override the instance's budget")
		seed       = flag.Int64("seed", 1, "random seed")
		gmc3Target = flag.Float64("gmc3-target", 0, "solve GMC3 for this utility target instead of BCC")
		eccMode    = flag.Bool("ecc", false, "solve ECC (max utility/cost) instead of BCC")
		verbose    = flag.Bool("v", false, "print the selected classifiers")
		planOut    = flag.String("plan", "", "write a construction plan: '-' for text on stdout, else a JSON path")
		timeout    = flag.Duration("timeout", 0, "deadline for the solve; the best solution found so far is returned (exit code 3 when truncated)")
		fprint     = flag.Bool("fingerprint", false, "print the instance's canonical hash (the bccserver cache key prefix) and exit")
		trace      = flag.Bool("trace", false, "print a per-stage timing breakdown on stderr after the solve")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccsolve", obs.ReadBuild())
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	in, err := dataset.ReadFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
		os.Exit(1)
	}
	if *budget >= 0 {
		in = in.WithBudget(*budget)
	}
	if *fprint {
		fmt.Println(bcc.Fingerprint(in))
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var rec *obs.Recorder
	if *trace {
		rec = &obs.Recorder{}
		ctx = obs.WithRecorder(ctx, rec)
	}
	status := bcc.Complete

	var sol *bcc.Solution
	switch {
	case *eccMode:
		res := bcc.SolveECCCtx(ctx, in)
		fmt.Printf("ECC: ratio=%.4f utility=%.2f cost=%.2f time=%v\n",
			res.Ratio, res.Utility, res.Cost, res.Duration)
		sol = res.Solution
		status = res.Status
	case *gmc3Target > 0:
		res := bcc.SolveGMC3Ctx(ctx, in, *gmc3Target, bcc.GMC3Options{Seed: *seed})
		fmt.Printf("GMC3: cost=%.2f utility=%.2f target=%.2f achieved=%v time=%v\n",
			res.Cost, res.Utility, *gmc3Target, res.Achieved, res.Duration)
		sol = res.Solution
		status = res.Status
	default:
		var res bcc.Result
		switch *algo {
		case "abcc":
			res = bcc.SolveCtx(ctx, in, bcc.Options{Seed: *seed})
			status = res.Status
		case "rand":
			res = bcc.SolveRand(in, *seed)
		case "ig1":
			res = bcc.SolveIG1(in)
		case "ig2":
			res = bcc.SolveIG2(in)
		case "brute":
			var err error
			res, err = bcc.BruteForce(in)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "bccsolve: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		fmt.Printf("%s: utility=%.2f cost=%.2f budget=%.2f covered=%d/%d time=%v\n",
			*algo, res.Utility, res.Cost, in.Budget(), res.Covered, in.NumQueries(), res.Duration)
		sol = res.Solution
	}

	if *trace {
		if err := rec.WriteTable(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
		}
	}

	if *verbose && sol != nil {
		u := in.Universe()
		for _, c := range sol.Classifiers() {
			fmt.Printf("  %-40s cost=%.2f\n", u.Format(c.Props), c.Cost)
		}
	}

	if *planOut != "" && sol != nil {
		plan := report.Build(sol, 10)
		switch *planOut {
		case "-":
			if err := plan.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
		default:
			f, err := os.Create(*planOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := plan.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "bccsolve: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if status != bcc.Complete {
		fmt.Printf("status=%s\n", status)
		os.Exit(3)
	}
}
