package main

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func TestGenerateInstance(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dataset", "private-subset", "-budget", "30", "-seed", "3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	in, err := dataset.Read(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("output is not a readable instance: %v", err)
	}
	if in.Budget() != 30 {
		t.Fatalf("budget = %v, want 30", in.Budget())
	}
}

// -eval-suite must emit the exact golden eval grid: same artifact as
// `bcceval -update-golden`, produced from the generator side.
func TestEvalSuiteMatchesEmbeddedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating the eval suite pins best-known via every solver")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-eval-suite"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	suite, err := eval.ReadSuite(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("output is not a readable suite: %v", err)
	}
	golden, err := eval.DefaultSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(golden) {
		t.Fatalf("regenerated %d datasets, embedded golden has %d", len(suite), len(golden))
	}
	var regen, embedded bytes.Buffer
	if err := eval.WriteSuite(&embedded, golden); err != nil {
		t.Fatal(err)
	}
	if err := eval.WriteSuite(&regen, suite); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regen.Bytes(), embedded.Bytes()) {
		t.Fatal("bccgen -eval-suite output drifted from the embedded golden suite; " +
			"regenerate with `go run ./cmd/bcceval -update-golden` if deliberate")
	}
}

func TestUnknownDataset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dataset", "no-such"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown dataset accepted")
	}
}
