// Command bccgen generates BCC evaluation workloads (the paper's BestBuy,
// Private and Synthetic datasets) as JSON instances for bccsolve.
//
// Usage:
//
//	bccgen -dataset bb|private|synthetic [-n 10000] [-budget 5000] [-seed 1] -out instance.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/obs"
)

func main() {
	var (
		ds      = flag.String("dataset", "synthetic", "dataset: bb, private, synthetic, private-subset")
		n       = flag.Int("n", 10000, "number of queries (synthetic only)")
		budget  = flag.Float64("budget", 5000, "budget to embed in the instance")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (default stdout)")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccgen", obs.ReadBuild())
		return
	}

	var in *model.Instance
	switch *ds {
	case "bb", "bestbuy":
		in = dataset.BestBuy(*seed, *budget)
	case "private", "p":
		in = dataset.Private(*seed, *budget)
	case "private-subset":
		in = dataset.PrivateSubset(*seed, *budget, 22)
	case "synthetic", "s":
		in = dataset.Synthetic(*seed, *n, *budget)
	default:
		fmt.Fprintf(os.Stderr, "bccgen: unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bccgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.Write(w, in); err != nil {
		fmt.Fprintf(os.Stderr, "bccgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bccgen: budget %.0f\n%s\n", in.Budget(), dataset.Describe(in))
}
