// Command bccgen generates BCC evaluation workloads (the paper's BestBuy,
// Private and Synthetic datasets) as JSON instances for bccsolve.
//
// Usage:
//
//	bccgen -dataset bb|private|synthetic [-n 10000] [-budget 5000] [-seed 1] -out instance.json
//	bccgen -eval-suite -out suite.jsonl
//
// With -eval-suite, bccgen ignores the single-instance flags and instead
// regenerates the golden evaluation grid (internal/eval.Suite) from its
// named seeds, pinning best-known utilities — the same artifact
// `bcceval -update-golden` writes, produced from the generator side.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bccgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ds        = fs.String("dataset", "synthetic", "dataset: bb, private, synthetic, private-subset")
		n         = fs.Int("n", 10000, "number of queries (synthetic only)")
		budget    = fs.Float64("budget", 5000, "budget to embed in the instance")
		seed      = fs.Int64("seed", 1, "generator seed")
		out       = fs.String("out", "", "output path (default stdout)")
		evalSuite = fs.Bool("eval-suite", false, "regenerate the golden eval dataset grid (internal/eval) as JSONL")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "bccgen", obs.ReadBuild())
		return 0
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "bccgen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	if *evalSuite {
		suite, err := eval.BuildSuite(context.Background())
		if err != nil {
			fmt.Fprintf(stderr, "bccgen: %v\n", err)
			return 1
		}
		if err := eval.WriteSuite(w, suite); err != nil {
			fmt.Fprintf(stderr, "bccgen: %v\n", err)
			return 1
		}
		for _, d := range suite {
			fmt.Fprintf(stderr, "bccgen: %-20s %4d queries %3d classifiers budget %.0f best %.4f (%s)\n",
				d.Name, d.Queries, d.Classifiers, d.Budget, d.BestKnown, d.Method)
		}
		return 0
	}

	var in *model.Instance
	switch *ds {
	case "bb", "bestbuy":
		in = dataset.BestBuy(*seed, *budget)
	case "private", "p":
		in = dataset.Private(*seed, *budget)
	case "private-subset":
		in = dataset.PrivateSubset(*seed, *budget, 22)
	case "synthetic", "s":
		in = dataset.Synthetic(*seed, *n, *budget)
	default:
		fmt.Fprintf(stderr, "bccgen: unknown dataset %q\n", *ds)
		return 2
	}

	if err := dataset.Write(w, in); err != nil {
		fmt.Fprintf(stderr, "bccgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "bccgen: budget %.0f\n%s\n", in.Budget(), dataset.Describe(in))
	return 0
}
