// Command bccbench regenerates the tables and figures of the paper's
// experimental study (Section 6).
//
// Usage:
//
//	bccbench              # all experiments, Small preset
//	bccbench -fig 3b      # one experiment
//	bccbench -full        # paper-scale dimensions (long-running)
//	bccbench -seed 7      # different workload seeds
//	bccbench -bench-json BENCH_PR10.json  # machine-readable ns/op + stage splits
//
// The -bench-json report benchmarks every servable algorithm in the
// solver registry (internal/algo) and adds a utility-vs-time Pareto
// sweep of the fast tiers against A^BCC; run bccbench -h for the
// generated algorithm list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/algo"
	"repro/internal/exper"
	"repro/internal/obs"
)

func main() {
	var (
		fig       = flag.String("fig", "", "experiment id (3a..3f, 4a..4f, insights); empty = all")
		full      = flag.Bool("full", false, "paper-scale dimensions (long-running)")
		seed      = flag.Int64("seed", 1, "workload seed")
		timeout   = flag.Duration("timeout", 0, "overall deadline; completed rows are still printed (exit code 3 when truncated)")
		benchJSON = flag.String("bench-json", "", "write a versioned JSON benchmark report ('-' for stdout) instead of running experiments; covers every servable registry algorithm:\n"+algo.Usage())
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("bccbench", obs.ReadBuild())
		return
	}

	scale := exper.Small
	if *full {
		scale = exper.Full
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(ctx, *benchJSON, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	if *fig != "" {
		run, ok := exper.ByName(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "bccbench: unknown experiment %q\n", *fig)
			os.Exit(2)
		}
		fmt.Print(run(ctx, scale, *seed).Format())
	} else {
		// Run and print one experiment at a time so progress is visible.
		for _, id := range exper.Order() {
			run, _ := exper.ByName(id)
			fmt.Print(run(ctx, scale, *seed).Format())
			fmt.Println()
			if ctx.Err() != nil {
				break
			}
		}
	}
	fmt.Fprintf(os.Stderr, "bccbench: done in %v\n", time.Since(start).Round(time.Millisecond))
	if ctx.Err() != nil {
		fmt.Println("status=deadline")
		os.Exit(3)
	}
}

// writeBenchJSON runs the machine-readable benchmark suite and writes the
// report to path ('-' for stdout).
func writeBenchJSON(ctx context.Context, path string, seed int64) error {
	start := time.Now()
	rep := exper.BenchJSON(ctx, seed)
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bccbench: bench-json (%d algorithms, schema %s) in %v\n",
		len(rep.Algorithms), rep.Schema, time.Since(start).Round(time.Millisecond))
	return nil
}
