# Convenience targets for the BCC reproduction.

GO ?= go

.PHONY: build test race bench figures figures-full cover fmt vet clean ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every benchmark, including one run of each paper figure.
bench:
	$(GO) test -bench=. -benchmem -timeout=60m ./...

## figures: print the reproduced tables for every figure (Small preset).
figures:
	$(GO) run ./cmd/bccbench

## figures-full: paper-scale dimensions; expect hours.
figures-full:
	$(GO) run ./cmd/bccbench -full

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

## ci: what .github/workflows/ci.yml runs — build, tests, vet, and the
## race detector over the concurrent/guarded packages.
ci:
	$(GO) build ./...
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/qk/ ./internal/core/ ./internal/cover/

clean:
	rm -f test_output.txt bench_output.txt
