# Convenience targets for the BCC reproduction.

GO ?= go

.PHONY: build test race bench figures figures-full cover fmt vet clean ci serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every benchmark, including one run of each paper figure.
bench:
	$(GO) test -bench=. -benchmem -timeout=60m ./...

## figures: print the reproduced tables for every figure (Small preset).
figures:
	$(GO) run ./cmd/bccbench

## figures-full: paper-scale dimensions; expect hours.
figures-full:
	$(GO) run ./cmd/bccbench -full

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

## ci: what .github/workflows/ci.yml runs — build (including the server
## binary), tests, vet, and the race detector over the
## concurrent/guarded packages and the serving stack.
ci:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/bccserver
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/qk/ ./internal/core/ ./internal/cover/ ./internal/server/ ./internal/solvecache/

## serve: run a local solving server, cache pre-warmed with the
## quickstart example instance (see README "Serving").
serve:
	$(GO) run ./cmd/bccserver -addr localhost:8080 -warm examples/instances/quickstart.json

clean:
	rm -f test_output.txt bench_output.txt
