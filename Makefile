# Convenience targets for the BCC reproduction.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json figures figures-full cover fmt vet clean ci serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every benchmark, including one run of each paper figure.
bench:
	$(GO) test -bench=. -benchmem -timeout=60m ./...

## bench-smoke: run every benchmark exactly once (no unit tests) so CI
## notices when a benchmark rots. Takes a few minutes on a laptop.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -timeout=30m ./...

## bench-json: regenerate BENCH_PR3.json, the versioned machine-readable
## benchmark report (ns/op, allocs, per-stage time splits per algorithm).
bench-json:
	$(GO) run ./cmd/bccbench -bench-json BENCH_PR3.json

## figures: print the reproduced tables for every figure (Small preset).
figures:
	$(GO) run ./cmd/bccbench

## figures-full: paper-scale dimensions; expect hours.
figures-full:
	$(GO) run ./cmd/bccbench -full

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

## ci: what .github/workflows/ci.yml runs — build (including the server
## binary), tests, vet, the race detector over the concurrent/guarded
## packages and the serving/observability stack, and a one-iteration
## benchmark smoke.
ci:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/bccserver
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/qk/ ./internal/core/ ./internal/cover/ ./internal/server/ ./internal/solvecache/ ./internal/obs/
	$(MAKE) bench-smoke

## serve: run a local solving server, cache pre-warmed with the
## quickstart example instance (see README "Serving").
serve:
	$(GO) run ./cmd/bccserver -addr localhost:8080 -warm examples/instances/quickstart.json

clean:
	rm -f test_output.txt bench_output.txt
