# Convenience targets for the BCC reproduction.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json figures figures-full cover fmt vet clean ci serve soak-smoke fuzz-smoke cluster-smoke jobs-smoke pipeline-smoke eval-smoke load chaos

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

## bench: every benchmark, including one run of each paper figure.
bench:
	$(GO) test -bench=. -benchmem -timeout=60m ./...

## bench-smoke: run every benchmark exactly once (no unit tests) so CI
## notices when a benchmark rots. Takes a few minutes on a laptop.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -timeout=30m ./...

## bench-json: regenerate BENCH_PR10.json, the versioned machine-readable
## benchmark report (ns/op, allocs, per-stage time splits for every
## servable registry algorithm, the utility-vs-time Pareto sweep, and the
## warm-vs-cold incremental re-solve drift sweep at 1%/5%/20% churn).
bench-json:
	$(GO) run ./cmd/bccbench -bench-json BENCH_PR10.json

## figures: print the reproduced tables for every figure (Small preset).
figures:
	$(GO) run ./cmd/bccbench

## figures-full: paper-scale dimensions; expect hours.
figures-full:
	$(GO) run ./cmd/bccbench -full

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

## soak-smoke: the CI-grade chaos soak — 10 seconds of concurrent
## retrying clients against a server with panic faults armed at the
## admission/dequeue/cache layers, under the race detector.
soak-smoke:
	$(GO) test -race -run TestChaosSoak -v ./internal/server/ -soak 10s

## fuzz-smoke: a short native-fuzz pass over the instance decode paths
## (FuzzRead and the server-facing FuzzFromFormat) and the durable
## record codecs (bccjob/1 and the bccwal/1 query-log WAL framing).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFromFormat -fuzztime 10s ./internal/dataset/
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime 10s ./internal/dataset/
	$(GO) test -run '^$$' -fuzz FuzzJobRecord -fuzztime 10s ./internal/jobs/
	$(GO) test -run '^$$' -fuzz FuzzWALRecord -fuzztime 10s ./internal/wal/

## cluster-smoke: the scale-out acceptance scenario under the race
## detector — a bccgate gateway over two in-process backends, checking
## fingerprint affinity (re-sent instances hit the warm cache on the
## same backend), kill-and-reroute, ordered scatter-gather, plus a
## 10-second load soak through the degraded fleet.
cluster-smoke:
	$(GO) test -race -run TestClusterSmoke -v ./internal/cluster/ -cluster.soak 10s

## jobs-smoke: the durable-jobs acceptance pair, both under the race
## detector — a 10-second chaos run over internal/jobs with panic
## faults armed at every jobs.* point (append/checkpoint/resume), and
## the kill-and-resume soak: real bccserver processes SIGKILLed
## mid-job (one GMC3 job, one evolutionary job), restarted on the same
## -jobs-dir, and required to finish the same job from its checkpoint
## (resumed counter > 0).
jobs-smoke:
	$(GO) test -race -run TestJobsChaosSoak -v ./internal/jobs/ -jobs.chaos 10s
	$(GO) test -race -run '^TestKillResume$$' -v -timeout 15m ./cmd/bccserver/ -jobs.soak

## pipeline-smoke: the continuous-pipeline acceptance soak under the
## race detector — a real bccserver SIGKILLed with acknowledged
## query-log records still unconsumed (ideally mid-window-solve),
## restarted on the same -wal-dir, and required to account for every
## acknowledged record exactly once (zero loss, no double-solved
## window) and re-publish a plan with the staleness gauge exposed.
pipeline-smoke:
	$(GO) test -race -run TestPipelineKillResume -v -timeout 15m ./cmd/bccserver/ -pipeline.soak

## eval-smoke: the solution-quality gate — every registered algorithm
## must clear its pinned utility-ratio floor on the golden eval suite
## (internal/eval/testdata/suite.jsonl) at the pinned seed. Exits
## non-zero on any regression below a floor.
eval-smoke:
	$(GO) run ./cmd/bcceval

## ci: what .github/workflows/ci.yml runs — build (including the server,
## gateway, load-driver and eval binaries), tests, vet, the race
## detector over the concurrent/guarded packages and the
## serving/resilience stack, the chaos soak, the cluster smoke, the
## durable-jobs smoke, the continuous-pipeline smoke, a fuzz smoke, the
## solution-quality gate, and a one-iteration benchmark smoke.
ci:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/bccserver
	$(GO) build -o /dev/null ./cmd/bccgate
	$(GO) build -o /dev/null ./cmd/bccload
	$(GO) build -o /dev/null ./cmd/bcceval
	$(GO) test -shuffle=on ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/qk/ ./internal/core/ ./internal/cover/ ./internal/server/ ./internal/solvecache/ ./internal/obs/ ./internal/resilience/ ./internal/client/ ./internal/loadgen/ ./internal/cluster/ ./internal/jobs/ ./internal/durable/ ./internal/wal/ ./internal/pipeline/ ./internal/algo/ ./internal/evo/ ./internal/submod/ ./internal/eval/ ./internal/incr/
	$(MAKE) soak-smoke
	$(MAKE) cluster-smoke
	$(MAKE) jobs-smoke
	$(MAKE) pipeline-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) eval-smoke
	$(MAKE) bench-smoke

## serve: run a local solving server, cache pre-warmed with the
## quickstart example instance and snapshotting its cache across
## restarts (see README "Serving" and "Surviving failures").
serve:
	$(GO) run ./cmd/bccserver -addr localhost:8080 -warm examples/instances/quickstart.json -snapshot bcc-cache.bccsnap

## load: drive 10 seconds of load at a server started with `make serve`.
load:
	$(GO) run ./cmd/bccload -addr http://localhost:8080 -duration 10s

## chaos: the self-contained chaos demo — in-process server, armed
## faults, resilient client; no external server needed.
chaos:
	$(GO) run ./cmd/bccload -chaos -duration 10s

clean:
	rm -f test_output.txt bench_output.txt
