package bcc

import (
	"context"
	"testing"
	"time"

	"repro/internal/guard"
)

func ctxTestInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder()
	b.AddQuery(8, "x", "y", "z")
	b.AddQuery(4, "x", "z")
	b.AddQuery(2, "x", "y")
	b.AddQuery(1, "y")
	b.SetCost(5, "x")
	b.SetCost(3, "y")
	b.SetCost(3, "z")
	b.SetCost(4, "x", "z")
	in, err := b.Instance(8)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

// Every context-aware façade entry point must honor an already-expired
// deadline: return promptly with DeadlineExceeded and a non-nil (possibly
// empty) solution.
func TestCtxEntryPointsHonorExpiredDeadline(t *testing.T) {
	in := ctxTestInstance(t)
	ctx := expiredCtx(t)

	check := func(name string, status Status, sol *Solution) {
		t.Helper()
		if status != DeadlineExceeded {
			t.Errorf("%s: Status = %v, want DeadlineExceeded", name, status)
		}
		if sol == nil {
			t.Errorf("%s: nil Solution on expired deadline", name)
		}
	}
	r1 := SolveCtx(ctx, in, Options{})
	check("SolveCtx", r1.Status, r1.Solution)
	r2 := SolveGMC3Ctx(ctx, in, 5, GMC3Options{})
	check("SolveGMC3Ctx", r2.Status, r2.Solution)
	r3 := SolveECCCtx(ctx, in)
	check("SolveECCCtx", r3.Status, r3.Solution)
	r4 := SolvePartialCtx(ctx, in, GainLinear)
	check("SolvePartialCtx", r4.Status, r4.Solution)
	r5 := SolveOverlapCtx(ctx, in, OverlapCostModel{})
	check("SolveOverlapCtx", r5.Status, r5.Solution)
}

func TestCtxEntryPointsCompleteWithBackground(t *testing.T) {
	in := ctxTestInstance(t)
	ctx := context.Background()

	if r := SolveCtx(ctx, in, Options{}); r.Status != Complete || r.Err != nil {
		t.Errorf("SolveCtx: status=%v err=%v", r.Status, r.Err)
	}
	if r := SolveGMC3Ctx(ctx, in, 5, GMC3Options{}); r.Status != Complete || r.Err != nil {
		t.Errorf("SolveGMC3Ctx: status=%v err=%v", r.Status, r.Err)
	}
	if r := SolveECCCtx(ctx, in); r.Status != Complete || r.Err != nil {
		t.Errorf("SolveECCCtx: status=%v err=%v", r.Status, r.Err)
	}
	if r := SolvePartialCtx(ctx, in, GainLinear); r.Status != Complete || r.Err != nil {
		t.Errorf("SolvePartialCtx: status=%v err=%v", r.Status, r.Err)
	}
	if r := SolveOverlapCtx(ctx, in, OverlapCostModel{}); r.Status != Complete || r.Err != nil {
		t.Errorf("SolveOverlapCtx: status=%v err=%v", r.Status, r.Err)
	}
}

// Armed panics inside the extension solvers must surface as Recovered
// results with a usable solution, never crash the caller. (The A^BCC-path
// points are covered in internal/core; dks.solve in internal/dks.)
func TestExtensionSolversContainArmedPanics(t *testing.T) {
	in := ctxTestInstance(t)
	ctx := context.Background()

	check := func(name string, status Status, err error, sol *Solution) {
		t.Helper()
		if status != Recovered {
			t.Errorf("%s: Status = %v, want Recovered", name, status)
		}
		if err == nil {
			t.Errorf("%s: Err = nil on a recovered run", name)
		}
		if sol == nil {
			t.Errorf("%s: nil Solution on a recovered run", name)
		}
	}

	guard.Arm("gmc3.residual", guard.PanicFault("boom"))
	r1 := SolveGMC3Ctx(ctx, in, 5, GMC3Options{})
	guard.DisarmAll()
	check("SolveGMC3Ctx", r1.Status, r1.Err, r1.Solution)

	guard.Arm("ecc.solve", guard.PanicFault("boom"))
	r2 := SolveECCCtx(ctx, in)
	guard.DisarmAll()
	check("SolveECCCtx", r2.Status, r2.Err, r2.Solution)

	guard.Arm("partial.solve", guard.PanicFault("boom"))
	r3 := SolvePartialCtx(ctx, in, GainLinear)
	guard.DisarmAll()
	check("SolvePartialCtx", r3.Status, r3.Err, r3.Solution)

	guard.Arm("overlap.round", guard.PanicFault("boom"))
	r4 := SolveOverlapCtx(ctx, in, OverlapCostModel{Label: func(PropID) float64 { return 1 }})
	guard.DisarmAll()
	check("SolveOverlapCtx", r4.Status, r4.Err, r4.Solution)
}

func TestSolveCtxMatchesSolve(t *testing.T) {
	in := ctxTestInstance(t)
	plain := Solve(in, Options{Seed: 1})
	ctxRes := SolveCtx(context.Background(), in, Options{Seed: 1})
	if plain.Utility != ctxRes.Utility || plain.Cost != ctxRes.Cost {
		t.Errorf("SolveCtx(Background) diverged from Solve: utility %v/%v cost %v/%v",
			ctxRes.Utility, plain.Utility, ctxRes.Cost, plain.Cost)
	}
}
