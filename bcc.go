// Package bcc is a Go implementation of "Classifier Construction Under
// Budget Constraints" (Gershtein, Milo, Novgorodov, Razmadze — SIGMOD
// 2022): given a search-query workload with utilities, classifier
// construction costs and a budget, select the classifier set maximizing
// the total utility of the queries it can answer.
//
// The package is a façade over the internal implementation:
//
//   - Build instances with NewBuilder (or load them with ReadInstance, or
//     generate the paper's evaluation workloads with BestBuy / Private /
//     Synthetic).
//   - Solve runs A^BCC, the paper's algorithm (Algorithm 1): classifier
//     pruning, a knapsack solver for the BCC(1) subproblem, a Quadratic
//     Knapsack solver built on Heaviest-k-Subgraph heuristics for the
//     BCC(2) subproblem, MC3 local search and residual iteration.
//   - SolveRand / SolveIG1 / SolveIG2 are the paper's baselines, and
//     BruteForce the exact reference for small instances.
//   - SolveGMC3 answers "cheapest classifier set reaching utility T"
//     (Section 5, Definition 5.1) and SolveECC "best utility per cost"
//     (Definition 5.2).
//
// A minimal use:
//
//	b := bcc.NewBuilder()
//	b.AddQuery(8, "wooden", "table")
//	b.AddQuery(5, "running", "shoes")
//	b.SetCost(3, "wooden")
//	// ... remaining costs ...
//	in, err := b.Instance(10) // budget 10
//	res := bcc.Solve(in, bcc.Options{})
//	fmt.Println(res.Utility, res.Solution.Classifiers())
package bcc

import (
	"context"
	"io"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ecc"
	"repro/internal/evo"
	"repro/internal/gmc3"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/overlap"
	"repro/internal/partial"
	"repro/internal/propset"
	"repro/internal/querylog"
	"repro/internal/submod"
)

// Core model types.
type (
	// Instance is an immutable BCC problem ⟨Q, U, C, B⟩.
	Instance = model.Instance
	// Builder accumulates queries and costs into an Instance.
	Builder = model.Builder
	// Solution is a mutable selected-classifier set with utility/cost
	// accounting under the paper's exact-cover semantics.
	Solution = model.Solution
	// Query is a property conjunction with a utility.
	Query = model.Query
	// Classifier is a property conjunction with a construction cost.
	Classifier = model.Classifier
	// PropSet is a canonical property set.
	PropSet = propset.Set
	// PropID identifies one interned property.
	PropID = propset.ID
	// Universe interns property names.
	Universe = propset.Universe
)

// Solver types.
type (
	// Options tunes the A^BCC solver.
	Options = core.Options
	// Result reports a BCC solver run.
	Result = core.Result
	// GMC3Options tunes the A^GMC3 solver.
	GMC3Options = gmc3.Options
	// GMC3Result reports a GMC3 run.
	GMC3Result = gmc3.Result
	// ECCResult reports an ECC run.
	ECCResult = ecc.Result
	// EvoOptions tunes the anytime evolutionary solver.
	EvoOptions = evo.Options
	// EvoResult reports an evolutionary run.
	EvoResult = evo.Result
	// SubmodOptions tunes the budgeted submodular greedy.
	SubmodOptions = submod.Options
	// SubmodResult reports a submodular-greedy run.
	SubmodResult = submod.Result
)

// NewBuilder returns a Builder with a fresh property universe.
func NewBuilder() *Builder { return model.NewBuilder() }

// NewSolution returns an empty solution for the instance.
func NewSolution(in *Instance) *Solution { return model.NewSolution(in) }

// Status reports how a context-aware solver run ended.
type Status = guard.Status

// Statuses of a context-aware solver run. A non-Complete result still
// holds the best budget-feasible solution found before the run stopped.
const (
	// Complete means the solver ran to its normal end.
	Complete = guard.Complete
	// DeadlineExceeded means the context deadline expired mid-solve.
	DeadlineExceeded = guard.DeadlineExceeded
	// Canceled means the context was canceled mid-solve.
	Canceled = guard.Canceled
	// Recovered means a panic inside the solver was contained and
	// reported via Result.Err instead of crashing the caller.
	Recovered = guard.Recovered
)

// Solve runs the paper's algorithm A^BCC on the instance.
func Solve(in *Instance, opts Options) Result { return core.Solve(in, opts) }

// SolveCtx runs A^BCC under a context. The solver is anytime: on deadline
// expiry or cancellation it returns the best budget-feasible solution
// found so far with Result.Status reporting why it stopped, and a short
// remaining deadline degrades the configuration gracefully (mixed phase
// off, fewer restarts, down to a pure greedy floor) instead of returning
// nothing. Contained panics surface as Status Recovered plus Result.Err.
func SolveCtx(ctx context.Context, in *Instance, opts Options) Result {
	return core.SolveCtx(ctx, in, opts)
}

// SolveRand runs the RAND baseline: uniformly random affordable picks.
func SolveRand(in *Instance, seed int64) Result { return core.SolveRand(in, seed) }

// SolveIG1 runs the IG1 baseline: per-query cheapest-cover greedy.
func SolveIG1(in *Instance) Result { return core.SolveIG1(in) }

// SolveIG2 runs the IG2 baseline: per-classifier utility-density greedy.
func SolveIG2(in *Instance) Result { return core.SolveIG2(in) }

// BruteForce solves small instances exactly (≤ 26 candidate classifiers).
func BruteForce(in *Instance) (Result, error) { return core.BruteForce(in) }

// SolveGMC3 finds a low-cost classifier set reaching the target utility
// (Generalized MC3; the instance's budget field is ignored).
func SolveGMC3(in *Instance, target float64, opts GMC3Options) GMC3Result {
	return gmc3.Solve(in, target, opts)
}

// SolveGMC3Ctx is SolveGMC3 under a context; see SolveCtx for the anytime
// semantics.
func SolveGMC3Ctx(ctx context.Context, in *Instance, target float64, opts GMC3Options) GMC3Result {
	return gmc3.SolveCtx(ctx, in, target, opts)
}

// SolveECC finds the classifier set with the best utility-to-cost ratio
// (Effective Classifier Construction; the budget field is ignored).
func SolveECC(in *Instance) ECCResult { return ecc.Solve(in) }

// SolveECCCtx is SolveECC under a context; see SolveCtx for the anytime
// semantics.
func SolveECCCtx(ctx context.Context, in *Instance) ECCResult {
	return ecc.SolveCtx(ctx, in)
}

// SolveEvo runs the anytime evolutionary solver: a population of
// budget-feasible classifier subsets under coverage-aware crossover,
// utility-per-cost mutation and elitism. Deterministic for a fixed
// EvoOptions.Seed.
func SolveEvo(in *Instance, opts EvoOptions) EvoResult { return evo.Solve(in, opts) }

// SolveEvoCtx is SolveEvo under a context; see SolveCtx for the anytime
// semantics. The returned incumbent only improves across generations
// and never trails the IG1 baseline once the floor individual is
// evaluated.
func SolveEvoCtx(ctx context.Context, in *Instance, opts EvoOptions) EvoResult {
	return evo.SolveCtx(ctx, in, opts)
}

// SolveSubmod runs the budgeted submodular lazy greedy: cost-scaled and
// unscaled lazy-evaluation passes over marginal coverage-utility gains,
// keeping the better result. The fast approximate tier the server sheds
// into under load.
func SolveSubmod(in *Instance, opts SubmodOptions) SubmodResult { return submod.Solve(in, opts) }

// SolveSubmodCtx is SolveSubmod under a context; see SolveCtx for the
// anytime semantics.
func SolveSubmodCtx(ctx context.Context, in *Instance, opts SubmodOptions) SubmodResult {
	return submod.SolveCtx(ctx, in, opts)
}

// BestBuy generates the simulated BestBuy evaluation workload (≈1000
// electronics queries, uniform costs, frequency utilities).
func BestBuy(seed int64, budget float64) *Instance { return dataset.BestBuy(seed, budget) }

// Private generates the simulated private e-commerce workload (≈5000
// queries, analyst-style costs and utilities, category structure).
func Private(seed int64, budget float64) *Instance { return dataset.Private(seed, budget) }

// Synthetic generates the paper's synthetic workload: nQueries queries of
// length i with probability 2^-i over a 10K-property pool, uniform integer
// costs [0,50] and utilities [1,50].
func Synthetic(seed int64, nQueries int, budget float64) *Instance {
	return dataset.Synthetic(seed, nQueries, budget)
}

// Fingerprint returns the canonical hash identifying the instance's
// problem content ⟨Q,U,C,B⟩: stable across query/property/cost ordering,
// different whenever any utility, cost, or the budget changes. It is the
// cache-key prefix of the solving service (internal/solvecache) and the
// value printed by bccsolve -fingerprint.
func Fingerprint(in *Instance) string { return in.Fingerprint() }

// ReadInstance parses a JSON instance (see internal/dataset.FileFormat).
func ReadInstance(r io.Reader) (*Instance, error) { return dataset.Read(r) }

// WriteInstance serializes an instance to JSON.
func WriteInstance(w io.Writer, in *Instance) error { return dataset.Write(w, in) }

// Extension: partial-cover utility (the paper's §8 future work).
type (
	// Gain maps a query's covered-conjunct fraction to earned utility.
	Gain = partial.Gain
	// PartialResult reports a partial-cover solver run.
	PartialResult = partial.Result
)

// Gain curves for SolvePartial. GainThreshold reproduces base BCC.
var (
	GainThreshold Gain = partial.Threshold
	GainLinear    Gain = partial.Linear
	GainSqrt      Gain = partial.Sqrt
	GainAllButOne Gain = partial.AllButOne
)

// SolvePartial maximizes partial-cover utility within the budget: a query
// with k of its |q| conjuncts testable earns U(q)·g(k/|q|).
func SolvePartial(in *Instance, g Gain) PartialResult { return partial.Solve(in, g) }

// SolvePartialCtx is SolvePartial under a context; see SolveCtx for the
// anytime semantics.
func SolvePartialCtx(ctx context.Context, in *Instance, g Gain) PartialResult {
	return partial.SolveCtx(ctx, in, g)
}

// Extension: overlapping construction costs (the paper's §8 future work).
type (
	// OverlapCostModel prices classifier sets with shared per-property
	// labeling: C(S) = Σ_{p∈P(S)} Label(p) + Σ_{s∈S} Assembly(s).
	OverlapCostModel = overlap.CostModel
	// OverlapResult reports an overlap-aware solver run.
	OverlapResult = overlap.Result
)

// SolveOverlap maximizes covered utility within the budget under the
// shared-labeling cost model (the instance's own classifier costs are
// ignored).
func SolveOverlap(in *Instance, m OverlapCostModel) OverlapResult {
	return overlap.SolveCoverGreedy(in, m)
}

// SolveOverlapCtx is SolveOverlap under a context; see SolveCtx for the
// anytime semantics.
func SolveOverlapCtx(ctx context.Context, in *Instance, m OverlapCostModel) OverlapResult {
	return overlap.SolveCoverGreedyCtx(ctx, in, m)
}

// Query-log ingestion.
type (
	// LogOptions configures ParseQueryLog.
	LogOptions = querylog.Options
	// LogStats reports what ParseQueryLog kept and dropped.
	LogStats = querylog.Stats
	// LogWindow bounds timestamped ingestion to [From, To).
	LogWindow = querylog.Window
	// TimedLogOptions configures ParseQueryLogTimed.
	TimedLogOptions = querylog.TimedOptions
	// TimedLogStats adds window accounting to LogStats.
	TimedLogStats = querylog.TimedStats
)

// ParseQueryLog reads a "terms<TAB>count" search log into a Builder with
// frequencies as utilities; set costs on the Builder before calling
// Instance.
func ParseQueryLog(r io.Reader, opts LogOptions) (*Builder, LogStats, error) {
	return querylog.Parse(r, opts)
}

// ParseQueryLogTimed reads a timestamped "ts<TAB>terms<TAB>count" search
// log, keeping only events inside opts.Window (lines may be in any time
// order; repeated queries accumulate).
func ParseQueryLogTimed(r io.Reader, opts TimedLogOptions) (*Builder, TimedLogStats, error) {
	return querylog.ParseTimed(r, opts)
}

// Serving: the resilient HTTP client for a bccserver instance.
type (
	// Client calls POST /v1/solve and /v1/solve/batch with retries,
	// Retry-After-aware backoff and a circuit breaker.
	Client = client.Client
	// ClientConfig tunes a Client; only BaseURL is required.
	ClientConfig = client.Config
	// ClientStats is a consistent point-in-time view of a Client.
	ClientStats = client.Stats
	// ClientHTTPError is a non-2xx service answer with retry advice.
	ClientHTTPError = client.HTTPError
	// SolveRequest / SolveResponse are the service wire types; a
	// SolveRequest's Instance field uses the same JSON schema as the
	// instance files read by ReadInstance.
	SolveRequest  = api.SolveRequest
	SolveResponse = api.SolveResponse
	// BatchResponse holds per-item results/errors of a batch call.
	BatchResponse = api.BatchResponse
	// JobRequest / JobStatus / JobProgress / JobList are the wire types
	// of the durable async solve-job endpoints (POST /v1/jobs and
	// friends); Client.SubmitJob / JobStatus / JobResult / AwaitJob /
	// CancelJob speak them.
	JobRequest  = api.JobRequest
	JobStatus   = api.JobStatus
	JobProgress = api.JobProgress
	JobList     = api.JobList
)

// JobTerminal reports whether a job state string is final (completed,
// failed or canceled).
func JobTerminal(state string) bool { return api.JobTerminal(state) }

// NewClient builds a resilient service client.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }
