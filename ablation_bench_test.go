// Ablation benchmarks for the design choices DESIGN.md calls out: each
// switches off (or swaps) one component of A^BCC or its QK substrate and
// reports the utility impact alongside the timing, over a fixed Private
// workload snapshot.
//
//	go test -bench=Ablation -benchmem
package bcc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dks"
	"repro/internal/qk"
	"repro/internal/wgraph"
)

func BenchmarkAblationFullPipeline(b *testing.B) {
	in := dataset.Private(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Solve(in, core.Options{Seed: 1})
		b.ReportMetric(res.Utility, "utility")
	}
}

func BenchmarkAblationNoMC3(b *testing.B) {
	in := dataset.Private(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Solve(in, core.Options{Seed: 1, DisableMC3: true})
		b.ReportMetric(res.Utility, "utility")
	}
}

func BenchmarkAblationNoPruning(b *testing.B) {
	in := dataset.Private(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Solve(in, core.Options{Seed: 1, DisablePruning: true})
		b.ReportMetric(res.Utility, "utility")
	}
}

func BenchmarkAblationNoGreedyFloor(b *testing.B) {
	in := dataset.Private(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Solve(in, core.Options{Seed: 1, DisableGreedyFloor: true})
		b.ReportMetric(res.Utility, "utility")
	}
}

func BenchmarkAblationMixedPhase(b *testing.B) {
	in := dataset.Private(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Solve(in, core.Options{Seed: 1, MixedPhase: true})
		b.ReportMetric(res.Utility, "utility")
	}
}

// QK-level ablations on a shared graph snapshot.

func ablationQKGraph() *wgraph.Graph {
	// Deterministic mid-sized QK instance resembling the BCC(2) graphs the
	// Private workload produces.
	g := wgraph.New(400)
	h := int64(12345)
	next := func(mod int64) int64 {
		h = h*6364136223846793005 + 1442695040888963407
		v := (h >> 33) % mod
		if v < 0 {
			v += mod
		}
		return v
	}
	for v := 0; v < 400; v++ {
		g.SetCost(v, float64(1+next(20)))
	}
	for i := 0; i < 2400; i++ {
		u, v := int(next(400)), int(next(400))
		if u != v {
			g.AddEdgeMerged(u, v, float64(1+next(30)))
		}
	}
	return g
}

func BenchmarkAblationQKHeuristic(b *testing.B) {
	g := ablationQKGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := qk.SolveHeuristic(g, 300, qk.Options{Seed: 1})
		b.ReportMetric(res.Weight, "weight")
	}
}

func BenchmarkAblationQKTheory(b *testing.B) {
	g := ablationQKGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := qk.SolveTheory(g, 300, qk.Options{Seed: 1})
		b.ReportMetric(res.Weight, "weight")
	}
}

func BenchmarkAblationQKGreedy(b *testing.B) {
	g := ablationQKGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := qk.SolveGreedy(g, 300)
		b.ReportMetric(res.Weight, "weight")
	}
}

func BenchmarkAblationDkSNoSpectral(b *testing.B) {
	g := ablationQKGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes := dks.Solve(g, 60, dks.Options{Seed: 1, DisableSpectral: true})
		b.ReportMetric(g.InducedWeightOf(nodes), "weight")
	}
}

func BenchmarkAblationDkSFull(b *testing.B) {
	g := ablationQKGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodes := dks.Solve(g, 60, dks.Options{Seed: 1})
		b.ReportMetric(g.InducedWeightOf(nodes), "weight")
	}
}
