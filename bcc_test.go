package bcc_test

import (
	"bytes"
	"math"
	"testing"

	bcc "repro"
)

// TestQuickstart mirrors the README quickstart end to end through the
// public API.
func TestQuickstart(t *testing.T) {
	b := bcc.NewBuilder()
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(3, "round", "table")
	b.AddQuery(5, "running", "shoes")
	b.SetCost(4, "wooden")
	b.SetCost(2, "table")
	b.SetCost(3, "round")
	b.SetCost(6, "running", "shoes")
	b.SetCost(math.Inf(1), "wooden", "table")
	b.SetCost(5, "round", "table")
	b.SetCost(9, "running")
	b.SetCost(9, "shoes")
	in, err := b.Instance(9)
	if err != nil {
		t.Fatal(err)
	}
	res := bcc.Solve(in, bcc.Options{})
	if res.Cost > 9+1e-9 {
		t.Fatalf("cost %v exceeds budget", res.Cost)
	}
	// Optimal at budget 9: wooden+table+round = 9 covering both table
	// queries (utility 11) vs running shoes (6 → utility 5).
	if res.Utility != 11 {
		t.Fatalf("utility = %v, want 11 (%v)", res.Utility, res.Solution.Classifiers())
	}
	opt, err := bcc.BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Utility != res.Utility {
		t.Fatalf("A^BCC %v != optimal %v", res.Utility, opt.Utility)
	}
}

func TestPublicBaselinesAndComplements(t *testing.T) {
	in := bcc.Synthetic(3, 300, 50)
	abcc := bcc.Solve(in, bcc.Options{Seed: 2})
	for name, r := range map[string]bcc.Result{
		"RAND": bcc.SolveRand(in, 2),
		"IG1":  bcc.SolveIG1(in),
		"IG2":  bcc.SolveIG2(in),
	} {
		if r.Cost > in.Budget()+1e-9 {
			t.Fatalf("%s exceeded budget", name)
		}
		if r.Utility > abcc.Utility+1e-9 {
			t.Errorf("%s (%v) beats A^BCC (%v)", name, r.Utility, abcc.Utility)
		}
	}

	gm := bcc.SolveGMC3(in, in.TotalUtility()*0.3, bcc.GMC3Options{Seed: 2})
	if !gm.Achieved {
		t.Fatal("GMC3 missed an easy target")
	}
	ec := bcc.SolveECC(in)
	if ec.Ratio <= 0 {
		t.Fatalf("ECC ratio = %v", ec.Ratio)
	}
}

func TestPublicDatasetsAndIO(t *testing.T) {
	bb := bcc.BestBuy(1, 100)
	if bb.NumQueries() < 900 {
		t.Fatalf("BestBuy too small: %d", bb.NumQueries())
	}
	p := bcc.Private(1, 2000)
	if p.NumQueries() < 4500 {
		t.Fatalf("Private too small: %d", p.NumQueries())
	}
	var buf bytes.Buffer
	small := bcc.Synthetic(1, 50, 20)
	if err := bcc.WriteInstance(&buf, small); err != nil {
		t.Fatal(err)
	}
	back, err := bcc.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQueries() != small.NumQueries() {
		t.Fatal("round trip lost queries")
	}
}
