// Benchmarks regenerating every figure of the paper's evaluation section
// (one benchmark per figure, Small preset; run cmd/bccbench -full for the
// paper-scale dimensions). Each iteration executes the complete experiment
// and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// both times the harness and prints the reproduced numbers.
package bcc

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/exper"
)

const benchSeed = 1

// lastCell parses the numeric cell at (row = last, col) of the table.
func lastCell(b *testing.B, t exper.Table, col int) float64 {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	v, err := strconv.ParseFloat(t.Rows[len(t.Rows)-1][col], 64)
	if err != nil {
		b.Fatalf("cell not numeric: %v", err)
	}
	return v
}

func BenchmarkFig3aBestBuyUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig3aBestBuy(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "abcc_utility")
	}
}

func BenchmarkFig3bPrivateUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig3bPrivate(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "abcc_utility")
	}
}

func BenchmarkFig3cSyntheticUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig3cSynthetic(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "abcc_utility")
	}
}

func BenchmarkFig3dBruteForceGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig3dBruteGap(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "abcc_over_opt")
	}
}

func BenchmarkFig3ePreprocessingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exper.Fig3ePreprocessingTime(context.Background(), exper.Small, benchSeed)
	}
}

func BenchmarkFig3fPreprocessingUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig3fPreprocessingUtility(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 3), "with_over_without")
	}
}

func BenchmarkFig4aGMC3BestBuy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig4aGMC3BestBuy(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "agmc3_cost")
	}
}

func BenchmarkFig4bGMC3Private(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig4bGMC3Private(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "agmc3_cost")
	}
}

func BenchmarkFig4cGMC3Synthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig4cGMC3Synthetic(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 4), "agmc3_cost")
	}
}

func BenchmarkFig4dGMC3Time(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exper.Fig4dGMC3Time(context.Background(), exper.Small, benchSeed)
	}
}

func BenchmarkFig4eECCPrivate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig4eECCPrivate(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 1), "aecc_ratio")
	}
}

func BenchmarkFig4fECCSynthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.Fig4fECCSynthetic(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 1), "aecc_ratio")
	}
}

func BenchmarkInsightCostNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.InsightCostNoise(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 2), "utility_share_at_cut_budget")
	}
}

func BenchmarkInsightEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exper.InsightEndToEnd(context.Background(), exper.Small, benchSeed)
	}
}

func BenchmarkInsightDiminishingReturns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exper.InsightDiminishingReturns(context.Background(), exper.Small, benchSeed)
		b.ReportMetric(lastCell(b, t, 2), "budget_share_for_75pct")
	}
}
