package querylog

import (
	"strings"
	"testing"

	"repro/internal/propset"
)

func TestParseBasic(t *testing.T) {
	log := strings.Join([]string{
		"wooden table\t10",
		"running shoes\t7",
		"table\t25",
		"# a comment",
		"",
		"wooden table\t5", // accumulates with line 1
	}, "\n")
	b, st, err := Parse(strings.NewReader(log), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 3 {
		t.Fatalf("Kept = %d, want 3", st.Kept)
	}
	if st.Properties != 4 { // wooden, table, running, shoes
		t.Fatalf("Properties = %d, want 4", st.Properties)
	}
	in := b.MustInstance(10)
	found := false
	for _, q := range in.Queries() {
		if in.Universe().Format(q.Props) == "{wooden table}" ||
			in.Universe().Format(q.Props) == "{table wooden}" {
			if q.Utility != 15 {
				t.Fatalf("wooden table utility = %v, want 15", q.Utility)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("wooden table query missing")
	}
}

func TestParseNormalization(t *testing.T) {
	log := "Wooden TABLE!\t3\nwooden, table\t4\n"
	b, st, err := Parse(strings.NewReader(log), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("case/punctuation variants should merge: kept %d", st.Kept)
	}
	in := b.MustInstance(1)
	if in.Queries()[0].Utility != 7 {
		t.Fatalf("merged utility = %v, want 7", in.Queries()[0].Utility)
	}
}

func TestParseDuplicateTermsCollapse(t *testing.T) {
	b, st, err := Parse(strings.NewReader("table table table\t2\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("kept %d", st.Kept)
	}
	in := b.MustInstance(1)
	if in.Queries()[0].Length() != 1 {
		t.Fatalf("duplicate terms must collapse, length %d", in.Queries()[0].Length())
	}
}

func TestParseStopwords(t *testing.T) {
	b, _, err := Parse(strings.NewReader("table for the kitchen\t1\n"),
		Options{Stopwords: []string{"for", "the"}})
	if err != nil {
		t.Fatal(err)
	}
	in := b.MustInstance(1)
	if in.Queries()[0].Length() != 2 { // table, kitchen
		t.Fatalf("stopword removal failed: %v", in.Queries()[0].Props)
	}
}

func TestParseDropsLongAndEmpty(t *testing.T) {
	log := "a b c d e f g h\t1\n...\t5\nok\t1\n"
	_, st, err := Parse(strings.NewReader(log), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedLong != 1 {
		t.Fatalf("DroppedLong = %d, want 1", st.DroppedLong)
	}
	if st.DroppedEmpty != 1 {
		t.Fatalf("DroppedEmpty = %d, want 1", st.DroppedEmpty)
	}
	if st.Kept != 1 {
		t.Fatalf("Kept = %d, want 1", st.Kept)
	}
}

func TestParseMinCount(t *testing.T) {
	log := "popular\t100\nrare\t1\n"
	_, st, err := Parse(strings.NewReader(log), Options{MinCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || st.DroppedRare != 1 {
		t.Fatalf("Kept=%d DroppedRare=%d, want 1/1", st.Kept, st.DroppedRare)
	}
}

func TestParseBadCount(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("q\tnotanumber\n"), Options{}); err == nil {
		t.Fatal("bad count accepted")
	}
	if _, _, err := Parse(strings.NewReader("q\t-5\n"), Options{}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestParseMissingCountDefaultsToOne(t *testing.T) {
	b, _, err := Parse(strings.NewReader("solo query\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := b.MustInstance(1)
	if in.Queries()[0].Utility != 1 {
		t.Fatalf("utility = %v, want 1", in.Queries()[0].Utility)
	}
}

func TestEndToEndSolve(t *testing.T) {
	log := strings.Join([]string{
		"wooden table\t30",
		"round table\t12",
		"wooden\t8",
		"table\t40",
	}, "\n")
	b, _, err := Parse(strings.NewReader(log), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b.SetDefaultCost(func(s propset.Set) float64 { return float64(s.Len()) })
	in := b.MustInstance(3)
	// Budget 3: wooden+table singletons cover "table", "wooden",
	// "wooden table" (utility 78) — clearly optimal. Just assert the
	// pipeline produces a feasible, sensible instance.
	if in.NumQueries() != 4 {
		t.Fatalf("NumQueries = %d", in.NumQueries())
	}
	if in.MaxQueryLength() != 2 {
		t.Fatalf("MaxQueryLength = %d", in.MaxQueryLength())
	}
}
