package querylog

import (
	"strings"
	"testing"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	ts, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return ts
}

func TestParseTimedWindowFilters(t *testing.T) {
	log := strings.Join([]string{
		"2024-06-01T00:00:00Z\twooden table\t10", // before the window
		"2024-06-10T12:00:00Z\twooden table\t3",  // inside
		"2024-06-15T08:00:00Z\trunning shoes",    // inside, count defaults to 1
		"2024-07-01T00:00:00Z\trunning shoes\t9", // at To: half-open, dropped
		"# comment",
		"",
	}, "\n")
	b, st, err := ParseTimed(strings.NewReader(log), TimedOptions{
		Window: Window{
			From: mustTime(t, "2024-06-05T00:00:00Z"),
			To:   mustTime(t, "2024-07-01T00:00:00Z"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedOutOfWindow != 2 {
		t.Fatalf("DroppedOutOfWindow = %d, want 2", st.DroppedOutOfWindow)
	}
	if st.Kept != 2 {
		t.Fatalf("Kept = %d, want 2", st.Kept)
	}
	in := b.MustInstance(1)
	for _, q := range in.Queries() {
		switch in.Universe().Format(q.Props) {
		case "{table wooden}", "{wooden table}":
			if q.Utility != 3 {
				t.Fatalf("windowed utility = %v, want 3 (the pre-window 10 must not leak in)", q.Utility)
			}
		}
	}
}

// An empty window (To ≤ From) is a valid, if useless, request: every
// event is out of window, the builder comes back with zero queries, and
// nothing errors or panics.
func TestParseTimedEmptyWindow(t *testing.T) {
	w := Window{
		From: mustTime(t, "2024-06-10T00:00:00Z"),
		To:   mustTime(t, "2024-06-01T00:00:00Z"),
	}
	if !w.Empty() {
		t.Fatal("inverted window not reported Empty")
	}
	log := "2024-06-05T00:00:00Z\twooden table\t10\n1717243200\tshoes\t2\n"
	_, st, err := ParseTimed(strings.NewReader(log), TimedOptions{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 0 {
		t.Fatalf("empty window kept %d queries", st.Kept)
	}
	if st.DroppedOutOfWindow != 2 {
		t.Fatalf("DroppedOutOfWindow = %d, want 2", st.DroppedOutOfWindow)
	}

	// The zero window is the opposite edge: everything is inside.
	_, st, err = ParseTimed(strings.NewReader(log), TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 2 || st.DroppedOutOfWindow != 0 {
		t.Fatalf("zero window: kept=%d dropped=%d, want 2/0", st.Kept, st.DroppedOutOfWindow)
	}
}

// Shard-stitched logs arrive out of time order; ordering must be
// irrelevant to both filtering and accumulation.
func TestParseTimedOutOfOrderTimestamps(t *testing.T) {
	ordered := strings.Join([]string{
		"2024-06-02T00:00:00Z\ttable\t1",
		"2024-06-03T00:00:00Z\ttable\t2",
		"2024-06-09T00:00:00Z\ttable\t4",
	}, "\n")
	shuffled := strings.Join([]string{
		"2024-06-09T00:00:00Z\ttable\t4",
		"2024-06-02T00:00:00Z\ttable\t1",
		"2024-06-03T00:00:00Z\ttable\t2",
	}, "\n")
	opts := TimedOptions{Window: Window{
		From: mustTime(t, "2024-06-01T00:00:00Z"),
		To:   mustTime(t, "2024-06-10T00:00:00Z"),
	}}
	for name, log := range map[string]string{"ordered": ordered, "shuffled": shuffled} {
		b, st, err := ParseTimed(strings.NewReader(log), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Kept != 1 {
			t.Fatalf("%s: kept %d, want 1", name, st.Kept)
		}
		in := b.MustInstance(1)
		if got := in.Queries()[0].Utility; got != 7 {
			t.Fatalf("%s: accumulated utility = %v, want 7", name, got)
		}
	}
}

// The same query repeated across many events — including under
// different term order and casing — must accumulate into one query, not
// shadow or duplicate.
func TestParseTimedDuplicateQueriesAccumulate(t *testing.T) {
	log := strings.Join([]string{
		"1717243200\trunning shoes\t2",
		"1717243260\tShoes RUNNING\t3", // same canonical set
		"1717243320.5\trunning shoes",  // fractional unix seconds, count 1
	}, "\n")
	b, st, err := ParseTimed(strings.NewReader(log), TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("kept %d, want 1 (duplicates must merge)", st.Kept)
	}
	in := b.MustInstance(1)
	if got := in.Queries()[0].Utility; got != 6 {
		t.Fatalf("accumulated utility = %v, want 6", got)
	}
}

// RFC 3339 timestamps carrying non-UTC offsets must normalize onto the
// same instant line as everything else: an event written as 02:00+02:00
// is midnight UTC and belongs to the window exactly as its Z spelling
// would — and an offset spelling of the To instant itself is still
// excluded by the half-open contract.
func TestParseTimedNonUTCOffsets(t *testing.T) {
	log := strings.Join([]string{
		"2024-06-10T14:00:00+02:00\twooden table\t3",  // 12:00Z, inside
		"2024-06-30T19:30:00-05:00\twooden table\t4",  // 00:30Z next day, past To
		"2024-06-30T18:00:00-05:00\trunning shoes\t2", // 23:00Z, inside
		"2024-07-01T02:00:00+02:00\trunning shoes\t9", // exactly To (00:00Z), excluded
		"2024-06-05T01:59:59+02:00\twooden table\t7",  // 23:59:59Z Jun 4, before From
	}, "\n")
	b, st, err := ParseTimed(strings.NewReader(log), TimedOptions{
		Window: Window{
			From: mustTime(t, "2024-06-05T00:00:00Z"),
			To:   mustTime(t, "2024-07-01T00:00:00Z"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedOutOfWindow != 3 {
		t.Fatalf("DroppedOutOfWindow = %d, want 3 (at-To and pre-From offsets)", st.DroppedOutOfWindow)
	}
	if st.Kept != 2 {
		t.Fatalf("Kept = %d, want 2", st.Kept)
	}
	in := b.MustInstance(1)
	for _, q := range in.Queries() {
		switch in.Universe().Format(q.Props) {
		case "{table wooden}":
			if q.Utility != 3 {
				t.Fatalf("offset-normalized utility = %v, want 3", q.Utility)
			}
		case "{running shoes}":
			if q.Utility != 2 {
				t.Fatalf("at-To event leaked in: utility = %v, want 2", q.Utility)
			}
		}
	}
}

// A record landing exactly at To is excluded — [From, To) is half-open
// on the right, and the boundary instant belongs to the next window.
// The same instant used as From is included, so consecutive tumbling
// windows partition the timeline with no gap and no double-count.
func TestParseTimedBoundaryExactlyAtTo(t *testing.T) {
	boundary := "2024-06-10T00:00:00Z"
	log := boundary + "\ttable\t5\n"
	countKept := func(w Window) int {
		_, st, err := ParseTimed(strings.NewReader(log), TimedOptions{Window: w})
		if err != nil {
			t.Fatal(err)
		}
		return st.Kept
	}
	before := Window{From: mustTime(t, "2024-06-09T00:00:00Z"), To: mustTime(t, boundary)}
	after := Window{From: mustTime(t, boundary), To: mustTime(t, "2024-06-11T00:00:00Z")}
	if got := countKept(before); got != 0 {
		t.Fatalf("event at To kept by the earlier window (kept=%d)", got)
	}
	if got := countKept(after); got != 1 {
		t.Fatalf("event at From dropped by the later window (kept=%d)", got)
	}
}

func TestCheckTimedLine(t *testing.T) {
	good := []string{
		"2024-06-01T12:00:00Z\twooden table\t3",
		"1717243200\trunning shoes",
		"1717243200.5\ttable\t2.5",
		"2024-06-30T19:30:00-05:00\ttable",
		"# a comment line",
		"",
		"   ",
	}
	for _, line := range good {
		if err := CheckTimedLine(line); err != nil {
			t.Errorf("CheckTimedLine(%q) = %v, want nil", line, err)
		}
	}
	bad := []string{
		"no tab at all",
		"notatime\ttable",
		"2024-06-01T12:00:00Z\ttable\tNaN",
		"2024-06-01T12:00:00Z\ttable\t-3",
		"2024-06-01T12:00:00Z\ttable\tInf",
	}
	for _, line := range bad {
		if err := CheckTimedLine(line); err == nil {
			t.Errorf("CheckTimedLine(%q) accepted a malformed line", line)
		}
	}
}

func TestParseTimedMalformed(t *testing.T) {
	cases := map[string]string{
		"missing terms field": "2024-06-01T00:00:00Z\n",
		"bad timestamp":       "notatime\ttable\t1\n",
		"bad count":           "2024-06-01T00:00:00Z\ttable\tNaN\n",
	}
	for name, log := range cases {
		if _, _, err := ParseTimed(strings.NewReader(log), TimedOptions{}); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
