package querylog

import (
	"strings"
	"testing"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	ts, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return ts
}

func TestParseTimedWindowFilters(t *testing.T) {
	log := strings.Join([]string{
		"2024-06-01T00:00:00Z\twooden table\t10", // before the window
		"2024-06-10T12:00:00Z\twooden table\t3",  // inside
		"2024-06-15T08:00:00Z\trunning shoes",    // inside, count defaults to 1
		"2024-07-01T00:00:00Z\trunning shoes\t9", // at To: half-open, dropped
		"# comment",
		"",
	}, "\n")
	b, st, err := ParseTimed(strings.NewReader(log), TimedOptions{
		Window: Window{
			From: mustTime(t, "2024-06-05T00:00:00Z"),
			To:   mustTime(t, "2024-07-01T00:00:00Z"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedOutOfWindow != 2 {
		t.Fatalf("DroppedOutOfWindow = %d, want 2", st.DroppedOutOfWindow)
	}
	if st.Kept != 2 {
		t.Fatalf("Kept = %d, want 2", st.Kept)
	}
	in := b.MustInstance(1)
	for _, q := range in.Queries() {
		switch in.Universe().Format(q.Props) {
		case "{table wooden}", "{wooden table}":
			if q.Utility != 3 {
				t.Fatalf("windowed utility = %v, want 3 (the pre-window 10 must not leak in)", q.Utility)
			}
		}
	}
}

// An empty window (To ≤ From) is a valid, if useless, request: every
// event is out of window, the builder comes back with zero queries, and
// nothing errors or panics.
func TestParseTimedEmptyWindow(t *testing.T) {
	w := Window{
		From: mustTime(t, "2024-06-10T00:00:00Z"),
		To:   mustTime(t, "2024-06-01T00:00:00Z"),
	}
	if !w.Empty() {
		t.Fatal("inverted window not reported Empty")
	}
	log := "2024-06-05T00:00:00Z\twooden table\t10\n1717243200\tshoes\t2\n"
	_, st, err := ParseTimed(strings.NewReader(log), TimedOptions{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 0 {
		t.Fatalf("empty window kept %d queries", st.Kept)
	}
	if st.DroppedOutOfWindow != 2 {
		t.Fatalf("DroppedOutOfWindow = %d, want 2", st.DroppedOutOfWindow)
	}

	// The zero window is the opposite edge: everything is inside.
	_, st, err = ParseTimed(strings.NewReader(log), TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 2 || st.DroppedOutOfWindow != 0 {
		t.Fatalf("zero window: kept=%d dropped=%d, want 2/0", st.Kept, st.DroppedOutOfWindow)
	}
}

// Shard-stitched logs arrive out of time order; ordering must be
// irrelevant to both filtering and accumulation.
func TestParseTimedOutOfOrderTimestamps(t *testing.T) {
	ordered := strings.Join([]string{
		"2024-06-02T00:00:00Z\ttable\t1",
		"2024-06-03T00:00:00Z\ttable\t2",
		"2024-06-09T00:00:00Z\ttable\t4",
	}, "\n")
	shuffled := strings.Join([]string{
		"2024-06-09T00:00:00Z\ttable\t4",
		"2024-06-02T00:00:00Z\ttable\t1",
		"2024-06-03T00:00:00Z\ttable\t2",
	}, "\n")
	opts := TimedOptions{Window: Window{
		From: mustTime(t, "2024-06-01T00:00:00Z"),
		To:   mustTime(t, "2024-06-10T00:00:00Z"),
	}}
	for name, log := range map[string]string{"ordered": ordered, "shuffled": shuffled} {
		b, st, err := ParseTimed(strings.NewReader(log), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Kept != 1 {
			t.Fatalf("%s: kept %d, want 1", name, st.Kept)
		}
		in := b.MustInstance(1)
		if got := in.Queries()[0].Utility; got != 7 {
			t.Fatalf("%s: accumulated utility = %v, want 7", name, got)
		}
	}
}

// The same query repeated across many events — including under
// different term order and casing — must accumulate into one query, not
// shadow or duplicate.
func TestParseTimedDuplicateQueriesAccumulate(t *testing.T) {
	log := strings.Join([]string{
		"1717243200\trunning shoes\t2",
		"1717243260\tShoes RUNNING\t3", // same canonical set
		"1717243320.5\trunning shoes",  // fractional unix seconds, count 1
	}, "\n")
	b, st, err := ParseTimed(strings.NewReader(log), TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("kept %d, want 1 (duplicates must merge)", st.Kept)
	}
	in := b.MustInstance(1)
	if got := in.Queries()[0].Utility; got != 6 {
		t.Fatalf("accumulated utility = %v, want 6", got)
	}
}

func TestParseTimedMalformed(t *testing.T) {
	cases := map[string]string{
		"missing terms field": "2024-06-01T00:00:00Z\n",
		"bad timestamp":       "notatime\ttable\t1\n",
		"bad count":           "2024-06-01T00:00:00Z\ttable\tNaN\n",
	}
	for name, log := range cases {
		if _, _, err := ParseTimed(strings.NewReader(log), TimedOptions{}); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
