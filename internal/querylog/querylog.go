// Package querylog ingests raw search-query logs into BCC instances — the
// pipeline step that precedes everything in the paper's setting: companies
// start from a query log, derive the property conjunctions users filter
// by, and use search frequency as the utility signal.
//
// The expected format is one query per line:
//
//	wooden table<TAB>1542
//	running shoes<TAB>987
//	table
//
// Terms are normalized (lower-cased, trimmed, deduplicated within a
// query); a missing count defaults to 1; repeated lines accumulate.
// Queries longer than MaxLength (default 6, matching the paper's
// observation that longer filters are not worth classifier budget [27])
// are dropped and reported.
package querylog

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/propset"
)

// Options configures parsing.
type Options struct {
	// MaxLength drops queries with more conjuncts (default 6).
	MaxLength int
	// MinCount drops queries searched fewer times in total (default 1).
	MinCount float64
	// Stopwords are removed from every query before interning.
	Stopwords []string
	// Comment marks line prefixes to ignore (default "#").
	Comment string
}

func (o Options) withDefaults() Options {
	if o.MaxLength == 0 {
		o.MaxLength = 6
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	if o.Comment == "" {
		o.Comment = "#"
	}
	return o
}

// Stats reports what the parser kept and dropped.
type Stats struct {
	Lines        int
	Kept         int // distinct queries kept
	DroppedLong  int
	DroppedEmpty int
	DroppedRare  int
	Properties   int
}

// Parse reads a query log and produces a Builder pre-loaded with the
// queries (utilities = accumulated counts). Costs are left to the caller
// (SetCost / SetDefaultCost) before calling Instance.
func Parse(r io.Reader, opts Options) (*model.Builder, Stats, error) {
	opts = opts.withDefaults()
	stop := make(map[string]bool, len(opts.Stopwords))
	for _, w := range opts.Stopwords {
		stop[strings.ToLower(w)] = true
	}

	b := model.NewBuilder()
	u := b.Universe()
	counts := map[string]float64{}
	sets := map[string]propset.Set{}
	var st Stats

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		st.Lines++
		if line == "" || strings.HasPrefix(line, opts.Comment) {
			continue
		}
		text := line
		count := 1.0
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			text = strings.TrimSpace(line[:i])
			cs := strings.TrimSpace(line[i+1:])
			if cs != "" {
				v, err := strconv.ParseFloat(cs, 64)
				if err != nil {
					return nil, st, fmt.Errorf("querylog: line %d: bad count %q: %v", st.Lines, cs, err)
				}
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, st, fmt.Errorf("querylog: line %d: invalid count %v", st.Lines, v)
				}
				count = v
			}
		}
		var ids []propset.ID
		for _, term := range strings.Fields(strings.ToLower(text)) {
			term = strings.Trim(term, ".,;:!?\"'()[]")
			if term == "" || stop[term] {
				continue
			}
			ids = append(ids, u.Intern(term))
		}
		q := propset.New(ids...)
		switch {
		case q.Empty():
			st.DroppedEmpty++
			continue
		case q.Len() > opts.MaxLength:
			st.DroppedLong++
			continue
		}
		k := q.Key()
		counts[k] += count
		sets[k] = q
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("querylog: %w", err)
	}

	// Deterministic order: by count desc, then key.
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if counts[k] < opts.MinCount {
			st.DroppedRare++
			continue
		}
		b.AddQuerySet(sets[k], counts[k])
		st.Kept++
	}
	st.Properties = u.Size()
	return b, st, nil
}
