// Package querylog ingests raw search-query logs into BCC instances — the
// pipeline step that precedes everything in the paper's setting: companies
// start from a query log, derive the property conjunctions users filter
// by, and use search frequency as the utility signal.
//
// The expected format is one query per line:
//
//	wooden table<TAB>1542
//	running shoes<TAB>987
//	table
//
// Terms are normalized (lower-cased, trimmed, deduplicated within a
// query); a missing count defaults to 1; repeated lines accumulate.
// Queries longer than MaxLength (default 6, matching the paper's
// observation that longer filters are not worth classifier budget [27])
// are dropped and reported.
package querylog

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/propset"
)

// Options configures parsing.
type Options struct {
	// MaxLength drops queries with more conjuncts (default 6).
	MaxLength int
	// MinCount drops queries searched fewer times in total (default 1).
	MinCount float64
	// Stopwords are removed from every query before interning.
	Stopwords []string
	// Comment marks line prefixes to ignore (default "#").
	Comment string
}

func (o Options) withDefaults() Options {
	if o.MaxLength == 0 {
		o.MaxLength = 6
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	if o.Comment == "" {
		o.Comment = "#"
	}
	return o
}

// Stats reports what the parser kept and dropped.
type Stats struct {
	Lines        int
	Kept         int // distinct queries kept
	DroppedLong  int
	DroppedEmpty int
	DroppedRare  int
	Properties   int
}

// Parse reads a query log and produces a Builder pre-loaded with the
// queries (utilities = accumulated counts). Costs are left to the caller
// (SetCost / SetDefaultCost) before calling Instance.
func Parse(r io.Reader, opts Options) (*model.Builder, Stats, error) {
	acc := newAccumulator(opts.withDefaults())
	sc := newScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		acc.st.Lines++
		if acc.skippable(line) {
			continue
		}
		text := line
		count := 1.0
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			text = strings.TrimSpace(line[:i])
			var err error
			if count, err = parseCount(strings.TrimSpace(line[i+1:]), acc.st.Lines); err != nil {
				return nil, acc.st, err
			}
		}
		acc.add(text, count)
	}
	if err := sc.Err(); err != nil {
		return nil, acc.st, fmt.Errorf("querylog: %w", err)
	}
	b, st := acc.flush()
	return b, st, nil
}

// newScanner builds the line scanner both parsers share (lines up to
// 4 MiB).
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return sc
}

// parseCount parses an optional per-line count ("" = 1).
func parseCount(cs string, line int) (float64, error) {
	if cs == "" {
		return 1, nil
	}
	v, err := strconv.ParseFloat(cs, 64)
	if err != nil {
		return 0, fmt.Errorf("querylog: line %d: bad count %q: %v", line, cs, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("querylog: line %d: invalid count %v", line, v)
	}
	return v, nil
}

// accumulator is the shared core of Parse and ParseTimed: it normalizes
// query text, accumulates counts per canonical property set, and
// flushes in deterministic order with the MinCount filter applied.
type accumulator struct {
	opts   Options
	stop   map[string]bool
	b      *model.Builder
	u      *propset.Universe
	counts map[string]float64
	sets   map[string]propset.Set
	st     Stats
}

func newAccumulator(opts Options) *accumulator {
	stop := make(map[string]bool, len(opts.Stopwords))
	for _, w := range opts.Stopwords {
		stop[strings.ToLower(w)] = true
	}
	b := model.NewBuilder()
	return &accumulator{
		opts:   opts,
		stop:   stop,
		b:      b,
		u:      b.Universe(),
		counts: map[string]float64{},
		sets:   map[string]propset.Set{},
	}
}

// skippable reports blank and comment lines.
func (a *accumulator) skippable(line string) bool {
	return line == "" || strings.HasPrefix(line, a.opts.Comment)
}

// add folds one query occurrence into the accumulator. Repeated queries
// accumulate regardless of input order — the canonical set is the key,
// so "shoes running" and "running shoes" are the same query.
func (a *accumulator) add(text string, count float64) {
	var ids []propset.ID
	for _, term := range strings.Fields(strings.ToLower(text)) {
		term = strings.Trim(term, ".,;:!?\"'()[]")
		if term == "" || a.stop[term] {
			continue
		}
		ids = append(ids, a.u.Intern(term))
	}
	q := propset.New(ids...)
	switch {
	case q.Empty():
		a.st.DroppedEmpty++
		return
	case q.Len() > a.opts.MaxLength:
		a.st.DroppedLong++
		return
	}
	k := q.Key()
	a.counts[k] += count
	a.sets[k] = q
}

// flush loads the accumulated queries into the Builder in deterministic
// order (count desc, then key) and finalizes the stats.
func (a *accumulator) flush() (*model.Builder, Stats) {
	keys := make([]string, 0, len(a.sets))
	for k := range a.sets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if a.counts[keys[i]] != a.counts[keys[j]] {
			return a.counts[keys[i]] > a.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if a.counts[k] < a.opts.MinCount {
			a.st.DroppedRare++
			continue
		}
		a.b.AddQuerySet(a.sets[k], a.counts[k])
		a.st.Kept++
	}
	a.st.Properties = a.u.Size()
	return a.b, a.st
}
