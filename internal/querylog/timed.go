package querylog

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// Timestamped ingestion: real query logs carry a time per search, and
// workload extraction is usually windowed ("last 30 days") — utilities
// derived from an unbounded log overweight stale interest. ParseTimed
// reads per-event lines and keeps only those inside the window.
//
// The expected format is one search event per line:
//
//	2024-06-01T12:00:00Z<TAB>wooden table<TAB>3
//	1717243200<TAB>running shoes
//
// The first field is the event time (RFC 3339 or unix seconds, integer
// or fractional), the second the query text, the optional third a count
// (default 1 — one line per search is the common shape). Lines may
// appear in any time order: logs stitched from several shards rarely
// interleave cleanly, so ordering is never required and never checked.
// Repeated queries accumulate across lines exactly like Parse.

// Window is a half-open ingestion interval [From, To). A zero From or
// To leaves that side unbounded; the zero Window accepts everything.
type Window struct {
	From time.Time
	To   time.Time
}

// Contains reports whether ts falls inside the window.
func (w Window) Contains(ts time.Time) bool {
	if !w.From.IsZero() && ts.Before(w.From) {
		return false
	}
	if !w.To.IsZero() && !ts.Before(w.To) {
		return false
	}
	return true
}

// Empty reports a window that can contain no timestamp (both bounds set
// and To ≤ From).
func (w Window) Empty() bool {
	return !w.From.IsZero() && !w.To.IsZero() && !w.From.Before(w.To)
}

// TimedOptions configures ParseTimed: the base parsing options plus the
// ingestion window.
type TimedOptions struct {
	Options
	Window Window
}

// TimedStats is Stats plus the window accounting.
type TimedStats struct {
	Stats
	// DroppedOutOfWindow counts well-formed events whose timestamp fell
	// outside the window.
	DroppedOutOfWindow int
}

// ParseTimed reads a timestamped query log ("ts<TAB>terms[<TAB>count]"
// lines) and produces a Builder holding the queries whose events fall
// inside opts.Window, with utilities accumulated per query across the
// kept events. Costs are left to the caller, as with Parse.
func ParseTimed(r io.Reader, opts TimedOptions) (*model.Builder, TimedStats, error) {
	acc := newAccumulator(opts.Options.withDefaults())
	var st TimedStats
	sc := newScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		acc.st.Lines++
		if acc.skippable(line) {
			continue
		}
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) < 2 {
			st.Stats = acc.st
			return nil, st, fmt.Errorf("querylog: line %d: want ts<TAB>terms[<TAB>count], got %q", acc.st.Lines, line)
		}
		ts, err := parseTimestamp(strings.TrimSpace(fields[0]))
		if err != nil {
			st.Stats = acc.st
			return nil, st, fmt.Errorf("querylog: line %d: %v", acc.st.Lines, err)
		}
		count := 1.0
		if len(fields) == 3 {
			if count, err = parseCount(strings.TrimSpace(fields[2]), acc.st.Lines); err != nil {
				st.Stats = acc.st
				return nil, st, err
			}
		}
		if !opts.Window.Contains(ts) {
			st.DroppedOutOfWindow++
			continue
		}
		acc.add(strings.TrimSpace(fields[1]), count)
	}
	if err := sc.Err(); err != nil {
		st.Stats = acc.st
		return nil, st, fmt.Errorf("querylog: %w", err)
	}
	b, stats := acc.flush()
	st.Stats = stats
	return b, st, nil
}

// CheckTimedLine validates one timestamped query-log line without
// accumulating it: the shape ParseTimed would accept (ts<TAB>terms
// [<TAB>count], blank and comment lines allowed). The continuous ingest
// path (internal/pipeline) runs it before acknowledging a line into the
// WAL, so a malformed event is the submitter's 400 at ingest time —
// never a poisoned window that fails a solve hours later.
func CheckTimedLine(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	fields := strings.SplitN(line, "\t", 3)
	if len(fields) < 2 {
		return fmt.Errorf("querylog: want ts<TAB>terms[<TAB>count], got %q", line)
	}
	if _, err := parseTimestamp(strings.TrimSpace(fields[0])); err != nil {
		return fmt.Errorf("querylog: %v", err)
	}
	if len(fields) == 3 {
		cs := strings.TrimSpace(fields[2])
		if cs != "" {
			v, err := strconv.ParseFloat(cs, 64)
			if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("querylog: invalid count %q", cs)
			}
		}
	}
	return nil
}

// parseTimestamp accepts unix seconds (integer or fractional) or an
// RFC 3339 time.
func parseTimestamp(s string) (time.Time, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return time.Time{}, fmt.Errorf("invalid unix timestamp %q", s)
		}
		sec, frac := math.Modf(v)
		return time.Unix(int64(sec), int64(frac*1e9)).UTC(), nil
	}
	ts, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp %q (want unix seconds or RFC 3339)", s)
	}
	return ts, nil
}
