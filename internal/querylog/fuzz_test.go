package querylog

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the log parser; it must never
// panic, and whatever it keeps must build a valid instance.
func FuzzParse(f *testing.F) {
	f.Add("wooden table\t10\n")
	f.Add("a b c d e f g h\t1\n")
	f.Add("#comment\n\n\t\t\n")
	f.Add("query\t-1\n")
	f.Add("query\tNaN\n")
	f.Add("q1\t1e300\nq1\t1e300\n")
	f.Add(strings.Repeat("term ", 50) + "\t3\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, st, err := Parse(strings.NewReader(input), Options{})
		if err != nil {
			return // rejected inputs are fine
		}
		if st.Kept < 0 || st.Lines < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		if st.Kept == 0 {
			return
		}
		in, err := b.Instance(10)
		if err != nil {
			t.Fatalf("kept %d queries but Instance failed: %v", st.Kept, err)
		}
		if in.NumQueries() != st.Kept {
			t.Fatalf("Kept=%d but instance has %d queries", st.Kept, in.NumQueries())
		}
		for _, q := range in.Queries() {
			if q.Utility < 0 {
				t.Fatalf("negative utility %v", q.Utility)
			}
			if q.Length() > 6 {
				t.Fatalf("over-long query survived: %v", q.Props)
			}
		}
	})
}
