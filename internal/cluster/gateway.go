package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// GatewayConfig tunes the HTTP front of a Cluster. The zero value gets
// the same body/batch limits as internal/server, so a client that fits
// a backend fits the gateway.
type GatewayConfig struct {
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatch caps the number of requests in one batch (default 64).
	MaxBatch int
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	return c
}

// Gateway mounts a Cluster behind the same HTTP surface as a single
// bccserver — POST /v1/solve, POST /v1/solve/batch, GET /v1/healthz,
// GET /v1/statz, GET /metrics — so clients (and bccload) need not know
// whether they talk to one backend or a routed fleet. The one addition
// to the contract: the X-BCC-Backend response header names the backend
// that actually answered, so affinity is observable with curl -i.
type Gateway struct {
	cl    *Cluster
	cfg   GatewayConfig
	reg   *obs.Registry
	start time.Time

	requests    atomic.Uint64
	badRequests atomic.Uint64
	panics      atomic.Uint64
	draining    atomic.Bool
}

// NewGateway wraps c. The gateway shares the cluster's metric registry,
// so one /metrics scrape covers routing and HTTP serving alike.
func NewGateway(c *Cluster, cfg GatewayConfig) *Gateway {
	g := &Gateway{cl: c, cfg: cfg.withDefaults(), reg: c.Registry(), start: time.Now()}
	g.reg.GaugeFunc("bcc_gate_uptime_seconds", "Seconds since the gateway started.", nil,
		func() float64 { return time.Since(g.start).Seconds() })
	g.reg.CounterFunc("bcc_gate_requests_total", "Requests accepted by the gateway (batch items count).", nil,
		func() float64 { return float64(g.requests.Load()) })
	g.reg.CounterFunc("bcc_gate_bad_requests_total", "Requests failing gateway-side validation (4xx).", nil,
		func() float64 { return float64(g.badRequests.Load()) })
	g.reg.CounterFunc("bcc_gate_panics_recovered_total", "Gateway handler panics contained into responses.", nil,
		func() float64 { return float64(g.panics.Load()) })
	g.reg.GaugeFunc("bcc_gate_draining", "1 once BeginDrain was called (healthz answers 503), else 0.", nil,
		func() float64 {
			if g.draining.Load() {
				return 1
			}
			return 0
		})
	return g
}

// Cluster exposes the routed cluster (tests, statz embedders).
func (g *Gateway) Cluster() *Cluster { return g.cl }

// BeginDrain flips /v1/healthz to 503 so an upstream balancer stops
// sending traffic while in-flight requests finish — the same drain
// contract the backends themselves honor.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Handler returns the gateway's route table, instrumented like the
// backend server's.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", g.instrument("/v1/solve", g.handleSolve))
	mux.HandleFunc("POST /v1/solve/batch", g.instrument("/v1/solve/batch", g.handleBatch))
	mux.HandleFunc("POST /v1/jobs", g.instrument("/v1/jobs", g.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", g.instrument("/v1/jobs", g.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", g.instrument("/v1/jobs/{id}", g.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.instrument("/v1/jobs/{id}/result", g.handleJobResult))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", g.instrument("/v1/jobs/{id}/cancel", g.handleJobCancel))
	mux.HandleFunc("GET /v1/healthz", g.instrument("/v1/healthz", g.handleHealthz))
	mux.HandleFunc("GET /v1/statz", g.instrument("/v1/statz", g.handleStatz))
	mux.HandleFunc("GET /metrics", g.instrument("/metrics", g.handleMetrics))
	return mux
}

// RouteFingerprint computes the routing key for one request: the same
// canonical fingerprint the backend will derive, including the budget
// override (two requests differing only in budget are different
// instances, cached separately, and may legitimately live on different
// backends). Validation failures mirror the backend's 400s so a bad
// request is rejected at the edge without spending a backend call.
func RouteFingerprint(req *api.SolveRequest) (string, *api.Error) {
	fp, _, apiErr := RouteFingerprints(req)
	return fp, apiErr
}

// RouteFingerprints is RouteFingerprint plus the near-miss hash
// (bccfp2/1) — the instance is already materialized for the canonical
// fingerprint, so the second hash costs one more pass, and it lets the
// cluster run sibling peer-fill lookups at the edge.
func RouteFingerprints(req *api.SolveRequest) (fp, fp2 string, _ *api.Error) {
	in, err := dataset.FromFormat(req.Instance)
	if err != nil {
		return "", "", api.Errorf(http.StatusBadRequest, "invalid instance: %v", err)
	}
	if req.Budget != nil {
		b := *req.Budget
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return "", "", api.Errorf(http.StatusBadRequest, "invalid budget override %v", b)
		}
		in = in.WithBudget(b)
	}
	return in.Fingerprint(), in.Fingerprint2(), nil
}

func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	var req api.SolveRequest
	if apiErr := decodeJSON(w, r, g.cfg.MaxBodyBytes, &req); apiErr != nil {
		g.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	fp, fp2, apiErr := RouteFingerprints(&req)
	if apiErr != nil {
		g.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	resp, route, err := g.cl.SolveRouted(r.Context(), &req, fp, fp2)
	if err != nil {
		writeError(w, routeError(err))
		return
	}
	w.Header().Set(api.BackendHeader, route.BackendID)
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch api.BatchRequest
	if apiErr := decodeJSON(w, r, g.cfg.MaxBodyBytes, &batch); apiErr != nil {
		g.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	if len(batch.Requests) == 0 {
		g.badRequests.Add(1)
		writeError(w, api.Errorf(http.StatusBadRequest, "batch has no requests"))
		return
	}
	if len(batch.Requests) > g.cfg.MaxBatch {
		g.badRequests.Add(1)
		writeError(w, api.Errorf(http.StatusBadRequest, "batch of %d exceeds the %d-request cap", len(batch.Requests), g.cfg.MaxBatch))
		return
	}
	g.requests.Add(uint64(len(batch.Requests)))

	// Fingerprint every item up front: invalid items are answered at the
	// edge, valid ones go through scatter-gather. Indices are preserved so
	// the merged response is in input order regardless of routing.
	items := make([]api.BatchItem, len(batch.Requests))
	var routed []api.SolveRequest
	var fps []string
	var routedIdx []int
	for i := range batch.Requests {
		fp, apiErr := RouteFingerprint(&batch.Requests[i])
		if apiErr != nil {
			g.badRequests.Add(1)
			items[i] = api.BatchItem{Error: apiErr.Msg, Code: apiErr.Code}
			continue
		}
		routed = append(routed, batch.Requests[i])
		fps = append(fps, fp)
		routedIdx = append(routedIdx, i)
	}
	if len(routed) > 0 {
		sub := g.cl.SolveBatch(r.Context(), routed, fps)
		for k, item := range sub.Responses {
			items[routedIdx[k]] = item
		}
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Responses: items})
}

// handleHealthz answers 200 while the gateway is serving AND at least
// one backend is eligible — a gateway that can only answer 503s to every
// solve is not healthy, whatever its own process state.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	eligible := g.cl.EligibleBackends()
	if eligible == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no eligible backend", "backends": len(g.cl.Backends())})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "eligible_backends": eligible})
}

// GatewayStatz is the GET /v1/statz body of a gateway: its own serving
// counters plus the full cluster view.
type GatewayStatz struct {
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         obs.Build `json:"build"`
	Draining      bool      `json:"draining"`
	Requests      uint64    `json:"requests"`
	BadRequests   uint64    `json:"bad_requests"`
	Panics        uint64    `json:"panics_recovered"`
	Cluster       Stats     `json:"cluster"`
}

func (g *Gateway) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, GatewayStatz{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Build:         obs.ReadBuild(),
		Draining:      g.draining.Load(),
		Requests:      g.requests.Load(),
		BadRequests:   g.badRequests.Load(),
		Panics:        g.panics.Load(),
		Cluster:       g.cl.Stats(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WritePrometheus(w)
}

// instrument mirrors the backend server's middleware: per-route/status
// latency and count series plus panic containment into a JSON 500.
func (g *Gateway) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				g.panics.Add(1)
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						api.Errorf(http.StatusInternalServerError, "internal panic: %v", p))
				}
			}
			labels := obs.Labels{"route": route, "code": strconv.Itoa(sw.code)}
			g.reg.Histogram("bcc_gate_http_request_seconds", "Gateway HTTP request latency by route and status.",
				labels, obs.DefBuckets).Observe(time.Since(start).Seconds())
			g.reg.Counter("bcc_gate_http_requests_total", "Gateway HTTP requests by route and status.", labels).Inc()
		}()
		h(sw, r)
	}
}

// routeError folds a routing failure into the API error shape. A
// backend's own HTTP answer passes through with its code and retry
// advice; cluster-level conditions map to the gateway's status: 503
// when nothing was eligible, 504 when the caller's deadline ran out
// first, 502 when the fleet was reachable but failed.
func routeError(err error) *api.Error {
	var he *client.HTTPError
	if errors.As(err, &he) {
		e := &api.Error{Code: he.StatusCode, Msg: he.Msg}
		if he.RetryAfter > 0 {
			e.RetryAfterSeconds = int(he.RetryAfter / time.Second)
		}
		return e
	}
	switch {
	case errors.Is(err, ErrNoBackends), errors.Is(err, resilience.ErrOpen):
		e := api.Errorf(http.StatusServiceUnavailable, "no backend available: %v", err)
		e.RetryAfterSeconds = 1
		return e
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return api.Errorf(http.StatusGatewayTimeout, "request deadline exceeded while routing: %v", err)
	default:
		return api.Errorf(http.StatusBadGateway, "backend call failed: %v", err)
	}
}

// statusWriter, decodeJSON, writeError and writeJSON intentionally
// mirror internal/server's unexported helpers — the packages must not
// import each other (server is a backend, cluster fronts backends), and
// the HTTP contract of both must stay byte-identical.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) *api.Error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return api.Errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		}
		return api.Errorf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

func writeError(w http.ResponseWriter, apiErr *api.Error) {
	if apiErr.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", apiErr.RetryAfterSeconds))
	}
	writeJSON(w, apiErr.Code, apiErr)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
