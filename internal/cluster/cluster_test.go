package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// fakeBackend is a scriptable stand-in for a bccserver: canned solve
// answers, a switchable healthz status and an injectable solve delay —
// just enough wire compatibility for the shared client to talk to it.
type fakeBackend struct {
	id      string
	srv     *httptest.Server
	hits    atomic.Int64
	delayNS atomic.Int64
	healthz atomic.Int32
}

func newFakeBackend(t *testing.T, id string) *fakeBackend {
	t.Helper()
	f := &fakeBackend{id: id}
	f.healthz.Store(http.StatusOK)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if d := f.delayNS.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		w.Header().Set(api.BackendHeader, f.id)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.SolveResponse{Fingerprint: "fake", Algo: "abcc", Status: "complete"})
	})
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		var br api.BatchRequest
		_ = json.NewDecoder(r.Body).Decode(&br)
		items := make([]api.BatchItem, len(br.Requests))
		for i := range items {
			items[i] = api.BatchItem{Result: &api.SolveResponse{Fingerprint: "fake", Algo: "abcc", Status: "complete"}}
		}
		w.Header().Set(api.BackendHeader, f.id)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.BatchResponse{Responses: items})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.BackendHeader, f.id)
		w.WriteHeader(int(f.healthz.Load()))
		_, _ = w.Write([]byte(`{}`))
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newRealBackend runs a full in-process bccserver behind httptest.
func newRealBackend(t *testing.T, id string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, Queue: 32, BackendID: id})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// newTestCluster builds a cluster with test-friendly defaults: hedging
// off (tests that want it opt in), a long probe interval (tests drive
// probes explicitly via ProbeNow or rely on in-band failure detection).
func newTestCluster(t *testing.T, urls []string, mut func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Backends:      urls,
		ProbeInterval: time.Hour,
		ProbeTimeout:  2 * time.Second,
		HedgeAfter:    -1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustFingerprint(t *testing.T, req *api.SolveRequest) string {
	t.Helper()
	fp, apiErr := RouteFingerprint(req)
	if apiErr != nil {
		t.Fatalf("RouteFingerprint: %v", apiErr)
	}
	return fp
}

// An instance re-sent through the cluster must land on the same backend
// and come back as a cache hit — the whole point of fingerprint
// affinity.
func TestSolveAffinity(t *testing.T) {
	_, tsA := newRealBackend(t, "aff-a")
	_, tsB := newRealBackend(t, "aff-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)

	ctx := context.Background()
	for i, req := range loadgen.SyntheticWorkload(5, 1) {
		fp := mustFingerprint(t, &req)
		resp1, route1, err := c.Solve(ctx, &req, fp)
		if err != nil {
			t.Fatalf("req %d first solve: %v", i, err)
		}
		if resp1.Cached {
			t.Fatalf("req %d: first solve of a distinct instance came back cached", i)
		}
		if !route1.Affinity {
			t.Fatalf("req %d: first solve with all backends healthy was not an affinity pick", i)
		}
		resp2, route2, err := c.Solve(ctx, &req, fp)
		if err != nil {
			t.Fatalf("req %d second solve: %v", i, err)
		}
		if !resp2.Cached {
			t.Fatalf("req %d: re-sent instance was not a cache hit (routed to %s after %s)",
				i, route2.BackendURL, route1.BackendURL)
		}
		if route2.BackendURL != route1.BackendURL {
			t.Fatalf("req %d: affinity broke: %s then %s", i, route1.BackendURL, route2.BackendURL)
		}
		if want := Top(fp, c.Backends()); route1.BackendURL != want {
			t.Fatalf("req %d: routed to %s, rendezvous-first is %s", i, route1.BackendURL, want)
		}
	}
	st := c.Stats()
	if st.FallbackPicks != 0 {
		t.Fatalf("healthy cluster used %d fallback picks", st.FallbackPicks)
	}
	if st.AffinityPicks != 10 {
		t.Fatalf("affinity picks = %d, want 10", st.AffinityPicks)
	}
}

// Killing the affinity backend mid-run must not fail the request: the
// first call discovers the death in-band and fails over to the
// secondary; subsequent calls route around the corpse entirely.
func TestSolveFailoverOnDeadBackend(t *testing.T) {
	_, tsA := newRealBackend(t, "fo-a")
	_, tsB := newRealBackend(t, "fo-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)

	req := loadgen.SyntheticWorkload(1, 3)[0]
	fp := mustFingerprint(t, &req)
	top := Top(fp, c.Backends())
	var other string
	if top == tsA.URL {
		tsA.Close()
		other = tsB.URL
	} else {
		tsB.Close()
		other = tsA.URL
	}

	ctx := context.Background()
	resp, route, err := c.Solve(ctx, &req, fp)
	if err != nil {
		t.Fatalf("solve with dead affinity backend: %v", err)
	}
	if !route.FailedOver {
		t.Fatalf("route = %+v, want FailedOver", route)
	}
	if route.BackendURL != other {
		t.Fatalf("answered by %s, want the surviving backend %s", route.BackendURL, other)
	}
	if resp.Status == "" {
		t.Fatal("failover answer has no status")
	}
	if got := c.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// The transport failure marked the corpse unhealthy, so the next call
	// is routed directly (no failover) even though no probe ran.
	_, route2, err := c.Solve(ctx, &req, fp)
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	if route2.BackendURL != other || route2.FailedOver {
		t.Fatalf("second route = %+v, want direct pick of %s", route2, other)
	}
}

// When the affinity backend reports draining, routing must fall back to
// another backend without failing the request.
func TestSolveFallbackWhenAffinityDraining(t *testing.T) {
	fa := newFakeBackend(t, "drain-a")
	fb := newFakeBackend(t, "drain-b")
	c := newTestCluster(t, []string{fa.srv.URL, fb.srv.URL}, nil)

	const fp = "bccfp/1:drain-test"
	top := Top(fp, c.Backends())
	slow, fast := fa, fb
	if top == fb.srv.URL {
		slow, fast = fb, fa
	}
	slow.healthz.Store(http.StatusServiceUnavailable)
	c.ProbeNow()

	resp, route, err := c.Solve(context.Background(), &api.SolveRequest{}, fp)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if route.Affinity {
		t.Fatal("pick of a draining affinity backend was reported as an affinity hit")
	}
	if route.BackendURL != fast.srv.URL {
		t.Fatalf("routed to %s, want the serving backend %s", route.BackendURL, fast.srv.URL)
	}
	if route.BackendID != fast.id {
		t.Fatalf("route.BackendID = %q, want the probed ID %q", route.BackendID, fast.id)
	}
	if resp.Status != "complete" {
		t.Fatalf("status = %q", resp.Status)
	}
	if slow.hits.Load() != 0 {
		t.Fatalf("draining backend still received %d solves", slow.hits.Load())
	}
}

// With every backend ineligible, Solve must answer ErrNoBackends
// immediately rather than hanging or guessing.
func TestSolveNoEligibleBackend(t *testing.T) {
	fa := newFakeBackend(t, "none-a")
	fb := newFakeBackend(t, "none-b")
	c := newTestCluster(t, []string{fa.srv.URL, fb.srv.URL}, nil)
	fa.healthz.Store(http.StatusServiceUnavailable)
	fb.healthz.Store(http.StatusServiceUnavailable)
	c.ProbeNow()

	if n := c.EligibleBackends(); n != 0 {
		t.Fatalf("EligibleBackends = %d, want 0", n)
	}
	_, _, err := c.Solve(context.Background(), &api.SolveRequest{}, "bccfp/1:x")
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want ErrNoBackends", err)
	}
	if got := c.Stats().NoBackend; got != 1 {
		t.Fatalf("no-backend counter = %d, want 1", got)
	}
}

// A hedged request must fire after the configured delay and win when
// the primary is slow — and the loser's cancellation must not be
// charged against the slow backend's breaker.
func TestSolveHedgeWins(t *testing.T) {
	fa := newFakeBackend(t, "hedge-a")
	fb := newFakeBackend(t, "hedge-b")
	c := newTestCluster(t, []string{fa.srv.URL, fb.srv.URL}, func(cfg *Config) {
		cfg.HedgeAfter = 20 * time.Millisecond
	})

	const fp = "bccfp/1:hedge-test"
	top := Top(fp, c.Backends())
	slow, fast := fa, fb
	if top == fb.srv.URL {
		slow, fast = fb, fa
	}
	slow.delayNS.Store(int64(2 * time.Second))

	start := time.Now()
	resp, route, err := c.Solve(context.Background(), &api.SolveRequest{}, fp)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged solve took %v, the hedge did not rescue the tail", elapsed)
	}
	if !route.Hedged || !route.HedgeWon {
		t.Fatalf("route = %+v, want Hedged and HedgeWon", route)
	}
	if route.BackendURL != fast.srv.URL {
		t.Fatalf("answered by %s, want the fast backend %s", route.BackendURL, fast.srv.URL)
	}
	if resp.Status != "complete" {
		t.Fatalf("status = %q", resp.Status)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	// The canceled primary must not count as a backend failure.
	for _, b := range st.Backends {
		if b.URL == slow.srv.URL && b.Breaker.ConsecutiveFailures > 0 {
			t.Fatalf("hedge loser charged the slow backend's breaker: %+v", b.Breaker)
		}
	}
}

// The auto hedge delay must stay silent until enough latency samples
// exist, then track the configured quantile within the clamp bounds.
func TestHedgeDelayAuto(t *testing.T) {
	f := newFakeBackend(t, "auto")
	c := newTestCluster(t, []string{f.srv.URL}, func(cfg *Config) {
		cfg.HedgeAfter = 0 // auto
	})
	if _, ok := c.hedgeDelay(); ok {
		t.Fatal("auto hedge active with no samples")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		c.latHist.Observe(0.05)
	}
	d, ok := c.hedgeDelay()
	if !ok {
		t.Fatalf("auto hedge still inactive after %d samples", hedgeMinSamples)
	}
	if d < hedgeDelayMin || d > hedgeDelayMax {
		t.Fatalf("auto hedge delay %v outside [%v, %v]", d, hedgeDelayMin, hedgeDelayMax)
	}
	// Fixed and disabled overrides win regardless of samples.
	c.cfg.HedgeAfter = 42 * time.Millisecond
	if d, ok := c.hedgeDelay(); !ok || d != 42*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v/%v", d, ok)
	}
	c.cfg.HedgeAfter = -1
	if _, ok := c.hedgeDelay(); ok {
		t.Fatal("disabled hedging still reports a delay")
	}
}

// Scatter-gather must reassemble in input order: every item's response
// carries the fingerprint of the request at the same index, independent
// of which backend shard answered it.
func TestSolveBatchOrdering(t *testing.T) {
	_, tsA := newRealBackend(t, "sg-a")
	_, tsB := newRealBackend(t, "sg-b")
	_, tsC := newRealBackend(t, "sg-c")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL, tsC.URL}, nil)

	reqs := loadgen.SyntheticWorkload(10, 2)
	reqs = append(reqs, reqs[0], reqs[4]) // duplicates must stay positional
	fps := make([]string, len(reqs))
	for i := range reqs {
		fps[i] = mustFingerprint(t, &reqs[i])
	}

	resp := c.SolveBatch(context.Background(), reqs, fps)
	if len(resp.Responses) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(resp.Responses), len(reqs))
	}
	for i, item := range resp.Responses {
		if item.Result == nil {
			t.Fatalf("item %d: no result (error %q code %d)", i, item.Error, item.Code)
		}
		if item.Result.Fingerprint != fps[i] {
			t.Fatalf("item %d: fingerprint %s, want %s — order not preserved", i, item.Result.Fingerprint, fps[i])
		}
	}
}

// A backend dying under a batch must cost only a re-route, not answers:
// its shard is retried on the survivors and every item still gets a
// result, in order.
func TestSolveBatchKilledBackend(t *testing.T) {
	_, tsA := newRealBackend(t, "kill-a")
	_, tsB := newRealBackend(t, "kill-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)
	tsB.Close() // dies after the initial probe: the cluster still trusts it

	reqs := loadgen.SyntheticWorkload(16, 5)
	fps := make([]string, len(reqs))
	for i := range reqs {
		fps[i] = mustFingerprint(t, &reqs[i])
	}
	resp := c.SolveBatch(context.Background(), reqs, fps)
	if len(resp.Responses) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(resp.Responses), len(reqs))
	}
	for i, item := range resp.Responses {
		if item.Result == nil {
			t.Fatalf("item %d lost to the dead backend: error %q code %d", i, item.Error, item.Code)
		}
		if item.Result.Fingerprint != fps[i] {
			t.Fatalf("item %d: fingerprint %s, want %s", i, item.Result.Fingerprint, fps[i])
		}
	}
}

// With the whole fleet dead, a batch must still return one item per
// request — each a structured error, never a hang or a zero value.
func TestSolveBatchAllBackendsDead(t *testing.T) {
	fa := newFakeBackend(t, "dead-a")
	fb := newFakeBackend(t, "dead-b")
	c := newTestCluster(t, []string{fa.srv.URL, fb.srv.URL}, nil)
	fa.srv.Close()
	fb.srv.Close()

	reqs := loadgen.SyntheticWorkload(4, 6)
	fps := make([]string, len(reqs))
	for i := range reqs {
		fps[i] = mustFingerprint(t, &reqs[i])
	}
	resp := c.SolveBatch(context.Background(), reqs, fps)
	if len(resp.Responses) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(resp.Responses), len(reqs))
	}
	for i, item := range resp.Responses {
		if item.Result != nil {
			t.Fatalf("item %d has a result from a dead fleet", i)
		}
		if item.Error == "" || item.Code == 0 {
			t.Fatalf("item %d: unstructured failure %+v", i, item)
		}
	}
}

// SIGHUP-style membership reload must keep the surviving backends'
// state: accumulated request counts survive, only genuinely new members
// start fresh — and the removed member stops being routable.
func TestSetBackendsPreservesState(t *testing.T) {
	fa := newFakeBackend(t, "m-a")
	fb := newFakeBackend(t, "m-b")
	fc := newFakeBackend(t, "m-c")
	c := newTestCluster(t, []string{fa.srv.URL, fb.srv.URL}, nil)

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, _, err := c.Solve(ctx, &api.SolveRequest{}, "bccfp/1:reload"); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	before := map[string]uint64{}
	for _, b := range c.Stats().Backends {
		before[b.URL] = b.Requests
	}

	if err := c.SetBackends([]string{fa.srv.URL, fb.srv.URL, fc.srv.URL}); err != nil {
		t.Fatalf("SetBackends: %v", err)
	}
	st := c.Stats()
	if len(st.Backends) != 3 {
		t.Fatalf("membership size %d after reload, want 3", len(st.Backends))
	}
	for _, b := range st.Backends {
		if b.URL == fc.srv.URL {
			if b.Requests != 0 {
				t.Fatalf("new member starts with %d requests", b.Requests)
			}
			continue
		}
		if b.Requests != before[b.URL] {
			t.Fatalf("member %s: requests %d after reload, want %d", b.URL, b.Requests, before[b.URL])
		}
	}

	if err := c.SetBackends([]string{fc.srv.URL}); err != nil {
		t.Fatalf("SetBackends shrink: %v", err)
	}
	_, route, err := c.Solve(ctx, &api.SolveRequest{}, "bccfp/1:reload")
	if err != nil {
		t.Fatalf("solve after shrink: %v", err)
	}
	if route.BackendURL != fc.srv.URL {
		t.Fatalf("routed to removed member %s", route.BackendURL)
	}
	if err := c.SetBackends(nil); err == nil {
		t.Fatal("SetBackends(nil) should refuse to empty the membership")
	}
}

// A request the backend rejects as invalid (HTTP 400) must come back to
// the caller as that rejection, not trigger failover — every backend
// would answer the same.
func TestSolveNonRetryableNoFailover(t *testing.T) {
	_, tsA := newRealBackend(t, "nr-a")
	_, tsB := newRealBackend(t, "nr-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)

	req := loadgen.SyntheticWorkload(1, 9)[0]
	req.Algo = "no-such-algo"
	fp := mustFingerprint(t, &req)
	_, _, err := c.Solve(context.Background(), &req, fp)
	if err == nil {
		t.Fatal("invalid algo was accepted")
	}
	if c.Stats().Failovers != 0 {
		t.Fatal("a 400 answer triggered failover")
	}
}
