package cluster

import (
	"errors"
	"net/http"

	"repro/internal/api"
	"repro/internal/client"
)

// Gateway job routes: the same five endpoints a single bccserver
// exposes, fronted by the cluster's job tracker. IDs in and out are the
// gateway's external IDs; which backend actually owns a job (and
// whether it had to move) is visible in the status body, never in the
// URL a client has to remember.

func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	var req api.JobRequest
	if apiErr := decodeJSON(w, r, g.cfg.MaxBodyBytes, &req); apiErr != nil {
		g.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	fp, apiErr := RouteFingerprint(&req.SolveRequest)
	if apiErr != nil {
		g.badRequests.Add(1)
		writeError(w, apiErr)
		return
	}
	st, route, err := g.cl.SubmitJob(r.Context(), &req, fp)
	if err != nil {
		writeError(w, jobRouteError(err))
		return
	}
	w.Header().Set(api.BackendHeader, route.BackendID)
	writeJSON(w, http.StatusAccepted, st)
}

func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	writeJSON(w, http.StatusOK, g.cl.ListJobs(r.Context()))
}

func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	st, err := g.cl.JobStatus(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, jobRouteError(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (g *Gateway) handleJobResult(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	result, st, err := g.cl.JobResult(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, jobRouteError(err))
		return
	}
	if result != nil {
		writeJSON(w, http.StatusOK, result)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	st, err := g.cl.CancelJob(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, jobRouteError(err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// jobRouteError extends routeError with the job-specific conditions:
// an untracked ID is the gateway's own 404, and a job that ended
// without a result keeps the backend's 409 contract (the client wraps
// that answer into ErrJobNotCompleted, shedding the HTTPError, so
// routeError alone would misreport it as a 502).
func jobRouteError(err error) *api.Error {
	switch {
	case errors.Is(err, ErrJobUnknown):
		return api.Errorf(http.StatusNotFound, "unknown job id")
	case errors.Is(err, client.ErrJobNotCompleted):
		return api.Errorf(http.StatusConflict, "%v", err)
	default:
		return routeError(err)
	}
}
