package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// newJobsBackend is newRealBackend with the async job subsystem enabled
// over a per-test jobs directory.
func newJobsBackend(t *testing.T, id string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, Queue: 32, BackendID: id})
	if err := srv.OpenJobs(t.TempDir(), t.Logf); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// gatewayJSON drives one gateway call the way a plain HTTP client
// would, returning the status code and raw body.
func gatewayJSON(t *testing.T, method, url string, in any) (int, []byte) {
	t.Helper()
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// awaitGatewayJob polls the gateway until the job reaches a terminal
// state.
func awaitGatewayJob(t *testing.T, gatewayURL, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, raw := gatewayJSON(t, http.MethodGet, gatewayURL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: HTTP %d: %s", id, code, raw)
		}
		var st api.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding status: %v\n%s", err, raw)
		}
		if api.JobTerminal(st.State) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return api.JobStatus{}
}

// A job submitted through the gateway must complete on a backend and be
// observable end to end under its external ID: status, result, and the
// scatter-gathered listing.
func TestGatewayJobLifecycle(t *testing.T) {
	_, tsA := newJobsBackend(t, "job-a")
	_, tsB := newJobsBackend(t, "job-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)
	gw := NewGateway(c, GatewayConfig{})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	req := loadgen.SyntheticWorkload(1, 21)[0]
	code, raw := gatewayJSON(t, http.MethodPost, gts.URL+"/v1/jobs", api.JobRequest{SolveRequest: req})
	if code != http.StatusAccepted {
		t.Fatalf("submit answered HTTP %d: %s", code, raw)
	}
	var st api.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding submit answer: %v\n%s", err, raw)
	}
	if st.ID == "" || st.State != api.JobQueued {
		t.Fatalf("submit status = %+v", st)
	}
	if st.Backend != tsA.URL && st.Backend != tsB.URL {
		t.Fatalf("submit status names backend %q, not a member", st.Backend)
	}

	final := awaitGatewayJob(t, gts.URL, st.ID)
	if final.State != api.JobCompleted {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.ID != st.ID {
		t.Fatalf("status ID drifted: submitted %s, polled %s", st.ID, final.ID)
	}
	if final.Resubmitted {
		t.Fatal("healthy-path job reported as resubmitted")
	}

	code, raw = gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result answered HTTP %d: %s", code, raw)
	}
	var result api.SolveResponse
	if err := json.Unmarshal(raw, &result); err != nil {
		t.Fatalf("decoding result: %v\n%s", err, raw)
	}
	if result.Status != "complete" || result.Fingerprint == "" {
		t.Fatalf("result = %+v", result)
	}

	code, raw = gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list answered HTTP %d: %s", code, raw)
	}
	var list api.JobList
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatalf("decoding list: %v\n%s", err, raw)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == st.ID {
			found = true
			if j.Backend == "" {
				t.Fatalf("listed job has no backend: %+v", j)
			}
		}
	}
	if !found {
		t.Fatalf("external ID %s missing from the listing: %+v", st.ID, list.Jobs)
	}

	if got := c.Stats().Jobs; got.Submitted != 1 || got.Tracked != 1 || got.Resubmitted != 0 {
		t.Fatalf("job stats = %+v", got)
	}
}

// Killing the backend that owns a job must not lose it: the next poll
// detects the dead owner and transparently resubmits the job to a
// survivor, keeping the external ID and flagging Resubmitted.
func TestGatewayJobResubmitsWhenOwnerDies(t *testing.T) {
	_, tsA := newJobsBackend(t, "rs-a")
	_, tsB := newJobsBackend(t, "rs-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)
	gw := NewGateway(c, GatewayConfig{})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	req := loadgen.SyntheticWorkload(1, 33)[0]
	code, raw := gatewayJSON(t, http.MethodPost, gts.URL+"/v1/jobs", api.JobRequest{SolveRequest: req})
	if code != http.StatusAccepted {
		t.Fatalf("submit answered HTTP %d: %s", code, raw)
	}
	var st api.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding submit answer: %v\n%s", err, raw)
	}

	// Kill the owning backend and let the prober see the corpse so the
	// loss detector can trust the transport failure.
	survivor := tsB.URL
	if st.Backend == tsB.URL {
		survivor = tsA.URL
	}
	if st.Backend == tsA.URL {
		tsA.Close()
	} else {
		tsB.Close()
	}
	c.ProbeNow()

	// The first poll lands on the corpse, detects the loss, resubmits to
	// the survivor, and answers under the same external ID.
	code, raw = gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("poll after owner death answered HTTP %d: %s", code, raw)
	}
	var moved api.JobStatus
	if err := json.Unmarshal(raw, &moved); err != nil {
		t.Fatalf("decoding moved status: %v\n%s", err, raw)
	}
	if moved.ID != st.ID {
		t.Fatalf("external ID changed across resubmission: %s then %s", st.ID, moved.ID)
	}
	if !moved.Resubmitted || moved.Backend != survivor {
		t.Fatalf("moved status = %+v, want Resubmitted on %s", moved, survivor)
	}

	final := awaitGatewayJob(t, gts.URL, st.ID)
	if final.State != api.JobCompleted {
		t.Fatalf("resubmitted job ended %s: %s", final.State, final.Error)
	}
	code, raw = gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result after resubmission answered HTTP %d: %s", code, raw)
	}
	if got := c.Stats().Jobs; got.Resubmitted != 1 {
		t.Fatalf("resubmitted counter = %d, want 1", got.Resubmitted)
	}

	// The metrics exposition carries the job series.
	code, raw = gatewayJSON(t, http.MethodGet, gts.URL+"/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(raw), "bcc_gate_job_resubmits_total 1") {
		t.Fatalf("metrics after resubmission (HTTP %d) lack bcc_gate_job_resubmits_total 1", code)
	}
}

// Gateway-side job edges: unknown IDs are the gateway's own 404, a
// malformed submission dies at the edge, and a failed job's result
// keeps the backend's 409 contract through the routing tier.
func TestGatewayJobEdges(t *testing.T) {
	_, ts := newJobsBackend(t, "edge-j")
	c := newTestCluster(t, []string{ts.URL}, nil)
	gw := NewGateway(c, GatewayConfig{})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	if code, _ := gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/deadbeef00000000", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job answered HTTP %d, want 404", code)
	}
	if code, _ := gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/deadbeef00000000/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job result answered HTTP %d, want 404", code)
	}
	resp, err := http.Post(gts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submission answered HTTP %d, want 400", resp.StatusCode)
	}

	// A canceled job's result answers 409 through the gateway. Cancel can
	// race completion on a tiny instance, so tolerate the completed path
	// but require the canceled one to keep the 409 contract.
	req := loadgen.SyntheticWorkload(1, 55)[0]
	code, raw := gatewayJSON(t, http.MethodPost, gts.URL+"/v1/jobs", api.JobRequest{SolveRequest: req})
	if code != http.StatusAccepted {
		t.Fatalf("submit answered HTTP %d: %s", code, raw)
	}
	var st api.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding submit answer: %v\n%s", err, raw)
	}
	code, raw = gatewayJSON(t, http.MethodPost, gts.URL+"/v1/jobs/"+st.ID+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel answered HTTP %d: %s", code, raw)
	}
	final := awaitGatewayJob(t, gts.URL, st.ID)
	if final.State == api.JobCanceled {
		if code, _ := gatewayJSON(t, http.MethodGet, gts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
			t.Fatalf("canceled job's result answered HTTP %d, want 409", code)
		}
	}
}
