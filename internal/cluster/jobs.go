package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/resilience"
)

// Async jobs through the routing tier. A job outlives any single HTTP
// exchange, so the gateway cannot stay stateless the way it does for
// solves: it mints an external job ID, remembers which backend owns the
// job (and the original request), and — when that backend dies mid-job
// — resubmits the job once to another backend, transparently to the
// polling client. The external ID never changes across a resubmission;
// the JobStatus the caller sees carries Resubmitted=true and the new
// owning backend instead.
//
// No hedging here, deliberately: a hedged submit would create two
// durable jobs solving the same instance. Failover is one-shot and only
// before the first backend accepted the submission (submit failover) or
// after the owning backend is observed dead (resubmission).

// ErrJobUnknown is returned for an external job ID the gateway is not
// tracking (never submitted here, or evicted from the bounded tracker).
var ErrJobUnknown = errors.New("cluster: unknown job id")

// maxTrackedJobs bounds the gateway's job tracker. Terminal entries are
// evicted first (their backends still serve the record); if the table
// is all live jobs, the oldest is dropped and its pollers get 404 from
// the gateway while the job itself keeps running on its backend.
const maxTrackedJobs = 4096

// gateJob is one tracked job: the external identity plus the owning
// backend and enough request context to resubmit it elsewhere.
type gateJob struct {
	mu          sync.Mutex
	externalID  string
	backendURL  string
	backendID   string // the job's ID on the owning backend
	fp          string
	req         *api.JobRequest
	resubmitted bool
	terminal    bool
	createdUnix int64
}

// rewriteLocked translates a backend's JobStatus into the external view
// (caller holds e.mu): external ID, owning backend, resubmission flag.
func (e *gateJob) rewriteLocked(st *api.JobStatus) *api.JobStatus {
	out := *st
	out.ID = e.externalID
	out.Backend = e.backendURL
	out.Resubmitted = e.resubmitted
	if api.JobTerminal(out.State) {
		e.terminal = true
	}
	return &out
}

// newExternalID mints a gateway job ID (16 hex chars, the same shape as
// backend job IDs, so logs read uniformly).
func newExternalID() (string, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: generating job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// trackJob inserts a tracker entry, evicting beyond the cap (terminal
// first, then oldest).
func (c *Cluster) trackJob(e *gateJob) {
	c.jobsMu.Lock()
	defer c.jobsMu.Unlock()
	if c.trackedJobs == nil {
		c.trackedJobs = map[string]*gateJob{}
	}
	c.trackedJobs[e.externalID] = e
	if len(c.trackedJobs) <= maxTrackedJobs {
		return
	}
	type aged struct {
		id       string
		terminal bool
		ts       int64
	}
	all := make([]aged, 0, len(c.trackedJobs))
	for id, j := range c.trackedJobs {
		j.mu.Lock()
		all = append(all, aged{id, j.terminal, j.createdUnix})
		j.mu.Unlock()
	}
	sort.Slice(all, func(i, k int) bool {
		if all[i].terminal != all[k].terminal {
			return all[i].terminal // terminal evicted before live
		}
		return all[i].ts < all[k].ts
	})
	for _, a := range all {
		if len(c.trackedJobs) <= maxTrackedJobs {
			break
		}
		delete(c.trackedJobs, a.id)
		if !a.terminal {
			c.jobsDroppedLive.Add(1)
		}
	}
}

func (c *Cluster) trackedJob(id string) (*gateJob, bool) {
	c.jobsMu.Lock()
	defer c.jobsMu.Unlock()
	e, ok := c.trackedJobs[id]
	return e, ok
}

// TrackedJobs reports the tracker's current size.
func (c *Cluster) TrackedJobs() int {
	c.jobsMu.Lock()
	defer c.jobsMu.Unlock()
	return len(c.trackedJobs)
}

// SubmitJob routes an async job submission by fingerprint affinity with
// one cross-backend failover (no hedging — a durable job must not be
// submitted twice). On success the returned status carries the
// gateway's external job ID; all later polls must use it.
func (c *Cluster) SubmitJob(ctx context.Context, req *api.JobRequest, fp string) (*api.JobStatus, RouteInfo, error) {
	primary, secondary, affinity := c.pick(fp, nil)
	if primary == nil {
		c.noBackend.Add(1)
		return nil, RouteInfo{}, ErrNoBackends
	}
	if affinity {
		c.affinityPicks.Add(1)
	} else {
		c.fallbackPicks.Add(1)
	}
	route := RouteInfo{BackendURL: primary.url, BackendID: primary.displayID(), Affinity: affinity}

	st, err := c.callSubmitJob(ctx, primary, req)
	owner := primary
	if err != nil && ctx.Err() == nil && client.Retryable(err) && secondary != nil {
		route.FailedOver = true
		c.failovers.Add(1)
		st, err = c.callSubmitJob(ctx, secondary, req)
		owner = secondary
	}
	if err != nil {
		return nil, route, err
	}
	route.BackendURL, route.BackendID = owner.url, owner.displayID()

	ext, err := newExternalID()
	if err != nil {
		// The job is accepted on the backend; answering an error now
		// would orphan it. Fall back to the backend's own ID — unique
		// enough in practice, and still routable via the tracker.
		ext = st.ID
	}
	e := &gateJob{
		externalID:  ext,
		backendURL:  owner.url,
		backendID:   st.ID,
		fp:          fp,
		req:         req,
		createdUnix: time.Now().UnixMilli(),
	}
	c.trackJob(e)
	c.jobSubmits.Add(1)

	e.mu.Lock()
	out := e.rewriteLocked(st)
	e.mu.Unlock()
	return out, route, nil
}

// JobStatus polls a tracked job's status on its owning backend,
// resubmitting the job once to another backend when the owner is
// observed dead (unreachable and ineligible, or answering 404 after
// losing its store).
func (c *Cluster) JobStatus(ctx context.Context, externalID string) (*api.JobStatus, error) {
	e, ok := c.trackedJob(externalID)
	if !ok {
		return nil, ErrJobUnknown
	}
	st, err := c.jobCall(ctx, e, func(b *backend, backendID string) (*api.JobStatus, error) {
		return c.callJobStatus(ctx, b, backendID)
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// JobResult fetches a tracked job's result from its owning backend.
// result is non-nil once the job completed; status carries progress
// while it runs. A failed/canceled job surfaces the backend's 409.
func (c *Cluster) JobResult(ctx context.Context, externalID string) (*api.SolveResponse, *api.JobStatus, error) {
	e, ok := c.trackedJob(externalID)
	if !ok {
		return nil, nil, ErrJobUnknown
	}
	var result *api.SolveResponse
	st, err := c.jobCall(ctx, e, func(b *backend, backendID string) (*api.JobStatus, error) {
		res, status, err := c.callJobResult(ctx, b, backendID)
		if err != nil {
			return nil, err
		}
		result = res
		if status == nil {
			// Completed: the body was the result; synthesize the terminal
			// status for rewriting.
			return &api.JobStatus{ID: backendID, State: api.JobCompleted}, nil
		}
		return status, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if result != nil {
		return result, st, nil
	}
	return nil, st, nil
}

// CancelJob proxies a cancel to the owning backend. No resubmission on
// failure — canceling a job on a dead backend is already its outcome.
func (c *Cluster) CancelJob(ctx context.Context, externalID string) (*api.JobStatus, error) {
	e, ok := c.trackedJob(externalID)
	if !ok {
		return nil, ErrJobUnknown
	}
	e.mu.Lock()
	url, backendID := e.backendURL, e.backendID
	e.mu.Unlock()
	b := c.backendByURL(url)
	if b == nil {
		return nil, fmt.Errorf("cluster: job %s: owning backend %s left the cluster", externalID, url)
	}
	st, err := c.callCancelJob(ctx, b, backendID)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	out := e.rewriteLocked(st)
	e.mu.Unlock()
	return out, nil
}

// ListJobs scatter-gathers GET /v1/jobs across every eligible backend
// and merges the answers, translating tracked jobs to their external
// IDs (jobs submitted directly to a backend, around the gateway, appear
// under their backend ID with the backend URL filled in).
func (c *Cluster) ListJobs(ctx context.Context) *api.JobList {
	m := c.members.Load()
	// Reverse index: backendURL+backendID -> tracked entry.
	type key struct{ url, id string }
	reverse := map[key]*gateJob{}
	c.jobsMu.Lock()
	for _, e := range c.trackedJobs {
		e.mu.Lock()
		reverse[key{e.backendURL, e.backendID}] = e
		e.mu.Unlock()
	}
	c.jobsMu.Unlock()

	var mu sync.Mutex
	var out []api.JobStatus
	var wg sync.WaitGroup
	for _, b := range m.list {
		if !b.eligible() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			list, err := c.callListJobs(ctx, b)
			if err != nil {
				return // a dead backend degrades the listing, not the call
			}
			mu.Lock()
			defer mu.Unlock()
			for _, st := range list.Jobs {
				if e, ok := reverse[key{b.url, st.ID}]; ok {
					e.mu.Lock()
					out = append(out, *e.rewriteLocked(&st))
					e.mu.Unlock()
					continue
				}
				st.Backend = b.url
				out = append(out, st)
			}
		}(b)
	}
	wg.Wait()
	sort.Slice(out, func(i, k int) bool {
		if out[i].CreatedUnixMS != out[k].CreatedUnixMS {
			return out[i].CreatedUnixMS > out[k].CreatedUnixMS
		}
		return out[i].ID > out[k].ID
	})
	return &api.JobList{Jobs: out}
}

// jobCall runs one poll against the job's owning backend, detecting a
// dead owner and resubmitting the job once. call receives the resolved
// backend and the job's current backend-side ID and returns the status
// to rewrite.
func (c *Cluster) jobCall(ctx context.Context, e *gateJob, call func(b *backend, backendID string) (*api.JobStatus, error)) (*api.JobStatus, error) {
	e.mu.Lock()
	url, backendID := e.backendURL, e.backendID
	e.mu.Unlock()

	b := c.backendByURL(url)
	var st *api.JobStatus
	var err error
	if b != nil {
		st, err = call(b, backendID)
		if err == nil {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.rewriteLocked(st), nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	} else {
		err = fmt.Errorf("cluster: owning backend %s left the cluster", url)
	}

	if !c.ownerLost(b, err) {
		return nil, err
	}
	st, rerr := c.resubmitJob(ctx, e, url)
	if rerr != nil {
		return nil, fmt.Errorf("owning backend %s lost job %s (%v); resubmission failed: %w", url, e.externalID, err, rerr)
	}
	return st, nil
}

// ownerLost decides whether a poll failure means the owning backend has
// lost the job for good: the backend left the membership, it answered
// 404 (its store no longer has the record — wiped or misconfigured), or
// the call failed retryably while the backend probes ineligible (down,
// not just slow). A transient error against a healthy backend is NOT a
// loss — the next poll will reach it.
func (c *Cluster) ownerLost(b *backend, err error) bool {
	if b == nil {
		return true
	}
	var he *client.HTTPError
	if errors.As(err, &he) {
		if he.StatusCode == http.StatusNotFound {
			return true
		}
		return retryableStatusCluster(he.StatusCode) && !b.eligible()
	}
	if errors.Is(err, resilience.ErrOpen) {
		return !b.eligible()
	}
	// Transport-level failure: trust it only when the prober agrees the
	// backend is gone.
	return client.Retryable(err) && !b.eligible()
}

// retryableStatusCluster mirrors the client's retry classification for
// status codes (429/408/5xx).
func retryableStatusCluster(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusRequestTimeout || code >= 500
}

// resubmitJob moves a lost job to a new backend, once per job lifetime.
// The original submission request is replayed — the new backend starts
// from scratch (checkpoints live with the dead backend), which
// duplicates work but never loses the job.
func (c *Cluster) resubmitJob(ctx context.Context, e *gateJob, deadURL string) (*api.JobStatus, error) {
	e.mu.Lock()
	if e.resubmitted {
		e.mu.Unlock()
		return nil, errors.New("job already resubmitted once")
	}
	if e.req == nil {
		e.mu.Unlock()
		return nil, errors.New("no stored request to resubmit")
	}
	fp, req := e.fp, e.req
	e.mu.Unlock()

	primary, secondary, _ := c.pick(fp, map[string]bool{deadURL: true})
	if primary == nil {
		c.noBackend.Add(1)
		return nil, ErrNoBackends
	}
	st, err := c.callSubmitJob(ctx, primary, req)
	owner := primary
	if err != nil && ctx.Err() == nil && client.Retryable(err) && secondary != nil {
		st, err = c.callSubmitJob(ctx, secondary, req)
		owner = secondary
	}
	if err != nil {
		return nil, err
	}
	c.jobResubmits.Add(1)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.backendURL, e.backendID = owner.url, st.ID
	e.resubmitted = true
	return e.rewriteLocked(st), nil
}

// Per-backend job calls, each under the backend's breaker with outcome
// accounting (mirrors callSolve).

func (c *Cluster) callSubmitJob(ctx context.Context, b *backend, req *api.JobRequest) (*api.JobStatus, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	start := time.Now()
	st, err := c.cl.SubmitJobOpts(ctx, req, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, time.Since(start), err)
	return st, err
}

func (c *Cluster) callJobStatus(ctx context.Context, b *backend, id string) (*api.JobStatus, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	st, err := c.cl.JobStatusOpts(ctx, id, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, 0, err)
	return st, err
}

func (c *Cluster) callJobResult(ctx context.Context, b *backend, id string) (*api.SolveResponse, *api.JobStatus, error) {
	if !b.breaker.Allow() {
		return nil, nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	res, st, err := c.cl.JobResultOpts(ctx, id, &client.CallOpts{BaseURL: b.url})
	if errors.Is(err, client.ErrJobNotCompleted) {
		// A clean terminal answer, not a backend failure.
		c.recordOutcome(b, 0, nil)
		return nil, nil, err
	}
	c.recordOutcome(b, 0, err)
	return res, st, err
}

func (c *Cluster) callCancelJob(ctx context.Context, b *backend, id string) (*api.JobStatus, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	st, err := c.cl.CancelJobOpts(ctx, id, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, 0, err)
	return st, err
}

func (c *Cluster) callListJobs(ctx context.Context, b *backend) (*api.JobList, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	list, err := c.cl.ListJobsOpts(ctx, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, 0, err)
	return list, err
}

// JobStats is the cluster's async-job routing view in Stats.
type JobStats struct {
	// Submitted counts jobs accepted through the gateway; Resubmitted
	// counts transparent re-submissions after an owning backend died.
	Submitted   uint64 `json:"submitted"`
	Resubmitted uint64 `json:"resubmitted"`
	// Tracked is the tracker's current size; DroppedLive counts live
	// (non-terminal) entries evicted by the tracker cap — their jobs keep
	// running on their backends, but the gateway can no longer answer
	// polls for them.
	Tracked     int    `json:"tracked"`
	DroppedLive uint64 `json:"dropped_live"`
}

// jobStats captures the job counters.
func (c *Cluster) jobStats() JobStats {
	return JobStats{
		Submitted:   c.jobSubmits.Load(),
		Resubmitted: c.jobResubmits.Load(),
		Tracked:     c.TrackedJobs(),
		DroppedLive: c.jobsDroppedLive.Load(),
	}
}

// initJobMetrics registers the bcc_gate_job_* series (called from
// initMetrics).
func (c *Cluster) initJobMetrics() {
	c.reg.CounterFunc("bcc_gate_job_submits_total", "Async jobs accepted through the gateway.", nil,
		func() float64 { return float64(c.jobSubmits.Load()) })
	c.reg.CounterFunc("bcc_gate_job_resubmits_total", "Jobs transparently resubmitted after their owning backend died.", nil,
		func() float64 { return float64(c.jobResubmits.Load()) })
	c.reg.GaugeFunc("bcc_gate_jobs_tracked", "Jobs currently tracked by the gateway.", nil,
		func() float64 { return float64(c.TrackedJobs()) })
	c.reg.CounterFunc("bcc_gate_jobs_dropped_live_total", "Live tracker entries evicted by the cap (jobs keep running on their backends).", nil,
		func() float64 { return float64(c.jobsDroppedLive.Load()) })
}
