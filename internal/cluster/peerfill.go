package cluster

import (
	"context"
	"time"

	"repro/internal/algo"
	"repro/internal/api"
	"repro/internal/client"
)

// Fleet peer fill (DESIGN.md §17): when a backend joins a running
// cluster, rendezvous hashing remaps a slice of every other member's
// fingerprints onto it — and its solution cache is cold for all of
// them. Instead of re-solving each remapped instance from scratch, the
// gateway fetches the previous owner's cached plan through the
// cache-entry export (GET /v1/cache/entry) and attaches it to the
// request as a warm seed. The new owner repairs the plan against the
// instance and solves warm, held to the IG1 quality floor like every
// other warm path — so peer fill can only buy latency, never cost
// answer quality.
//
// The "previous owner" is the next backend in rendezvous order after
// the new primary: exactly the member the fingerprint mapped to before
// the join (the cluster already computes it as the hedge/failover
// secondary).

// maybePeerFill returns req, or a copy with WarmPlan attached when a
// peer fill applies and the donor had a usable plan. Fill applies when
// the primary joined within the configured window, the request carries
// no warm seed of its own, the cache is in play, and the algorithm can
// consume warm starts. Failures are misses, never errors: the solve
// proceeds cold exactly as it would have without peer fill.
func (c *Cluster) maybePeerFill(ctx context.Context, req *api.SolveRequest, fp, fp2 string, primary, donor *backend) *api.SolveRequest {
	if c.cfg.PeerFillWindow < 0 || donor == nil || len(req.WarmPlan) > 0 || req.NoCache {
		return req
	}
	joined := primary.joinedAtNS.Load()
	if joined == 0 || time.Since(time.Unix(0, joined)) > c.cfg.PeerFillWindow {
		return req
	}
	algoName := req.Algo
	if algoName == "" {
		algoName = "abcc"
	}
	if d, ok := algo.Lookup(algoName); !ok || !d.WarmStart {
		return req
	}

	fctx, cancel := context.WithTimeout(ctx, c.cfg.PeerFillTimeout)
	defer cancel()
	opts := &client.CallOpts{BaseURL: donor.url}
	entry, err := c.cl.CacheEntryOpts(fctx, api.CacheKey(fp, algoName, req.Seed, req.Target), opts)
	if !usablePlan(entry, err) && fp2 != "" {
		// No exact answer on the donor; any near-miss sibling (same
		// queries, different budget/utilities) still seeds well.
		entry, err = c.cl.CacheSiblingOpts(fctx, fp2, algoName, opts)
	}
	if !usablePlan(entry, err) {
		c.peerFillMisses.Add(1)
		return req
	}
	warm := make([][]string, len(entry.Response.Classifiers))
	for i, pc := range entry.Response.Classifiers {
		warm[i] = pc.Props
	}
	c.peerFills.Add(1)
	filled := *req
	filled.WarmPlan = warm
	return &filled
}

func usablePlan(entry *api.CacheEntryResponse, err error) bool {
	return err == nil && entry != nil && entry.Response != nil && len(entry.Response.Classifiers) > 0
}
