package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/loadgen"
)

// clusterSoak extends TestClusterSmoke with a timed load phase through
// the gateway (make cluster-smoke runs it at 10s). Zero keeps the test
// short for plain `go test`.
var clusterSoak = flag.Duration("cluster.soak", 0, "extra load-soak duration for TestClusterSmoke")

// postSolve sends one request to the gateway the way a plain HTTP
// client would, returning the decoded response and the backend header.
func postSolve(t *testing.T, gatewayURL string, req *api.SolveRequest) (*api.SolveResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(gatewayURL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve: HTTP %d: %s", resp.StatusCode, raw)
	}
	var out api.SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding solve response: %v\n%s", err, raw)
	}
	return &out, resp.Header.Get(api.BackendHeader)
}

// TestClusterSmoke is the PR's acceptance scenario end to end, over
// real HTTP on both hops (client → gateway → backends):
//
//  1. warm N distinct instances through the gateway, re-send each, and
//     require cached=true from the same backend (X-BCC-Backend match) —
//     fingerprint affinity is doing its job;
//  2. kill the backend that served instance 0 and require the re-sent
//     key to be re-routed and still answered with a valid status;
//  3. push a batch through the degraded fleet and require every item
//     answered in input order.
//
// With -cluster.soak > 0 (make cluster-smoke) a loadgen phase hammers
// the degraded gateway and requires a high success rate and zero
// transport-level failures.
func TestClusterSmoke(t *testing.T) {
	backends := map[string]struct {
		srv interface{ BackendID() string }
		ts  *httptest.Server
	}{}
	srvA, tsA := newRealBackend(t, "smoke-a")
	srvB, tsB := newRealBackend(t, "smoke-b")
	backends["smoke-a"] = struct {
		srv interface{ BackendID() string }
		ts  *httptest.Server
	}{srvA, tsA}
	backends["smoke-b"] = struct {
		srv interface{ BackendID() string }
		ts  *httptest.Server
	}{srvB, tsB}

	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, func(cfg *Config) {
		cfg.ProbeInterval = 100 * time.Millisecond
	})
	gw := NewGateway(c, GatewayConfig{})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	// Phase 1: affinity. Each re-sent instance must be a cache hit on the
	// same backend that solved it.
	reqs := loadgen.SyntheticWorkload(5, 7)
	firstBackend := make([]string, len(reqs))
	for i := range reqs {
		resp1, id1 := postSolve(t, gts.URL, &reqs[i])
		if resp1.Cached {
			t.Fatalf("instance %d: cached on first contact", i)
		}
		if id1 != "smoke-a" && id1 != "smoke-b" {
			t.Fatalf("instance %d: unexpected backend header %q", i, id1)
		}
		resp2, id2 := postSolve(t, gts.URL, &reqs[i])
		if !resp2.Cached {
			t.Fatalf("instance %d: re-sent instance missed the cache (first on %s, then on %s)", i, id1, id2)
		}
		if id2 != id1 {
			t.Fatalf("instance %d: affinity broke across sends: %s then %s", i, id1, id2)
		}
		firstBackend[i] = id1
	}

	// Phase 2: kill the backend owning instance 0; the key must re-route
	// and still be answered.
	victim := backends[firstBackend[0]]
	survivorID := "smoke-a"
	if firstBackend[0] == "smoke-a" {
		survivorID = "smoke-b"
	}
	victim.ts.Close()

	resp3, id3 := postSolve(t, gts.URL, &reqs[0])
	if id3 != survivorID {
		t.Fatalf("after killing %s the key was answered by %q, want %q", firstBackend[0], id3, survivorID)
	}
	if resp3.Status == "" {
		t.Fatal("re-routed answer carries no status")
	}

	// Phase 3: a batch through the degraded fleet — complete, ordered,
	// every item answered.
	fps := make([]string, len(reqs))
	for i := range reqs {
		fps[i] = mustFingerprint(t, &reqs[i])
	}
	body, _ := json.Marshal(api.BatchRequest{Requests: reqs})
	bresp, err := http.Post(gts.URL+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve/batch: %v", err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch answered HTTP %d", bresp.StatusCode)
	}
	var batch api.BatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&batch); err != nil {
		t.Fatalf("decoding batch: %v", err)
	}
	if len(batch.Responses) != len(reqs) {
		t.Fatalf("batch answered %d items for %d requests", len(batch.Responses), len(reqs))
	}
	for i, item := range batch.Responses {
		if item.Result == nil {
			t.Fatalf("batch item %d lost in the degraded fleet: %q (code %d)", i, item.Error, item.Code)
		}
		if item.Result.Fingerprint != fps[i] {
			t.Fatalf("batch item %d out of order: fingerprint %s, want %s", i, item.Result.Fingerprint, fps[i])
		}
	}

	// The gateway's health must still be green with one backend down.
	hresp, err := http.Get(gts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET /v1/healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("gateway healthz = %d with a surviving backend", hresp.StatusCode)
	}

	// Optional soak: sustained load through the degraded gateway.
	if *clusterSoak > 0 {
		cl, err := client.New(client.Config{BaseURL: gts.URL, MaxAttempts: 2, DisableBreaker: true})
		if err != nil {
			t.Fatalf("client for soak: %v", err)
		}
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			Client:      cl,
			Requests:    reqs,
			Concurrency: 4,
			Duration:    *clusterSoak,
			BatchEvery:  7,
		})
		if err != nil {
			t.Fatalf("soak: %v", err)
		}
		t.Logf("soak report:\n%s", rep.String())
		if rep.Ops == 0 {
			t.Fatal("soak produced no operations")
		}
		if rep.Errors["transport"] > 0 {
			t.Fatalf("soak saw %d transport failures through the gateway", rep.Errors["transport"])
		}
		if rep.OK < rep.Ops*9/10 {
			t.Fatalf("soak success rate too low: %d ok of %d ops", rep.OK, rep.Ops)
		}
		st := c.Stats()
		t.Logf("cluster after soak: affinity=%d fallback=%d hedges=%d won=%d failovers=%d",
			st.AffinityPicks, st.FallbackPicks, st.Hedges, st.HedgeWins, st.Failovers)
	}
}

// The gateway must reject malformed input at the edge with the same
// contract as a backend, and serve its observability endpoints.
func TestGatewayEdgeBehavior(t *testing.T) {
	_, ts := newRealBackend(t, "edge-a")
	c := newTestCluster(t, []string{ts.URL}, nil)
	gw := NewGateway(c, GatewayConfig{MaxBatch: 2})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	post := func(path, body string) (int, string) {
		resp, err := http.Post(gts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, _ := post("/v1/solve", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON answered %d, want 400", code)
	}
	if code, _ := post("/v1/solve", `{"bogus_field": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field answered %d, want 400", code)
	}
	if code, body := post("/v1/solve", `{"instance":{"queries":[]}}`); code != http.StatusBadRequest {
		t.Fatalf("invalid instance answered %d: %s", code, body)
	}
	if code, _ := post("/v1/solve/batch", `{"requests":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch answered %d, want 400", code)
	}
	req := loadgen.SyntheticWorkload(1, 11)[0]
	one, _ := json.Marshal(req)
	over := fmt.Sprintf(`{"requests":[%s,%s,%s]}`, one, one, one)
	if code, _ := post("/v1/solve/batch", over); code != http.StatusBadRequest {
		t.Fatalf("over-cap batch answered %d, want 400", code)
	}

	// A batch mixing valid and invalid items answers 200 with per-item
	// errors in place.
	mixed := fmt.Sprintf(`{"requests":[%s,{"instance":{"queries":[]}}]}`, one)
	code, body := post("/v1/solve/batch", mixed)
	if code != http.StatusOK {
		t.Fatalf("mixed batch answered %d: %s", code, body)
	}
	var batch api.BatchResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatalf("decoding mixed batch: %v", err)
	}
	if len(batch.Responses) != 2 || batch.Responses[0].Result == nil || batch.Responses[1].Code != http.StatusBadRequest {
		t.Fatalf("mixed batch items wrong: %+v", batch.Responses)
	}

	for _, path := range []string{"/v1/statz", "/metrics"} {
		resp, err := http.Get(gts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s answered %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(raw), "bcc_gate_backends") {
			t.Fatalf("metrics exposition lacks cluster series:\n%s", raw)
		}
		if path == "/v1/statz" && !strings.Contains(string(raw), `"cluster"`) {
			t.Fatalf("statz lacks cluster section:\n%s", raw)
		}
	}

	// Drain: healthz flips to 503 while solves keep answering.
	gw.BeginDrain()
	hresp, err := http.Get(gts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET /v1/healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway healthz = %d, want 503", hresp.StatusCode)
	}
	if code, body := post("/v1/solve", string(one)); code != http.StatusOK {
		t.Fatalf("draining gateway refused a solve: %d %s", code, body)
	}
}
