package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/incr"
	"repro/internal/loadgen"
)

// doSolve is postSolve without t.Fatalf, safe to call from load
// goroutines.
func doSolve(gatewayURL string, req *api.SolveRequest) (*api.SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(gatewayURL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	var out api.SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TestPeerFillOnBackendJoin is the PR's cluster acceptance scenario:
// a third backend joins mid-load, rendezvous remaps a slice of the
// keyspace onto its cold cache, and the gateway fills those solves from
// the previous owner's cache — at least one peer fill happens, and no
// request (before, during, or after the join) is ever answered below
// the IG1 quality floor. Run under -race by make race / CI.
func TestPeerFillOnBackendJoin(t *testing.T) {
	_, tsA := newRealBackend(t, "pf-a")
	_, tsB := newRealBackend(t, "pf-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)
	gw := NewGateway(c, GatewayConfig{})
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	reqs := loadgen.SyntheticWorkload(20, 42)
	floors := make([]float64, len(reqs))
	for i := range reqs {
		reqs[i].IncludePlan = true
		in, err := dataset.FromFormat(reqs[i].Instance)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		floors[i] = incr.Floor(in)
	}

	// Phase 1: prime both initial backends so every fingerprint has a
	// cached plan somewhere in the fleet.
	for i := range reqs {
		resp, _ := postSolve(t, gts.URL, &reqs[i])
		if resp.Utility < floors[i] {
			t.Fatalf("primed instance %d: utility %v below IG1 floor %v", i, resp.Utility, floors[i])
		}
	}

	// Phase 2: load goroutines replay the workload while the third
	// backend joins. Every answer is floor-checked as it arrives.
	_, tsC := newRealBackend(t, "pf-c")
	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Int64
		loadErrs   atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := i % len(reqs)
				resp, err := doSolve(gts.URL, &reqs[idx])
				if err != nil {
					loadErrs.Add(1)
					continue
				}
				if resp.Utility < floors[idx] {
					violations.Add(1)
					t.Errorf("instance %d answered with utility %v below floor %v (warm_source %q)",
						idx, resp.Utility, floors[idx], resp.WarmSource)
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.SetBackends([]string{tsA.URL, tsB.URL, tsC.URL}); err != nil {
		t.Fatalf("SetBackends join: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Phase 3: determinism backstop — explicitly re-send every instance
	// the new membership remaps onto the joiner, so at least one
	// peer-fill attempt is guaranteed even if the load phase raced past
	// the join.
	remapped := 0
	for i := range reqs {
		fp, _, apiErr := RouteFingerprints(&reqs[i])
		if apiErr != nil {
			t.Fatalf("fingerprint %d: %v", i, apiErr)
		}
		if Rank(fp, []string{tsA.URL, tsB.URL, tsC.URL})[0] != tsC.URL {
			continue
		}
		remapped++
		resp, _ := postSolve(t, gts.URL, &reqs[i])
		if resp.Utility < floors[i] {
			t.Errorf("remapped instance %d: utility %v below floor %v", i, resp.Utility, floors[i])
		}
	}
	if remapped == 0 {
		t.Fatal("workload has no instance remapping to the joiner; grow the workload")
	}

	st := c.Stats()
	if st.PeerFills < 1 {
		t.Fatalf("cluster stats = %+v after %d remapped keys, want peer_fills >= 1", st, remapped)
	}
	if violations.Load() > 0 {
		t.Fatalf("%d responses below the IG1 quality floor", violations.Load())
	}
	if loadErrs.Load() > 0 {
		t.Logf("load phase: %d transient errors (tolerated; floors checked on successes)", loadErrs.Load())
	}

	// The counter is also the bcc_incr_peer_fill_total metric on the
	// gateway's scrape endpoint.
	mresp, err := http.Get(gts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	if !peerFillMetricPositive(string(metrics)) {
		t.Errorf("bcc_incr_peer_fill_total not positive in gateway metrics")
	}
}

func peerFillMetricPositive(metrics string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "bcc_incr_peer_fill_total") && !strings.HasSuffix(strings.TrimSpace(line), " 0") {
			fields := strings.Fields(line)
			return len(fields) == 2 && fields[1] != "0"
		}
	}
	return false
}
