package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// ErrNoBackends is returned when no backend is eligible to take a
// request: every member is unhealthy, draining, breaker-open, or the
// membership is empty. The gateway maps it to HTTP 503.
var ErrNoBackends = errors.New("cluster: no eligible backend")

// Config tunes a Cluster. Backends is required; everything else has
// defaults.
type Config struct {
	// Backends are the initial member base URLs (e.g.
	// "http://10.0.0.1:8080"). Order does not matter — routing is by
	// rendezvous hash, not position.
	Backends []string
	// ProbeInterval is how often every member's /v1/healthz is polled
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout caps one health probe (default: ProbeInterval capped
	// at 2s).
	ProbeTimeout time.Duration
	// HedgeAfter controls hedged solve requests: 0 (default) derives the
	// delay from the observed HedgeQuantile of backend latency, a
	// positive value fixes the delay, and a negative value disables
	// hedging entirely.
	HedgeAfter time.Duration
	// HedgeQuantile is the latency quantile the auto hedge delay tracks
	// (default 0.9). Auto hedging stays off until hedgeMinSamples calls
	// have been observed.
	HedgeQuantile float64
	// Breaker overrides the per-backend circuit breaker policy (nil =
	// 3 consecutive failures trip it, 2s cooldown).
	Breaker *resilience.BreakerConfig
	// MaxAttempts is the shared client's per-call attempt budget against
	// one backend (default 1: cross-backend failover is the cluster's
	// job, hammering a failing backend with intra-call retries is not).
	MaxAttempts int
	// HTTPClient overrides the transport of the shared API client.
	HTTPClient *http.Client
	// Registry receives the cluster's metric series (nil = a fresh one).
	Registry *obs.Registry
	// PeerFillWindow bounds how long after joining the membership a
	// backend counts as "new" for fleet peer fill (peerfill.go): a
	// rendezvous-remapped request landing on a new backend within the
	// window first fetches the previous owner's cached plan as a warm
	// start. Default 30s; negative disables peer fill.
	PeerFillWindow time.Duration
	// PeerFillTimeout caps one peer cache-entry fetch (default 500ms) —
	// peer fill is an accelerator and must never stall the solve it
	// serves.
	PeerFillTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > 2*time.Second {
			c.ProbeTimeout = 2 * time.Second
		}
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.9
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.PeerFillWindow == 0 {
		c.PeerFillWindow = 30 * time.Second
	}
	if c.PeerFillTimeout <= 0 {
		c.PeerFillTimeout = 500 * time.Millisecond
	}
	return c
}

// hedgeMinSamples is how many observed backend calls the auto hedge
// delay needs before it trusts its quantile estimate.
const hedgeMinSamples = 20

// hedgeDelayBounds clamp the auto-derived hedge delay: never hedge
// sooner than 5ms (a quantile estimated from cache hits would duplicate
// every solve), never wait longer than 2s to help tail latency at all.
const (
	hedgeDelayMin = 5 * time.Millisecond
	hedgeDelayMax = 2 * time.Second
)

// acct is the per-URL accounting that outlives membership changes:
// in-flight calls and a latency EWMA (fed by the shared client's
// OnCallStart/OnCallEnd hooks) plus cumulative request/failure counts.
// Keeping it keyed by URL rather than on the member struct means a
// backend that leaves and rejoins keeps its counters monotonic, which
// is what the Prometheus scrape contract demands.
type acct struct {
	inflight atomic.Int64
	ewmaNS   atomic.Int64 // 0 = no sample yet
	requests atomic.Uint64
	failures atomic.Uint64
}

// observeLatency folds one successful call into the EWMA (α = 0.3).
func (a *acct) observeLatency(d time.Duration) {
	for {
		old := a.ewmaNS.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)*3/10
		}
		if next == 0 {
			next = 1 // keep "has a sample" distinguishable from "never"
		}
		if a.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// backend is one cluster member: identity, health as seen by the probe
// loop, and its circuit breaker. The accounting lives in acct (per-URL,
// persistent across membership changes).
type backend struct {
	url     string
	breaker *resilience.Breaker
	acct    *acct

	// joinedAtNS is when this backend entered an already-running
	// membership (0 for initial members): the peer-fill window anchor.
	// A backend that was in the initial set never peer-fills — there was
	// no previous owner to fetch from.
	joinedAtNS atomic.Int64

	healthy    atomic.Bool
	draining   atomic.Bool
	reportedID atomic.Value // string: X-BCC-Backend from the last probe
	probeErr   atomic.Value // string: last probe failure, "" when fine
}

// displayID is the backend's self-reported process ID when a probe has
// seen one, else its URL — always something an operator can grep for.
func (b *backend) displayID() string {
	if id, _ := b.reportedID.Load().(string); id != "" {
		return id
	}
	return b.url
}

// eligible reports whether routing may pick this backend: probed
// healthy, not draining, and its breaker either not open or due for a
// half-open probe (the actual admission happens in callSolve via
// Breaker.Allow).
func (b *backend) eligible() bool {
	if !b.healthy.Load() || b.draining.Load() {
		return false
	}
	if b.breaker.State() == resilience.Open && b.breaker.OpenRemaining() > 0 {
		return false
	}
	return true
}

// membership is the immutable snapshot routing reads: swap-on-write so
// the hot path never takes a lock.
type membership struct {
	list  []*backend
	byURL map[string]*backend
	urls  []string
}

// Cluster is the routing tier over N bccserver backends. Create one
// with New, route through Solve / SolveBatch, and Close it to stop the
// probe loop.
type Cluster struct {
	cfg Config
	cl  *client.Client
	reg *obs.Registry

	members atomic.Pointer[membership]
	accts   sync.Map // url -> *acct

	metricsMu  sync.Mutex
	registered map[string]bool // backend URLs with registered series

	latHist *obs.Histogram // successful solve-call latency, feeds hedging

	affinityPicks  atomic.Uint64
	fallbackPicks  atomic.Uint64
	hedges         atomic.Uint64
	hedgeWins      atomic.Uint64
	failovers      atomic.Uint64
	noBackend      atomic.Uint64
	peerFills      atomic.Uint64
	peerFillMisses atomic.Uint64

	// Async-job tracking (jobs.go): external job ID -> owning backend.
	jobsMu          sync.Mutex
	trackedJobs     map[string]*gateJob
	jobSubmits      atomic.Uint64
	jobResubmits    atomic.Uint64
	jobsDroppedLive atomic.Uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	loopWG   sync.WaitGroup
	probe    *http.Client
	rngMu    sync.Mutex
	rng      func(n int) int
}

// New builds a Cluster, runs one synchronous probe round so routing has
// real health before the first request, and starts the periodic probe
// loop.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	c := &Cluster{
		cfg:        cfg,
		reg:        cfg.Registry,
		registered: map[string]bool{},
		stopCh:     make(chan struct{}),
		probe:      &http.Client{Timeout: cfg.ProbeTimeout},
	}
	c.latHist = c.reg.Histogram("bcc_gate_backend_seconds",
		"Latency of successful backend solve calls (feeds the hedge delay).", nil, obs.DefBuckets)

	cl, err := client.New(client.Config{
		// The base is always overridden per call; any member URL
		// satisfies the client's non-empty contract.
		BaseURL:        cfg.Backends[0],
		HTTPClient:     cfg.HTTPClient,
		MaxAttempts:    cfg.MaxAttempts,
		DisableBreaker: true, // breakers are per backend, owned here
		OnCallStart: func(base string) {
			c.acctFor(base).inflight.Add(1)
		},
		OnCallEnd: func(base string, elapsed time.Duration, err error) {
			a := c.acctFor(base)
			a.inflight.Add(-1)
			if err == nil {
				a.observeLatency(elapsed)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	c.cl = cl

	c.initMetrics()
	if err := c.SetBackends(cfg.Backends); err != nil {
		return nil, err
	}
	c.loopWG.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the probe loop. In-flight requests finish on their own.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.loopWG.Wait()
}

// Registry exposes the metric registry (the gateway serves it on
// /metrics).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Client exposes the shared API client (tests and statz).
func (c *Cluster) Client() *client.Client { return c.cl }

// acctFor returns the persistent per-URL accounting cell.
func (c *Cluster) acctFor(url string) *acct {
	if a, ok := c.accts.Load(url); ok {
		return a.(*acct)
	}
	a, _ := c.accts.LoadOrStore(url, &acct{})
	return a.(*acct)
}

// backendByURL resolves a URL against the current membership (nil when
// not a member — e.g. a removed backend still referenced by a metric
// closure).
func (c *Cluster) backendByURL(url string) *backend {
	if m := c.members.Load(); m != nil {
		return m.byURL[url]
	}
	return nil
}

// Backends returns the current member URLs (copy).
func (c *Cluster) Backends() []string {
	m := c.members.Load()
	return append([]string(nil), m.urls...)
}

// EligibleBackends counts members routing could pick right now.
func (c *Cluster) EligibleBackends() int {
	n := 0
	for _, b := range c.members.Load().list {
		if b.eligible() {
			n++
		}
	}
	return n
}

// SetBackends replaces the membership with urls (normalized, deduped).
// Backends present before and after keep their breaker, health and
// accounting state — a SIGHUP that only adds a member must not reset
// the breakers of the others — and the new set is probed synchronously
// so routing never runs on assumed health.
func (c *Cluster) SetBackends(urls []string) error {
	seen := map[string]bool{}
	norm := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if !seen[u] {
			seen[u] = true
			norm = append(norm, u)
		}
	}
	if len(norm) == 0 {
		return errors.New("cluster: backend list is empty")
	}

	old := c.members.Load()
	list := make([]*backend, 0, len(norm))
	byURL := make(map[string]*backend, len(norm))
	for _, u := range norm {
		var b *backend
		if old != nil {
			b = old.byURL[u]
		}
		if b == nil {
			bcfg := resilience.BreakerConfig{ConsecutiveFailures: 3, Cooldown: 2 * time.Second}
			if c.cfg.Breaker != nil {
				bcfg = *c.cfg.Breaker
			}
			b = &backend{url: u, breaker: resilience.NewBreaker(bcfg), acct: c.acctFor(u)}
			b.healthy.Store(true) // innocent until the probe below says otherwise
			b.reportedID.Store("")
			b.probeErr.Store("")
			if old != nil {
				// A mid-life join: requests remapped here find a cold
				// cache, so peer fill applies for the next window.
				b.joinedAtNS.Store(time.Now().UnixNano())
			}
		}
		list = append(list, b)
		byURL[u] = b
		c.registerBackendMetrics(u)
	}
	c.members.Store(&membership{list: list, byURL: byURL, urls: norm})
	c.ProbeNow()
	return nil
}

// probeLoop polls every member's /v1/healthz until Close.
func (c *Cluster) probeLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// ProbeNow probes every member once, concurrently, and waits for the
// round to finish. Exported for the SIGHUP reload path and tests.
func (c *Cluster) ProbeNow() {
	m := c.members.Load()
	if m == nil {
		return
	}
	var wg sync.WaitGroup
	for _, b := range m.list {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c.probeOne(b)
		}(b)
	}
	wg.Wait()
}

// probeOne updates one backend's health from GET /v1/healthz: 200 is
// serving, 503 is draining (kept distinct so statz explains *why* it is
// out of rotation), anything else — including transport failure — is
// unhealthy. The X-BCC-Backend header teaches the cluster the backend's
// self-reported process ID.
func (c *Cluster) probeOne(b *backend) {
	resp, err := c.probe.Get(b.url + "/v1/healthz")
	if err != nil {
		b.healthy.Store(false)
		b.draining.Store(false)
		b.probeErr.Store(err.Error())
		return
	}
	defer resp.Body.Close()
	if id := resp.Header.Get(api.BackendHeader); id != "" {
		b.reportedID.Store(id)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		b.healthy.Store(true)
		b.draining.Store(false)
		b.probeErr.Store("")
	case resp.StatusCode == http.StatusServiceUnavailable:
		b.healthy.Store(true)
		b.draining.Store(true)
		b.probeErr.Store("")
	default:
		b.healthy.Store(false)
		b.draining.Store(false)
		b.probeErr.Store(fmt.Sprintf("healthz answered %d", resp.StatusCode))
	}
}

// randIntn picks a uniform int in [0,n) — injectable for deterministic
// fallback tests, mutex-guarded because picks race.
func (c *Cluster) randIntn(n int) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng != nil {
		return c.rng(n)
	}
	return pseudoRand(n)
}

// pick chooses the primary backend for fingerprint fp plus a distinct
// secondary (hedge/failover target), skipping excluded URLs. When the
// rendezvous-first backend is eligible, that is the primary (affinity
// hit) and the secondary is the next eligible backend in rendezvous
// order. When the affinity target is out (unhealthy, draining, breaker
// open), the fallback is power-of-two-choices over the eligible
// backends by observed in-flight (latency EWMA breaking ties) — load-
// aware without a global queue-length oracle.
func (c *Cluster) pick(fp string, exclude map[string]bool) (primary, secondary *backend, affinity bool) {
	m := c.members.Load()
	urls := make([]string, 0, len(m.urls))
	for _, u := range m.urls {
		if !exclude[u] {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, nil, false
	}
	ranked := Rank(fp, urls)
	first := m.byURL[ranked[0]]
	if first.eligible() {
		var second *backend
		for _, u := range ranked[1:] {
			if b := m.byURL[u]; b.eligible() {
				second = b
				break
			}
		}
		return first, second, true
	}

	eligible := make([]*backend, 0, len(ranked))
	for _, u := range ranked {
		if b := m.byURL[u]; b.eligible() {
			eligible = append(eligible, b)
		}
	}
	switch len(eligible) {
	case 0:
		return nil, nil, false
	case 1:
		return eligible[0], nil, false
	}
	i := c.randIntn(len(eligible))
	j := c.randIntn(len(eligible) - 1)
	if j >= i {
		j++
	}
	a, b := eligible[i], eligible[j]
	if lighterLoad(b, a) {
		a, b = b, a
	}
	return a, b, false
}

// lighterLoad orders two backends by observed load: fewer in-flight
// calls wins, latency EWMA breaks ties.
func lighterLoad(x, y *backend) bool {
	xi, yi := x.acct.inflight.Load(), y.acct.inflight.Load()
	if xi != yi {
		return xi < yi
	}
	return x.acct.ewmaNS.Load() < y.acct.ewmaNS.Load()
}

// hedgeDelay reports the current hedge delay and whether hedging is
// active: a fixed configured delay, or the observed HedgeQuantile of
// backend call latency (clamped to [5ms, 2s]) once enough samples
// exist.
func (c *Cluster) hedgeDelay() (time.Duration, bool) {
	if c.cfg.HedgeAfter < 0 {
		return 0, false
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter, true
	}
	if c.latHist.Count() < hedgeMinSamples {
		return 0, false
	}
	q, ok := c.latHist.Quantile(c.cfg.HedgeQuantile)
	if !ok {
		return 0, false
	}
	d := time.Duration(q * float64(time.Second))
	if d < hedgeDelayMin {
		d = hedgeDelayMin
	}
	if d > hedgeDelayMax {
		d = hedgeDelayMax
	}
	return d, true
}

// RouteInfo describes how one solve was routed — surfaced as the
// gateway's X-BCC-Backend header and in its statz.
type RouteInfo struct {
	// BackendURL is the member that produced the returned response.
	BackendURL string
	// BackendID is that member's self-reported process ID (URL when the
	// probe has not seen one yet).
	BackendID string
	// Affinity reports the request landed on its rendezvous-first
	// backend — the one whose cache should hold its solution.
	Affinity bool
	// Hedged / HedgeWon report a tail-latency hedge was fired / that
	// the hedge's response was the one used.
	Hedged   bool
	HedgeWon bool
	// FailedOver reports the primary failed and the secondary answered.
	FailedOver bool
	// PeerFilled reports the request was warm-seeded with a cached plan
	// fetched from the previous owner before dispatch (peerfill.go).
	PeerFilled bool
}

// outcome is one backend call's result inside Solve.
type outcome struct {
	resp *api.SolveResponse
	err  error
	b    *backend
}

// Solve routes one request by fingerprint affinity, with hedging and
// one cross-backend failover. fp is the instance's canonical
// fingerprint (the routing key).
func (c *Cluster) Solve(ctx context.Context, req *api.SolveRequest, fp string) (*api.SolveResponse, RouteInfo, error) {
	return c.SolveRouted(ctx, req, fp, "")
}

// SolveRouted is Solve with the near-miss hash (bccfp2/1) available for
// fleet peer fill: when the chosen primary joined the membership
// recently (its cache is cold for remapped fingerprints), the previous
// owner's cached plan — exact key first, near-miss sibling second — is
// attached as the request's warm seed before dispatch. fp2 may be empty
// (exact-key peer fill still applies).
func (c *Cluster) SolveRouted(ctx context.Context, req *api.SolveRequest, fp, fp2 string) (*api.SolveResponse, RouteInfo, error) {
	primary, secondary, affinity := c.pick(fp, nil)
	if primary == nil {
		c.noBackend.Add(1)
		return nil, RouteInfo{}, ErrNoBackends
	}
	if affinity {
		c.affinityPicks.Add(1)
	} else {
		c.fallbackPicks.Add(1)
	}
	route := RouteInfo{BackendURL: primary.url, BackendID: primary.displayID(), Affinity: affinity}
	if filled := c.maybePeerFill(ctx, req, fp, fp2, primary, secondary); filled != req {
		req = filled
		route.PeerFilled = true
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2) // buffered: a canceled loser must never block
	launch := func(b *backend) {
		go func() {
			resp, err := c.callSolve(cctx, b, req)
			ch <- outcome{resp: resp, err: err, b: b}
		}()
	}
	launch(primary)
	inFlight := 1
	secondaryLaunched := false

	var hedgeCh <-chan time.Time
	if secondary != nil {
		if d, ok := c.hedgeDelay(); ok {
			timer := time.NewTimer(d)
			defer timer.Stop()
			hedgeCh = timer.C
		}
	}

	var firstErr error
	for inFlight > 0 {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if !secondaryLaunched {
				secondaryLaunched = true
				route.Hedged = true
				c.hedges.Add(1)
				launch(secondary)
				inFlight++
			}
		case o := <-ch:
			inFlight--
			if o.err == nil {
				route.BackendURL, route.BackendID = o.b.url, o.b.displayID()
				if o.b == secondary && route.Hedged {
					route.HedgeWon = true
					c.hedgeWins.Add(1)
				}
				return o.resp, route, nil
			}
			if ctx.Err() != nil {
				// The caller's own deadline/cancel: stop routing around it.
				return nil, route, ctx.Err()
			}
			if !client.Retryable(o.err) {
				// A 4xx is the request's bug; every backend would answer
				// the same, so failover is pointless.
				return nil, route, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if o.b == primary && secondary != nil && !secondaryLaunched {
				secondaryLaunched = true
				route.FailedOver = true
				c.failovers.Add(1)
				launch(secondary)
				inFlight++
			}
		}
	}
	return nil, route, firstErr
}

// callSolve runs one solve against one backend under its breaker, and
// folds the outcome into the backend's health.
func (c *Cluster) callSolve(ctx context.Context, b *backend, req *api.SolveRequest) (*api.SolveResponse, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	start := time.Now()
	resp, err := c.cl.SolveOpts(ctx, req, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, time.Since(start), err)
	return resp, err
}

// callBatch is callSolve for one scatter-gather shard.
func (c *Cluster) callBatch(ctx context.Context, b *backend, reqs []api.SolveRequest) (*api.BatchResponse, error) {
	if !b.breaker.Allow() {
		return nil, fmt.Errorf("backend %s: %w", b.url, resilience.ErrOpen)
	}
	b.acct.requests.Add(1)
	resp, err := c.cl.SolveBatchOpts(ctx, reqs, &client.CallOpts{BaseURL: b.url})
	c.recordOutcome(b, 0, err)
	return resp, err
}

// recordOutcome applies one call's result to the backend's breaker and
// health. Context cancellation (a hedge loser, or the caller's own
// deadline) says nothing about the backend and records nothing;
// non-retryable HTTP answers (4xx) are the request's fault and record
// nothing; retryable failures count against the breaker, and transport
// failures additionally mark the backend unhealthy right away so
// routing reacts a full probe interval sooner.
func (c *Cluster) recordOutcome(b *backend, elapsed time.Duration, err error) {
	if err == nil {
		b.breaker.Record(true)
		if elapsed > 0 {
			c.latHist.Observe(elapsed.Seconds())
		}
		return
	}
	b.acct.failures.Add(1)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	var he *client.HTTPError
	isHTTP := errors.As(err, &he)
	if !client.Retryable(err) {
		return
	}
	b.breaker.Record(false)
	if !isHTTP && !errors.Is(err, resilience.ErrOpen) {
		b.healthy.Store(false)
	}
}

// batchPending tracks one batch item still waiting for an answer.
type batchPending struct {
	idx      int
	fp       string
	excluded map[string]bool
	lastErr  error
}

// batchAttempts bounds scatter-gather routing attempts per item: the
// affinity shard plus one re-route after a shard failure.
const batchAttempts = 2

// SolveBatch scatters reqs across backends by per-item fingerprint
// affinity, fans the shards out concurrently, and gathers the answers
// back in input order. One slow or dead backend degrades only its own
// shard: its items are re-routed once (excluding the failed backend)
// and, failing that, answered with a per-item error — the batch itself
// always returns a complete, ordered response set.
func (c *Cluster) SolveBatch(ctx context.Context, reqs []api.SolveRequest, fps []string) *api.BatchResponse {
	items := make([]api.BatchItem, len(reqs))
	pending := make([]*batchPending, 0, len(reqs))
	for i := range reqs {
		pending = append(pending, &batchPending{idx: i, fp: fps[i]})
	}

	for attempt := 0; attempt < batchAttempts && len(pending) > 0; attempt++ {
		groups := map[*backend][]*batchPending{}
		for _, p := range pending {
			primary, _, affinity := c.pick(p.fp, p.excluded)
			if primary == nil {
				c.noBackend.Add(1)
				items[p.idx] = noBackendItem(p.lastErr)
				continue
			}
			if attempt == 0 {
				if affinity {
					c.affinityPicks.Add(1)
				} else {
					c.fallbackPicks.Add(1)
				}
			}
			groups[primary] = append(groups[primary], p)
		}

		var mu sync.Mutex
		var next []*batchPending
		var wg sync.WaitGroup
		for b, group := range groups {
			wg.Add(1)
			go func(b *backend, group []*batchPending) {
				defer wg.Done()
				sub := make([]api.SolveRequest, len(group))
				for k, p := range group {
					sub[k] = reqs[p.idx]
				}
				resp, err := c.callBatch(ctx, b, sub)
				if err == nil && len(resp.Responses) != len(group) {
					err = fmt.Errorf("backend %s answered %d items for a %d-item shard", b.url, len(resp.Responses), len(group))
				}
				mu.Lock()
				defer mu.Unlock()
				if err == nil {
					for k, p := range group {
						items[p.idx] = resp.Responses[k]
					}
					return
				}
				if !client.Retryable(err) {
					// The shard's shape itself was rejected; re-routing the
					// same requests would earn the same answer.
					for _, p := range group {
						items[p.idx] = errorItem(err)
					}
					return
				}
				for _, p := range group {
					if p.excluded == nil {
						p.excluded = map[string]bool{}
					}
					p.excluded[b.url] = true
					p.lastErr = err
					next = append(next, p)
				}
			}(b, group)
		}
		wg.Wait()
		pending = next
	}

	for _, p := range pending {
		items[p.idx] = errorItem(fmt.Errorf("no backend answered after %d attempts: %w", batchAttempts, p.lastErr))
	}
	return &api.BatchResponse{Responses: items}
}

// errorItem folds a shard failure into one item's answer, preserving
// the backend's HTTP status and retry advice when there was one.
func errorItem(err error) api.BatchItem {
	var he *client.HTTPError
	if errors.As(err, &he) {
		item := api.BatchItem{Error: he.Msg, Code: he.StatusCode}
		if he.RetryAfter > 0 {
			item.RetryAfterSeconds = int(he.RetryAfter / time.Second)
		}
		return item
	}
	return api.BatchItem{Error: err.Error(), Code: http.StatusBadGateway}
}

// noBackendItem is the per-item answer when routing found no eligible
// backend at all.
func noBackendItem(lastErr error) api.BatchItem {
	msg := ErrNoBackends.Error()
	if lastErr != nil {
		msg = fmt.Sprintf("%s (last shard error: %v)", msg, lastErr)
	}
	return api.BatchItem{Error: msg, Code: http.StatusServiceUnavailable}
}

// BackendStatus is one member's row in Stats / the gateway statz.
type BackendStatus struct {
	URL            string                  `json:"url"`
	ID             string                  `json:"id"`
	Healthy        bool                    `json:"healthy"`
	Draining       bool                    `json:"draining"`
	Eligible       bool                    `json:"eligible"`
	LastProbeError string                  `json:"last_probe_error,omitempty"`
	InFlight       int64                   `json:"inflight"`
	LatencyEWMAMS  float64                 `json:"latency_ewma_ms"`
	Requests       uint64                  `json:"requests"`
	Failures       uint64                  `json:"failures"`
	Breaker        resilience.BreakerStats `json:"breaker"`
}

// Stats is a point-in-time view of the cluster.
type Stats struct {
	Backends      []BackendStatus `json:"backends"`
	AffinityPicks uint64          `json:"affinity_picks"`
	FallbackPicks uint64          `json:"fallback_picks"`
	Hedges        uint64          `json:"hedges"`
	HedgeWins     uint64          `json:"hedge_wins"`
	Failovers     uint64          `json:"failovers"`
	NoBackend     uint64          `json:"no_backend"`
	// PeerFills / PeerFillMisses count fleet warm transfers: requests
	// dispatched to a recently joined backend with the previous owner's
	// cached plan attached, and fill attempts that found nothing.
	PeerFills      uint64       `json:"peer_fills"`
	PeerFillMisses uint64       `json:"peer_fill_misses"`
	HedgeDelayMS   float64      `json:"hedge_delay_ms"`
	Jobs           JobStats     `json:"jobs"`
	Client         client.Stats `json:"client"`
}

// Stats captures the cluster counters and every member's status.
func (c *Cluster) Stats() Stats {
	st := Stats{
		AffinityPicks:  c.affinityPicks.Load(),
		FallbackPicks:  c.fallbackPicks.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		Failovers:      c.failovers.Load(),
		NoBackend:      c.noBackend.Load(),
		PeerFills:      c.peerFills.Load(),
		PeerFillMisses: c.peerFillMisses.Load(),
		Jobs:           c.jobStats(),
		Client:         c.cl.Stats(),
	}
	if d, ok := c.hedgeDelay(); ok {
		st.HedgeDelayMS = float64(d) / float64(time.Millisecond)
	}
	for _, b := range c.members.Load().list {
		id, _ := b.reportedID.Load().(string)
		perr, _ := b.probeErr.Load().(string)
		st.Backends = append(st.Backends, BackendStatus{
			URL:            b.url,
			ID:             id,
			Healthy:        b.healthy.Load(),
			Draining:       b.draining.Load(),
			Eligible:       b.eligible(),
			LastProbeError: perr,
			InFlight:       b.acct.inflight.Load(),
			LatencyEWMAMS:  float64(b.acct.ewmaNS.Load()) / float64(time.Millisecond),
			Requests:       b.acct.requests.Load(),
			Failures:       b.acct.failures.Load(),
			Breaker:        b.breaker.Snapshot(),
		})
	}
	return st
}

// initMetrics registers the cluster-wide series.
func (c *Cluster) initMetrics() {
	reg := c.reg
	reg.GaugeFunc("bcc_gate_backends", "Current cluster membership size.", nil,
		func() float64 {
			if m := c.members.Load(); m != nil {
				return float64(len(m.list))
			}
			return 0
		})
	reg.GaugeFunc("bcc_gate_eligible_backends", "Members routing could pick right now.", nil,
		func() float64 {
			if c.members.Load() == nil {
				return 0
			}
			return float64(c.EligibleBackends())
		})
	reg.CounterFunc("bcc_gate_affinity_picks_total", "Requests routed to their rendezvous-first backend.", nil,
		func() float64 { return float64(c.affinityPicks.Load()) })
	reg.CounterFunc("bcc_gate_fallback_picks_total", "Requests routed by power-of-two-choices fallback.", nil,
		func() float64 { return float64(c.fallbackPicks.Load()) })
	reg.CounterFunc("bcc_gate_hedges_total", "Hedged requests fired at the second-ranked backend.", nil,
		func() float64 { return float64(c.hedges.Load()) })
	reg.CounterFunc("bcc_gate_hedges_won_total", "Hedged requests whose hedge answered first.", nil,
		func() float64 { return float64(c.hedgeWins.Load()) })
	reg.CounterFunc("bcc_gate_failovers_total", "Solves answered by the secondary after the primary failed.", nil,
		func() float64 { return float64(c.failovers.Load()) })
	reg.CounterFunc("bcc_gate_no_backend_total", "Requests refused because no backend was eligible.", nil,
		func() float64 { return float64(c.noBackend.Load()) })
	reg.CounterFunc("bcc_incr_peer_fill_total", "Requests warm-seeded from the previous owner's cache after a backend join.", nil,
		func() float64 { return float64(c.peerFills.Load()) })
	reg.CounterFunc("bcc_incr_peer_fill_miss_total", "Peer-fill attempts that found no usable cached plan.", nil,
		func() float64 { return float64(c.peerFillMisses.Load()) })
	reg.GaugeFunc("bcc_gate_hedge_delay_seconds", "Current hedge delay (0 while hedging is inactive).", nil,
		func() float64 {
			if d, ok := c.hedgeDelay(); ok {
				return d.Seconds()
			}
			return 0
		})
	c.initJobMetrics()
}

// registerBackendMetrics registers the labeled per-backend series once
// per URL ever seen. The closures resolve the backend through the
// current membership at scrape time, so a URL that leaves and rejoins
// reports the live member, not a stale struct; counters read the
// persistent per-URL accounting so they never go backwards.
func (c *Cluster) registerBackendMetrics(url string) {
	c.metricsMu.Lock()
	defer c.metricsMu.Unlock()
	if c.registered[url] {
		return
	}
	c.registered[url] = true
	labels := obs.Labels{"backend": url}
	a := c.acctFor(url)
	c.reg.GaugeFunc("bcc_gate_backend_healthy", "1 while the backend probes healthy and serving, else 0.", labels,
		func() float64 {
			if b := c.backendByURL(url); b != nil && b.healthy.Load() && !b.draining.Load() {
				return 1
			}
			return 0
		})
	c.reg.GaugeFunc("bcc_gate_backend_breaker_state", "Backend breaker: 0 closed, 1 open, 2 half-open, -1 not a member.", labels,
		func() float64 {
			b := c.backendByURL(url)
			if b == nil {
				return -1
			}
			switch b.breaker.State() {
			case resilience.Open:
				return 1
			case resilience.HalfOpen:
				return 2
			default:
				return 0
			}
		})
	c.reg.GaugeFunc("bcc_gate_backend_inflight", "Calls in flight to the backend.", labels,
		func() float64 { return float64(a.inflight.Load()) })
	c.reg.GaugeFunc("bcc_gate_backend_latency_ewma_seconds", "EWMA of successful call latency to the backend.", labels,
		func() float64 { return float64(a.ewmaNS.Load()) / float64(time.Second) })
	c.reg.CounterFunc("bcc_gate_backend_requests_total", "Calls dispatched to the backend.", labels,
		func() float64 { return float64(a.requests.Load()) })
	c.reg.CounterFunc("bcc_gate_backend_failures_total", "Calls to the backend that failed.", labels,
		func() float64 { return float64(a.failures.Load()) })
}

// pseudoRandState seeds the default pick randomness. Crypto-grade
// randomness is pointless here — the p2c fallback only needs to avoid
// herding — and a package-local generator avoids contending on
// math/rand's global lock from the request path.
var pseudoRandState atomic.Uint64

func init() { pseudoRandState.Store(uint64(time.Now().UnixNano()) | 1) }

// pseudoRand steps an xorshift generator and reduces to [0,n).
func pseudoRand(n int) int {
	for {
		old := pseudoRandState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if pseudoRandState.CompareAndSwap(old, x) {
			return int(x % uint64(n))
		}
	}
}
