// Package cluster is the multi-backend routing tier of the BCC solving
// service: membership over N bccserver backends, rendezvous
// (highest-random-weight) hashing on the canonical instance fingerprint
// so identical instances always land on the backend that already caches
// their solution, health-aware routing with per-backend circuit
// breakers, hedged requests against the second-ranked backend for tail
// latency, and scatter-gather fan-out for batch solves. cmd/bccgate
// mounts it behind the same internal/api wire types the backends speak,
// so clients cannot tell a gateway from a single server.
//
// Why rendezvous hashing: the solution cache (internal/solvecache) is
// keyed by Instance.Fingerprint(), so horizontal scale only pays off
// when a repeated instance keeps hitting the backend whose cache is
// already warm. HRW gives that affinity with two properties a routing
// tier wants: ranking is deterministic from (key, backend-ID) alone —
// no coordination, any gateway replica computes the same order — and a
// membership change of one backend remaps only the ~1/N of keys that
// ranked it first, leaving every other backend's cache untouched.
package cluster

import (
	"hash/fnv"
	"io"
	"sort"
)

// keyHash folds a routing key (normally a bccfp/1 fingerprint) to the
// 64-bit value combined per backend by Rank.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// turns the weakly mixed FNV/xor combination into an effectively
// independent score per (key, backend) pair — the independence HRW's
// uniformity and minimal-movement guarantees rest on.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the HRW weight of backend id for the pre-hashed key.
func score(kh uint64, id string) uint64 {
	return mix64(keyHash(id) ^ kh)
}

// Rank orders backend IDs by descending rendezvous score for key. The
// result is deterministic in (key, set of ids) — input order never
// matters — and removing an id from the input changes nothing about the
// relative order of the others, which is exactly the minimal-movement
// property: a backend leaving re-homes only the keys that ranked it
// first. Score ties (vanishingly rare with 64-bit scores) break by ID
// so the order stays total.
func Rank(key string, ids []string) []string {
	kh := keyHash(key)
	type scored struct {
		id string
		s  uint64
	}
	ss := make([]scored, len(ids))
	for i, id := range ids {
		ss[i] = scored{id: id, s: score(kh, id)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].id < ss[j].id
	})
	out := make([]string, len(ids))
	for i, s := range ss {
		out[i] = s.id
	}
	return out
}

// Top returns the highest-ranked id for key (empty for no ids) without
// materializing the full ranking — the common single-lookup path.
func Top(key string, ids []string) string {
	if len(ids) == 0 {
		return ""
	}
	kh := keyHash(key)
	best, bestScore := "", uint64(0)
	for _, id := range ids {
		s := score(kh, id)
		if best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}
