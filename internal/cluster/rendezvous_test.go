package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func backendIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return ids
}

// Rankings must be a pure function of (key, set of ids): input order is
// irrelevant, repeated calls agree, and Top is exactly the head of the
// full ranking.
func TestRankDeterministicAndOrderInvariant(t *testing.T) {
	ids := backendIDs(6)
	reversed := make([]string, len(ids))
	for i, id := range ids {
		reversed[len(ids)-1-i] = id
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("bccfp/1:%04d", i)
		a := Rank(key, ids)
		b := Rank(key, reversed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %q: ranking depends on input order:\n  %v\n  %v", key, a, b)
		}
		if got := Top(key, ids); got != a[0] {
			t.Fatalf("key %q: Top=%q but Rank[0]=%q", key, got, a[0])
		}
		if len(a) != len(ids) {
			t.Fatalf("key %q: ranking has %d entries, want %d", key, len(a), len(ids))
		}
	}
	if Top("anything", nil) != "" {
		t.Fatal("Top of no ids should be empty")
	}
	if got := Rank("anything", nil); len(got) != 0 {
		t.Fatalf("Rank of no ids should be empty, got %v", got)
	}
}

// Key assignment over 8 backends must be statistically uniform: a
// chi-square over 20k keys with 7 degrees of freedom stays far below
// 29.9 (the p≈1e-4 critical value) for a well-mixed hash. The keys are
// fixed, so this is a deterministic regression gate on the score
// mixing, not a flaky statistical test.
func TestTopUniformity(t *testing.T) {
	ids := backendIDs(8)
	const keys = 20000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[Top(fmt.Sprintf("bccfp/1:%06d", i), ids)]++
	}
	expected := float64(keys) / float64(len(ids))
	chi2 := 0.0
	for _, id := range ids {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 29.9 {
		t.Fatalf("chi-square %.1f over %d backends exceeds 29.9; counts=%v", chi2, len(ids), counts)
	}
	for _, id := range ids {
		if counts[id] == 0 {
			t.Fatalf("backend %s received no keys at all: %v", id, counts)
		}
	}
}

// Removing one backend must re-home exactly the keys that ranked it
// first — every other key keeps its assignment (HRW's minimal-movement
// property), so a leave invalidates only ~1/N of the fleet's cache
// affinity.
func TestMinimalMovementOnLeave(t *testing.T) {
	ids := backendIDs(8)
	removed := ids[3]
	remaining := append(append([]string(nil), ids[:3]...), ids[4:]...)
	const keys = 20000
	moved, ownedByRemoved := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bccfp/1:%06d", i)
		before := Top(key, ids)
		after := Top(key, remaining)
		if before == removed {
			ownedByRemoved++
			if after == removed {
				t.Fatalf("key %q still maps to the removed backend", key)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %q moved from %s to %s although %s stayed a member", key, before, after, before)
		}
	}
	if moved != ownedByRemoved {
		t.Fatalf("moved %d keys but the removed backend owned %d", moved, ownedByRemoved)
	}
	frac := float64(moved) / float64(keys)
	if frac < 0.08 || frac > 0.18 {
		t.Fatalf("leave moved %.1f%% of keys, want ~12.5%%", 100*frac)
	}
}

// Adding a backend must only pull keys onto the newcomer — no key may
// move between two backends that were both already members — and the
// pulled share must be ~1/(N+1).
func TestMinimalMovementOnJoin(t *testing.T) {
	ids := backendIDs(8)
	joined := append(append([]string(nil), ids...), "http://backend-new:8080")
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bccfp/1:%06d", i)
		before := Top(key, ids)
		after := Top(key, joined)
		if after == before {
			continue
		}
		if after != "http://backend-new:8080" {
			t.Fatalf("key %q moved from %s to %s on a join; only moves onto the new backend are allowed", key, before, after)
		}
		moved++
	}
	frac := float64(moved) / float64(keys)
	if frac < 0.07 || frac > 0.16 {
		t.Fatalf("join moved %.1f%% of keys, want ~11.1%%", 100*frac)
	}
}

// The full ranking (not just Top) must also be stable under member
// removal: deleting one id from the input deletes exactly that entry
// from the output, preserving the relative order of the rest. Failover
// and hedging lean on this — the "second choice" is stable even as
// other members churn.
func TestRankStableUnderRemoval(t *testing.T) {
	ids := backendIDs(6)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("bccfp/1:%04d", i)
		full := Rank(key, ids)
		for drop := 0; drop < len(ids); drop++ {
			subset := make([]string, 0, len(ids)-1)
			for j, id := range ids {
				if j != drop {
					subset = append(subset, id)
				}
			}
			got := Rank(key, subset)
			want := make([]string, 0, len(ids)-1)
			for _, id := range full {
				if id != ids[drop] {
					want = append(want, id)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("key %q without %s: rank %v, want %v", key, ids[drop], got, want)
			}
		}
	}
}
