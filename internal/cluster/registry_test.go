package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/loadgen"
)

// TestNewSolverFamiliesThroughGateway routes algo=evo and algo=submod
// through the full gateway path (rendezvous pick, shared client, real
// backend): both must come back complete and budget-feasible, with the
// registry name echoed.
func TestNewSolverFamiliesThroughGateway(t *testing.T) {
	_, tsA := newRealBackend(t, "reg-a")
	_, tsB := newRealBackend(t, "reg-b")
	c := newTestCluster(t, []string{tsA.URL, tsB.URL}, nil)

	ctx := context.Background()
	for _, name := range []string{"evo", "submod"} {
		req := loadgen.SyntheticWorkload(1, 13)[0]
		req.Algo = name
		req.IncludePlan = true
		fp := mustFingerprint(t, &req)
		resp, route, err := c.Solve(ctx, &req, fp)
		if err != nil {
			t.Fatalf("%s: gateway solve: %v", name, err)
		}
		if !route.Affinity {
			t.Errorf("%s: healthy cluster did not use the affinity pick: %+v", name, route)
		}
		if resp.Algo != name || resp.Status != "complete" {
			t.Errorf("%s: response algo=%q status=%q, want %s/complete", name, resp.Algo, resp.Status, name)
		}
		if resp.Utility <= 0 {
			t.Errorf("%s: utility = %v, want > 0", name, resp.Utility)
		}
		if resp.Cost > resp.Budget+1e-9 {
			t.Errorf("%s: cost %v exceeds budget %v", name, resp.Cost, resp.Budget)
		}
		if len(resp.Classifiers) == 0 {
			t.Errorf("%s: include_plan returned no classifiers", name)
		}
	}
}

// TestUnknownAlgoThroughGatewayListsSupported verifies the backend's
// registry-driven 400 survives the gateway unchanged: the caller sees
// the full servable list, not a generic routing error.
func TestUnknownAlgoThroughGatewayListsSupported(t *testing.T) {
	_, tsA := newRealBackend(t, "reg-e")
	c := newTestCluster(t, []string{tsA.URL}, nil)

	req := loadgen.SyntheticWorkload(1, 14)[0]
	req.Algo = "anneal"
	fp := mustFingerprint(t, &req)
	_, _, err := c.Solve(context.Background(), &req, fp)
	if err == nil {
		t.Fatal("unknown algo was accepted through the gateway")
	}
	msg := err.Error()
	if !strings.Contains(msg, "supported:") {
		t.Errorf("gateway error %q lost the supported-algorithms hint", msg)
	}
	if want := strings.Join(algo.ServableNames(), ", "); !strings.Contains(msg, want) {
		t.Errorf("gateway error %q does not list the registry's servable names %q", msg, want)
	}
}
