package ecc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/propset"
)

func TestSolveSimpleL2(t *testing.T) {
	// Star of cheap singleton-covered queries beats an expensive pair.
	b := model.NewBuilder()
	b.AddQuery(10, "x", "y")
	b.AddQuery(10, "x", "z")
	b.SetCost(1, "x")
	b.SetCost(1, "y")
	b.SetCost(1, "z")
	b.SetCost(50, "x", "y")
	b.SetCost(50, "x", "z")
	in := b.MustInstance(0)
	res := Solve(in)
	// {X,Y,Z} covers both queries: 20/3.
	if math.Abs(res.Ratio-20.0/3) > 1e-9 {
		t.Fatalf("Ratio = %v, want %v", res.Ratio, 20.0/3)
	}
}

func TestSolvePrefersBestSingleClassifier(t *testing.T) {
	// One cheap exact-match pair classifier dominates.
	b := model.NewBuilder()
	b.AddQuery(100, "a", "b")
	b.SetCost(1, "a", "b")
	b.SetCost(40, "a")
	b.SetCost(40, "b")
	in := b.MustInstance(0)
	res := Solve(in)
	if math.Abs(res.Ratio-100) > 1e-9 {
		t.Fatalf("Ratio = %v, want 100 (classifier AB)", res.Ratio)
	}
}

func TestSolveSingletonQueriesViaVStar(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(9, "a")
	b.AddQuery(1, "b")
	b.SetCost(3, "a")
	b.SetCost(10, "b")
	in := b.MustInstance(0)
	res := Solve(in)
	if math.Abs(res.Ratio-3) > 1e-9 { // {A}: 9/3
		t.Fatalf("Ratio = %v, want 3", res.Ratio)
	}
}

// bruteECC enumerates all classifier subsets for the exact best ratio.
func bruteECC(in *model.Instance) float64 {
	cls := in.Classifiers()
	if len(cls) > 18 {
		panic("bruteECC too large")
	}
	best := 0.0
	for mask := 1; mask < 1<<len(cls); mask++ {
		s := model.NewSolution(in)
		for i, c := range cls {
			if mask&(1<<i) != 0 {
				s.Add(c.Props)
			}
		}
		u, c := s.Utility(), s.Cost()
		r := 0.0
		if c > 0 {
			r = u / c
		} else if u > 0 {
			r = math.Inf(1)
		}
		if r > best {
			best = r
		}
	}
	return best
}

func TestSolveExactForL2(t *testing.T) {
	// Theorem 5.4: ECC is solved exactly for l = 2.
	rng := rand.New(rand.NewSource(1))
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		b := model.NewBuilder()
		nq := 1 + rng.Intn(4)
		for i := 0; i < nq; i++ {
			if rng.Intn(3) == 0 {
				b.AddQuery(1+float64(rng.Intn(9)), names[rng.Intn(4)])
			} else {
				x, y := rng.Intn(4), rng.Intn(4)
				if x == y {
					y = (y + 1) % 4
				}
				b.AddQuery(1+float64(rng.Intn(9)), names[x], names[y])
			}
		}
		seed := rng.Int63()
		b.SetDefaultCost(func(s propset.Set) float64 {
			h := seed
			for _, id := range s {
				h = h*31 + int64(id) + 11
			}
			return 1 + float64((h%6+6)%6)
		})
		in := b.MustInstance(0)
		got := Solve(in)
		want := bruteECC(in)
		if math.Abs(got.Ratio-want) > 1e-6 {
			t.Fatalf("trial %d: A^ECC ratio %v != optimal %v", trial, got.Ratio, want)
		}
	}
}

func TestSolveHypergraphL3(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(30, "a", "b", "c")
	b.AddQuery(10, "a", "b")
	b.SetDefaultCost(func(s propset.Set) float64 { return float64(s.Len()) * 2 })
	in := b.MustInstance(0)
	res := Solve(in)
	opt := bruteECC(in)
	if res.Ratio > opt+1e-9 {
		t.Fatalf("ratio %v exceeds optimal %v (accounting bug)", res.Ratio, opt)
	}
	if res.Ratio < opt/3-1e-9 { // peeling is r-approx with r=3
		t.Fatalf("ratio %v below 1/3 of optimal %v", res.Ratio, opt)
	}
}

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(20)))
	}
	seed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := seed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%7+7)%7)
	})
	return b.MustInstance(0)
}

func TestBaselinesProduceValidRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 8, 15, 3)
		for name, res := range map[string]Result{
			"RAND(E)": SolveRand(in, int64(trial+1)),
			"IG1(E)":  SolveIG1(in),
			"IG2(E)":  SolveIG2(in),
		} {
			if res.Solution == nil {
				t.Fatalf("%s returned nil solution", name)
			}
			u, c := res.Solution.Utility(), res.Solution.Cost()
			if math.Abs(u-res.Utility) > 1e-6 || math.Abs(c-res.Cost) > 1e-6 {
				t.Fatalf("%s: accounting mismatch", name)
			}
		}
	}
}

func TestAECCBeatsBaselinesOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ours, rnd, ig1, ig2 float64
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 10, 20, 2)
		ours += Solve(in).Ratio
		rnd += SolveRand(in, int64(trial+1)).Ratio
		ig1 += SolveIG1(in).Ratio
		ig2 += SolveIG2(in).Ratio
	}
	// A^ECC is exact for l=2, so it must dominate every baseline.
	if ours < rnd-1e-9 || ours < ig1-1e-9 || ours < ig2-1e-9 {
		t.Fatalf("A^ECC %.2f below a baseline: RAND %.2f IG1 %.2f IG2 %.2f",
			ours, rnd, ig1, ig2)
	}
}

func TestMinimalCoversEnumeration(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(1, "x", "y", "z")
	in := b.MustInstance(0)
	q := in.Universe().SetOf("x", "y", "z")
	covers := minimalCovers(in, q, 2)
	// Paper (proof of Theorem 5.4): 7 minimal covers of xyz from
	// classifiers of length ≤ 2.
	if len(covers) != 7 {
		t.Fatalf("minimal covers of xyz = %d, want 7: %v", len(covers), covers)
	}
	for _, cov := range covers {
		var acc propset.Set
		for _, c := range cov {
			acc = acc.Union(c)
		}
		if !acc.Equal(q) {
			t.Fatalf("cover %v does not cover %v", cov, q)
		}
	}
}
