// Package ecc implements the Effective Classifier Construction problem
// (Definition 5.2 of the paper): find the classifier set maximizing the
// ratio of covered utility to construction cost — "bang for the buck" when
// the budget is flexible.
//
// Following Theorem 5.4, A^ECC reduces the problem to Densest Subgraph:
// for l = 2, singleton classifiers become nodes (weight = cost), length-2
// queries become edges (weight = utility), and singleton queries attach to
// a zero-cost vertex v*; the DS optimum over this graph is compared with
// the best single exact-match classifier, and the better ratio wins —
// which is exact for l = 2. For l > 2 the construction generalizes to a
// hypergraph of minimal covers solved by greedy peeling (the O(1)-
// approximation the paper's experiments used).
//
// The RAND(E), IG1(E) and IG2(E) baselines run their BCC counterparts
// without a budget until all queries are covered, returning the prefix of
// selections with the best ratio observed.
package ecc

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/cover"
	"repro/internal/densest"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/propset"
	"repro/internal/wgraph"
)

// Result reports an ECC run.
type Result struct {
	Solution *model.Solution
	Utility  float64
	Cost     float64
	// Ratio is Utility/Cost (+Inf when Cost is 0 and Utility > 0).
	Ratio float64
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; a non-Complete result still holds
	// the best candidate evaluated before the interruption.
	Status guard.Status
	// Err is the context error or contained panic for a non-Complete run.
	Err error
}

func ratio(u, c float64) float64 {
	if c <= 0 {
		if u > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return u / c
}

func resultOf(in *model.Instance, classifiers []propset.Set, start time.Time) Result {
	s := model.NewSolution(in)
	for _, c := range classifiers {
		s.Add(c)
	}
	u, c := s.Utility(), s.Cost()
	return Result{Solution: s, Utility: u, Cost: c, Ratio: ratio(u, c), Duration: time.Since(start)}
}

// maxMinimalCoversPerQuery caps hyperedge enumeration for long queries;
// the constant bound exists because l = O(1) (see Theorem 5.4's proof).
const maxMinimalCoversPerQuery = 256

// Solve runs A^ECC on the instance (the budget field is ignored).
func Solve(in *model.Instance) Result {
	return SolveCtx(context.Background(), in)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation it
// returns the best-ratio candidate evaluated so far, with Result.Status
// reporting why it stopped; contained panics surface as Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance) (res Result) {
	start := time.Now()
	g := guard.New(ctx)

	best := Result{}
	finish := func() Result {
		r := best
		if r.Solution == nil {
			r.Solution = model.NewSolution(in)
		}
		r.Duration = time.Since(start)
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()
	if g.Tripped() {
		return finish()
	}
	guard.Inject("ecc.solve")

	// Candidate 1: the best single exact-match classifier. A single
	// classifier covers exactly the identical query.
	for _, q := range in.Queries() {
		if g.Check() {
			break
		}
		c := in.Cost(q.Props)
		if math.IsInf(c, 1) {
			continue
		}
		if r := ratio(q.Utility, c); r > best.Ratio {
			best = resultOf(in, []propset.Set{q.Props}, start)
		}
	}

	// Candidate 2: densest subgraph over sub-classifiers.
	if !g.Tripped() {
		rec := obs.FromContext(ctx)
		t0 := rec.Start()
		var bestDS Result
		if in.MaxQueryLength() <= 2 {
			bestDS = solveGraphDS(g, in, start)
		} else {
			bestDS = solveHypergraphDS(g, in, start)
		}
		rec.End(obs.StageECC, t0, in.NumQueries())
		if bestDS.Ratio > best.Ratio {
			best = bestDS
		}
	}
	// Candidates 3 and 4 (l > 2 only, where the hypergraph peeling is just
	// an r-approximation): the greedy best-ratio prefixes. For l ≤ 2 the DS
	// candidate is provably optimal and the extra work is skipped.
	if in.MaxQueryLength() > 2 && !g.Tripped() {
		if r := SolveIG2(in); r.Ratio > best.Ratio {
			best = r
		}
		if r := SolveIG1(in); r.Ratio > best.Ratio {
			best = r
		}
	}
	return finish()
}

// solveGraphDS is the exact l ≤ 2 reduction: nodes are singleton
// classifiers, edges are queries, v* anchors singletons.
func solveGraphDS(g *guard.Guard, in *model.Instance, start time.Time) Result {
	// Index singleton classifiers with finite cost.
	idx := map[propset.ID]int{}
	var props []propset.ID
	nodeOf := func(p propset.ID) int {
		if i, ok := idx[p]; ok {
			return i
		}
		i := len(props)
		idx[p] = i
		props = append(props, p)
		return i
	}
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	for _, q := range in.Queries() {
		if g.Check() {
			return Result{}
		}
		switch q.Props.Len() {
		case 1:
			if math.IsInf(in.Cost(q.Props), 1) {
				continue
			}
			edges = append(edges, edge{u: nodeOf(q.Props[0]), v: -1, w: q.Utility})
		case 2:
			cx := in.Cost(propset.New(q.Props[0]))
			cy := in.Cost(propset.New(q.Props[1]))
			if math.IsInf(cx, 1) || math.IsInf(cy, 1) {
				continue // only coverable by the pair classifier (candidate 1)
			}
			edges = append(edges, edge{u: nodeOf(q.Props[0]), v: nodeOf(q.Props[1]), w: q.Utility})
		}
	}
	if len(edges) == 0 {
		return Result{}
	}
	wg := wgraph.New(len(props) + 1)
	vStar := len(props)
	wg.SetCost(vStar, 0)
	for i, p := range props {
		wg.SetCost(i, in.Cost(propset.New(p)))
	}
	for _, e := range edges {
		v := e.v
		if v < 0 {
			v = vStar
		}
		wg.AddEdgeMerged(e.u, v, e.w)
	}
	ds := densest.ExactGraph(wg)
	var sel []propset.Set
	for _, v := range ds.Nodes {
		if v != vStar {
			sel = append(sel, propset.New(props[v]))
		}
	}
	if len(sel) == 0 {
		return Result{}
	}
	return resultOf(in, sel, start)
}

// solveHypergraphDS is the l > 2 generalization: vertices are classifiers
// of length ≤ l−1, hyperedges are minimal covers of each query.
func solveHypergraphDS(g *guard.Guard, in *model.Instance, start time.Time) Result {
	l := in.MaxQueryLength()
	vIdx := map[string]int{}
	var vSets []propset.Set
	vertexOf := func(c propset.Set) int {
		k := c.Key()
		if i, ok := vIdx[k]; ok {
			return i
		}
		i := len(vSets)
		vIdx[k] = i
		vSets = append(vSets, c.Clone())
		return i
	}

	var h densest.Hypergraph
	for _, q := range in.Queries() {
		if g.Check() {
			return Result{}
		}
		covers := minimalCovers(in, q.Props, l-1)
		for _, cov := range covers {
			nodes := make([]int, len(cov))
			for i, c := range cov {
				nodes[i] = vertexOf(c)
			}
			h.Edges = append(h.Edges, densest.HEdge{Nodes: nodes, W: q.Utility})
		}
	}
	if len(h.Edges) == 0 {
		return Result{}
	}
	h.NodeCost = make([]float64, len(vSets))
	for i, c := range vSets {
		h.NodeCost[i] = in.Cost(c)
	}
	ds := densest.PeelHypergraph(h)
	var sel []propset.Set
	for _, v := range ds.Nodes {
		sel = append(sel, vSets[v])
	}
	if len(sel) == 0 {
		return Result{}
	}
	return resultOf(in, sel, start)
}

// minimalCovers enumerates the minimal classifier sets covering q using
// finite-cost classifiers of length ≤ maxPart, capped at
// maxMinimalCoversPerQuery.
func minimalCovers(in *model.Instance, q propset.Set, maxPart int) [][]propset.Set {
	var parts []propset.Set
	q.Subsets(func(sub propset.Set) {
		if sub.Len() > maxPart {
			return
		}
		if math.IsInf(in.Cost(sub), 1) {
			return
		}
		parts = append(parts, sub.Clone())
	})
	var out [][]propset.Set
	var cur []propset.Set
	var rec func(uncovered propset.Set, startIdx int)
	rec = func(uncovered propset.Set, startIdx int) {
		if len(out) >= maxMinimalCoversPerQuery {
			return
		}
		if uncovered.Empty() {
			// Minimality: every part must contribute a unique property.
			for i, c := range cur {
				var rest propset.Set
				for j, d := range cur {
					if i != j {
						rest = rest.Union(d)
					}
				}
				if c.SubsetOf(rest) {
					return // redundant part ⇒ not minimal
				}
			}
			out = append(out, append([]propset.Set(nil), cur...))
			return
		}
		// Branch over parts containing the first uncovered property.
		p := uncovered[0]
		for i := startIdx; i < len(parts); i++ {
			if !parts[i].Contains(p) {
				continue
			}
			cur = append(cur, parts[i])
			rec(uncovered.Minus(parts[i]), 0)
			cur = cur[:len(cur)-1]
		}
	}
	rec(q, 0)
	return dedupeCovers(out)
}

func dedupeCovers(covers [][]propset.Set) [][]propset.Set {
	seen := map[string]bool{}
	var out [][]propset.Set
	for _, cov := range covers {
		keys := make([]string, len(cov))
		for i, c := range cov {
			keys[i] = c.Key()
		}
		// Order-insensitive signature.
		sortStrings(keys)
		sig := ""
		for _, k := range keys {
			sig += k + "|"
		}
		if !seen[sig] {
			seen[sig] = true
			out = append(out, cov)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SolveRand is RAND(E): select random classifiers until every coverable
// query is covered, returning the prefix with the best observed ratio.
func SolveRand(in *model.Instance, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := cover.New(in)
	pool := make([]propset.Set, 0, len(in.Classifiers()))
	for _, c := range in.Classifiers() {
		pool = append(pool, c.Props)
	}
	var order []propset.Set
	bestLen, bestRatio := 0, 0.0
	for len(pool) > 0 {
		i := rng.Intn(len(pool))
		c := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if t.Has(c) {
			continue
		}
		t.Add(c)
		order = append(order, c)
		if r := ratio(t.Utility(), t.Cost()); r > bestRatio {
			bestRatio, bestLen = r, len(order)
		}
	}
	return resultOf(in, order[:bestLen], start)
}

// SolveIG1 is IG1(E): greedy per-query covers until everything coverable
// is covered; output the best-ratio prefix. Query scores live in a lazily
// revalidated max-heap (see gmc3.SolveIG1 for the identical pattern).
func SolveIG1(in *model.Instance) Result {
	start := time.Now()
	t := cover.New(in)
	h := &ratioHeap{}
	heap.Init(h)
	score := make([]float64, in.NumQueries())
	covSets := make([][]propset.Set, in.NumQueries())

	refresh := func(qi int) {
		if t.Covered(qi) {
			score[qi] = 0
			return
		}
		cost, sets := t.MinCoverCost(qi, nil)
		covSets[qi] = sets
		u := in.Queries()[qi].Utility
		switch {
		case math.IsInf(cost, 1):
			score[qi] = 0
		case cost == 0:
			score[qi] = math.Inf(1)
		default:
			score[qi] = u / cost
		}
		if score[qi] > 0 {
			heap.Push(h, ratioEntry{qi, score[qi]})
		}
	}
	for qi := range in.Queries() {
		refresh(qi)
	}

	var order []propset.Set
	bestLen, bestRatio := 0, 0.0
	for h.Len() > 0 {
		e := heap.Pop(h).(ratioEntry)
		qi := e.i
		if t.Covered(qi) || score[qi] == 0 {
			continue
		}
		if e.score > score[qi]+1e-12 || e.score < score[qi]-1e-12 {
			heap.Push(h, ratioEntry{qi, score[qi]})
			continue
		}
		if len(covSets[qi]) == 0 {
			score[qi] = 0
			continue
		}
		touched := map[int]bool{}
		for _, c := range covSets[qi] {
			for _, q2 := range t.RelevantQueries(c) {
				touched[q2] = true
			}
			if t.Add(c) {
				order = append(order, c)
			}
		}
		for q2 := range touched {
			refresh(q2)
		}
		if r := ratio(t.Utility(), t.Cost()); r > bestRatio {
			bestRatio, bestLen = r, len(order)
		}
	}
	return resultOf(in, order[:bestLen], start)
}

// SolveIG2 is IG2(E): greedy single-classifier ratio selection until
// everything coverable is covered; output the best-ratio prefix.
func SolveIG2(in *model.Instance) Result {
	start := time.Now()
	t := cover.New(in)
	util := make(map[string]float64)
	for _, q := range in.Queries() {
		u := q.Utility
		q.Props.Subsets(func(sub propset.Set) {
			util[sub.Key()] += u
		})
	}
	classifiers := in.Classifiers()
	scoreOf := func(ci int) float64 {
		c := classifiers[ci]
		u := util[c.Props.Key()]
		if u <= 0 {
			return 0
		}
		if c.Cost == 0 {
			return math.Inf(1)
		}
		return u / c.Cost
	}
	h := &ratioHeap{}
	heap.Init(h)
	for ci := range classifiers {
		if sc := scoreOf(ci); sc > 0 {
			heap.Push(h, ratioEntry{ci, sc})
		}
	}
	var order []propset.Set
	bestLen, bestRatio := 0, 0.0
	for h.Len() > 0 {
		e := heap.Pop(h).(ratioEntry)
		c := classifiers[e.i]
		if t.Has(c.Props) {
			continue
		}
		sc := scoreOf(e.i)
		if sc == 0 {
			continue
		}
		if e.score > sc+1e-12 {
			heap.Push(h, ratioEntry{e.i, sc})
			continue
		}
		rel := t.RelevantQueries(c.Props)
		before := make([]bool, len(rel))
		for i, qi := range rel {
			before[i] = t.Covered(qi)
		}
		t.Add(c.Props)
		order = append(order, c.Props)
		for i, qi := range rel {
			if t.Covered(qi) && !before[i] {
				u := in.Queries()[qi].Utility
				in.Queries()[qi].Props.Subsets(func(sub propset.Set) {
					util[sub.Key()] -= u
				})
			}
		}
		if r := ratio(t.Utility(), t.Cost()); r > bestRatio {
			bestRatio, bestLen = r, len(order)
		}
	}
	return resultOf(in, order[:bestLen], start)
}

type ratioEntry struct {
	i     int
	score float64
}

type ratioHeap []ratioEntry

func (h ratioHeap) Len() int            { return len(h) }
func (h ratioHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h ratioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x interface{}) { *h = append(*h, x.(ratioEntry)) }
func (h *ratioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
