package overlap

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/propset"
)

func unitModel(labelCost, assemblyCost float64) CostModel {
	return CostModel{
		Label:    func(propset.ID) float64 { return labelCost },
		Assembly: func(propset.Set) float64 { return assemblyCost },
	}
}

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int, budget float64) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(9)))
	}
	return b.MustInstance(budget)
}

func TestSetCostSharing(t *testing.T) {
	u := propset.NewUniverse()
	ab := u.SetOf("a", "b")
	bc := u.SetOf("b", "c")
	m := unitModel(10, 1)
	// Separately: (10+10+1) each = 42; together b is labeled once: 31.
	if got := m.SetCost([]propset.Set{ab}); got != 21 {
		t.Fatalf("SetCost({AB}) = %v, want 21", got)
	}
	if got := m.SetCost([]propset.Set{ab, bc}); got != 32 {
		t.Fatalf("SetCost({AB,BC}) = %v, want 32", got)
	}
	if got := m.StandaloneCost(ab); got != 21 {
		t.Fatalf("StandaloneCost = %v, want 21", got)
	}
	// Duplicates are not double charged.
	if got := m.SetCost([]propset.Set{ab, ab}); got != 21 {
		t.Fatalf("SetCost with duplicate = %v, want 21", got)
	}
}

func TestZeroLabelReducesToAdditive(t *testing.T) {
	u := propset.NewUniverse()
	m := CostModel{Assembly: func(s propset.Set) float64 { return float64(s.Len()) }}
	sets := []propset.Set{u.SetOf("a"), u.SetOf("a", "b")}
	if got := m.SetCost(sets); got != 3 {
		t.Fatalf("additive special case: %v, want 3", got)
	}
}

func TestSolveExploitsSharing(t *testing.T) {
	// Star queries share property x; labeling x once makes the whole star
	// affordable, which an additive model could not do.
	b := model.NewBuilder()
	b.AddQuery(5, "x", "y")
	b.AddQuery(5, "x", "z")
	b.AddQuery(5, "x", "w")
	in := b.MustInstance(10)
	m := unitModel(2, 1)
	// Cover all three via singletons: labels x,y,z,w = 8, assemblies 4 → 12
	// > 10. Via pair classifiers XY,XZ,XW: labels 8 + assemblies 3 = 11 >
	// 10. Mixed: X,Y,Z,W assemblies 4... same 12. Hmm — budget 10 allows
	// two queries: labels x,y,z = 6 + assemblies X,Y,Z = 3 → 9 ≤ 10 for
	// utility 10.
	res := SolveCoverGreedy(in, m)
	if res.Cost > 10+1e-9 {
		t.Fatalf("budget exceeded: %v", res.Cost)
	}
	if res.Utility < 10 {
		t.Fatalf("sharing should afford ≥ 2 queries: utility %v", res.Utility)
	}
	if res.AdditiveCost <= res.Cost {
		t.Fatalf("no sharing realized: additive %v vs overlap %v", res.AdditiveCost, res.Cost)
	}
}

func TestSolveFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 8, 12, 3, float64(3+rng.Intn(15)))
		m := unitModel(float64(1+rng.Intn(3)), float64(rng.Intn(3)))
		for name, res := range map[string]Result{
			"greedy": Solve(in, m),
			"cover":  SolveCoverGreedy(in, m),
			"rand":   SolveRand(in, m, int64(trial+1)),
		} {
			if res.Cost > in.Budget()+1e-9 {
				t.Fatalf("trial %d: %s exceeded budget (%v > %v)",
					trial, name, res.Cost, in.Budget())
			}
			// Reported cost must match pricing the selection from scratch.
			var sel []propset.Set
			for _, c := range res.Solution.Classifiers() {
				sel = append(sel, c.Props)
			}
			if got := m.SetCost(sel); math.Abs(got-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s cost mismatch %v vs %v", trial, name, got, res.Cost)
			}
		}
	}
}

func TestSolveNearBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var tot, opt float64
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 5, 5, 2, float64(3+rng.Intn(10)))
		m := unitModel(float64(1+rng.Intn(3)), 1)
		a := Solve(in, m)
		b := SolveCoverGreedy(in, m)
		best := a
		if b.Utility > best.Utility {
			best = b
		}
		ref, err := BruteForce(in, m)
		if err != nil {
			t.Fatal(err)
		}
		if best.Utility > ref.Utility+1e-9 {
			t.Fatalf("trial %d: greedy %v beats brute %v", trial, best.Utility, ref.Utility)
		}
		tot += best.Utility
		opt += ref.Utility
	}
	if tot < 0.7*opt {
		t.Fatalf("greedy aggregate %v below 0.7 × optimal %v", tot, opt)
	}
}

func TestOverlapBeatsAdditiveSelection(t *testing.T) {
	// Under heavy label sharing, the selected pair classifiers overlap in
	// properties, so the true (shared) cost is below the additive sum.
	// Singleton-only selections cannot share, so the workload here is all
	// pair queries over few properties.
	rng := rand.New(rand.NewSource(3))
	wins := 0
	for trial := 0; trial < 20; trial++ {
		b := model.NewBuilder()
		u := b.Universe()
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 10; i++ {
			x, y := rng.Intn(5), rng.Intn(5)
			if x == y {
				y = (y + 1) % 5
			}
			b.AddQuerySet(propset.New(u.Intern(names[x]), u.Intern(names[y])),
				1+float64(rng.Intn(9)))
		}
		in := b.MustInstance(30)
		m := unitModel(3, 0.5)
		res := SolveCoverGreedy(in, m)
		if res.AdditiveCost > res.Cost+1e-9 {
			wins++
		}
	}
	if wins < 14 {
		t.Fatalf("sharing realized in only %d/20 trials", wins)
	}
}

func TestBruteForceRefusesLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, 30, 40, 3, 10)
	if _, err := BruteForce(in, unitModel(1, 1)); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func BenchmarkSolveCoverGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 60, 300, 3, 80)
	m := unitModel(2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveCoverGreedy(in, m)
	}
}
