// Package overlap implements the overlapping-construction-cost extension
// of BCC that the paper's conclusion (Section 8) lists as future work: in
// practice classifiers share training effort (labeled examples for a
// property can be reused by every classifier testing it), so the cost of a
// classifier set is not the sum of individual costs.
//
// The cost model decomposes construction into per-property labeling and
// per-classifier assembly:
//
//	C(S) = Σ_{p ∈ P(S)} Label(p)  +  Σ_{s ∈ S} Assembly(s)
//
// Labeling a property is paid once no matter how many selected classifiers
// test it; assembling (training/validating) each classifier is paid per
// classifier. The base model is the special case Label ≡ 0.
//
// The budgeted objective is no longer additive in the selection, so the
// knapsack/QK machinery does not apply directly; the package provides a
// marginal-cost greedy solver (recomputing scores as shared labels are
// paid off), a random baseline, and an exhaustive reference.
package overlap

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// CostModel prices classifier sets with shared per-property labeling.
type CostModel struct {
	// Label is the one-time labeling cost of a property. nil means 0.
	Label func(propset.ID) float64
	// Assembly is the per-classifier training cost. nil means 0.
	Assembly func(propset.Set) float64
}

func (m CostModel) label(p propset.ID) float64 {
	if m.Label == nil {
		return 0
	}
	return m.Label(p)
}

func (m CostModel) assembly(s propset.Set) float64 {
	if m.Assembly == nil {
		return 0
	}
	return m.Assembly(s)
}

// SetCost prices a whole classifier set under the shared-labeling model.
func (m CostModel) SetCost(sets []propset.Set) float64 {
	var cost float64
	var union propset.Set
	seen := map[string]bool{}
	for _, s := range sets {
		if seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		cost += m.assembly(s)
		union = union.Union(s)
	}
	for _, p := range union {
		cost += m.label(p)
	}
	return cost
}

// StandaloneCost prices a single classifier in isolation — the additive
// cost the base model would charge.
func (m CostModel) StandaloneCost(s propset.Set) float64 {
	return m.assembly(s) + func() float64 {
		var sum float64
		for _, p := range s {
			sum += m.label(p)
		}
		return sum
	}()
}

// Result reports an overlap-aware solver run.
type Result struct {
	Solution *model.Solution
	// Utility is the covered utility (base BCC semantics).
	Utility float64
	// Cost is the overlap-aware cost of the selection.
	Cost float64
	// AdditiveCost is what the same selection would cost without sharing;
	// the difference is the realized overlap saving.
	AdditiveCost float64
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; a non-Complete result still holds
	// the budget-feasible selection accumulated so far.
	Status guard.Status
	// Err is the context error or contained panic for a non-Complete run.
	Err error
}

// Solve maximizes covered utility within the instance's budget under the
// overlap cost model (the instance's own classifier costs are ignored;
// its queries, utilities and budget are used). Marginal costs shrink as
// labeled properties accumulate, so scores are recomputed each round over
// the affected candidates.
func Solve(in *model.Instance, m CostModel) Result {
	return SolveCtx(context.Background(), in, m)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation it
// returns the budget-feasible selection accumulated so far, with
// Result.Status reporting why it stopped; contained panics surface as
// Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance, m CostModel) (res Result) {
	start := time.Now()
	g := guard.New(ctx)
	var sel []propset.Set
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finishGuarded(g, in, m, sel, start)
		}
	}()
	if g.Tripped() {
		return finishGuarded(g, in, m, nil, start)
	}
	t := cover.New(in)
	budget := in.Budget()

	// Candidate classifiers: all query subsets (the overlap model prices
	// everything finitely).
	cands := enumerate(in)
	paid := map[propset.ID]bool{}
	var cost float64

	marginalCost := func(c propset.Set) float64 {
		mc := m.assembly(c)
		for _, p := range c {
			if !paid[p] {
				mc += m.label(p)
			}
		}
		return mc
	}
	marginalGain := func(c propset.Set) float64 {
		if t.Has(c) {
			return 0
		}
		var gain float64
		for _, qi := range t.RelevantQueries(c) {
			if t.Covered(qi) {
				continue
			}
			if t.Residual(qi).SubsetOf(c) {
				gain += in.Queries()[qi].Utility
			}
		}
		return gain
	}

	for !g.Tripped() {
		guard.Inject("overlap.round")
		bestI, bestScore := -1, 0.0
		bestMC := 0.0
		for i, c := range cands {
			if g.Check() {
				break
			}
			if t.Has(c) {
				continue
			}
			gain := marginalGain(c)
			if gain <= 0 {
				continue
			}
			mc := marginalCost(c)
			if mc > budget-cost+1e-9 {
				continue
			}
			score := math.Inf(1)
			if mc > 0 {
				score = gain / mc
			}
			if score > bestScore {
				bestI, bestScore, bestMC = i, score, mc
			}
		}
		if bestI < 0 {
			break
		}
		c := cands[bestI]
		t.Add(c)
		sel = append(sel, c)
		cost += bestMC
		for _, p := range c {
			paid[p] = true
		}
	}
	return finishGuarded(g, in, m, sel, start)
}

// marginalGain in Solve only counts fully-covered queries per single
// addition; pairs that need two new classifiers are reached through the
// per-query cover step below, mirroring IG1 under marginal costs.
// SolveCoverGreedy selects whole per-query min-marginal-cost covers.
func SolveCoverGreedy(in *model.Instance, m CostModel) Result {
	return SolveCoverGreedyCtx(context.Background(), in, m)
}

// SolveCoverGreedyCtx is SolveCoverGreedy under a context, with the same
// anytime semantics as SolveCtx: every completed round leaves a
// budget-feasible selection, so interruption returns the best so far.
func SolveCoverGreedyCtx(ctx context.Context, in *model.Instance, m CostModel) (res Result) {
	start := time.Now()
	g := guard.New(ctx)
	var sel []propset.Set
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finishGuarded(g, in, m, sel, start)
		}
	}()
	if g.Tripped() {
		return finishGuarded(g, in, m, nil, start)
	}
	t := cover.New(in)
	budget := in.Budget()
	paid := map[propset.ID]bool{}
	var cost float64

	for !g.Tripped() {
		guard.Inject("overlap.round")
		bestQi := -1
		var bestSets []propset.Set
		bestScore, bestMC := 0.0, 0.0
		for qi, q := range in.Queries() {
			if g.Check() {
				break
			}
			if t.Covered(qi) {
				continue
			}
			sets, mc := cheapestCover(in, t, m, paid, qi)
			if sets == nil || mc > budget-cost+1e-9 {
				continue
			}
			score := math.Inf(1)
			if mc > 0 {
				score = q.Utility / mc
			}
			if score > bestScore {
				bestQi, bestScore, bestSets, bestMC = qi, score, sets, mc
			}
		}
		if bestQi < 0 {
			break
		}
		for _, c := range bestSets {
			if t.Add(c) {
				sel = append(sel, c)
			}
			for _, p := range c {
				paid[p] = true
			}
		}
		cost += bestMC
	}
	return finishGuarded(g, in, m, sel, start)
}

// cheapestCover finds the min-marginal-cost cover of query qi via subset
// DP, pricing unpaid labels once within the cover.
func cheapestCover(in *model.Instance, t *cover.Tracker, m CostModel, paid map[propset.ID]bool, qi int) ([]propset.Set, float64) {
	q := in.Queries()[qi].Props
	res := t.Residual(qi)
	if res.Empty() {
		return nil, 0
	}
	pos := map[propset.ID]uint{}
	for i, p := range res {
		pos[p] = uint(i)
	}
	full := (1 << uint(res.Len())) - 1

	type cd struct {
		c    propset.Set
		mask int
	}
	var cands []cd
	q.Subsets(func(sub propset.Set) {
		if t.Has(sub) {
			return
		}
		mask := 0
		for _, p := range sub {
			if b, ok := pos[p]; ok {
				mask |= 1 << b
			}
		}
		if mask != 0 {
			cands = append(cands, cd{sub.Clone(), mask})
		}
	})
	// DP over covered masks; cost of a state = assemblies + labels of the
	// union of chosen parts (priced against paid).
	type stateT struct {
		cost  float64
		sets  []propset.Set
		union propset.Set
	}
	const none = -1
	dp := make([]*stateT, full+1)
	dp[0] = &stateT{}
	_ = none
	for mask := 0; mask <= full; mask++ {
		if dp[mask] == nil {
			continue
		}
		for _, cand := range cands {
			nm := mask | cand.mask
			if nm == mask {
				continue
			}
			add := m.assembly(cand.c)
			for _, p := range cand.c {
				if !paid[p] && !dp[mask].union.Contains(p) {
					add += m.label(p)
				}
			}
			nc := dp[mask].cost + add
			if dp[nm] == nil || nc < dp[nm].cost {
				dp[nm] = &stateT{
					cost:  nc,
					sets:  append(append([]propset.Set(nil), dp[mask].sets...), cand.c),
					union: dp[mask].union.Union(cand.c),
				}
			}
		}
	}
	if dp[full] == nil {
		return nil, math.Inf(1)
	}
	return dp[full].sets, dp[full].cost
}

func finishGuarded(g *guard.Guard, in *model.Instance, m CostModel, sel []propset.Set, start time.Time) Result {
	r := finish(in, m, sel, start)
	r.Status = g.Status()
	r.Err = g.Err()
	return r
}

func finish(in *model.Instance, m CostModel, sel []propset.Set, start time.Time) Result {
	s := model.NewSolution(in)
	var additive float64
	for _, c := range sel {
		s.AddClassifier(model.Classifier{Props: c, Cost: m.StandaloneCost(c)})
		additive += m.StandaloneCost(c)
	}
	return Result{
		Solution:     s,
		Utility:      s.Utility(),
		Cost:         m.SetCost(sel),
		AdditiveCost: additive,
		Duration:     time.Since(start),
	}
}

// SolveRand is the random baseline under overlap costs.
func SolveRand(in *model.Instance, m CostModel, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := cover.New(in)
	budget := in.Budget()
	paid := map[propset.ID]bool{}
	var sel []propset.Set
	var cost float64
	pool := enumerate(in)
	for len(pool) > 0 {
		i := rng.Intn(len(pool))
		c := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if t.Has(c) {
			continue
		}
		mc := m.assembly(c)
		for _, p := range c {
			if !paid[p] {
				mc += m.label(p)
			}
		}
		if mc > budget-cost+1e-9 {
			continue
		}
		t.Add(c)
		sel = append(sel, c)
		cost += mc
		for _, p := range c {
			paid[p] = true
		}
	}
	return finish(in, m, sel, start)
}

// BruteForce solves small instances exactly under overlap costs.
func BruteForce(in *model.Instance, m CostModel) (Result, error) {
	start := time.Now()
	cands := enumerate(in)
	if len(cands) > 22 {
		return Result{}, fmt.Errorf("overlap: BruteForce limited to 22 classifiers, instance has %d", len(cands))
	}
	budget := in.Budget()
	var best []propset.Set
	bestU := -1.0
	var cur []propset.Set
	var rec func(i int)
	rec = func(i int) {
		if m.SetCost(cur) <= budget+1e-9 {
			s := model.NewSolution(in)
			for _, c := range cur {
				s.Add(c)
			}
			if u := s.Utility(); u > bestU {
				bestU = u
				best = append([]propset.Set(nil), cur...)
			}
		}
		if i >= len(cands) || m.SetCost(cur) > budget+1e-9 {
			return
		}
		rec(i + 1)
		cur = append(cur, cands[i])
		rec(i + 1)
		cur = cur[:len(cur)-1]
	}
	rec(0)
	return finish(in, m, best, start), nil
}

// enumerate lists every non-empty subset of every query, deduplicated.
func enumerate(in *model.Instance) []propset.Set {
	seen := map[string]bool{}
	var out []propset.Set
	for _, q := range in.Queries() {
		q.Props.Subsets(func(sub propset.Set) {
			if !seen[sub.Key()] {
				seen[sub.Key()] = true
				out = append(out, sub.Clone())
			}
		})
	}
	return out
}
