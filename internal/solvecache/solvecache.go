// Package solvecache is the solution-reuse layer of the solving service:
// an LRU cache with optional TTL keyed by canonical instance fingerprints
// (model.Instance.Fingerprint plus solver parameters), combined with
// single-flight deduplication so that concurrent identical requests share
// one underlying solve instead of each paying for their own.
//
// The cache is value-agnostic: the server stores prepared response
// objects, but any immutable value works. Callers must treat cached
// values as read-only — a value handed out on a hit is shared between
// every requester that hits the same key.
package solvecache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/guard"
)

// Outcome reports how Do obtained its value.
type Outcome int

const (
	// Miss: the caller was the flight leader and ran fn itself.
	Miss Outcome = iota
	// Hit: the value came straight from the cache.
	Hit
	// Shared: the caller joined an in-flight solve started by another
	// caller and received that solve's value.
	Shared
)

// ErrLeaderAborted is returned to waiters when the flight leader's fn
// terminated abnormally (panicked) without producing a value.
var ErrLeaderAborted = errors.New("solvecache: in-flight leader aborted")

// Stats is a snapshot of the cache counters, JSON-ready for /v1/statz.
type Stats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that became flight leaders and ran fn.
	Misses uint64 `json:"misses"`
	// SharedWaits counts Do calls that joined another caller's flight.
	SharedWaits uint64 `json:"shared_waits"`
	// Stored counts values written into the cache.
	Stored uint64 `json:"stored"`
	// Evictions counts entries dropped by LRU capacity pressure.
	Evictions uint64 `json:"evictions"`
	// Expirations counts entries dropped because their TTL lapsed.
	Expirations uint64 `json:"expirations"`
	// Entries is the current number of live cached entries.
	Entries int `json:"entries"`
	// InFlight is the current number of single-flight leaders running.
	InFlight int `json:"in_flight"`
}

type entry struct {
	key     string
	value   any
	expires time.Time // zero means no expiry
	tag     string    // sibling-index tag, "" = unindexed
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is an LRU+TTL solution cache with single-flight deduplication.
// All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	lru      *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	flights  map[string]*flight
	now      func() time.Time // injectable clock for tests

	// Sibling index (bccfp2/1 near-miss lookups): tagOf derives a tag
	// from a stored value, tagCount tracks how many live entries carry
	// each tag. The index is derived state — every insert path (Put, Do,
	// Import, and therefore bccsnap restore) re-tags through tagOf, so a
	// snapshot taken by one process rebuilds the index in the next.
	tagOf    func(value any) string
	tagCount map[string]int

	stats Stats
}

// New returns a cache holding at most capacity entries, each for at most
// ttl. capacity <= 0 disables storage (single-flight still deduplicates
// concurrent identical requests); ttl <= 0 disables expiry.
func New(capacity int, ttl time.Duration) *Cache {
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*flight),
		now:      time.Now,
		tagCount: make(map[string]int),
	}
}

// SetTagger installs the sibling-index tag function: every stored value
// is tagged with fn(value), and Sibling finds live entries by tag. An
// empty tag leaves a value unindexed (the safe answer for values fn does
// not recognize). Existing entries are re-tagged, so SetTagger composes
// with Import in either order. A nil fn clears the index.
func (c *Cache) SetTagger(fn func(value any) string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tagOf = fn
	c.tagCount = make(map[string]int)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		e.tag = c.tagLocked(e.value)
		if e.tag != "" {
			c.tagCount[e.tag]++
		}
	}
}

func (c *Cache) tagLocked(value any) string {
	if c.tagOf == nil {
		return ""
	}
	return c.tagOf(value)
}

// retagLocked updates an entry's tag (and the index counts) to match its
// current value. Every mutation of entry.value must go through this.
func (c *Cache) retagLocked(e *entry) {
	tag := c.tagLocked(e.value)
	if tag == e.tag {
		return
	}
	if e.tag != "" {
		c.decTagLocked(e.tag)
	}
	if tag != "" {
		c.tagCount[tag]++
	}
	e.tag = tag
}

func (c *Cache) decTagLocked(tag string) {
	if n := c.tagCount[tag]; n <= 1 {
		delete(c.tagCount, tag)
	} else {
		c.tagCount[tag] = n - 1
	}
}

// Sibling returns the most-recently-used live entry tagged tag, skipping
// the entry stored under key skip (a request's own exact key is not a
// "sibling"). The common no-sibling case is O(1) via the tag counts; a
// positive lookup walks the LRU list so recency decides ties. Expired
// entries are passed over but not collected (Get-driven expiry keeps its
// existing stats semantics), and the LRU order is left untouched — a
// sibling read is a seeding hint, not a use of the entry's own key.
func (c *Cache) Sibling(tag, skip string) (string, any, bool) {
	if tag == "" {
		return "", nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tagCount[tag] == 0 {
		return "", nil, false
	}
	now := c.now()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.tag != tag || e.key == skip {
			continue
		}
		if !e.expires.IsZero() && now.After(e.expires) {
			continue
		}
		return e.key, e.value, true
	}
	return "", nil, false
}

// Get returns the cached value for key, refreshing its LRU position.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key)
}

func (c *Cache) getLocked(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.stats.Expirations++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return e.value, true
}

// Put stores value under key, evicting the least recently used entry when
// the cache is over capacity. A no-op when storage is disabled.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value)
}

func (c *Cache) putLocked(key string, value any) {
	if c.capacity <= 0 {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		e.value, e.expires = value, expires
		c.retagLocked(e)
		c.lru.MoveToFront(el)
		c.stats.Stored++
		return
	}
	e := &entry{key: key, value: value, expires: expires}
	c.retagLocked(e)
	c.entries[key] = c.lru.PushFront(e)
	c.stats.Stored++
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.stats.Evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	e := el.Value.(*entry)
	if e.tag != "" {
		c.decTagLocked(e.tag)
	}
	delete(c.entries, e.key)
}

// Len reports the number of live entries (including not-yet-collected
// expired ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.InFlight = len(c.flights)
	return s
}

// Do returns the value for key: from the cache on a hit, from an
// in-flight identical request when one exists (waiting for it to finish),
// and otherwise by running fn as the flight leader. fn reports whether
// its value may be stored — the server declines to cache truncated
// (non-Complete) results so a degraded plan never masks the full one.
//
// A waiter whose ctx fires before the leader finishes gets ctx.Err();
// the leader itself runs fn to completion regardless of ctx, so its
// value still lands in the cache for the next caller.
//
// Fault-injection points (armed by chaos tests, free otherwise): the
// "solvecache.get" point fires on every Do entry and "solvecache.put"
// before a leader stores its value — both outside the cache lock, so an
// armed delay stalls the request, not the whole cache, and an armed
// panic unwinds without wedging the mutex (the leader's deferred flight
// cleanup still runs, so waiters get ErrLeaderAborted, never a hang).
func (c *Cache) Do(ctx context.Context, key string, fn func() (value any, cacheable bool, err error)) (any, Outcome, error) {
	guard.Inject("solvecache.get")
	c.mu.Lock()
	if v, ok := c.getLocked(key); ok {
		c.mu.Unlock()
		return v, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.SharedWaits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Shared, f.err
		case <-ctx.Done():
			return nil, Shared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			f.err = ErrLeaderAborted
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
	}()

	value, cacheable, err := fn()
	f.val, f.err = value, err
	completed = true
	if err == nil && cacheable {
		guard.Inject("solvecache.put")
		c.Put(key, value)
	}
	return value, Miss, err
}

// Entry is one exported cache record, as handed out by Export and
// accepted by Import. Expires is absolute (zero means no expiry), so a
// snapshot restored after a restart honors the original TTL rather than
// granting entries a fresh lease.
type Entry struct {
	Key     string
	Expires time.Time
	Value   any
}

// Export captures the live entries most-recently-used first, skipping
// already-expired ones. The values are the cached values themselves —
// shared, not copied — so callers must treat them as read-only, same as
// a Get hit.
func (c *Cache) Export() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]Entry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !e.expires.IsZero() && now.After(e.expires) {
			continue
		}
		out = append(out, Entry{Key: e.key, Expires: e.expires, Value: e.value})
	}
	return out
}

// Import inserts entries produced by Export (most-recently-used first),
// preserving their absolute expiries and relative recency: entries are
// pushed least-recent-first so the first slice element ends up at the
// front of the LRU. Already-expired entries are skipped, existing keys
// are overwritten, and capacity pressure evicts as usual. It reports
// how many entries were actually inserted.
func (c *Cache) Import(entries []Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return 0
	}
	now := c.now()
	added := 0
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if !e.Expires.IsZero() && now.After(e.Expires) {
			continue
		}
		if el, ok := c.entries[e.Key]; ok {
			ent := el.Value.(*entry)
			ent.value, ent.expires = e.Value, e.Expires
			c.retagLocked(ent)
			c.lru.MoveToFront(el)
		} else {
			ent := &entry{key: e.Key, value: e.Value, expires: e.Expires}
			c.retagLocked(ent)
			c.entries[e.Key] = c.lru.PushFront(ent)
		}
		added++
		for c.lru.Len() > c.capacity {
			c.removeLocked(c.lru.Back())
			c.stats.Evictions++
		}
	}
	return added
}
