package solvecache

import (
	"testing"
	"time"
)

// tagged is the test stand-in for a server response carrying a bccfp2/1
// near-miss fingerprint.
type tagged struct {
	fp2 string
	val int
}

func tagOf(v any) string {
	if t, ok := v.(tagged); ok {
		return t.fp2
	}
	return ""
}

func TestSiblingBasic(t *testing.T) {
	c := New(8, 0)
	c.SetTagger(tagOf)
	c.Put("a", tagged{"q1", 1})
	c.Put("b", tagged{"q2", 2})

	key, v, ok := c.Sibling("q1", "other")
	if !ok || key != "a" || v.(tagged).val != 1 {
		t.Fatalf("Sibling(q1) = %v %v %v", key, v, ok)
	}
	if _, _, ok := c.Sibling("q3", ""); ok {
		t.Error("Sibling hit for unknown tag")
	}
	if _, _, ok := c.Sibling("", ""); ok {
		t.Error("Sibling hit for empty tag")
	}
}

// A request's own key is not its sibling; another entry with the same tag
// is.
func TestSiblingSkipsOwnKey(t *testing.T) {
	c := New(8, 0)
	c.SetTagger(tagOf)
	c.Put("a", tagged{"q1", 1})
	if _, _, ok := c.Sibling("q1", "a"); ok {
		t.Fatal("entry returned as its own sibling")
	}
	c.Put("b", tagged{"q1", 2})
	key, _, ok := c.Sibling("q1", "a")
	if !ok || key != "b" {
		t.Fatalf("Sibling(q1, skip a) = %v %v", key, ok)
	}
}

// Most-recently-used wins among several siblings, without perturbing the
// LRU order.
func TestSiblingPrefersMRU(t *testing.T) {
	c := New(8, 0)
	c.SetTagger(tagOf)
	c.Put("a", tagged{"q1", 1})
	c.Put("b", tagged{"q1", 2})
	if key, _, _ := c.Sibling("q1", ""); key != "b" {
		t.Fatalf("MRU sibling = %v, want b", key)
	}
	c.Get("a") // refresh a
	if key, _, _ := c.Sibling("q1", ""); key != "a" {
		t.Fatalf("after Get(a), MRU sibling = %v, want a", key)
	}
	// Sibling reads must not refresh: b stays LRU and evicts first.
	c2 := New(2, 0)
	c2.SetTagger(tagOf)
	c2.Put("x", tagged{"q1", 1})
	c2.Put("y", tagged{"q1", 2})
	c2.Sibling("q1", "") // returns y (MRU); must not demote x
	c2.Get("x")          // x now MRU
	c2.Put("z", tagged{"q2", 3})
	if _, ok := c2.Get("y"); ok {
		t.Error("y survived eviction; Sibling refreshed LRU order")
	}
}

// Eviction, overwrite and expiry keep the index consistent.
func TestSiblingIndexMaintenance(t *testing.T) {
	c := New(2, 0)
	c.SetTagger(tagOf)
	c.Put("a", tagged{"q1", 1})
	c.Put("b", tagged{"q2", 2})
	c.Put("c", tagged{"q3", 3}) // evicts a
	if _, _, ok := c.Sibling("q1", ""); ok {
		t.Error("evicted entry still indexed")
	}
	c.Put("b", tagged{"q9", 2}) // overwrite changes the tag
	if _, _, ok := c.Sibling("q2", ""); ok {
		t.Error("overwritten entry keeps its old tag")
	}
	if key, _, ok := c.Sibling("q9", ""); !ok || key != "b" {
		t.Errorf("Sibling(q9) = %v %v after overwrite", key, ok)
	}

	now := time.Now()
	ce := New(4, time.Minute)
	ce.SetTagger(tagOf)
	ce.now = func() time.Time { return now }
	ce.Put("a", tagged{"q1", 1})
	ce.now = func() time.Time { return now.Add(2 * time.Minute) }
	if _, _, ok := ce.Sibling("q1", ""); ok {
		t.Error("expired entry returned as sibling")
	}
}

// The index is derived state: Import re-tags, so a bccsnap restore in a
// fresh process rebuilds it — in either SetTagger/Import order.
func TestSiblingIndexRebuiltOnImport(t *testing.T) {
	src := New(8, 0)
	src.SetTagger(tagOf)
	src.Put("a", tagged{"q1", 1})
	src.Put("b", tagged{"q2", 2})
	exported := src.Export()

	restored := New(8, 0)
	restored.SetTagger(tagOf)
	if n := restored.Import(exported); n != 2 {
		t.Fatalf("Import = %d, want 2", n)
	}
	if key, _, ok := restored.Sibling("q1", ""); !ok || key != "a" {
		t.Errorf("restored Sibling(q1) = %v %v", key, ok)
	}

	// Import before SetTagger: SetTagger re-tags the existing entries.
	late := New(8, 0)
	late.Import(exported)
	if _, _, ok := late.Sibling("q2", ""); ok {
		t.Error("untagged cache answered a sibling lookup")
	}
	late.SetTagger(tagOf)
	if key, _, ok := late.Sibling("q2", ""); !ok || key != "b" {
		t.Errorf("late-tagged Sibling(q2) = %v %v", key, ok)
	}
}

// Values the tagger does not recognize stay unindexed, never panic.
func TestSiblingUnrecognizedValues(t *testing.T) {
	c := New(8, 0)
	c.SetTagger(tagOf)
	c.Put("a", "just a string")
	if _, _, ok := c.Sibling("", ""); ok {
		t.Error("unrecognized value was indexed under the empty tag")
	}
	if v, ok := c.Get("a"); !ok || v.(string) != "just a string" {
		t.Error("unrecognized value not served normally")
	}
}
