package solvecache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/durable"
	"repro/internal/guard"
)

// SnapshotFormat is the snapshot file version tag. The file layout is
// the shared framed-record format of internal/durable: a single ASCII
// header line
//
//	bccsnap/1 <crc32c-hex> <body-length>\n
//
// followed by exactly body-length bytes of JSON ({"saved_unix_ms":...,
// "entries":[{"key":...,"expires_unix_ms":...,"value":<raw JSON>},...]},
// entries most-recently-used first). The checksum (CRC-32/Castagnoli
// over the body) plus the explicit length make truncation, bit rot and
// torn concurrent writes all detectable; Save writes through
// durable.WriteFileAtomic (temp file + fsync + rename + directory
// fsync), so readers only ever see a complete file and the rename
// itself survives power loss. A reader that finds anything else gets a
// *FormatError — the server logs it and starts cold, never crashes.
const SnapshotFormat = "bccsnap/1"

// FormatError reports a snapshot file that cannot be trusted: wrong
// version tag, bad checksum, truncated body, or malformed JSON. It is a
// distinct type so callers can treat "corrupt snapshot" (log and start
// cold) differently from I/O errors. It is the shared framed-record
// error of internal/durable, which bccjob/1 records use too.
type FormatError = durable.FormatError

type snapshotBody struct {
	SavedUnixMS int64           `json:"saved_unix_ms"`
	Entries     []snapshotEntry `json:"entries"`
}

type snapshotEntry struct {
	Key           string          `json:"key"`
	ExpiresUnixMS int64           `json:"expires_unix_ms,omitempty"`
	Value         json.RawMessage `json:"value"`
}

// Save writes the cache's live entries to path in the bccsnap/1 format,
// atomically and durably (temp file + rename + directory fsync via
// internal/durable, so a crash or power cut leaves either the old
// snapshot or the new one, never a torn hybrid). encode turns a cached
// value into JSON; values it rejects are skipped, not fatal — one odd
// entry must not lose the rest. It reports how many entries landed in
// the file.
func Save(path string, c *Cache, encode func(any) ([]byte, error)) (int, error) {
	guard.Inject("solvecache.snapshot.save")
	exported := c.Export()
	body := snapshotBody{
		SavedUnixMS: time.Now().UnixMilli(),
		Entries:     make([]snapshotEntry, 0, len(exported)),
	}
	for _, e := range exported {
		raw, err := encode(e.Value)
		if err != nil {
			continue
		}
		se := snapshotEntry{Key: e.Key, Value: raw}
		if !e.Expires.IsZero() {
			se.ExpiresUnixMS = e.Expires.UnixMilli()
		}
		body.Entries = append(body.Entries, se)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("solvecache: encoding snapshot: %w", err)
	}
	if err := durable.WriteFileAtomic(path, durable.EncodeRecord(SnapshotFormat, raw)); err != nil {
		return 0, err
	}
	return len(body.Entries), nil
}

// Load restores a bccsnap/1 file written by Save into the cache. decode
// turns a raw JSON value back into the cached representation; entries
// it rejects are skipped. Version mismatches, checksum failures and
// malformed bodies return a *FormatError (callers log and start cold);
// a missing file returns the underlying fs.ErrNotExist error. It
// reports how many entries were inserted.
func Load(path string, c *Cache, decode func([]byte) (any, error)) (int, error) {
	guard.Inject("solvecache.snapshot.load")
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	raw, err := durable.DecodeRecord(SnapshotFormat, path, data)
	if err != nil {
		return 0, err
	}
	var body snapshotBody
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("decoding body: %v", err)}
	}

	entries := make([]Entry, 0, len(body.Entries))
	for _, se := range body.Entries {
		v, err := decode(se.Value)
		if err != nil {
			continue
		}
		e := Entry{Key: se.Key, Value: v}
		if se.ExpiresUnixMS != 0 {
			e.Expires = time.UnixMilli(se.ExpiresUnixMS)
		}
		entries = append(entries, e)
	}
	return c.Import(entries), nil
}
