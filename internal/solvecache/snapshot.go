package solvecache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/guard"
)

// SnapshotFormat is the snapshot file version tag. The file layout is a
// single ASCII header line
//
//	bccsnap/1 <crc32c-hex> <body-length>\n
//
// followed by exactly body-length bytes of JSON ({"saved_unix_ms":...,
// "entries":[{"key":...,"expires_unix_ms":...,"value":<raw JSON>},...]},
// entries most-recently-used first). The checksum (CRC-32/Castagnoli
// over the body) plus the explicit length make truncation, bit rot and
// torn concurrent writes all detectable; Save writes a temp file in the
// snapshot's directory and renames it into place, so readers only ever
// see a complete file. A reader that finds anything else gets a
// *FormatError — the server logs it and starts cold, never crashes.
const SnapshotFormat = "bccsnap/1"

// snapshotCRC is the CRC-32/Castagnoli table shared by writer/reader.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// FormatError reports a snapshot file that cannot be trusted: wrong
// version tag, bad checksum, truncated body, or malformed JSON. It is a
// distinct type so callers can treat "corrupt snapshot" (log and start
// cold) differently from I/O errors.
type FormatError struct {
	Path   string
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("solvecache: snapshot %s: %s", e.Path, e.Reason)
}

type snapshotBody struct {
	SavedUnixMS int64           `json:"saved_unix_ms"`
	Entries     []snapshotEntry `json:"entries"`
}

type snapshotEntry struct {
	Key           string          `json:"key"`
	ExpiresUnixMS int64           `json:"expires_unix_ms,omitempty"`
	Value         json.RawMessage `json:"value"`
}

// Save writes the cache's live entries to path in the bccsnap/1 format,
// atomically (temp file + rename in the same directory, fsynced before
// the rename so a crash leaves either the old snapshot or the new one,
// never a torn hybrid). encode turns a cached value into JSON; values
// it rejects are skipped, not fatal — one odd entry must not lose the
// rest. It reports how many entries landed in the file.
func Save(path string, c *Cache, encode func(any) ([]byte, error)) (int, error) {
	guard.Inject("solvecache.snapshot.save")
	exported := c.Export()
	body := snapshotBody{
		SavedUnixMS: time.Now().UnixMilli(),
		Entries:     make([]snapshotEntry, 0, len(exported)),
	}
	for _, e := range exported {
		raw, err := encode(e.Value)
		if err != nil {
			continue
		}
		se := snapshotEntry{Key: e.Key, Value: raw}
		if !e.Expires.IsZero() {
			se.ExpiresUnixMS = e.Expires.UnixMilli()
		}
		body.Entries = append(body.Entries, se)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("solvecache: encoding snapshot: %w", err)
	}
	header := fmt.Sprintf("%s %08x %d\n", SnapshotFormat, crc32.Checksum(raw, snapshotCRC), len(raw))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(header); err != nil {
		tmp.Close()
		return 0, err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return len(body.Entries), nil
}

// Load restores a bccsnap/1 file written by Save into the cache. decode
// turns a raw JSON value back into the cached representation; entries
// it rejects are skipped. Version mismatches, checksum failures and
// malformed bodies return a *FormatError (callers log and start cold);
// a missing file returns the underlying fs.ErrNotExist error. It
// reports how many entries were inserted.
func Load(path string, c *Cache, decode func([]byte) (any, error)) (int, error) {
	guard.Inject("solvecache.snapshot.load")
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return 0, &FormatError{Path: path, Reason: "missing header line"}
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("malformed header %q", string(data[:nl]))}
	}
	if fields[0] != SnapshotFormat {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("version %q, want %q", fields[0], SnapshotFormat)}
	}
	wantCRC, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("bad checksum field %q", fields[1])}
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("bad length field %q", fields[2])}
	}
	raw := data[nl+1:]
	if len(raw) != wantLen {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("body is %d bytes, header says %d (truncated?)", len(raw), wantLen)}
	}
	if got := crc32.Checksum(raw, snapshotCRC); got != uint32(wantCRC) {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("checksum %08x, header says %08x", got, uint32(wantCRC))}
	}
	var body snapshotBody
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		return 0, &FormatError{Path: path, Reason: fmt.Sprintf("decoding body: %v", err)}
	}

	entries := make([]Entry, 0, len(body.Entries))
	for _, se := range body.Entries {
		v, err := decode(se.Value)
		if err != nil {
			continue
		}
		e := Entry{Key: se.Key, Value: v}
		if se.ExpiresUnixMS != 0 {
			e.Expires = time.UnixMilli(se.ExpiresUnixMS)
		}
		entries = append(entries, e)
	}
	return c.Import(entries), nil
}
