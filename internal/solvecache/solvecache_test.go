package solvecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutLRUEviction(t *testing.T) {
	c := New(2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity pressure")
	}
	// a was just refreshed, so adding c must evict b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing right after Put")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry missing before expiry")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("entry served after its TTL lapsed")
	}
	s := c.Stats()
	if s.Expirations != 1 {
		t.Errorf("Expirations = %d, want 1", s.Expirations)
	}
	if s.Entries != 0 {
		t.Errorf("Entries = %d after expiry collection, want 0", s.Entries)
	}
}

func TestZeroCapacityDisablesStorageNotSingleFlight(t *testing.T) {
	c := New(0, 0)
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
	v, outcome, err := c.Do(context.Background(), "k", func() (any, bool, error) {
		return "solved", true, nil
	})
	if err != nil || v != "solved" || outcome != Miss {
		t.Fatalf("Do = (%v, %v, %v)", v, outcome, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("zero-capacity cache stored the Do result")
	}
}

func TestDoHitMissAndNonCacheable(t *testing.T) {
	c := New(8, 0)
	calls := 0
	fn := func() (any, bool, error) { calls++; return calls, true, nil }

	v, outcome, err := c.Do(context.Background(), "k", fn)
	if err != nil || v.(int) != 1 || outcome != Miss {
		t.Fatalf("first Do = (%v, %v, %v)", v, outcome, err)
	}
	v, outcome, err = c.Do(context.Background(), "k", fn)
	if err != nil || v.(int) != 1 || outcome != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want cached 1", v, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}

	// Non-cacheable values are returned but never stored.
	uncached := func() (any, bool, error) { calls++; return calls, false, nil }
	if v, _, _ := c.Do(context.Background(), "tmp", uncached); v.(int) != 2 {
		t.Fatalf("uncacheable Do = %v", v)
	}
	if v, _, _ := c.Do(context.Background(), "tmp", uncached); v.(int) != 3 {
		t.Fatalf("uncacheable Do re-ran = %v, want fresh 3", v)
	}
}

func TestDoErrorNotStored(t *testing.T) {
	c := New(8, 0)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() (any, bool, error) {
		return nil, true, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("failed Do left a cache entry")
	}
}

// TestSingleFlight proves the core serving property: N concurrent
// identical requests run fn exactly once and all observe its value.
func TestSingleFlight(t *testing.T) {
	c := New(8, 0)
	const n = 16
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{}, 1)

	fn := func() (any, bool, error) {
		calls.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return "answer", true, nil
	}

	var wg sync.WaitGroup
	results := make([]any, n)
	outcomes := make([]Outcome, n)
	wg.Add(1)
	go func() { // the leader
		defer wg.Done()
		results[0], outcomes[0], _ = c.Do(context.Background(), "k", fn)
	}()
	<-started // leader is inside fn; everyone else must join its flight
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], outcomes[i], _ = c.Do(context.Background(), "k", fn)
		}(i)
	}
	// Wait until every follower is registered, then release the leader.
	deadline := time.After(5 * time.Second)
	for c.Stats().SharedWaits < n-1 {
		select {
		case <-deadline:
			t.Fatalf("followers never registered: stats=%+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent identical requests", got, n)
	}
	var shared int
	for i, r := range results {
		if r != "answer" {
			t.Fatalf("result[%d] = %v", i, r)
		}
		if outcomes[i] == Shared {
			shared++
		}
	}
	if shared != n-1 {
		t.Errorf("shared outcomes = %d, want %d", shared, n-1)
	}
	s := c.Stats()
	if s.Misses != 1 || s.SharedWaits != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d shared waits", s, n-1)
	}
}

// A waiter abandoned by its context must get ctx.Err and leave the
// leader (and later callers) unharmed.
func TestDoWaiterContextExpiry(t *testing.T) {
	c := New(8, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (any, bool, error) {
			close(started)
			<-release
			return "late", true, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, outcome, err := c.Do(ctx, "k", func() (any, bool, error) {
		t.Error("waiter ran fn despite an existing flight")
		return nil, false, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) || outcome != Shared {
		t.Fatalf("waiter Do = (%v, %v), want Shared + DeadlineExceeded", outcome, err)
	}

	close(release)
	// The leader's value must still land in the cache.
	deadline := time.After(5 * time.Second)
	for {
		if v, ok := c.Get("k"); ok {
			if v != "late" {
				t.Fatalf("cached value = %v", v)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader value never reached the cache")
		case <-time.After(time.Millisecond):
		}
	}
}

// A panicking leader must not strand its followers forever.
func TestDoLeaderPanicReleasesWaiters(t *testing.T) {
	c := New(8, 0)
	started := make(chan struct{})
	waiterDone := make(chan error, 1)

	go func() {
		defer func() { recover() }()
		_, _, _ = c.Do(context.Background(), "k", func() (any, bool, error) {
			close(started)
			time.Sleep(20 * time.Millisecond) // let the waiter join
			panic("leader died")
		})
	}()
	<-started
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (any, bool, error) {
			return "follower-led", true, nil
		})
		waiterDone <- err
	}()

	select {
	case err := <-waiterDone:
		if !errors.Is(err, ErrLeaderAborted) {
			t.Fatalf("waiter err = %v, want ErrLeaderAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded by a panicking leader")
	}
	if s := c.Stats(); s.InFlight != 0 {
		t.Errorf("InFlight = %d after the flight collapsed", s.InFlight)
	}
}
