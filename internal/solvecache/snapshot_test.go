package solvecache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

// payload is the stand-in for the server's cached response objects.
type payload struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func encodePayload(v any) ([]byte, error) { return json.Marshal(v) }

func decodePayload(raw []byte) (any, error) {
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

func snapPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "cache.bccsnap")
}

func TestSnapshotRoundTripPreservesEntriesAndRecency(t *testing.T) {
	src := New(10, 0)
	for i := 0; i < 4; i++ {
		src.Put(fmt.Sprintf("k%d", i), &payload{Name: "v", N: i})
	}
	src.Get("k1") // bump k1 to most-recent

	path := snapPath(t)
	n, err := Save(path, src, encodePayload)
	if err != nil || n != 4 {
		t.Fatalf("Save = (%d, %v), want (4, nil)", n, err)
	}

	dst := New(10, 0)
	restored, err := Load(path, dst, decodePayload)
	if err != nil || restored != 4 {
		t.Fatalf("Load = (%d, %v), want (4, nil)", restored, err)
	}
	for i := 0; i < 4; i++ {
		v, ok := dst.Get(fmt.Sprintf("k%d", i))
		if !ok {
			t.Fatalf("k%d missing after restore", i)
		}
		if p := v.(*payload); p.N != i {
			t.Errorf("k%d = %+v", i, p)
		}
	}

	// Recency survived: with capacity 2, importing again must keep the
	// two entries that were most recent at save time (k1 bumped, then
	// k3 was the newest insert).
	small := New(2, 0)
	if _, err := Load(path, small, decodePayload); err != nil {
		t.Fatal(err)
	}
	if _, ok := small.Get("k1"); !ok {
		t.Error("most-recent entry k1 evicted on restore into a small cache")
	}
	if _, ok := small.Get("k3"); !ok {
		t.Error("second-most-recent entry k3 evicted on restore into a small cache")
	}
}

func TestSnapshotHonorsAbsoluteExpiry(t *testing.T) {
	src := New(10, time.Hour)
	src.Put("fresh", &payload{Name: "fresh"})
	// Hand-expire one entry by injecting a past-expiry export.
	path := snapPath(t)
	if _, err := Save(path, src, encodePayload); err != nil {
		t.Fatal(err)
	}

	dst := New(10, 0)
	clock := time.Now()
	dst.now = func() time.Time { return clock }
	if n, err := Load(path, dst, decodePayload); err != nil || n != 1 {
		t.Fatalf("Load = (%d, %v)", n, err)
	}
	// Advance the restored cache past the original absolute expiry: the
	// entry must lapse even though this cache has no TTL of its own.
	dst.now = func() time.Time { return clock.Add(2 * time.Hour) }
	if _, ok := dst.Get("fresh"); ok {
		t.Error("entry outlived its pre-restart TTL")
	}

	// A snapshot restored after everything expired inserts nothing.
	late := New(10, 0)
	late.now = func() time.Time { return clock.Add(3 * time.Hour) }
	if n, err := Load(path, late, decodePayload); err != nil || n != 0 {
		t.Errorf("expired snapshot restored %d entries (%v), want 0", n, err)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	src := New(10, 0)
	src.Put("k", &payload{Name: "v", N: 1})
	path := snapPath(t)
	if _, err := Save(path, src, encodePayload); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"flipped body byte": append(append([]byte{}, good[:len(good)-3]...), good[len(good)-3]^0x40, good[len(good)-2], good[len(good)-1]),
		"truncated":         good[:len(good)-5],
		"wrong version":     []byte(strings.Replace(string(good), "bccsnap/1", "bccsnap/9", 1)),
		"no header":         []byte("garbage with no newline"),
		"empty":             {},
		"random junk":       []byte("\x00\x01\x02leftover from some other tool\n{}"),
	}
	for name, data := range cases {
		p := filepath.Join(t.TempDir(), "bad.bccsnap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		dst := New(10, 0)
		n, err := Load(p, dst, decodePayload)
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: err = %v, want *FormatError", name, err)
		}
		if n != 0 || dst.Len() != 0 {
			t.Errorf("%s: corrupt snapshot restored %d entries", name, n)
		}
	}

	// A missing file is a distinct, not-a-FormatError condition.
	_, err = Load(filepath.Join(t.TempDir(), "nope.bccsnap"), New(10, 0), decodePayload)
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v, want fs.ErrNotExist", err)
	}
}

func TestSnapshotSaveIsAtomicUnderFault(t *testing.T) {
	src := New(10, 0)
	src.Put("k", &payload{Name: "old", N: 1})
	path := snapPath(t)
	if _, err := Save(path, src, encodePayload); err != nil {
		t.Fatal(err)
	}

	// Arm a panic at the save point: the crash happens before the temp
	// file replaces the good snapshot, which must stay intact.
	guard.Arm("solvecache.snapshot.save", guard.PanicFault("chaos: save"))
	defer guard.DisarmAll()
	src.Put("k", &payload{Name: "new", N: 2})
	func() {
		defer func() { recover() }()
		_, _ = Save(path, src, encodePayload)
		t.Error("armed save fault did not fire")
	}()
	guard.DisarmAll()

	dst := New(10, 0)
	if n, err := Load(path, dst, decodePayload); err != nil || n != 1 {
		t.Fatalf("Load after failed save = (%d, %v)", n, err)
	}
	v, _ := dst.Get("k")
	if p := v.(*payload); p.Name != "old" {
		t.Errorf("interrupted save corrupted the previous snapshot: %+v", p)
	}
}

func TestSnapshotSkipsUnencodableValues(t *testing.T) {
	src := New(10, 0)
	src.Put("good", &payload{Name: "v"})
	src.Put("bad", make(chan int)) // json.Marshal rejects channels
	path := snapPath(t)
	n, err := Save(path, src, encodePayload)
	if err != nil || n != 1 {
		t.Fatalf("Save = (%d, %v), want the one encodable entry and no error", n, err)
	}
	dst := New(10, 0)
	if restored, err := Load(path, dst, decodePayload); err != nil || restored != 1 {
		t.Fatalf("Load = (%d, %v)", restored, err)
	}
}

func TestExportSharesValuesImportOverwrites(t *testing.T) {
	c := New(2, 0)
	c.Put("a", &payload{Name: "a"})
	entries := c.Export()
	if len(entries) != 1 || entries[0].Key != "a" {
		t.Fatalf("export = %+v", entries)
	}
	// Import over an existing key replaces the value in place.
	entries[0].Value = &payload{Name: "a2"}
	if n := c.Import(entries); n != 1 {
		t.Fatalf("Import = %d", n)
	}
	v, _ := c.Get("a")
	if v.(*payload).Name != "a2" {
		t.Errorf("import did not overwrite: %+v", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after overwrite", c.Len())
	}
	// Storage-disabled caches import nothing.
	if n := New(0, 0).Import(entries); n != 0 {
		t.Errorf("capacity-0 cache imported %d entries", n)
	}
}
