package api

// Continuous-pipeline wire types: the bodies of the streaming workload
// endpoints.
//
//	POST /v1/ingest        IngestRequest → 200 IngestResponse
//	                                       400 Error (malformed line)
//	                                       429 Error (backlog full)
//	GET  /v1/plan/current  → 200 CurrentPlanResponse
//	                         404 Error (nothing published yet)
//
// Ingested lines are acknowledged only after they are durably appended
// to the server's query-log WAL; the pipeline then assembles them into
// tumbling windows, re-solves each window as a checkpointed job, and
// publishes the latest successful plan here.

// IngestRequest is the body of POST /v1/ingest: timestamped query-log
// lines ("ts<TAB>terms[<TAB>count]", the querylog.ParseTimed format).
// Blank and comment lines are accepted and discarded.
type IngestRequest struct {
	Lines []string `json:"lines"`
}

// IngestResponse acknowledges a durable ingest.
type IngestResponse struct {
	// Accepted counts the lines durably appended (blank/comment lines
	// are dropped before the WAL and not counted).
	Accepted int `json:"accepted"`
	// BacklogRecords is the ingest backlog not yet consumed by a solved
	// window, after this append.
	BacklogRecords int64 `json:"backlog_records"`
}

// CurrentPlanResponse is the last-good published plan plus the window
// and staleness metadata a caller needs to judge it.
type CurrentPlanResponse struct {
	// Seq increments on every publish; a consumer can cheaply poll for
	// change.
	Seq uint64 `json:"seq"`
	// Plan is the solve response for the most recent successful window.
	Plan *SolveResponse `json:"plan"`
	// WindowFromUnixMS/WindowToUnixMS bracket the arrival times of the
	// records the plan was solved from.
	WindowFromUnixMS int64 `json:"window_from_unix_ms"`
	WindowToUnixMS   int64 `json:"window_to_unix_ms"`
	// WindowRecords is how many query-log records fed the plan;
	// CoalescedWindows how many extra whole windows were folded into it
	// because the solver was behind (0 = a single on-time window).
	WindowRecords    int `json:"window_records"`
	CoalescedWindows int `json:"coalesced_windows,omitempty"`
	// PublishedUnixMS/AgeSeconds report plan staleness (the
	// bcc_pipeline_plan_age_seconds gauge).
	PublishedUnixMS int64   `json:"published_unix_ms"`
	AgeSeconds      float64 `json:"age_seconds"`
	// BacklogRecords is the current unconsumed ingest backlog.
	BacklogRecords int64 `json:"backlog_records"`
}
