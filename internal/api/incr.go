package api

import (
	"fmt"
	"math"
)

// Incremental re-solve wire pieces (DESIGN.md §17): the shared cache-key
// and sibling-tag formats, the warm-source vocabulary, and the body of
// the cache-entry export endpoint
//
//	GET /v1/cache/entry?key=<cache key>          exact lookup
//	GET /v1/cache/entry?fp2=<hash>&algo=<name>   near-miss (sibling) lookup
//	→ 200 CacheEntryResponse | 404 Error
//
// which is how a backend that just took over a fingerprint (rendezvous
// remap after a join) fetches the previous owner's cached plan to
// warm-start from (peer fill).

// Warm-source values for SolveResponse.WarmSource. The gateway's peer
// fill arrives at the backend as a request-supplied plan, so it reports
// WarmSourceRequest there; WarmSourcePeer is the gateway-side accounting
// (bcc_incr_peer_fill_total).
const (
	WarmSourceRequest = "request"
	WarmSourceSibling = "sibling"
	WarmSourcePeer    = "peer"
)

// CacheKey is the exact solution-cache key: the canonical instance
// fingerprint extended with every request parameter that changes the
// answer. Deadlines and warm plans are deliberately excluded — they
// change how long/where we search, not what the full answer is, and
// truncated or floor-violating results are never stored. The format is
// shared by the server (keying its cache) and the gateway (peer-fill
// lookups on another backend's cache).
func CacheKey(fp, algo string, seed int64, target float64) string {
	return fmt.Sprintf("%s|a=%s|s=%d|t=%x", fp, algo, seed, math.Float64bits(target))
}

// SiblingTag is the near-miss index tag: instances sharing a query set
// (bccfp2/1) and an algorithm are warm-start siblings however much
// their budgets, utilities or costs differ.
func SiblingTag(fp2, algo string) string {
	return fp2 + "|a=" + algo
}

// CacheEntryResponse is the body of GET /v1/cache/entry.
type CacheEntryResponse struct {
	// Key is the cache key of the returned entry (for a sibling lookup,
	// the neighbor's key — not necessarily one the caller could have
	// computed).
	Key string `json:"key"`
	// Sibling reports the entry was found through the near-miss index
	// rather than an exact key match.
	Sibling bool `json:"sibling,omitempty"`
	// Response is the cached solve answer, plan included.
	Response *SolveResponse `json:"response"`
}
