package api

// Job wire types: the bodies of the durable async solve-job endpoints.
//
//	POST /v1/jobs              JobRequest  → 202 JobStatus
//	GET  /v1/jobs              → 200 JobList
//	GET  /v1/jobs/{id}         → 200 JobStatus
//	GET  /v1/jobs/{id}/result  → 200 SolveResponse (completed)
//	                             202 JobStatus     (queued/running)
//	                             409 Error         (failed/canceled)
//	POST /v1/jobs/{id}/cancel  → 200 JobStatus
//
// A job is a solve that outlives any single HTTP request: the server
// persists it in a crash-safe store (internal/jobs, bccjob/1 records),
// runs it in checkpointed anytime slices, and resumes it from the last
// checkpoint after a restart. The same types travel through bcc.Client
// and the bccgate gateway.

// Job states. A submitted job is queued, runs to one of the three
// terminal states, and — after a crash — reappears as queued with its
// resume counter bumped.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobCompleted = "completed"
	JobFailed    = "failed"
	JobCanceled  = "canceled"
)

// JobTerminal reports whether a job state is final.
func JobTerminal(state string) bool {
	return state == JobCompleted || state == JobFailed || state == JobCanceled
}

// JobRequest is the body of POST /v1/jobs: a solve request plus the
// job-level deadline. The embedded request's DeadlineMS is ignored for
// jobs (slices are sized by the server's checkpoint interval);
// JobDeadlineMS bounds the total solve wall-clock across all slices and
// resumes instead.
type JobRequest struct {
	SolveRequest
	// JobDeadlineMS caps the job's cumulative solve time (across crashes
	// and resumes). 0 means the server's default job deadline.
	JobDeadlineMS int64 `json:"job_deadline_ms,omitempty"`
}

// JobProgress is the anytime view of a running (or checkpointed) job:
// the incumbent the last completed slice left behind.
type JobProgress struct {
	// Slices counts completed solve slices (checkpoints written).
	Slices int `json:"slices"`
	// ElapsedMS is cumulative solve wall-clock across all slices,
	// surviving restarts.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Status is the last slice's anytime status (deadline until the
	// final slice completes).
	Status string `json:"status,omitempty"`
	// Utility/Cost/Covered describe the incumbent plan.
	Utility float64 `json:"utility"`
	Cost    float64 `json:"cost"`
	Covered int     `json:"covered"`
	// Achieved is set for algo=gmc3: whether the incumbent reaches the
	// target.
	Achieved *bool `json:"achieved,omitempty"`
	// CheckpointUnixMS is when the incumbent was last persisted.
	CheckpointUnixMS int64 `json:"checkpoint_unix_ms,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id} (and the 202 form of the
// result endpoint).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Stage is a human-oriented phase label: "queued", "solving (slice
	// 3)", "completed", ...
	Stage       string `json:"stage,omitempty"`
	Algo        string `json:"algo,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// CreatedUnixMS / UpdatedUnixMS bracket the job's lifetime so far.
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	UpdatedUnixMS int64 `json:"updated_unix_ms,omitempty"`
	// Attempts counts run starts (1 + resumes); Resumes counts restarts
	// from a persisted record after a crash or drain.
	Attempts int `json:"attempts,omitempty"`
	Resumes  int `json:"resumes,omitempty"`
	// Progress is the incumbent checkpoint, when one exists.
	Progress *JobProgress `json:"progress,omitempty"`
	// Error carries the failure reason for state=failed (and the cancel
	// cause for canceled, when one was given).
	Error string `json:"error,omitempty"`
	// Resubmitted is set by the gateway when the job was transparently
	// resubmitted to another backend after its original owner died.
	Resubmitted bool `json:"resubmitted,omitempty"`
	// Backend is set by the gateway: the backend URL currently owning
	// the job.
	Backend string `json:"backend,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}
