package exper

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ecc"
	"repro/internal/gmc3"
	"repro/internal/obs"
)

// BenchSchema versions the machine-readable benchmark report so
// downstream tooling can detect incompatible layout changes. Bump the
// suffix whenever a field changes meaning or disappears.
const BenchSchema = "bcc-bench/1"

// StageSplit is one solver stage's share of a benchmark run, aggregated
// over every repetition (see obs.Recorder).
type StageSplit struct {
	Stage   string `json:"stage"`
	Calls   int64  `json:"calls"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
	Size    int64  `json:"size"`
}

// AlgoBench is one algorithm's benchmark row: classic ns/op numbers plus
// the quality of the solution it produced and, for the staged solvers,
// where the time went.
type AlgoBench struct {
	Algo        string       `json:"algo"`
	Runs        int          `json:"runs"`
	NsPerOp     int64        `json:"ns_per_op"`
	AllocsPerOp uint64       `json:"allocs_per_op"`
	BytesPerOp  uint64       `json:"bytes_per_op"`
	Utility     float64      `json:"utility"`
	Cost        float64      `json:"cost"`
	Stages      []StageSplit `json:"stages,omitempty"`
}

// BenchReport is the versioned JSON document that `bccbench -bench-json`
// and `make bench-json` emit (BENCH_PR3.json).
type BenchReport struct {
	Schema      string      `json:"schema"`
	Build       obs.Build   `json:"build"`
	Seed        int64       `json:"seed"`
	Queries     int         `json:"queries"`
	Classifiers int         `json:"classifiers"`
	Budget      float64     `json:"budget"`
	Algorithms  []AlgoBench `json:"algorithms"`
}

// benchLoop repeats fn until both floors are met — at least minRuns
// repetitions and at least budget of wall time — so fast algorithms get
// enough samples to average while slow ones still terminate. It reports
// the run count, mean ns/op, and mean allocation deltas measured via
// runtime.ReadMemStats (approximate: background allocation from the GC
// and runtime is included, which is fine at the magnitudes solvers
// allocate).
func benchLoop(ctx context.Context, minRuns int, budget time.Duration, fn func()) (runs int, nsPerOp int64, allocsPerOp, bytesPerOp uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for runs < minRuns || time.Since(start) < budget {
		if ctx.Err() != nil && runs > 0 {
			break
		}
		fn()
		runs++
	}
	runtime.ReadMemStats(&after)
	elapsed := time.Since(start)
	n := int64(runs)
	return runs, int64(elapsed) / n,
		(after.Mallocs - before.Mallocs) / uint64(n),
		(after.TotalAlloc - before.TotalAlloc) / uint64(n)
}

// splits drains a recorder into the report's stage rows.
func splits(rec *obs.Recorder) []StageSplit {
	var out []StageSplit
	for _, st := range rec.Snapshot() {
		out = append(out, StageSplit{
			Stage:   st.Stage,
			Calls:   st.Calls,
			TotalNs: int64(st.Total),
			MaxNs:   int64(st.Max),
			Size:    st.Size,
		})
	}
	return out
}

// BenchJSON benchmarks every solver façade on one synthetic workload and
// returns the versioned report. Stage splits are recorded with an
// obs.Recorder threaded through the context, aggregated across all
// repetitions of the algorithm.
func BenchJSON(ctx context.Context, seed int64) BenchReport {
	const (
		nQueries = 2000
		budget   = 800.0
		minRuns  = 3
		perAlgo  = time.Second
	)
	in := dataset.Synthetic(seed, nQueries, budget)
	rep := BenchReport{
		Schema:      BenchSchema,
		Build:       obs.ReadBuild(),
		Seed:        seed,
		Queries:     in.NumQueries(),
		Classifiers: len(in.Classifiers()),
		Budget:      in.Budget(),
	}

	// The GMC3 target must be reachable, so derive it from a reference
	// A^BCC run instead of hard-coding a utility.
	ref := core.SolveCtx(ctx, in, core.Options{Seed: seed})
	target := ref.Utility * 0.8

	type bench struct {
		algo   string
		traced bool
		run    func(context.Context) (utility, cost float64)
	}
	benches := []bench{
		{"rand", false, func(context.Context) (float64, float64) {
			r := core.SolveRand(in, seed)
			return r.Utility, r.Cost
		}},
		{"ig1", false, func(context.Context) (float64, float64) {
			r := core.SolveIG1(in)
			return r.Utility, r.Cost
		}},
		{"ig2", false, func(context.Context) (float64, float64) {
			r := core.SolveIG2(in)
			return r.Utility, r.Cost
		}},
		{"abcc", true, func(c context.Context) (float64, float64) {
			r := core.SolveCtx(c, in, core.Options{Seed: seed})
			return r.Utility, r.Cost
		}},
		{"gmc3", true, func(c context.Context) (float64, float64) {
			r := gmc3.SolveCtx(c, in, target, gmc3.Options{Seed: seed})
			return r.Utility, r.Cost
		}},
		{"ecc", true, func(c context.Context) (float64, float64) {
			r := ecc.SolveCtx(c, in)
			return r.Utility, r.Cost
		}},
	}

	for _, b := range benches {
		runCtx := ctx
		var rec *obs.Recorder
		if b.traced {
			rec = &obs.Recorder{}
			runCtx = obs.WithRecorder(ctx, rec)
		}
		var utility, cost float64
		runs, ns, allocs, bytes := benchLoop(ctx, minRuns, perAlgo, func() {
			utility, cost = b.run(runCtx)
		})
		row := AlgoBench{
			Algo:        b.algo,
			Runs:        runs,
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
			Utility:     utility,
			Cost:        cost,
		}
		if rec != nil {
			row.Stages = splits(rec)
		}
		rep.Algorithms = append(rep.Algorithms, row)
	}
	return rep
}

// WriteJSON renders the report with stable indentation so the committed
// BENCH_PR3.json diffs cleanly between runs.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
