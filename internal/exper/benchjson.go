package exper

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/incr"
	"repro/internal/model"
	"repro/internal/obs"
)

// BenchSchema versions the machine-readable benchmark report so
// downstream tooling can detect incompatible layout changes. Bump the
// suffix whenever a field changes meaning or disappears.
const BenchSchema = "bcc-bench/1"

// StageSplit is one solver stage's share of a benchmark run, aggregated
// over every repetition (see obs.Recorder).
type StageSplit struct {
	Stage   string `json:"stage"`
	Calls   int64  `json:"calls"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
	Size    int64  `json:"size"`
}

// AlgoBench is one algorithm's benchmark row: classic ns/op numbers plus
// the quality of the solution it produced and, for the staged solvers,
// where the time went.
type AlgoBench struct {
	Algo        string       `json:"algo"`
	Runs        int          `json:"runs"`
	NsPerOp     int64        `json:"ns_per_op"`
	AllocsPerOp uint64       `json:"allocs_per_op"`
	BytesPerOp  uint64       `json:"bytes_per_op"`
	Utility     float64      `json:"utility"`
	Cost        float64      `json:"cost"`
	Stages      []StageSplit `json:"stages,omitempty"`
}

// ParetoPoint is one (workload, algorithm) sample of the utility-vs-time
// Pareto comparison: how much solution quality each algorithm trades for
// speed, normalized against the A^BCC reference on the same workload.
type ParetoPoint struct {
	Workload string  `json:"workload"`
	Algo     string  `json:"algo"`
	Runs     int     `json:"runs"`
	NsPerOp  int64   `json:"ns_per_op"`
	Utility  float64 `json:"utility"`
	Cost     float64 `json:"cost"`
	// UtilityVsABCC is Utility / A^BCC's utility on this workload.
	UtilityVsABCC float64 `json:"utility_vs_abcc"`
	// SpeedupVsABCC is A^BCC's ns/op divided by this algorithm's.
	SpeedupVsABCC float64 `json:"speedup_vs_abcc"`
}

// DriftPoint is one warm-vs-cold incremental re-solve sample
// (DESIGN.md §17): the base workload's plan is repaired against a
// churned variant and seeds a warm A^BCC run, timed against the cold
// solve of the same churned instance.
type DriftPoint struct {
	Workload string  `json:"workload"`
	Churn    float64 `json:"churn"`
	Runs     int     `json:"runs"`
	// ColdNsPerOp / WarmNsPerOp time the churned re-solve without and
	// with the repaired seed; warm includes the repair itself.
	ColdNsPerOp int64   `json:"cold_ns_per_op"`
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	WarmSpeedup float64 `json:"warm_speedup"`
	ColdUtility float64 `json:"cold_utility"`
	WarmUtility float64 `json:"warm_utility"`
	// UtilityRatio is warm/cold; FloorMet reports it against the abcc
	// registry EvalFloor — the PR 10 acceptance gate at 1% churn.
	UtilityRatio float64 `json:"utility_ratio"`
	FloorMet     bool    `json:"floor_met"`
	// RepairKept counts base-plan classifiers that survived repair.
	RepairKept int `json:"repair_kept"`
}

// BenchReport is the versioned JSON document that `bccbench -bench-json`
// and `make bench-json` emit (BENCH_PR10.json).
type BenchReport struct {
	Schema      string      `json:"schema"`
	Build       obs.Build   `json:"build"`
	Seed        int64       `json:"seed"`
	Queries     int         `json:"queries"`
	Classifiers int         `json:"classifiers"`
	Budget      float64     `json:"budget"`
	Algorithms  []AlgoBench `json:"algorithms"`
	// Pareto compares the fast tiers against A^BCC across workloads.
	Pareto []ParetoPoint `json:"pareto,omitempty"`
	// Drift is the warm-vs-cold incremental re-solve sweep.
	Drift []DriftPoint `json:"drift,omitempty"`
}

// benchLoop repeats fn until both floors are met — at least minRuns
// repetitions and at least budget of wall time — so fast algorithms get
// enough samples to average while slow ones still terminate. It reports
// the run count, mean ns/op, and mean allocation deltas measured via
// runtime.ReadMemStats (approximate: background allocation from the GC
// and runtime is included, which is fine at the magnitudes solvers
// allocate).
func benchLoop(ctx context.Context, minRuns int, budget time.Duration, fn func()) (runs int, nsPerOp int64, allocsPerOp, bytesPerOp uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for runs < minRuns || time.Since(start) < budget {
		if ctx.Err() != nil && runs > 0 {
			break
		}
		fn()
		runs++
	}
	runtime.ReadMemStats(&after)
	elapsed := time.Since(start)
	n := int64(runs)
	return runs, int64(elapsed) / n,
		(after.Mallocs - before.Mallocs) / uint64(n),
		(after.TotalAlloc - before.TotalAlloc) / uint64(n)
}

// splits drains a recorder into the report's stage rows.
func splits(rec *obs.Recorder) []StageSplit {
	var out []StageSplit
	for _, st := range rec.Snapshot() {
		out = append(out, StageSplit{
			Stage:   st.Stage,
			Calls:   st.Calls,
			TotalNs: int64(st.Total),
			MaxNs:   int64(st.Max),
			Size:    st.Size,
		})
	}
	return out
}

// BenchJSON benchmarks every servable registry algorithm on one
// synthetic workload and returns the versioned report, followed by the
// utility-vs-time Pareto sweep. Stage splits are recorded with an
// obs.Recorder threaded through the context, aggregated across all
// repetitions of the algorithm.
func BenchJSON(ctx context.Context, seed int64) BenchReport {
	const (
		nQueries = 2000
		budget   = 800.0
		minRuns  = 3
		perAlgo  = time.Second
	)
	in := dataset.Synthetic(seed, nQueries, budget)
	rep := BenchReport{
		Schema:      BenchSchema,
		Build:       obs.ReadBuild(),
		Seed:        seed,
		Queries:     in.NumQueries(),
		Classifiers: len(in.Classifiers()),
		Budget:      in.Budget(),
	}

	// The GMC3 target must be reachable, so derive it from a reference
	// A^BCC run instead of hard-coding a utility.
	ref := core.SolveCtx(ctx, in, core.Options{Seed: seed})
	target := ref.Utility * 0.8

	// One row per servable algorithm, straight from the registry: a new
	// solver family shows up here by registering itself. The staged
	// (anytime) solvers get an obs recorder for per-stage splits.
	for _, name := range algo.ServableNames() {
		d, _ := algo.Lookup(name)
		params := algo.Params{Seed: seed, Target: target}
		runCtx := ctx
		var rec *obs.Recorder
		if d.Anytime {
			rec = &obs.Recorder{}
			runCtx = obs.WithRecorder(ctx, rec)
		}
		var utility, cost float64
		runs, ns, allocs, bytes := benchLoop(ctx, minRuns, perAlgo, func() {
			out, _ := d.Run(runCtx, in, params)
			utility, cost = out.Utility, out.Cost
		})
		row := AlgoBench{
			Algo:        name,
			Runs:        runs,
			NsPerOp:     ns,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
			Utility:     utility,
			Cost:        cost,
		}
		if rec != nil {
			row.Stages = splits(rec)
		}
		rep.Algorithms = append(rep.Algorithms, row)
	}

	rep.Pareto = paretoSweep(ctx, seed, in)
	rep.Drift = driftSweep(ctx, seed, in)
	return rep
}

// driftChurns are the workload-drift fractions the incremental re-solve
// sweep samples: light (steady-state window-over-window), moderate, and
// heavy churn where warm starts stop paying.
var driftChurns = []float64{0.01, 0.05, 0.20}

// driftSweep measures the incremental re-solve path: solve the base
// workload once, then for each churn level repair the base plan against
// the drifted instance and time warm vs cold A^BCC. The 1% row is the
// acceptance benchmark TestWarmDriftSpeedup asserts (warm ≥ 3x faster
// at a utility ratio meeting the abcc EvalFloor).
func driftSweep(ctx context.Context, seed int64, base *model.Instance) []DriftPoint {
	const (
		minRuns = 2
		perCase = 300 * time.Millisecond
	)
	baseRes := core.SolveCtx(ctx, base, core.Options{Seed: seed})
	if baseRes.Solution == nil {
		return nil
	}
	u := base.Universe()
	var plan [][]string
	for _, c := range baseRes.Solution.Classifiers() {
		names := make([]string, c.Props.Len())
		for i, id := range c.Props {
			names[i] = u.Name(id)
		}
		plan = append(plan, names)
	}
	d, _ := algo.Lookup("abcc")

	var out []DriftPoint
	for _, churn := range driftChurns {
		drift := dataset.SyntheticDrift(seed, base.NumQueries(), base.Budget(), churn)

		var coldUtility float64
		coldRuns, coldNs, _, _ := benchLoop(ctx, minRuns, perCase, func() {
			coldUtility = core.SolveCtx(ctx, drift, core.Options{Seed: seed}).Utility
		})

		var warmUtility float64
		var kept int
		_, warmNs, _, _ := benchLoop(ctx, minRuns, perCase, func() {
			warm := incr.Repair(drift, plan)
			kept = len(warm)
			warmUtility = core.SolveCtx(ctx, drift, core.Options{Seed: seed, Warm: warm}).Utility
		})

		p := DriftPoint{
			Workload:    "synthetic-2000-b800",
			Churn:       churn,
			Runs:        coldRuns,
			ColdNsPerOp: coldNs,
			WarmNsPerOp: warmNs,
			ColdUtility: coldUtility,
			WarmUtility: warmUtility,
			RepairKept:  kept,
		}
		if warmNs > 0 {
			p.WarmSpeedup = float64(coldNs) / float64(warmNs)
		}
		if coldUtility > 0 {
			p.UtilityRatio = warmUtility / coldUtility
			p.FloorMet = p.UtilityRatio >= d.EvalFloor
		}
		out = append(out, p)
	}
	return out
}

// paretoAlgos are the utility-vs-time comparison set: the A^BCC
// reference against the greedy baselines and the two approximate
// families added for fast serving tiers.
var paretoAlgos = []string{"abcc", "ig1", "ig2", "submod", "evo"}

// paretoSweep samples every pareto algorithm on each workload and
// normalizes utility and speed against the workload's A^BCC run.
func paretoSweep(ctx context.Context, seed int64, synthetic *model.Instance) []ParetoPoint {
	const (
		minRuns = 1
		perAlgo = 200 * time.Millisecond
	)
	workloads := []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic-2000-b800", synthetic},
		{"bestbuy-b300", dataset.BestBuy(seed, 300)},
	}
	var out []ParetoPoint
	for _, w := range workloads {
		base := len(out)
		var refNs int64
		var refUtility float64
		for _, name := range paretoAlgos {
			d, _ := algo.Lookup(name)
			var utility, cost float64
			runs, ns, _, _ := benchLoop(ctx, minRuns, perAlgo, func() {
				res, _ := d.Run(ctx, w.in, algo.Params{Seed: seed})
				utility, cost = res.Utility, res.Cost
			})
			if name == "abcc" {
				refNs, refUtility = ns, utility
			}
			out = append(out, ParetoPoint{
				Workload: w.name,
				Algo:     name,
				Runs:     runs,
				NsPerOp:  ns,
				Utility:  utility,
				Cost:     cost,
			})
		}
		for i := base; i < len(out); i++ {
			if refUtility > 0 {
				out[i].UtilityVsABCC = out[i].Utility / refUtility
			}
			if out[i].NsPerOp > 0 {
				out[i].SpeedupVsABCC = float64(refNs) / float64(out[i].NsPerOp)
			}
		}
	}
	return out
}

// WriteJSON renders the report with stable indentation so the committed
// BENCH_PR10.json diffs cleanly between runs.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
