package exper

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	out := tb.Format()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatalf("missing note: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, 2 rows, note
		t.Fatalf("want 5 lines, got %d: %q", len(lines), out)
	}
}

// parse extracts a numeric cell.
func cell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestFig3aRankingShape(t *testing.T) {
	// The paper's headline shape on BestBuy: A^BCC first, IG2 ≥ IG1,
	// RAND last, and utility monotone in budget.
	tb := Fig3aBestBuy(context.Background(), Small, 1)
	if len(tb.Rows) < 3 {
		t.Fatalf("too few rows: %v", tb.Rows)
	}
	prevABCC := 0.0
	for r := range tb.Rows {
		randU := cell(t, tb, r, 1)
		ig1 := cell(t, tb, r, 2)
		ig2 := cell(t, tb, r, 3)
		abcc := cell(t, tb, r, 4)
		if abcc < ig1-1e-9 || abcc < ig2-1e-9 || abcc < randU-1e-9 {
			t.Errorf("row %d: A^BCC %v not first (RAND %v IG1 %v IG2 %v)",
				r, abcc, randU, ig1, ig2)
		}
		if randU > abcc {
			t.Errorf("row %d: RAND beats A^BCC", r)
		}
		if abcc < prevABCC-1e-9 {
			t.Errorf("row %d: A^BCC utility decreased with budget", r)
		}
		prevABCC = abcc
	}
}

func TestFig3dGapWithin20Pct(t *testing.T) {
	tb := Fig3dBruteGap(context.Background(), Small, 1)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	for r := range tb.Rows {
		ratio := cell(t, tb, r, 4)
		if ratio < 0.8-1e-9 {
			t.Errorf("row %d: A^BCC/OPT = %v below the paper's 0.8 floor", r, ratio)
		}
		if ratio > 1+1e-9 {
			t.Errorf("row %d: A^BCC beats brute force (%v) — accounting bug", r, ratio)
		}
	}
}

func TestByNameComplete(t *testing.T) {
	for _, id := range Order() {
		if _, ok := ByName(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown experiment resolved")
	}
}
