// Package exper is the experiment harness: one runner per table/figure of
// the paper's evaluation section (Section 6), each producing the rows the
// paper plots. cmd/bccbench prints them; bench_test.go wraps them in
// testing.B benchmarks; EXPERIMENTS.md records the outcomes.
package exper

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ecc"
	"repro/internal/gmc3"
	"repro/internal/model"
	"repro/internal/propset"
	"repro/internal/training"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func dur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// Scale selects experiment sizes: Small runs in seconds (CI, go test
// -bench), Full matches the paper's dimensions (offline, cmd/bccbench
// -full).
type Scale int

const (
	// Small is the CI-friendly preset.
	Small Scale = iota
	// Full matches the paper's experiment dimensions.
	Full
)

// truncated reports whether ctx is done, recording a note the first time
// so the printed table shows the run was cut short by its deadline.
func truncated(ctx context.Context, t *Table) bool {
	if ctx.Err() == nil {
		return false
	}
	if len(t.Notes) == 0 || !strings.HasPrefix(t.Notes[len(t.Notes)-1], "truncated") {
		t.Notes = append(t.Notes, "truncated by deadline: "+ctx.Err().Error())
	}
	return true
}

// utilityVsBudget runs the four BCC algorithms over the instance factory
// at each budget — the common shape of Figures 3a–3c.
func utilityVsBudget(ctx context.Context, title string, mk func(budget float64) *model.Instance, budgets []float64, seed int64) Table {
	t := Table{
		Title:   title,
		Columns: []string{"budget", "RAND", "IG1", "IG2", "A^BCC", "A^BCC time"},
	}
	for _, b := range budgets {
		if truncated(ctx, &t) {
			break
		}
		in := mk(b)
		randRes := core.SolveRand(in, seed)
		ig1 := core.SolveIG1(in)
		ig2 := core.SolveIG2(in)
		abcc := core.SolveCtx(ctx, in, core.Options{Seed: seed})
		t.Rows = append(t.Rows, []string{
			f0(b), f0(randRes.Utility), f0(ig1.Utility), f0(ig2.Utility),
			f0(abcc.Utility), dur(abcc.Duration),
		})
	}
	return t
}

// Fig3aBestBuy reproduces Figure 3a: utility by budget over the BestBuy
// workload for RAND, IG1, IG2 and A^BCC.
func Fig3aBestBuy(ctx context.Context, scale Scale, seed int64) Table {
	budgets := []float64{25, 50, 100, 200}
	if scale == Full {
		budgets = []float64{25, 50, 100, 200, 400, 700}
	}
	return utilityVsBudget(ctx, "Fig 3a — BestBuy: utility vs budget",
		func(b float64) *model.Instance { return dataset.BestBuy(seed, b) }, budgets, seed)
}

// Fig3bPrivate reproduces Figure 3b over the Private workload. The paper's
// real quarterly budget for this dataset is ≈2000.
func Fig3bPrivate(ctx context.Context, scale Scale, seed int64) Table {
	budgets := []float64{250, 500, 1000, 2000}
	if scale == Full {
		budgets = []float64{250, 500, 1000, 2000, 4000, 8000}
	}
	return utilityVsBudget(ctx, "Fig 3b — Private: utility vs budget",
		func(b float64) *model.Instance { return dataset.Private(seed, b) }, budgets, seed)
}

// Fig3cSynthetic reproduces Figure 3c over the Synthetic workload.
func Fig3cSynthetic(ctx context.Context, scale Scale, seed int64) Table {
	n, budgets := 10000, []float64{1000, 2500, 5000}
	if scale == Full {
		n, budgets = 100000, []float64{1000, 2500, 5000, 10000, 20000}
	}
	return utilityVsBudget(ctx, fmt.Sprintf("Fig 3c — Synthetic (%d queries): utility vs budget", n),
		func(b float64) *model.Instance { return dataset.Synthetic(seed, n, b) }, budgets, seed)
}

// Fig3dBruteGap reproduces Figure 3d: A^BCC versus exhaustive search on
// small Private subdomains; the paper reports losses below 20%.
func Fig3dBruteGap(ctx context.Context, scale Scale, seed int64) Table {
	t := Table{
		Title:   "Fig 3d — A^BCC vs brute force on small Private subsets",
		Columns: []string{"subset", "budget", "A^BCC", "OPT", "ratio"},
	}
	subsets := 4
	if scale == Full {
		subsets = 10
	}
	for i := 0; i < subsets; i++ {
		if truncated(ctx, &t) {
			break
		}
		in := dataset.PrivateSubset(seed+int64(i), 25, 22)
		abcc := core.SolveCtx(ctx, in, core.Options{Seed: seed})
		opt, err := core.BruteForce(in)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("subset %d skipped: %v", i, err))
			continue
		}
		ratio := 1.0
		if opt.Utility > 0 {
			ratio = abcc.Utility / opt.Utility
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("#%d (%dq)", i, in.NumQueries()), f0(in.Budget()),
			f0(abcc.Utility), f0(opt.Utility), f2(ratio),
		})
	}
	return t
}

// Fig3ePreprocessingTime reproduces Figure 3e: A^BCC runtime with and
// without the preprocessing step over growing Synthetic workloads, at the
// fixed budget of 5000 the paper uses.
func Fig3ePreprocessingTime(ctx context.Context, scale Scale, seed int64) Table {
	sizes := []int{10000, 25000}
	noPreCap := 50000
	if scale == Full {
		sizes = []int{10000, 50000, 100000, 250000, 500000, 1000000}
		noPreCap = 100000 // beyond this the paper's no-preprocessing run did not terminate
	}
	t := Table{
		Title:   "Fig 3e — preprocessing ablation: runtime vs #queries (budget 5000)",
		Columns: []string{"queries", "with preprocessing", "without preprocessing"},
		Notes:   []string{"paper: without preprocessing did not terminate above 50K queries"},
	}
	for _, n := range sizes {
		if truncated(ctx, &t) {
			break
		}
		in := dataset.Synthetic(seed, n, 5000)
		with := core.SolveCtx(ctx, in, core.Options{Seed: seed})
		noPre := "skipped"
		if n <= noPreCap {
			res := core.SolveCtx(ctx, in, core.Options{Seed: seed, DisablePruning: true})
			noPre = dur(res.Duration)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), dur(with.Duration), noPre})
	}
	return t
}

// Fig3fPreprocessingUtility reproduces Figure 3f: solution quality with
// and without preprocessing (the paper reports a negligible gap).
func Fig3fPreprocessingUtility(ctx context.Context, scale Scale, seed int64) Table {
	sizes := []int{10000, 25000}
	if scale == Full {
		sizes = []int{10000, 50000, 100000}
	}
	t := Table{
		Title:   "Fig 3f — preprocessing ablation: utility vs #queries (budget 5000)",
		Columns: []string{"queries", "with preprocessing", "without preprocessing", "ratio"},
	}
	for _, n := range sizes {
		if truncated(ctx, &t) {
			break
		}
		in := dataset.Synthetic(seed, n, 5000)
		with := core.SolveCtx(ctx, in, core.Options{Seed: seed})
		without := core.SolveCtx(ctx, in, core.Options{Seed: seed, DisablePruning: true})
		ratio := 1.0
		if without.Utility > 0 {
			ratio = with.Utility / without.Utility
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), f0(with.Utility), f0(without.Utility), f2(ratio),
		})
	}
	return t
}

// budgetVsTarget runs the four GMC3 algorithms at each utility target —
// the shape of Figures 4a–4c (lower cost is better).
func budgetVsTarget(ctx context.Context, title string, in *model.Instance, fractions []float64, seed int64) Table {
	t := Table{
		Title:   title,
		Columns: []string{"target", "RAND(G)", "IG1(G)", "IG2(G)", "A^GMC3", "A^GMC3 time"},
	}
	total := in.TotalUtility()
	for _, f := range fractions {
		if truncated(ctx, &t) {
			break
		}
		target := total * f
		randRes := gmc3.SolveRand(in, target, seed)
		ig1 := gmc3.SolveIG1(in, target)
		ig2 := gmc3.SolveIG2(in, target)
		ours := gmc3.SolveCtx(ctx, in, target, gmc3.Options{Seed: seed})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", f*100), f0(randRes.Cost), f0(ig1.Cost), f0(ig2.Cost),
			f0(ours.Cost), dur(ours.Duration),
		})
	}
	return t
}

// Fig4aGMC3BestBuy reproduces Figure 4a: budget used per utility target on
// BestBuy.
func Fig4aGMC3BestBuy(ctx context.Context, scale Scale, seed int64) Table {
	fr := []float64{0.25, 0.5, 0.75}
	if scale == Full {
		fr = []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	}
	return budgetVsTarget(ctx, "Fig 4a — GMC3 on BestBuy: cost vs utility target",
		dataset.BestBuy(seed, 0), fr, seed)
}

// Fig4bGMC3Private reproduces Figure 4b on the Private workload.
func Fig4bGMC3Private(ctx context.Context, scale Scale, seed int64) Table {
	fr := []float64{0.25, 0.5}
	if scale == Full {
		fr = []float64{0.1, 0.25, 0.5, 0.75}
	}
	return budgetVsTarget(ctx, "Fig 4b — GMC3 on Private: cost vs utility target",
		dataset.Private(seed, 0), fr, seed)
}

// Fig4cGMC3Synthetic reproduces Figure 4c on the Synthetic workload.
func Fig4cGMC3Synthetic(ctx context.Context, scale Scale, seed int64) Table {
	n := 5000
	fr := []float64{0.25, 0.5}
	if scale == Full {
		n = 100000
		fr = []float64{0.1, 0.25, 0.5}
	}
	return budgetVsTarget(ctx,
		fmt.Sprintf("Fig 4c — GMC3 on Synthetic (%d queries): cost vs utility target", n),
		dataset.Synthetic(seed, n, 0), fr, seed)
}

// Fig4dGMC3Time reproduces Figure 4d: A^GMC3 runtimes on Synthetic for a
// fixed utility target (the paper uses 150K over 100K queries; the Small
// preset scales both down proportionally).
func Fig4dGMC3Time(ctx context.Context, scale Scale, seed int64) Table {
	sizes := []int{2000, 5000, 10000}
	targetFrac := 0.12 // ≈150K/1.27M, the paper's proportion
	if scale == Full {
		sizes = []int{25000, 50000, 100000}
	}
	t := Table{
		Title:   "Fig 4d — A^GMC3 runtime vs #queries (target ≈12% of total utility)",
		Columns: []string{"queries", "A^GMC3 time", "IG1(G) time", "IG2(G) time"},
	}
	for _, n := range sizes {
		if truncated(ctx, &t) {
			break
		}
		in := dataset.Synthetic(seed, n, 0)
		target := in.TotalUtility() * targetFrac
		ours := gmc3.SolveCtx(ctx, in, target, gmc3.Options{Seed: seed})
		ig1 := gmc3.SolveIG1(in, target)
		ig2 := gmc3.SolveIG2(in, target)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), dur(ours.Duration), dur(ig1.Duration), dur(ig2.Duration),
		})
	}
	return t
}

// eccTable runs the four ECC algorithms on one instance — the shape of
// Figures 4e/4f (higher ratio is better).
func eccTable(ctx context.Context, title string, in *model.Instance, seed int64) Table {
	t := Table{
		Title:   title,
		Columns: []string{"algorithm", "ratio", "utility", "cost", "time"},
	}
	add := func(name string, r ecc.Result) {
		t.Rows = append(t.Rows, []string{name, f2(r.Ratio), f0(r.Utility), f0(r.Cost), dur(r.Duration)})
	}
	add("RAND(E)", ecc.SolveRand(in, seed))
	add("IG1(E)", ecc.SolveIG1(in))
	add("IG2(E)", ecc.SolveIG2(in))
	add("A^ECC", ecc.SolveCtx(ctx, in))
	truncated(ctx, &t)
	return t
}

// Fig4eECCPrivate reproduces Figure 4e: best utility-to-cost ratios on the
// Private workload. Already-built (zero-cost) classifiers are re-priced at
// 1: with a free classifier in range, the optimal ratio is trivially
// infinite and the comparison degenerates.
func Fig4eECCPrivate(ctx context.Context, scale Scale, seed int64) Table {
	return eccTable(ctx, "Fig 4e — ECC on Private: best utility/cost ratio",
		dataset.PrivateAllPaid(seed, 0), seed)
}

// Fig4fECCSynthetic reproduces Figure 4f on the Synthetic workload. The
// cost–utility-correlated variant is used: under the paper's plain uniform
// process some single query has utility ≈50 and cost ≈1 and the ECC
// optimum degenerates to that one classifier, whereas the paper reports
// aggregate solutions (total cost ≈900) — implying the real estimates were
// correlated, as analyst estimates are.
func Fig4fECCSynthetic(ctx context.Context, scale Scale, seed int64) Table {
	n := 5000
	if scale == Full {
		n = 100000
	}
	pool := 500 // preserves the paper's ≈18 queries-per-property density
	if scale == Full {
		pool = 10000
	}
	t := eccTable(ctx, fmt.Sprintf("Fig 4f — ECC on Synthetic-correlated (%d queries): best utility/cost ratio", n),
		dataset.SyntheticCorrelatedPool(seed, n, pool, 0), seed)
	t.Notes = append(t.Notes,
		"uncorrelated uniform costs degenerate ECC to one cheap classifier; see DESIGN.md")
	return t
}

// InsightDiminishingReturns reproduces the §6.2 analysis on the Private
// workload: the budget needed for 50/65/75% of the total utility compared
// to the MC3 full-coverage budget, and the utility split by query length
// at the "real" quarterly budget.
func InsightDiminishingReturns(ctx context.Context, scale Scale, seed int64) Table {
	in0 := dataset.Private(seed, 0)
	total := in0.TotalUtility()
	fullCost := gmc3.SolveCtx(ctx, in0, total, gmc3.Options{Seed: seed}).Cost

	t := Table{
		Title:   "§6.2 — diminishing returns on Private",
		Columns: []string{"utility fraction", "budget needed", "share of full budget"},
		Notes: []string{fmt.Sprintf("full-coverage (MC3) budget ≈ %.0f, total utility %.0f",
			fullCost, total)},
	}
	for _, f := range []float64{0.5, 0.65, 0.75} {
		if truncated(ctx, &t) {
			return t
		}
		res := gmc3.SolveCtx(ctx, in0, total*f, gmc3.Options{Seed: seed})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", f*100), f0(res.Cost), f2(res.Cost / fullCost),
		})
	}
	if truncated(ctx, &t) {
		return t
	}

	// Utility split by covered query length at the "real" budget ≈ 2000.
	in := dataset.Private(seed, 2000)
	res := core.SolveCtx(ctx, in, core.Options{Seed: seed})
	byLen := map[int]float64{}
	for _, q := range res.Solution.CoveredQueries() {
		byLen[q.Length()] += q.Utility
	}
	var covered float64
	for _, u := range byLen {
		covered += u
	}
	if covered > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"at budget 2000: %.0f%% of covered utility from singletons, %.0f%% from length-2, %.0f%% longer",
			100*byLen[1]/covered, 100*byLen[2]/covered,
			100*(covered-byLen[1]-byLen[2])/covered))
	}
	return t
}

// InsightCostNoise reproduces the §6.2 "preliminary end-to-end" analysis:
// the company's cost estimates were on average ~6% below actual costs,
// which the paper argues is theoretically equivalent to shrinking the
// budget by 6% — with a bounded utility loss. We measure exactly that on
// the Private workload: A^BCC at the nominal budget versus at budgets
// reduced by 6% and 12%, plus the realized utility when the plan chosen
// under estimated costs is re-priced with +6% actual costs and trimmed to
// fit.
func InsightCostNoise(ctx context.Context, scale Scale, seed int64) Table {
	const budget = 2000
	in := dataset.Private(seed, budget)
	t := Table{
		Title:   "§6.2 — robustness to cost underestimation (Private, budget 2000)",
		Columns: []string{"scenario", "utility", "share of nominal"},
	}
	nominal := core.SolveCtx(ctx, in, core.Options{Seed: seed})
	add := func(name string, u float64) {
		t.Rows = append(t.Rows, []string{name, f0(u), f2(u / nominal.Utility)})
	}
	add("nominal budget", nominal.Utility)
	for _, shrink := range []float64{0.06, 0.12} {
		if truncated(ctx, &t) {
			return t
		}
		res := core.SolveCtx(ctx, in.WithBudget(budget*(1-shrink)), core.Options{Seed: seed})
		add(fmt.Sprintf("budget −%.0f%%", shrink*100), res.Utility)
	}
	// Plan under estimates, pay actual (+6%) costs: drop the weakest
	// classifiers until the plan fits the nominal budget again.
	if nominal.Solution.Cost()*1.06 > budget {
		sol := nominal.Solution.Clone()
		for _, c := range sol.Classifiers() {
			if sol.Cost()*1.06 <= budget {
				break
			}
			sol.Remove(c.Props)
		}
		add("plan repriced +6%, trimmed to budget", sol.Utility())
	}
	t.Notes = append(t.Notes,
		"paper: estimates ~6% low on average; a small multiplicative budget change costs only a slightly larger utility fraction")
	return t
}

// InsightEndToEnd reproduces the paper's §6.2 "preliminary end-to-end
// results" on a simulated catalog: derive the workload from attribute
// popularity, solve BCC, train the selected classifiers to the 95%
// deployment bar, and measure the covered queries' result-set growth and
// precision against the metadata-only baseline (paper: growth >200% on
// every sampled query, precision ≥90%).
func InsightEndToEnd(ctx context.Context, scale Scale, seed int64) Table {
	items, queries := 5000, 50
	if scale == Full {
		items, queries = 50000, 400
	}
	cat := catalog.Generate(seed, catalog.Options{
		Items: items, Attributes: 100, AttrsPerItem: 4, RecordRate: 0.3,
	})
	m := training.Model{CurveFor: func(s propset.Set) training.Curve {
		return training.DefaultCurve(0.15 * float64(s.Len()))
	}}
	in, err := cat.DeriveWorkload(seed+1, catalog.WorkloadOptions{Queries: queries, MaxLen: 2}, m.Cost, 120)
	t := Table{
		Title:   "§6.2 — end-to-end: result-set growth of covered queries",
		Columns: []string{"metric", "value"},
	}
	if err != nil {
		t.Notes = append(t.Notes, "workload derivation failed: "+err.Error())
		return t
	}
	res := core.SolveCtx(ctx, in, core.Options{Seed: seed})
	var sel []propset.Set
	for _, cl := range res.Solution.Classifiers() {
		sel = append(sel, cl.Props)
	}
	trained := catalog.TrainSelection(m, sel)
	var gSum, pSum, rSum float64
	n := 0
	over200 := 0
	for _, q := range res.Solution.CoveredQueries() {
		r := cat.Evaluate(seed+11, q.Props, trained)
		if r.BaselineSize == 0 {
			continue
		}
		n++
		gSum += r.GrowthPct
		pSum += r.Precision
		rSum += r.Recall
		if r.GrowthPct > 200 {
			over200++
		}
	}
	if n == 0 {
		t.Notes = append(t.Notes, "no covered query had a nonzero baseline")
		return t
	}
	t.Rows = append(t.Rows,
		[]string{"covered queries evaluated", fmt.Sprintf("%d", n)},
		[]string{"avg result-set growth", fmt.Sprintf("%.0f%%", gSum/float64(n))},
		[]string{"queries with >200% growth", fmt.Sprintf("%d/%d", over200, n)},
		[]string{"avg precision", f2(pSum / float64(n))},
		[]string{"avg recall", f2(rSum / float64(n))},
	)
	t.Notes = append(t.Notes, "paper: growth >200% on all 20 sampled queries, precision ≥90%")
	return t
}

// All runs every experiment at the given scale and returns the tables in
// paper order. A done ctx stops the sweep early; completed tables are
// still returned.
func All(ctx context.Context, scale Scale, seed int64) []Table {
	var out []Table
	for _, id := range Order() {
		run, _ := ByName(id)
		out = append(out, run(ctx, scale, seed))
		if ctx.Err() != nil {
			break
		}
	}
	return out
}

// Order lists the experiment ids in paper order.
func Order() []string {
	return []string{"3a", "3b", "3c", "3d", "3e", "3f", "4a", "4b", "4c", "4d", "4e", "4f", "insights", "noise", "endtoend"}
}

// ByName resolves an experiment id ("3a", "4d", "insights") to its runner.
func ByName(name string) (func(context.Context, Scale, int64) Table, bool) {
	m := map[string]func(context.Context, Scale, int64) Table{
		"3a":       Fig3aBestBuy,
		"3b":       Fig3bPrivate,
		"3c":       Fig3cSynthetic,
		"3d":       Fig3dBruteGap,
		"3e":       Fig3ePreprocessingTime,
		"3f":       Fig3fPreprocessingUtility,
		"4a":       Fig4aGMC3BestBuy,
		"4b":       Fig4bGMC3Private,
		"4c":       Fig4cGMC3Synthetic,
		"4d":       Fig4dGMC3Time,
		"4e":       Fig4eECCPrivate,
		"4f":       Fig4fECCSynthetic,
		"insights": InsightDiminishingReturns,
		"noise":    InsightCostNoise,
		"endtoend": InsightEndToEnd,
	}
	f, ok := m[name]
	return f, ok
}
