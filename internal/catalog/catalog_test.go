package catalog

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/propset"
	"repro/internal/training"
)

func smallCatalog(t testing.TB) *Catalog {
	t.Helper()
	return Generate(1, Options{Items: 3000, Attributes: 80, AttrsPerItem: 4, RecordRate: 0.35})
}

func TestGenerateShape(t *testing.T) {
	c := smallCatalog(t)
	if len(c.Items) != 3000 {
		t.Fatalf("items = %d", len(c.Items))
	}
	if c.Universe.Size() != 80 {
		t.Fatalf("attributes = %d", c.Universe.Size())
	}
	recorded, total := 0, 0
	for _, it := range c.Items {
		if !it.Recorded.SubsetOf(it.True) {
			t.Fatal("recorded attributes must be a subset of true attributes")
		}
		recorded += it.Recorded.Len()
		total += it.True.Len()
	}
	rate := float64(recorded) / float64(total)
	if rate < 0.25 || rate > 0.45 {
		t.Fatalf("record rate = %.2f, want ≈0.35", rate)
	}
}

func TestBaselineSubsetOfTruth(t *testing.T) {
	c := smallCatalog(t)
	q := propset.New(0, 1) // two most popular attributes
	truth := map[int]bool{}
	for _, id := range c.TrueMatches(q) {
		truth[id] = true
	}
	base := c.BaselineMatches(q)
	for _, id := range base {
		if !truth[id] {
			t.Fatal("baseline retrieved a non-matching item")
		}
	}
	if len(base) >= len(truth) && len(truth) > 0 {
		t.Fatalf("baseline (%d) should undershoot the truth (%d) at record rate 0.35",
			len(base), len(truth))
	}
}

func TestPerfectClassifierRecoversTruth(t *testing.T) {
	c := smallCatalog(t)
	q := propset.New(0, 1)
	cls := map[string]Trained{
		q.Key(): {Props: q, Acc: 1.0},
	}
	r := c.Evaluate(7, q, cls)
	if r.Recall != 1 || r.Precision != 1 {
		t.Fatalf("perfect classifier: recall %v precision %v", r.Recall, r.Precision)
	}
	if r.AugmentedSize != r.TrueSize {
		t.Fatalf("augmented %d != true %d", r.AugmentedSize, r.TrueSize)
	}
}

func TestNoisyClassifierPrecisionRecall(t *testing.T) {
	c := smallCatalog(t)
	q := propset.New(0)
	cls := map[string]Trained{
		q.Key(): {Props: q, Acc: 0.95},
	}
	r := c.Evaluate(7, q, cls)
	if r.Recall < 0.85 {
		t.Fatalf("recall %v too low for a 95%% classifier", r.Recall)
	}
	if r.Precision < 0.5 {
		t.Fatalf("precision %v too low", r.Precision)
	}
	if r.AugmentedSize <= r.BaselineSize {
		t.Fatalf("augmentation did not grow the result set: %d vs %d",
			r.AugmentedSize, r.BaselineSize)
	}
}

func TestDeriveWorkloadSolvable(t *testing.T) {
	c := smallCatalog(t)
	m := training.Model{CurveFor: func(s propset.Set) training.Curve {
		return training.DefaultCurve(0.2 + 0.1*float64(s.Len()))
	}}
	in, err := c.DeriveWorkload(2, WorkloadOptions{Queries: 60, MaxLen: 3}, m.Cost, 150)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumQueries() < 30 {
		t.Fatalf("derived only %d queries", in.NumQueries())
	}
	res := core.Solve(in, core.Options{Seed: 1})
	if res.Utility <= 0 {
		t.Fatal("nothing covered at a reasonable budget")
	}
	if res.Cost > in.Budget()+1e-9 {
		t.Fatal("budget exceeded")
	}
}

// TestEndToEndGrowth reproduces the paper's §6.2 finding: result sets of
// newly covered queries grow substantially (paper: >200% on every sampled
// query) with high precision (paper: ≥90%).
func TestEndToEndGrowth(t *testing.T) {
	c := Generate(3, Options{Items: 5000, Attributes: 100, AttrsPerItem: 4, RecordRate: 0.3})
	m := training.Model{CurveFor: func(s propset.Set) training.Curve {
		return training.DefaultCurve(0.15 * float64(s.Len()))
	}}
	in, err := c.DeriveWorkload(4, WorkloadOptions{Queries: 50, MaxLen: 2}, m.Cost, 120)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Solve(in, core.Options{Seed: 1})
	if res.Covered == 0 {
		t.Fatal("no queries covered")
	}
	var sel []propset.Set
	for _, cl := range res.Solution.Classifiers() {
		sel = append(sel, cl.Props)
	}
	trained := TrainSelection(m, sel)
	for _, tc := range trained {
		if tc.Acc < 0.95-1e-9 {
			t.Fatalf("deployed classifier below the bar: %v", tc.Acc)
		}
	}
	var growths, precisions []float64
	for _, q := range res.Solution.CoveredQueries() {
		r := c.Evaluate(11, q.Props, trained)
		if r.BaselineSize == 0 {
			continue
		}
		growths = append(growths, r.GrowthPct)
		precisions = append(precisions, r.Precision)
	}
	if len(growths) == 0 {
		t.Skip("no covered query with a nonzero baseline in this draw")
	}
	var gSum, pSum float64
	for i := range growths {
		gSum += growths[i]
		pSum += precisions[i]
	}
	gAvg, pAvg := gSum/float64(len(growths)), pSum/float64(len(precisions))
	t.Logf("avg growth %.0f%%, avg precision %.2f over %d queries", gAvg, pAvg, len(growths))
	if gAvg < 100 {
		t.Fatalf("average result-set growth %.0f%% too small (paper: >200%%)", gAvg)
	}
	if pAvg < 0.85 {
		t.Fatalf("average precision %.2f too low (paper: ≥0.90)", pAvg)
	}
	if math.IsNaN(gAvg) || math.IsNaN(pAvg) {
		t.Fatal("NaN metrics")
	}
}
