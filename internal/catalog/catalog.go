// Package catalog simulates the system context around BCC that the
// paper's §6.2 "preliminary end-to-end results" describe: an item catalog
// whose true attributes are only partially recorded, a baseline search
// engine that can only filter on recorded attributes, and
// classifier-augmented retrieval once classifiers are trained.
//
// The paper reports that for newly covered queries the complete result
// sets were >200% larger than the metadata-only result sets (sellers
// rarely spell out attributes like "wooden" that are evident from the
// image), with precision above 90–95% from the trained classifiers. This
// package reproduces that pipeline end to end on synthetic items: generate
// a catalog, derive the BCC workload from attribute-combination
// popularity, solve BCC, "train" the selected classifiers (internal/
// training), and measure per-query recall/precision/result-set growth.
package catalog

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/propset"
)

// Item is one catalog entry: True lists the attributes that actually hold
// for the item; Recorded is the (incomplete) subset the seller spelled
// out, which is all the baseline search engine can see.
type Item struct {
	ID       int
	True     propset.Set
	Recorded propset.Set
}

// Catalog is a generated item corpus over a shared universe.
type Catalog struct {
	Universe *propset.Universe
	Items    []Item
	// attrPop[id] is the popularity weight of each attribute.
	attrPop []float64
}

// Options configures Generate.
type Options struct {
	// Items is the catalog size. Default 20000.
	Items int
	// Attributes is the attribute pool size. Default 300.
	Attributes int
	// AttrsPerItem is the mean number of true attributes per item.
	// Default 5.
	AttrsPerItem int
	// RecordRate is the probability a true attribute is spelled out in the
	// item's metadata. The paper's motivation is that this is far below 1
	// ("the material is evident in the image"). Default 0.35.
	RecordRate float64
}

func (o Options) withDefaults() Options {
	if o.Items == 0 {
		o.Items = 20000
	}
	if o.Attributes == 0 {
		o.Attributes = 300
	}
	if o.AttrsPerItem == 0 {
		o.AttrsPerItem = 5
	}
	if o.RecordRate == 0 {
		o.RecordRate = 0.35
	}
	return o
}

// Generate builds a deterministic catalog: attribute popularity is
// Zipf-distributed and items draw attributes by popularity, so popular
// attribute pairs co-occur (the same structure search workloads show).
func Generate(seed int64, opts Options) *Catalog {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	u := propset.NewUniverse()
	pop := make([]float64, opts.Attributes)
	for i := 0; i < opts.Attributes; i++ {
		u.Intern(fmt.Sprintf("attr%d", i))
		pop[i] = 1 / float64(i+1)
	}
	// Cumulative distribution for popularity-biased draws.
	cum := make([]float64, len(pop))
	var sum float64
	for i, p := range pop {
		sum += p
		cum[i] = sum
	}
	draw := func() propset.ID {
		x := rng.Float64() * sum
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		return propset.ID(i)
	}

	c := &Catalog{Universe: u, attrPop: pop}
	for id := 0; id < opts.Items; id++ {
		n := 1 + rng.Intn(opts.AttrsPerItem*2-1) // mean ≈ AttrsPerItem
		ids := map[propset.ID]bool{}
		for len(ids) < n {
			ids[draw()] = true
		}
		// Iterate attributes in sorted order: ranging over the map would
		// pair each rng draw with a run-dependent attribute, making
		// Recorded — and everything derived from it — nondeterministic
		// across processes.
		all := make([]propset.ID, 0, len(ids))
		for a := range ids {
			all = append(all, a)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var rec []propset.ID
		for _, a := range all {
			if rng.Float64() < opts.RecordRate {
				rec = append(rec, a)
			}
		}
		c.Items = append(c.Items, Item{
			ID:       id,
			True:     propset.New(all...),
			Recorded: propset.New(rec...),
		})
	}
	return c
}

// TrueMatches returns the items whose true attributes satisfy the query
// conjunction — the complete result set the platform wants to serve.
func (c *Catalog) TrueMatches(q propset.Set) []int {
	var out []int
	for _, it := range c.Items {
		if q.SubsetOf(it.True) {
			out = append(out, it.ID)
		}
	}
	return out
}

// BaselineMatches returns the items the metadata-only search engine
// retrieves: every queried attribute must be explicitly recorded.
func (c *Catalog) BaselineMatches(q propset.Set) []int {
	var out []int
	for _, it := range c.Items {
		if q.SubsetOf(it.Recorded) {
			out = append(out, it.ID)
		}
	}
	return out
}

// WorkloadOptions configures DeriveWorkload.
type WorkloadOptions struct {
	// Queries is the number of distinct queries to derive. Default 400.
	Queries int
	// MaxLen caps query length. Default 3.
	MaxLen int
}

// DeriveWorkload builds a BCC query workload from the catalog: queries are
// popularity-biased attribute conjunctions, utilities are simulated search
// frequencies, and coverage value exists only where the baseline engine
// underperforms (queries whose recorded-metadata results are already
// complete are not worth classifier budget).
func (c *Catalog) DeriveWorkload(seed int64, opts WorkloadOptions, cost func(propset.Set) float64, budget float64) (*model.Instance, error) {
	if opts.Queries == 0 {
		opts.Queries = 400
	}
	if opts.MaxLen == 0 {
		opts.MaxLen = 3
	}
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilderWithUniverse(c.Universe)
	b.SetDefaultCost(cost)

	seen := map[string]bool{}
	added := 0
	for attempts := 0; added < opts.Queries && attempts < opts.Queries*60; attempts++ {
		// Draw a query from a random item's true attributes, so queries
		// match real attribute co-occurrence.
		it := c.Items[rng.Intn(len(c.Items))]
		if it.True.Len() == 0 {
			continue
		}
		ln := 1 + rng.Intn(opts.MaxLen)
		if ln > it.True.Len() {
			ln = it.True.Len()
		}
		perm := rng.Perm(it.True.Len())
		ids := make([]propset.ID, ln)
		for i := 0; i < ln; i++ {
			ids[i] = it.True[perm[i]]
		}
		q := propset.New(ids...)
		if seen[q.Key()] {
			continue
		}
		true_ := len(c.TrueMatches(q))
		base := len(c.BaselineMatches(q))
		if true_ == 0 || base*2 >= true_ {
			continue // baseline already serves most of the result set
		}
		seen[q.Key()] = true
		// Utility: simulated search frequency ∝ matching inventory, with
		// noise.
		util := 1 + float64(true_)*(0.5+rng.Float64())
		b.AddQuerySet(q, util)
		added++
	}
	return b.Instance(budget)
}
