package catalog

import (
	"math/rand"

	"repro/internal/propset"
	"repro/internal/training"
)

// Retrieval is the measured outcome of serving one query with trained
// classifiers versus the metadata-only baseline.
type Retrieval struct {
	Query         propset.Set
	TrueSize      int
	BaselineSize  int
	AugmentedSize int
	// GrowthPct is the result-set growth over the baseline in percent
	// (the paper reports >200% on all sampled covered queries).
	GrowthPct float64
	Precision float64
	Recall    float64
}

// Trained is a deployed classifier: the conjunction it tests and its test
// accuracy.
type Trained struct {
	Props propset.Set
	Acc   float64
}

// fprOf models the deployed operating point: platforms threshold
// classifiers for precision (the paper deploys at ≥95% test accuracy and
// reports improved precision), so the false-positive rate is driven well
// below the miss rate: FPR ≈ (1 − acc)²/2.
func fprOf(acc float64) float64 {
	miss := 1 - acc
	return miss * miss / 2
}

// Augment serves a query using trained classifiers: an item is retrieved
// if, for every queried attribute, either the attribute is recorded or a
// selected classifier testing a conjunction that includes it accepts the
// item. Positive items are recognized with probability acc (the true
// positive rate); negative items sneak through at the thresholded
// false-positive rate fprOf(acc). Draws are independent per item.
func (c *Catalog) Augment(seed int64, q propset.Set, classifiers map[string]Trained) []int {
	rng := rand.New(rand.NewSource(seed ^ int64(len(q)*2654435761)))
	// Relevant classifiers: subsets of q.
	var rel []Trained
	for _, cl := range classifiers {
		if cl.Props.SubsetOf(q) {
			rel = append(rel, cl)
		}
	}
	var out []int
	for _, it := range c.Items {
		// Per-attribute evidence: recorded metadata, plus classifier votes.
		covered := it.Recorded.Intersect(q)
		for _, cl := range rel {
			truth := cl.Props.SubsetOf(it.True)
			var predicted bool
			if truth {
				predicted = rng.Float64() < cl.Acc
			} else {
				predicted = rng.Float64() < fprOf(cl.Acc)
			}
			if predicted {
				covered = covered.Union(cl.Props)
			}
		}
		if q.SubsetOf(covered) {
			out = append(out, it.ID)
		}
	}
	return out
}

// Evaluate measures retrieval quality for a query with the given trained
// classifiers.
func (c *Catalog) Evaluate(seed int64, q propset.Set, classifiers map[string]Trained) Retrieval {
	truth := map[int]bool{}
	for _, id := range c.TrueMatches(q) {
		truth[id] = true
	}
	base := c.BaselineMatches(q)
	aug := c.Augment(seed, q, classifiers)
	r := Retrieval{
		Query:         q,
		TrueSize:      len(truth),
		BaselineSize:  len(base),
		AugmentedSize: len(aug),
	}
	tp := 0
	for _, id := range aug {
		if truth[id] {
			tp++
		}
	}
	if len(aug) > 0 {
		r.Precision = float64(tp) / float64(len(aug))
	}
	if len(truth) > 0 {
		r.Recall = float64(tp) / float64(len(truth))
	}
	if len(base) > 0 {
		r.GrowthPct = 100 * float64(len(aug)-len(base)) / float64(len(base))
	} else if len(aug) > 0 {
		r.GrowthPct = 100 * float64(len(aug))
	}
	return r
}

// TrainSelection trains every classifier of a solution under the model,
// spending each classifier's estimated cost, and returns the deployed
// classifier map for Augment/Evaluate.
func TrainSelection(m training.Model, selection []propset.Set) map[string]Trained {
	out := map[string]Trained{}
	for _, c := range selection {
		cost := m.Cost(c)
		acc := m.Train(c, cost)
		out[c.Key()] = Trained{Props: c, Acc: acc}
	}
	return out
}
