package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable"
)

func openT(t *testing.T, opts Options) *WAL {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func readAll(t *testing.T, w *WAL, pos Position) ([]Record, Position) {
	t.Helper()
	recs, next, err := w.ReadFrom(pos, 0)
	if err != nil {
		t.Fatal(err)
	}
	return recs, next
}

func TestAppendReadRoundtrip(t *testing.T) {
	w := openT(t, Options{Dir: t.TempDir(), NoSync: true})
	want := [][]byte{
		[]byte("1717243200\twooden table\t3"),
		[]byte("1717243201\trunning shoes"),
		[]byte(""), // empty body is a legal record
	}
	end, err := w.Append(want...)
	if err != nil {
		t.Fatal(err)
	}
	recs, next := readAll(t, w, Position{})
	if len(recs) != len(want) {
		t.Fatalf("read %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Body, want[i]) {
			t.Fatalf("record %d = %q, want %q", i, r.Body, want[i])
		}
		if r.AppendUnixMS <= 0 {
			t.Fatalf("record %d missing append timestamp", i)
		}
	}
	if next != end {
		t.Fatalf("read position %v, append returned %v", next, end)
	}
	if recs[len(recs)-1].End != end {
		t.Fatalf("last record End %v, want %v", recs[len(recs)-1].End, end)
	}
	// Reading from the end yields nothing and stays put.
	more, again := readAll(t, w, next)
	if len(more) != 0 || again != next {
		t.Fatalf("read past end: %d records, pos %v", len(more), again)
	}
}

func TestReadFromMidStream(t *testing.T) {
	w := openT(t, Options{Dir: t.TempDir(), NoSync: true})
	var ends []Position
	for i := 0; i < 5; i++ {
		end, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, end)
	}
	recs, _ := readAll(t, w, ends[1]) // resume after the second record
	if len(recs) != 3 {
		t.Fatalf("read %d records from mid-stream, want 3", len(recs))
	}
	if string(recs[0].Body) != "rec-2" {
		t.Fatalf("first resumed record = %q, want rec-2", recs[0].Body)
	}
	// Bounded read honours max and returns a resumable position.
	two, next, err := w.ReadFrom(Position{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || next != ends[1] {
		t.Fatalf("bounded read: %d records, pos %v (want 2, %v)", len(two), next, ends[1])
	}
	n, err := w.CountFrom(ends[1])
	if err != nil || n != 3 {
		t.Fatalf("CountFrom = %d, %v; want 3", n, err)
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	w := openT(t, Options{Dir: t.TempDir(), SegmentBytes: 256, NoSync: true})
	body := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 6; i++ {
		if _, err := w.Append(body); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation after %d bytes across 6 appends (segments=%d)", 6*len(body), st.Segments)
	}
	recs, _ := readAll(t, w, Position{})
	if len(recs) != 6 {
		t.Fatalf("rotation lost records: read %d, want 6", len(recs))
	}
	// Record positions must be monotonic across the segment boundary.
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].End.Less(recs[i].End) {
			t.Fatalf("positions not monotonic: %v then %v", recs[i-1].End, recs[i].End)
		}
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, Options{Dir: dir, SegmentBytes: 128, NoSync: true})
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("persist-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	endBefore := w.End()
	w.Close()

	w2 := openT(t, Options{Dir: dir, SegmentBytes: 128, NoSync: true})
	if got := w2.End(); got != endBefore {
		t.Fatalf("end after reopen %v, want %v", got, endBefore)
	}
	recs, _ := readAll(t, w2, Position{})
	if len(recs) != 4 {
		t.Fatalf("reopen lost records: %d, want 4", len(recs))
	}
	if w2.Truncations() != 0 {
		t.Fatalf("clean reopen counted %d truncations", w2.Truncations())
	}
	// Appends continue where the old process stopped.
	if _, err := w2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	recs, _ = readAll(t, w2, endBefore)
	if len(recs) != 1 || string(recs[0].Body) != "after-reopen" {
		t.Fatalf("append after reopen: got %d records", len(recs))
	}
}

// A crash tears the last append mid-frame: reopen must truncate the
// torn tail (counted), keep every earlier record, and accept new
// appends on the repaired segment.
func TestReopenTruncatesTornTail(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"partial header": func(d []byte) []byte { return append(d, []byte(Format+" 0000")...) },
		"partial body": func(d []byte) []byte {
			frame := encodeFrame([]byte("torn-record-body"), 123)
			return append(d, frame[:len(frame)-5]...)
		},
		"flipped body bit": func(d []byte) []byte {
			frame := encodeFrame([]byte("bitrot-victim"), 123)
			frame[len(frame)-3] ^= 0x40
			return append(d, frame...)
		},
		"garbage tail": func(d []byte) []byte { return append(d, []byte("not a frame at all\n")...) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w := openT(t, Options{Dir: dir, NoSync: true})
			if _, err := w.Append([]byte("survivor-1"), []byte("survivor-2")); err != nil {
				t.Fatal(err)
			}
			w.Close()

			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			w2 := openT(t, Options{Dir: dir, NoSync: true})
			if w2.Truncations() != 1 {
				t.Fatalf("truncations = %d, want 1", w2.Truncations())
			}
			recs, _ := readAll(t, w2, Position{})
			if len(recs) != 2 {
				t.Fatalf("repair kept %d records, want the 2 acknowledged", len(recs))
			}
			if _, err := w2.Append([]byte("post-repair")); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			recs, _ = readAll(t, w2, Position{})
			if len(recs) != 3 || string(recs[2].Body) != "post-repair" {
				t.Fatalf("after repair+append: %d records", len(recs))
			}
		})
	}
}

func TestCursorRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, Options{Dir: dir, NoSync: true})
	if _, ok := w.LoadCursor(); ok {
		t.Fatal("fresh log reported a cursor")
	}
	end, err := w.Append([]byte("a"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveCursor(end); err != nil {
		t.Fatal(err)
	}
	got, ok := w.LoadCursor()
	if !ok || got != end {
		t.Fatalf("LoadCursor = %v, %v; want %v, true", got, ok, end)
	}
	w.Close()

	// The cursor survives reopen; a corrupted cursor file resets to the
	// zero position instead of failing the open.
	w2 := openT(t, Options{Dir: dir, NoSync: true})
	if got, ok := w2.LoadCursor(); !ok || got != end {
		t.Fatalf("cursor after reopen = %v, %v", got, ok)
	}
	if err := os.WriteFile(filepath.Join(dir, cursorFile), []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := w2.LoadCursor(); ok || !got.IsZero() {
		t.Fatalf("corrupt cursor returned %v, %v; want zero, false", got, ok)
	}
}

func TestCompactRemovesConsumedSegments(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, Options{Dir: dir, SegmentBytes: 128, NoSync: true})
	for i := 0; i < 10; i++ {
		if _, err := w.Append(bytes.Repeat([]byte("z"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Stats()
	if before.Segments < 3 {
		t.Fatalf("test needs several segments, got %d", before.Segments)
	}
	_, next := readAll(t, w, Position{}) // consume everything
	removed, err := w.Compact(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != before.Segments-1 {
		t.Fatalf("compacted %d segments, want %d (all but active)", removed, before.Segments-1)
	}
	if st := w.Stats(); st.Segments != 1 || st.Compacted != uint64(removed) {
		t.Fatalf("after compact: segments=%d compacted=%d", st.Segments, st.Compacted)
	}
	// A stale (pre-compaction) position clamps to the oldest retained
	// record instead of erroring.
	if _, _, err := w.ReadFrom(Position{}, 0); err != nil {
		t.Fatalf("read from compacted position: %v", err)
	}
	// New appends still work and the log reopens cleanly.
	if _, err := w.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2 := openT(t, Options{Dir: dir, SegmentBytes: 128, NoSync: true})
	recs, _ := readAll(t, w2, Position{})
	if len(recs) == 0 || string(recs[len(recs)-1].Body) != "post-compact" {
		t.Fatalf("reopen after compact: %d records", len(recs))
	}
}

func TestCompactRespectsRetentionAge(t *testing.T) {
	w := openT(t, Options{Dir: t.TempDir(), SegmentBytes: 64, NoSync: true})
	for i := 0; i < 6; i++ {
		if _, err := w.Append(bytes.Repeat([]byte("y"), 48)); err != nil {
			t.Fatal(err)
		}
	}
	_, next := readAll(t, w, Position{})
	// Every segment was just written: a 1-hour retention keeps them all.
	removed, err := w.Compact(next, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("retention age ignored: removed %d fresh segments", removed)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	frame := encodeFrame([]byte("hello world"), 42)
	body, ms, n, err := decodeFrame(frame)
	if err != nil || string(body) != "hello world" || ms != 42 || n != len(frame) {
		t.Fatalf("roundtrip: body=%q ms=%d n=%d err=%v", body, ms, n, err)
	}

	var ferr *durable.FormatError
	corrupt := [][]byte{
		[]byte("bccjob/1 00000000 0 42\nx"),               // wrong format tag
		[]byte(Format + " zzzzzzzz 11 42\nhello world\n"), // bad checksum field
		[]byte(Format + " 00000000 -1 42\n"),              // negative length
		[]byte(Format + " 00000000 3 -9\nabc\n"),          // negative timestamp
		bytes.Repeat([]byte("a"), maxHeader+1),            // unbounded header
	}
	for i, c := range corrupt {
		if _, _, _, err := decodeFrame(c); !errors.As(err, &ferr) {
			t.Errorf("corrupt case %d: err = %v, want *durable.FormatError", i, err)
		}
	}

	// A bad CRC over an otherwise intact frame is corruption.
	flipped := bytes.Clone(frame)
	flipped[len(flipped)-2] ^= 0x01
	if _, _, _, err := decodeFrame(flipped); !errors.As(err, &ferr) {
		t.Errorf("flipped body: err = %v, want *durable.FormatError", err)
	}

	// Prefixes of a valid frame are incomplete, never corrupt — a torn
	// tail must not be mistaken for damage.
	for cut := 0; cut < len(frame); cut++ {
		_, _, _, err := decodeFrame(frame[:cut])
		if !errors.Is(err, errIncomplete) {
			t.Fatalf("prefix len %d: err = %v, want errIncomplete", cut, err)
		}
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	w := openT(t, Options{Dir: t.TempDir(), NoSync: true})
	if _, err := w.Append(make([]byte, maxBody+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}
