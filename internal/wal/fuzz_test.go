package wal

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/durable"
)

// FuzzWALRecord hammers the bccwal/1 frame decoder the way FuzzJobRecord
// hammers the job-record decoder: arbitrary bytes must decode into a
// frame that re-encodes byte-identically, report an incomplete tail, or
// fail as corruption — never panic, never mix the two failure modes up
// (Open truncates on either, but the runtime reader waits on incomplete
// and must alarm on corrupt).
func FuzzWALRecord(f *testing.F) {
	f.Add(encodeFrame([]byte("1717243200\twooden table\t3"), 1717243200000))
	f.Add(encodeFrame(nil, 1))
	f.Add(encodeFrame(bytes.Repeat([]byte("q"), 512), 42))
	f.Add([]byte(Format + " 00000000 0 0\n\n"))
	f.Add([]byte(Format + " deadbeef 4 12\nnope\n"))
	f.Add([]byte("bccjob/1 00000000 0\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		body, unixMS, n, err := decodeFrame(data)
		if err != nil {
			var ferr *durable.FormatError
			if !errors.Is(err, errIncomplete) && !errors.As(err, &ferr) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if unixMS < 0 {
			t.Fatalf("decoder accepted negative timestamp %d", unixMS)
		}
		re := encodeFrame(body, unixMS)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode not byte-identical:\n%q\n%q", re, data[:n])
		}
		body2, unixMS2, n2, err := decodeFrame(re)
		if err != nil || !bytes.Equal(body2, body) || unixMS2 != unixMS || n2 != len(re) {
			t.Fatalf("re-decode mismatch: body=%q ms=%d n=%d err=%v", body2, unixMS2, n2, err)
		}
	})
}
