// Package wal is the durable ingest side of the continuous workload
// pipeline: a segmented append-only write-ahead log of query-log lines,
// built on the same CRC-32/Castagnoli framing discipline as the rest of
// the system's on-disk formats (internal/durable).
//
// Layout: a directory of segment files
//
//	wal-0000000000000001.bccwal
//	wal-0000000000000002.bccwal   ← active (appends go here)
//	cursor.bccwalcur              ← reader cursor (atomic rewrite)
//
// Each segment is a sequence of framed records:
//
//	bccwal/1 <crc32c-hex> <body-length> <append-unix-ms>\n
//	<body>\n
//
// The checksum covers the body; the explicit length plus the trailing
// newline let a reader detect a torn tail byte-exactly. Appends are
// batched — one write plus one fsync acknowledges a whole ingest call —
// and the active segment rotates on size or age so retention can drop
// whole files.
//
// Crash contract: Open repairs every segment by truncating any corrupt
// or incomplete tail (counted, never fatal — an un-fsynced torn append
// is the expected shape of a crash, and the bytes past the tear were
// never acknowledged). The reader cursor is persisted atomically and is
// allowed to lag: replaying records past the cursor is the consumer's
// job to dedupe (internal/pipeline keeps its own consumed position
// inside its atomically-published state record and takes the max).
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

const (
	// Format is the record framing version tag.
	Format = "bccwal/1"
	// CursorFormat frames the persisted reader cursor.
	CursorFormat = "bccwalcur/1"

	segmentExt  = ".bccwal"
	segmentGlob = "wal-*" + segmentExt
	cursorFile  = "cursor" + segmentExt + "cur"

	// maxHeader bounds the header-line scan: a valid header is well
	// under this, so a missing newline within the bound is corruption,
	// not an incomplete write still in flight.
	maxHeader = 128
	// maxBody caps a single record (matching the querylog line scanner's
	// 4 MiB) so a corrupt length field cannot demand a giant allocation.
	maxBody = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errIncomplete distinguishes "the record's bytes stop mid-frame" (a
// torn tail: truncate at open, wait during runtime reads) from framing
// corruption (*durable.FormatError).
var errIncomplete = errors.New("wal: incomplete record")

// Position addresses a byte offset inside a segment. Positions order
// lexicographically by (Seg, Off); the zero Position is "before
// everything" and reads clamp it to the oldest retained record.
type Position struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Less orders positions.
func (p Position) Less(q Position) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports the zero position.
func (p Position) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// Record is one appended entry read back from the log.
type Record struct {
	// Body is the appended payload (one query-log line for the pipeline).
	Body []byte
	// AppendUnixMS is when the record was appended — the arrival
	// timestamp the pipeline's degradation ladder measures backlog age
	// with (distinct from any event time inside the body).
	AppendUnixMS int64
	// End is the position just past this record: consuming through this
	// record means resuming from End.
	End Position
}

// Options configures Open. Dir is required.
type Options struct {
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 8 MiB).
	SegmentBytes int64
	// SegmentAge rotates the active segment once its first record is
	// this old (0 = size-only rotation). Age rotation keeps retention
	// granular under trickle traffic that would never fill a segment.
	SegmentAge time.Duration
	// NoSync skips the per-append fsync (tests only: a crash may then
	// lose acknowledged records).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Stats is a point-in-time view of the log.
type Stats struct {
	Segments    int    `json:"segments"`
	ActiveSeq   uint64 `json:"active_seq"`
	Bytes       int64  `json:"bytes"`
	Appends     uint64 `json:"appends"`
	Records     uint64 `json:"records"` // appended this process
	Truncations uint64 `json:"truncations"`
	Compacted   uint64 `json:"compacted_segments"`
}

// segment is the in-memory index entry for one on-disk segment file:
// its sequence number and committed (durably readable) size. Readers
// never look past size, so a writer mid-append can never expose a torn
// record to its own process.
type segment struct {
	seq        uint64
	size       int64
	bornUnixMS int64 // first append into this segment (0 = inherited/unknown)
}

// WAL is a segmented append-only log. All methods are safe for
// concurrent use.
type WAL struct {
	opts Options

	mu     sync.Mutex
	segs   []segment // sorted by seq; last is active
	active *os.File  // open handle on the active segment
	closed bool

	appends     atomic.Uint64
	records     atomic.Uint64
	truncations atomic.Uint64
	compacted   atomic.Uint64
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%016x%s", seq, segmentExt) }

func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segmentExt) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segmentExt), 16, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// Open opens (creating if needed) the log in opts.Dir, repairing any
// corrupt or incomplete segment tails by truncation. Repair is never
// fatal: the discarded bytes were never acknowledged (the append fsync
// had not returned) or are damage a checksum caught — either way the
// log continues from the last intact record.
func Open(opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	w := &WAL{opts: opts}

	names, err := filepath.Glob(filepath.Join(opts.Dir, segmentGlob))
	if err != nil {
		return nil, err
	}
	for _, path := range names {
		seq, ok := segSeq(filepath.Base(path))
		if !ok {
			continue
		}
		size, err := w.repairSegment(path)
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, segment{seq: seq, size: size})
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].seq < w.segs[j].seq })

	if len(w.segs) == 0 {
		if err := w.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		last := &w.segs[len(w.segs)-1]
		f, err := os.OpenFile(w.segPath(last.seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening active segment: %w", err)
		}
		w.active = f
	}
	return w, nil
}

func (w *WAL) segPath(seq uint64) string {
	return filepath.Join(w.opts.Dir, segName(seq))
}

// repairSegment scans one segment and truncates everything past the
// last intact record, returning the repaired size.
func (w *WAL) repairSegment(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	off := int64(0)
	for off < int64(len(data)) {
		_, _, n, err := decodeFrame(data[off:])
		if err != nil {
			break
		}
		off += int64(n)
	}
	if off < int64(len(data)) {
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("wal: truncating damaged tail of %s: %w", path, err)
		}
		w.truncations.Add(1)
	}
	return off, nil
}

// createSegmentLocked seals the current active handle (if any) and
// starts segment seq. Caller holds w.mu (or is inside Open).
func (w *WAL) createSegmentLocked(seq uint64) error {
	if w.active != nil {
		if !w.opts.NoSync {
			_ = w.active.Sync()
		}
		w.active.Close()
	}
	f, err := os.OpenFile(w.segPath(seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// The new file's directory entry must be durable before any record
	// in it is acknowledged.
	if !w.opts.NoSync {
		if err := durable.SyncDir(w.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	w.active = f
	w.segs = append(w.segs, segment{seq: seq})
	return nil
}

// Append atomically appends a batch of records — one write, one fsync —
// and returns the position past the batch. An error means nothing in
// the batch is acknowledged (a torn partial write is repaired away at
// the next Open).
func (w *WAL) Append(bodies ...[]byte) (Position, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return Position{}, errors.New("wal: closed")
	}
	if len(bodies) == 0 {
		return w.endLocked(), nil
	}
	now := time.Now().UnixMilli()
	var buf bytes.Buffer
	for _, b := range bodies {
		if len(b) > maxBody {
			return Position{}, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(b), maxBody)
		}
		buf.Write(encodeFrame(b, now))
	}

	active := &w.segs[len(w.segs)-1]
	rotate := active.size > 0 && active.size+int64(buf.Len()) > w.opts.SegmentBytes
	if !rotate && w.opts.SegmentAge > 0 && active.bornUnixMS > 0 &&
		now-active.bornUnixMS >= w.opts.SegmentAge.Milliseconds() {
		rotate = true
	}
	if rotate {
		if err := w.createSegmentLocked(active.seq + 1); err != nil {
			return Position{}, err
		}
		active = &w.segs[len(w.segs)-1]
	}

	if _, err := w.active.Write(buf.Bytes()); err != nil {
		return Position{}, fmt.Errorf("wal: appending: %w", err)
	}
	if !w.opts.NoSync {
		if err := w.active.Sync(); err != nil {
			return Position{}, fmt.Errorf("wal: fsync: %w", err)
		}
	}
	if active.bornUnixMS == 0 {
		active.bornUnixMS = now
	}
	active.size += int64(buf.Len())
	w.appends.Add(1)
	w.records.Add(uint64(len(bodies)))
	return Position{Seg: active.seq, Off: active.size}, nil
}

// End returns the position past the last acknowledged record.
func (w *WAL) End() Position {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.endLocked()
}

func (w *WAL) endLocked() Position {
	active := w.segs[len(w.segs)-1]
	return Position{Seg: active.seq, Off: active.size}
}

// Start returns the oldest retained position (compaction moves it
// forward).
func (w *WAL) Start() Position {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Position{Seg: w.segs[0].seq, Off: 0}
}

// clampLocked normalizes a consumer position onto the retained range:
// positions before the oldest segment (compacted away, or the zero
// cursor of a fresh consumer) move to the oldest record.
func (w *WAL) clampLocked(pos Position) Position {
	if pos.Seg < w.segs[0].seq {
		return Position{Seg: w.segs[0].seq, Off: 0}
	}
	return pos
}

// ReadFrom reads up to max records starting at pos (max <= 0 means all
// pending). It returns the records and the position to resume from —
// which advances past fully-consumed sealed segments even when no
// records remain.
func (w *WAL) ReadFrom(pos Position, max int) ([]Record, Position, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, pos, errors.New("wal: closed")
	}
	pos = w.clampLocked(pos)
	var out []Record
	for i := 0; i < len(w.segs); i++ {
		seg := w.segs[i]
		if seg.seq < pos.Seg {
			continue
		}
		off := int64(0)
		if seg.seq == pos.Seg {
			off = pos.Off
		}
		if off < seg.size {
			data, err := os.ReadFile(w.segPath(seg.seq))
			if err != nil {
				return out, pos, err
			}
			if int64(len(data)) > seg.size {
				data = data[:seg.size] // never read past the committed size
			}
			for off < seg.size {
				body, ms, n, err := decodeFrame(data[off:])
				if err != nil {
					// Committed bytes that fail to decode mean damage
					// after the fact (bit rot under a running process);
					// surface it rather than silently skipping.
					return out, pos, fmt.Errorf("wal: segment %d offset %d: %w", seg.seq, off, err)
				}
				off += int64(n)
				pos = Position{Seg: seg.seq, Off: off}
				out = append(out, Record{Body: body, AppendUnixMS: ms, End: pos})
				if max > 0 && len(out) >= max {
					return out, pos, nil
				}
			}
		}
		if i < len(w.segs)-1 {
			// Fully consumed a sealed segment: resume at the next one so
			// compaction of the consumed file never strands the cursor.
			pos = Position{Seg: w.segs[i+1].seq, Off: 0}
		} else {
			pos = Position{Seg: seg.seq, Off: seg.size}
		}
	}
	return out, pos, nil
}

// CountFrom counts the records pending past pos — the startup backlog
// gauge seed for a consumer that tracks increments itself afterwards.
func (w *WAL) CountFrom(pos Position) (int, error) {
	recs, _, err := w.ReadFrom(pos, 0)
	return len(recs), err
}

// SaveCursor atomically persists a reader cursor. The cursor is advice,
// not truth: a consumer that also persists its position elsewhere (the
// pipeline's plan record) should resume from the max of the two.
func (w *WAL) SaveCursor(pos Position) error {
	body, err := json.Marshal(pos)
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(filepath.Join(w.opts.Dir, cursorFile),
		durable.EncodeRecord(CursorFormat, body))
}

// LoadCursor reads the persisted cursor. A missing or corrupt cursor
// file returns the zero position with ok = false — the consumer starts
// from the oldest retained record, which at-least-once delivery makes
// safe.
func (w *WAL) LoadCursor() (Position, bool) {
	path := filepath.Join(w.opts.Dir, cursorFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return Position{}, false
	}
	body, err := durable.DecodeRecord(CursorFormat, path, data)
	if err != nil {
		return Position{}, false
	}
	var pos Position
	if err := json.Unmarshal(body, &pos); err != nil {
		return Position{}, false
	}
	return pos, true
}

// Compact removes segments wholly consumed below upto — sealed segments
// whose every record sits before the consumer's position — that are
// older than keepAge (0 keeps nothing extra). The active segment and
// any segment at or past upto.Seg are never touched. Returns how many
// segment files were removed.
func (w *WAL) Compact(upto Position, keepAge time.Duration) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segs) > 1 && w.segs[0].seq < upto.Seg {
		path := w.segPath(w.segs[0].seq)
		if keepAge > 0 {
			fi, err := os.Stat(path)
			if err == nil && time.Since(fi.ModTime()) < keepAge {
				break // segments age in order; nothing younger qualifies
			}
		}
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return removed, fmt.Errorf("wal: compacting %s: %w", path, err)
		}
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		w.compacted.Add(uint64(removed))
		if err := durable.SyncDir(w.opts.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Truncations reports corrupt/incomplete tails repaired at Open — the
// bcc_wal_corrupt_truncated_total counter.
func (w *WAL) Truncations() uint64 { return w.truncations.Load() }

// Stats captures the log's counters in one pass.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Segments:    len(w.segs),
		Appends:     w.appends.Load(),
		Records:     w.records.Load(),
		Truncations: w.truncations.Load(),
		Compacted:   w.compacted.Load(),
	}
	for _, s := range w.segs {
		st.Bytes += s.size
	}
	st.ActiveSeq = w.segs[len(w.segs)-1].seq
	return st
}

// Close syncs and closes the active segment. The log stays reopenable.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active != nil {
		if !w.opts.NoSync {
			_ = w.active.Sync()
		}
		return w.active.Close()
	}
	return nil
}

// encodeFrame frames one record body with its append timestamp.
func encodeFrame(body []byte, unixMS int64) []byte {
	header := fmt.Sprintf("%s %08x %d %d\n", Format, crc32.Checksum(body, castagnoli), len(body), unixMS)
	out := make([]byte, 0, len(header)+len(body)+1)
	out = append(out, header...)
	out = append(out, body...)
	out = append(out, '\n')
	return out
}

// decodeFrame decodes the record at the start of data, returning the
// body, append timestamp and total frame length. errIncomplete means
// data ends mid-frame (a torn tail still being written, or cut by a
// crash); a *durable.FormatError means the bytes can never become a
// valid record.
func decodeFrame(data []byte) ([]byte, int64, int, error) {
	limit := len(data)
	if limit > maxHeader {
		limit = maxHeader
	}
	nl := bytes.IndexByte(data[:limit], '\n')
	if nl < 0 {
		if len(data) < maxHeader {
			return nil, 0, 0, errIncomplete
		}
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: "no header newline within bound"}
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != Format {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("malformed header %q", string(data[:nl]))}
	}
	wantCRC, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("bad checksum field %q", fields[1])}
	}
	bodyLen, err := strconv.Atoi(fields[2])
	if err != nil || bodyLen < 0 || bodyLen > maxBody {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("bad length field %q", fields[2])}
	}
	unixMS, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil || unixMS < 0 {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("bad timestamp field %q", fields[3])}
	}
	// Only the canonical spelling is valid: a header that parses but
	// re-serializes differently (uppercase hex, leading zeros, doubled
	// spaces) is damage, and rejecting it keeps encode/decode bijective.
	if canon := fmt.Sprintf("%s %08x %d %d", Format, uint32(wantCRC), bodyLen, unixMS); canon != string(data[:nl]) {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("non-canonical header %q", string(data[:nl]))}
	}
	total := nl + 1 + bodyLen + 1
	if len(data) < total {
		return nil, 0, 0, errIncomplete
	}
	body := data[nl+1 : nl+1+bodyLen]
	if data[total-1] != '\n' {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: "missing record terminator"}
	}
	if got := crc32.Checksum(body, castagnoli); got != uint32(wantCRC) {
		return nil, 0, 0, &durable.FormatError{Path: "wal", Reason: fmt.Sprintf("checksum %08x, header says %08x", got, uint32(wantCRC))}
	}
	// Copy out of the read buffer so callers can hold bodies without
	// pinning the whole segment.
	out := make([]byte, bodyLen)
	copy(out, body)
	return out, unixMS, total, nil
}
