package cover

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/propset"
)

func smallInstance(t testing.TB) *model.Instance {
	t.Helper()
	b := model.NewBuilder()
	b.AddQuery(8, "x", "y", "z")
	b.AddQuery(1, "x", "z")
	b.AddQuery(2, "x", "y")
	b.SetCost(5, "x")
	b.SetCost(3, "y")
	b.SetCost(3, "z")
	b.SetCost(3, "x", "y", "z")
	b.SetCost(4, "x", "z")
	b.SetCost(0, "y", "z")
	b.SetCost(math.Inf(1), "x", "y")
	return b.MustInstance(11)
}

func TestTrackerMatchesSolution(t *testing.T) {
	// Property: tracker accounting must agree with the (slow) Solution
	// reference implementation after any add sequence.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng)
		tr := New(in)
		sol := model.NewSolution(in)
		cls := in.Classifiers()
		for step := 0; step < 1+rng.Intn(8); step++ {
			c := cls[rng.Intn(len(cls))]
			tr.Add(c.Props)
			sol.Add(c.Props)
		}
		if math.Abs(tr.Utility()-sol.Utility()) > 1e-9 {
			t.Fatalf("trial %d: tracker utility %v != solution %v",
				trial, tr.Utility(), sol.Utility())
		}
		if math.Abs(tr.Cost()-sol.Cost()) > 1e-9 {
			t.Fatalf("trial %d: tracker cost %v != solution %v",
				trial, tr.Cost(), sol.Cost())
		}
		for qi, q := range in.Queries() {
			if tr.Covered(qi) != sol.Covers(q.Props) {
				t.Fatalf("trial %d: covered mismatch on %v", trial, q.Props)
			}
			if !tr.Residual(qi).Equal(sol.Residual(q.Props)) {
				t.Fatalf("trial %d: residual mismatch on %v", trial, q.Props)
			}
		}
	}
}

func randomInstance(rng *rand.Rand) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, 6)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	nq := 3 + rng.Intn(8)
	for i := 0; i < nq; i++ {
		ln := 1 + rng.Intn(3)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(len(names))])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(9)))
	}
	seed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := seed
		for _, id := range s {
			h = h*37 + int64(id) + 3
		}
		return float64((h%5+5)%5) + 1
	})
	return b.MustInstance(10)
}

func TestAddIdempotent(t *testing.T) {
	in := smallInstance(t)
	tr := New(in)
	yz := in.Universe().SetOf("y", "z")
	if !tr.Add(yz) {
		t.Fatal("first Add returned false")
	}
	cost := tr.Cost()
	if tr.Add(yz) {
		t.Fatal("second Add returned true")
	}
	if tr.Cost() != cost {
		t.Fatal("idempotent Add changed cost")
	}
}

func TestCloneIsolation(t *testing.T) {
	in := smallInstance(t)
	tr := New(in)
	tr.Add(in.Universe().SetOf("y", "z"))
	cl := tr.Clone()
	cl.Add(in.Universe().SetOf("x", "z"))
	if tr.Utility() == cl.Utility() {
		t.Fatal("clone add leaked or had no effect")
	}
	if tr.Has(in.Universe().SetOf("x", "z")) {
		t.Fatal("clone mutated original")
	}
}

func TestCopyFrom(t *testing.T) {
	in := smallInstance(t)
	a := New(in)
	a.Add(in.Universe().SetOf("x"))
	b := New(in)
	b.Add(in.Universe().SetOf("y", "z"))
	b.Add(in.Universe().SetOf("x", "z"))
	a.CopyFrom(b)
	if a.Utility() != b.Utility() || a.Cost() != b.Cost() {
		t.Fatal("CopyFrom accounting mismatch")
	}
	if a.Has(in.Universe().SetOf("x")) {
		t.Fatal("CopyFrom retained stale selection")
	}
}

func TestResetMatchesFresh(t *testing.T) {
	in := smallInstance(t)
	tr := New(in)
	tr.Add(in.Universe().SetOf("x"))
	tr.Add(in.Universe().SetOf("y"))
	sets := []propset.Set{in.Universe().SetOf("y", "z"), in.Universe().SetOf("x", "z")}
	tr.Reset(sets)
	fresh := New(in)
	for _, s := range sets {
		fresh.Add(s)
	}
	if tr.Utility() != fresh.Utility() || tr.Cost() != fresh.Cost() {
		t.Fatalf("Reset state (%v,%v) != fresh (%v,%v)",
			tr.Utility(), tr.Cost(), fresh.Utility(), fresh.Cost())
	}
}

func TestMinCoverCostAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(rng)
		tr := New(in)
		// Partially select a few classifiers first.
		cls := in.Classifiers()
		for i := 0; i < rng.Intn(3); i++ {
			tr.Add(cls[rng.Intn(len(cls))].Props)
		}
		for qi, q := range in.Queries() {
			got, sets := tr.MinCoverCost(qi, nil)
			want := bruteMinCover(in, tr, q.Props)
			if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d query %v: MinCoverCost %v != brute %v",
					trial, q.Props, got, want)
			}
			if math.IsInf(got, 1) {
				continue
			}
			// The returned sets, together with the current selection, must
			// cover the query at the reported cost.
			probe := tr.Clone()
			var sum float64
			for _, s := range sets {
				sum += in.Cost(s)
				probe.Add(s)
			}
			if !probe.Covered(qi) {
				t.Fatalf("trial %d: reported cover does not cover %v", trial, q.Props)
			}
			if math.Abs(sum-got) > 1e-9 {
				t.Fatalf("trial %d: cover sets cost %v != reported %v", trial, sum, got)
			}
		}
	}
}

// bruteMinCover enumerates subsets of the relevant classifiers.
func bruteMinCover(in *model.Instance, tr *Tracker, q propset.Set) float64 {
	var cands []propset.Set
	q.Subsets(func(sub propset.Set) {
		if !tr.Has(sub) && !math.IsInf(in.Cost(sub), 1) {
			cands = append(cands, sub.Clone())
		}
	})
	res := q.Minus(coveredPart(in, tr, q))
	if res.Empty() {
		return 0
	}
	best := math.Inf(1)
	for mask := 1; mask < 1<<len(cands); mask++ {
		var acc propset.Set
		var cost float64
		for i, c := range cands {
			if mask&(1<<i) != 0 {
				acc = acc.Union(c)
				cost += in.Cost(c)
			}
		}
		if res.SubsetOf(acc) && cost < best {
			best = cost
		}
	}
	return best
}

func coveredPart(in *model.Instance, tr *Tracker, q propset.Set) propset.Set {
	var acc propset.Set
	q.Subsets(func(sub propset.Set) {
		if tr.Has(sub) {
			acc = acc.Union(sub)
		}
	})
	return acc
}

func TestUtilityNeverDecreases(t *testing.T) {
	// quick.Check over random add orders: utility and cost are monotone.
	f := func(seed int64, picks []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng)
		tr := New(in)
		cls := in.Classifiers()
		prevU, prevC := 0.0, 0.0
		for _, p := range picks {
			tr.Add(cls[int(p)%len(cls)].Props)
			if tr.Utility() < prevU || tr.Cost() < prevC {
				return false
			}
			prevU, prevC = tr.Utility(), tr.Cost()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveInvertsAdd(t *testing.T) {
	// Property: Add then Remove restores exactly the previous accounting,
	// regardless of the interleaving.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng)
		tr := New(in)
		cls := in.Classifiers()
		for i := 0; i < rng.Intn(5); i++ {
			tr.Add(cls[rng.Intn(len(cls))].Props)
		}
		u0, c0, ct0 := tr.Utility(), tr.Cost(), tr.CoveredCount()
		c := cls[rng.Intn(len(cls))]
		if !tr.Add(c.Props) {
			continue // already selected
		}
		if !tr.Remove(c.Props) {
			t.Fatal("Remove of selected classifier returned false")
		}
		if tr.Utility() != u0 || tr.Cost() != c0 || tr.CoveredCount() != ct0 {
			t.Fatalf("trial %d: remove did not invert add: (%v,%v,%d) vs (%v,%v,%d)",
				trial, tr.Utility(), tr.Cost(), tr.CoveredCount(), u0, c0, ct0)
		}
		// Residuals must match a freshly built tracker.
		fresh := New(in)
		for _, s := range tr.SelectedSets() {
			fresh.Add(s)
		}
		for qi := range in.Queries() {
			if !tr.Residual(qi).Equal(fresh.Residual(qi)) {
				t.Fatalf("trial %d: residual mismatch after remove", trial)
			}
		}
	}
}

func TestRemoveUnselected(t *testing.T) {
	in := smallInstance(t)
	tr := New(in)
	if tr.Remove(in.Universe().SetOf("x")) {
		t.Fatal("Remove of unselected classifier returned true")
	}
}

func TestRelevantQueries(t *testing.T) {
	in := smallInstance(t)
	tr := New(in)
	x := in.Universe().SetOf("x")
	rel := tr.RelevantQueries(x)
	if len(rel) != 3 { // x appears in all three queries
		t.Fatalf("RelevantQueries(X) = %v, want 3 entries", rel)
	}
	yz := in.Universe().SetOf("y", "z")
	rel = tr.RelevantQueries(yz)
	if len(rel) != 1 { // only xyz contains both y and z
		t.Fatalf("RelevantQueries(YZ) = %v, want 1 entry", rel)
	}
}

func BenchmarkTrackerAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	builder := model.NewBuilder()
	u := builder.Universe()
	for i := 0; i < 5000; i++ {
		ln := 1 + rng.Intn(3)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(fmt.Sprintf("p%d", rng.Intn(500)))
		}
		builder.AddQuerySet(propset.New(ids...), 1)
	}
	in := builder.MustInstance(1000)
	cls := in.Classifiers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := New(in)
		b.StartTimer()
		for _, c := range cls {
			tr.Add(c.Props)
		}
	}
}
