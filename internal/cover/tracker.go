// Package cover provides the incremental coverage tracker shared by the
// BCC, GMC3 and ECC solvers: it maintains, for a fixed instance, the set
// of selected classifiers, the residual (not-yet-testable) part of every
// query, covered flags, total utility and total cost, all updated in time
// proportional to the classifiers' relevance lists.
package cover

import (
	"math"

	"repro/internal/model"
	"repro/internal/propset"
)

// Tracker is mutable coverage state over one instance. Create one with
// New; the zero value is not usable.
type Tracker struct {
	in       *model.Instance
	selected map[string]bool
	cost     float64
	residual []propset.Set
	covered  []bool
	utility  float64
	relq     map[string][]int
	coverCt  int
}

// New returns an empty tracker (nothing selected) for the instance.
func New(in *model.Instance) *Tracker {
	t := &Tracker{
		in:       in,
		selected: make(map[string]bool),
		residual: make([]propset.Set, in.NumQueries()),
		covered:  make([]bool, in.NumQueries()),
		relq:     make(map[string][]int),
	}
	for qi, q := range in.Queries() {
		t.residual[qi] = q.Props
		q.Props.Subsets(func(sub propset.Set) {
			k := sub.Key()
			t.relq[k] = append(t.relq[k], qi)
		})
	}
	return t
}

// Instance returns the tracked instance.
func (t *Tracker) Instance() *model.Instance { return t.in }

// Cost returns the total cost of the selected classifiers.
func (t *Tracker) Cost() float64 { return t.cost }

// Utility returns the total utility of covered queries.
func (t *Tracker) Utility() float64 { return t.utility }

// CoveredCount returns the number of covered queries.
func (t *Tracker) CoveredCount() int { return t.coverCt }

// Remaining returns the unspent budget of the instance.
func (t *Tracker) Remaining() float64 { return t.in.Budget() - t.cost }

// Has reports whether the classifier is selected.
func (t *Tracker) Has(c propset.Set) bool { return t.selected[c.Key()] }

// Covered reports whether query qi (index into Instance().Queries()) is
// covered.
func (t *Tracker) Covered(qi int) bool { return t.covered[qi] }

// Residual returns the not-yet-testable part of query qi.
func (t *Tracker) Residual(qi int) propset.Set { return t.residual[qi] }

// RelevantQueries returns the indices of queries containing the classifier
// (i.e. the queries whose coverage it can affect). Callers must not modify
// the returned slice.
func (t *Tracker) RelevantQueries(c propset.Set) []int { return t.relq[c.Key()] }

// Add selects a classifier at the instance's cost, updating all state. It
// reports whether the classifier was newly selected.
func (t *Tracker) Add(c propset.Set) bool {
	k := c.Key()
	if t.selected[k] {
		return false
	}
	t.selected[k] = true
	t.cost += t.in.Cost(c)
	for _, qi := range t.relq[k] {
		if t.covered[qi] {
			continue
		}
		t.residual[qi] = t.residual[qi].Minus(c)
		if t.residual[qi].Empty() {
			t.covered[qi] = true
			t.coverCt++
			t.utility += t.in.Queries()[qi].Utility
		}
	}
	return true
}

// Remove deselects a classifier, recomputing the residuals of the queries
// it is relevant to (each in O(2^l)). It reports whether the classifier
// was selected.
func (t *Tracker) Remove(c propset.Set) bool {
	k := c.Key()
	if !t.selected[k] {
		return false
	}
	delete(t.selected, k)
	t.cost -= t.in.Cost(c)
	for _, qi := range t.relq[k] {
		q := t.in.Queries()[qi]
		var acc propset.Set
		q.Props.Subsets(func(sub propset.Set) {
			if t.selected[sub.Key()] {
				acc = acc.Union(sub)
			}
		})
		res := q.Props.Minus(acc)
		wasCovered := t.covered[qi]
		t.residual[qi] = res
		t.covered[qi] = res.Empty()
		if wasCovered && !t.covered[qi] {
			t.coverCt--
			t.utility -= q.Utility
		}
	}
	return true
}

// Clone returns an independent copy.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{
		in:       t.in,
		selected: make(map[string]bool, len(t.selected)),
		cost:     t.cost,
		residual: append([]propset.Set(nil), t.residual...),
		covered:  append([]bool(nil), t.covered...),
		utility:  t.utility,
		relq:     t.relq, // shared, read-only after New
		coverCt:  t.coverCt,
	}
	for k := range t.selected {
		c.selected[k] = true
	}
	return c
}

// CopyFrom overwrites t's state with o's (both must track the same
// instance).
func (t *Tracker) CopyFrom(o *Tracker) {
	t.selected = make(map[string]bool, len(o.selected))
	for k := range o.selected {
		t.selected[k] = true
	}
	t.cost = o.cost
	t.residual = append(t.residual[:0], o.residual...)
	t.covered = append(t.covered[:0], o.covered...)
	t.utility = o.utility
	t.coverCt = o.coverCt
}

// Reset replaces the selection with exactly the given classifiers.
func (t *Tracker) Reset(classifiers []propset.Set) {
	t.selected = make(map[string]bool)
	t.cost = 0
	t.utility = 0
	t.coverCt = 0
	for qi, q := range t.in.Queries() {
		t.residual[qi] = q.Props
		t.covered[qi] = false
	}
	for _, c := range classifiers {
		t.Add(c)
	}
}

// Solution materializes the tracker as a model.Solution.
func (t *Tracker) Solution() *model.Solution {
	s := model.NewSolution(t.in)
	for _, c := range t.in.Classifiers() {
		if t.selected[c.Props.Key()] {
			s.Add(c.Props)
		}
	}
	return s
}

// SelectedSets returns the selected classifiers as property sets, in the
// instance's deterministic classifier order.
func (t *Tracker) SelectedSets() []propset.Set {
	var out []propset.Set
	for _, c := range t.in.Classifiers() {
		if t.selected[c.Props.Key()] {
			out = append(out, c.Props)
		}
	}
	return out
}

// CoveredQueries returns the property sets of all covered queries.
func (t *Tracker) CoveredQueries() []propset.Set {
	var out []propset.Set
	for qi, q := range t.in.Queries() {
		if t.covered[qi] {
			out = append(out, q.Props)
		}
	}
	return out
}

// MinCoverCost computes, by subset dynamic programming, the minimum
// additional cost of covering query qi given the current selection,
// restricted to allowed classifier keys (nil = all). It returns the cost
// and the classifier sets achieving it (+Inf and nil when impossible).
func (t *Tracker) MinCoverCost(qi int, allowed map[string]bool) (float64, []propset.Set) {
	q := t.in.Queries()[qi].Props
	res := t.residual[qi]
	if res.Empty() {
		return 0, nil
	}
	pos := make(map[propset.ID]uint, res.Len())
	for i, p := range res {
		pos[p] = uint(i)
	}
	full := (1 << uint(res.Len())) - 1

	type cand struct {
		c    propset.Set
		cost float64
		mask int
	}
	var cands []cand
	q.Subsets(func(sub propset.Set) {
		k := sub.Key()
		if t.selected[k] {
			return
		}
		if allowed != nil && !allowed[k] {
			return
		}
		cost := t.in.Cost(sub)
		if math.IsInf(cost, 1) {
			return
		}
		mask := 0
		for _, p := range sub {
			if b, ok := pos[p]; ok {
				mask |= 1 << b
			}
		}
		if mask == 0 {
			return
		}
		cands = append(cands, cand{c: sub.Clone(), cost: cost, mask: mask})
	})

	const inf = math.MaxFloat64
	dp := make([]float64, full+1)
	parent := make([]int, full+1)
	prev := make([]int, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = inf
		parent[m] = -1
	}
	for m := 0; m <= full; m++ {
		if dp[m] == inf {
			continue
		}
		for ci, cd := range cands {
			nm := m | cd.mask
			if nm == m {
				continue
			}
			if c := dp[m] + cd.cost; c < dp[nm] {
				dp[nm] = c
				parent[nm] = ci
				prev[nm] = m
			}
		}
	}
	if dp[full] == inf {
		return math.Inf(1), nil
	}
	var sets []propset.Set
	for m := full; m != 0 && parent[m] >= 0; m = prev[m] {
		sets = append(sets, cands[parent[m]].c)
	}
	return dp[full], sets
}
