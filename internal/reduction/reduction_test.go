package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dks"
	"repro/internal/knapsack"
	"repro/internal/model"
	"repro/internal/propset"
	"repro/internal/wgraph"
)

// Theorem 3.1: BCC_{l=1} ≡ Knapsack. Solve both sides exactly and compare
// optima.
func TestTheorem31Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		nItems := 1 + rng.Intn(10)
		items := make([]knapsack.Item, nItems)
		for i := range items {
			items[i] = knapsack.Item{
				Value:  float64(1 + rng.Intn(20)),
				Weight: float64(1 + rng.Intn(10)),
			}
		}
		capacity := float64(rng.Intn(30))

		in, err := BCC1FromKnapsack(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		bccOpt, err := core.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		kOpt := knapsack.BruteForce(items, capacity)
		if math.Abs(bccOpt.Utility-kOpt.Value) > 1e-9 {
			t.Fatalf("trial %d: BCC optimum %v != knapsack optimum %v",
				trial, bccOpt.Utility, kOpt.Value)
		}

		// Round trip back to knapsack.
		items2, cap2, err := KnapsackFromBCC1(in)
		if err != nil {
			t.Fatal(err)
		}
		k2 := knapsack.BruteForce(items2, cap2)
		if math.Abs(k2.Value-kOpt.Value) > 1e-9 {
			t.Fatalf("trial %d: round-trip optimum %v != %v", trial, k2.Value, kOpt.Value)
		}
	}
}

func TestKnapsackFromBCC1RejectsLongQueries(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(1, "a", "b")
	in := b.MustInstance(5)
	if _, _, err := KnapsackFromBCC1(in); err == nil {
		t.Fatal("l=2 instance accepted")
	}
}

// Theorem 3.3: I_2 ≡ DkS. The BCC optimum equals the max number of edges
// induced by any k nodes.
func TestTheorem33Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		g := wgraph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		if g.NumEdges() == 0 {
			continue
		}
		k := 1 + rng.Intn(n)

		in, err := I2FromDkS(g, k)
		if err != nil {
			t.Fatal(err)
		}
		bccOpt, err := core.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		dksOpt := g.InducedWeightOf(dks.BruteForce(g, k))
		if math.Abs(bccOpt.Utility-dksOpt) > 1e-9 {
			t.Fatalf("trial %d: BCC optimum %v != DkS optimum %v (n=%d k=%d)",
				trial, bccOpt.Utility, dksOpt, n, k)
		}

		// Round trip: instance → graph must preserve the edge set.
		g2, k2, err := DkSFromI2(in)
		if err != nil {
			t.Fatal(err)
		}
		if k2 != k || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: round trip lost structure", trial)
		}
	}
}

func TestDkSFromI2ValidatesRestrictions(t *testing.T) {
	// Non-unit utility must be rejected.
	b := model.NewBuilder()
	b.AddQuery(2, "a", "b")
	b.SetDefaultCost(func(s propset.Set) float64 {
		if s.Len() == 1 {
			return 1
		}
		return math.Inf(1)
	})
	in := b.MustInstance(2)
	if _, _, err := DkSFromI2(in); err == nil {
		t.Fatal("non-unit utility accepted")
	}
	// Finite pair classifier must be rejected.
	b2 := model.NewBuilder()
	b2.AddQuery(1, "a", "b")
	b2.SetDefaultCost(func(s propset.Set) float64 { return 1 })
	in2 := b2.MustInstance(2)
	if _, _, err := DkSFromI2(in2); err == nil {
		t.Fatal("finite pair classifier accepted")
	}
	// Fractional budget must be rejected.
	b3 := model.NewBuilder()
	b3.AddQuery(1, "a", "b")
	b3.SetDefaultCost(func(s propset.Set) float64 {
		if s.Len() == 1 {
			return 1
		}
		return math.Inf(1)
	})
	in3 := b3.MustInstance(1.5)
	if _, _, err := DkSFromI2(in3); err == nil {
		t.Fatal("fractional budget accepted")
	}
}

// Theorem 5.3 hardness direction: uniform GMC3 ≡ SpES. The greedy SpES
// solution must induce ≥ P edges using a sane number of nodes.
func TestSpESGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		g := wgraph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		total := g.NumEdges()
		if total == 0 {
			continue
		}
		p := 1 + rng.Intn(total)
		sel, ok := SolveSpESGreedy(SpESInstance{G: g, P: p})
		if !ok {
			t.Fatalf("trial %d: feasible instance reported infeasible", trial)
		}
		in := make([]bool, n)
		for _, v := range sel {
			in[v] = true
		}
		if got := countEdgesIn(g, in); got < p {
			t.Fatalf("trial %d: selection induces %d < %d edges", trial, got, p)
		}
		// Optimality sanity: compare with the exhaustive minimum.
		opt := bruteSpES(g, p)
		if len(sel) < opt {
			t.Fatalf("trial %d: greedy used %d nodes, below exact minimum %d — bug",
				trial, len(sel), opt)
		}
	}
}

func TestSpESInfeasible(t *testing.T) {
	g := wgraph.New(3)
	g.AddEdge(0, 1, 1)
	if _, ok := SolveSpESGreedy(SpESInstance{G: g, P: 5}); ok {
		t.Fatal("infeasible instance accepted")
	}
}

func TestSpESFromUniformGMC3(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(1, "a", "b")
	b.AddQuery(1, "b", "c")
	b.SetDefaultCost(func(s propset.Set) float64 {
		if s.Len() == 1 {
			return 1
		}
		return math.Inf(1)
	})
	in := b.MustInstance(0)
	inst, err := SpESFromUniformGMC3(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.P != 2 || inst.G.NumEdges() != 2 {
		t.Fatalf("mapping lost structure: %+v", inst)
	}
	sel, ok := SolveSpESGreedy(inst)
	if !ok || len(sel) != 3 { // covering both edges needs a, b, c
		t.Fatalf("SpES solution = %v ok=%v, want 3 nodes", sel, ok)
	}
}

func bruteSpES(g *wgraph.Graph, p int) int {
	n := g.NumNodes()
	best := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		in := make([]bool, n)
		size := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				in[v] = true
				size++
			}
		}
		if size < best && countEdgesIn(g, in) >= p {
			best = size
		}
	}
	return best
}
