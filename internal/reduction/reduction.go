// Package reduction implements the formal problem reductions of the
// paper's hardness analysis, as executable mappings with round-trip tests:
//
//   - Theorem 3.1: BCC with l = 1 ⇄ Knapsack (exact equivalence);
//   - Theorem 3.3: the special case I_2 (all queries length 2, unit
//     utilities, unit singleton costs, other classifiers excluded,
//     integer budget) ⇄ Densest k-Subgraph;
//   - Theorem 5.3: the uniform special case of GMC3 ⇄ Smallest p-Edge
//     Subgraph (SpES), together with a greedy SpES heuristic.
//
// These mappings exist to validate the implementation against the theory —
// the test suite solves both sides of each bijection independently and
// asserts equal optima — and to document precisely how the paper's
// complexity results connect to the code.
package reduction

import (
	"fmt"
	"math"

	"repro/internal/knapsack"
	"repro/internal/model"
	"repro/internal/propset"
	"repro/internal/wgraph"
)

// KnapsackFromBCC1 maps a BCC instance with l = 1 to the equivalent
// knapsack input (Theorem 3.1): each singleton query x becomes an item
// with value U(x) and weight C(X); the capacity is the budget. It errors
// if any query is longer than 1.
func KnapsackFromBCC1(in *model.Instance) ([]knapsack.Item, float64, error) {
	if in.MaxQueryLength() > 1 {
		return nil, 0, fmt.Errorf("reduction: instance has l = %d, need 1", in.MaxQueryLength())
	}
	var items []knapsack.Item
	for qi, q := range in.Queries() {
		cost := in.Cost(q.Props)
		if math.IsInf(cost, 1) {
			continue // uncoverable query: no corresponding item
		}
		items = append(items, knapsack.Item{Value: q.Utility, Weight: cost, Payload: qi})
	}
	return items, in.Budget(), nil
}

// BCC1FromKnapsack is the reverse direction of Theorem 3.1: items become
// singleton queries with matching utilities and classifier costs.
func BCC1FromKnapsack(items []knapsack.Item, capacity float64) (*model.Instance, error) {
	b := model.NewBuilder()
	u := b.Universe()
	for i, it := range items {
		s := propset.New(u.Intern(fmt.Sprintf("item%d", i)))
		b.AddQuerySet(s, it.Value)
		b.SetCostSet(s, it.Weight)
	}
	return b.Instance(capacity)
}

// DkSFromI2 maps an I_2 instance (Theorem 3.3) to a DkS input: properties
// become nodes, queries become edges, the budget becomes k. It validates
// the I_2 restrictions (all queries length 2, unit utilities, unit
// singleton costs, non-singleton classifiers excluded, integer budget).
func DkSFromI2(in *model.Instance) (*wgraph.Graph, int, error) {
	if in.Budget() != math.Trunc(in.Budget()) {
		return nil, 0, fmt.Errorf("reduction: I_2 requires an integer budget, got %v", in.Budget())
	}
	n := in.NumProperties()
	g := wgraph.New(n)
	for v := 0; v < n; v++ {
		g.SetCost(v, 1)
	}
	for _, q := range in.Queries() {
		if q.Props.Len() != 2 {
			return nil, 0, fmt.Errorf("reduction: I_2 requires all queries of length 2, got %v", q.Props)
		}
		if q.Utility != 1 {
			return nil, 0, fmt.Errorf("reduction: I_2 requires unit utilities, got %v", q.Utility)
		}
		if c := in.Cost(q.Props); !math.IsInf(c, 1) {
			return nil, 0, fmt.Errorf("reduction: I_2 requires pair classifiers excluded, %v costs %v", q.Props, c)
		}
		for _, p := range q.Props {
			if c := in.Cost(propset.New(p)); c != 1 {
				return nil, 0, fmt.Errorf("reduction: I_2 requires unit singleton costs, %v costs %v", p, c)
			}
		}
		g.AddEdgeMerged(int(q.Props[0]), int(q.Props[1]), 1)
	}
	return g, int(in.Budget()), nil
}

// I2FromDkS is the reverse direction of Theorem 3.3: nodes become
// properties (unit-cost singleton classifiers), edges become unit-utility
// queries, k becomes the budget, and every non-singleton classifier is
// priced +Inf.
func I2FromDkS(g *wgraph.Graph, k int) (*model.Instance, error) {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, g.NumNodes())
	for v := range names {
		names[v] = fmt.Sprintf("v%d", v)
	}
	for _, e := range g.Edges() {
		b.AddQuery(1, names[e.U], names[e.V])
	}
	b.SetDefaultCost(func(s propset.Set) float64 {
		if s.Len() == 1 {
			return 1
		}
		return math.Inf(1)
	})
	_ = u
	return b.Instance(float64(k))
}

// SpESInstance is a Smallest p-Edge Subgraph input: find the fewest nodes
// inducing at least P edges.
type SpESInstance struct {
	G *wgraph.Graph
	P int
}

// SpESFromUniformGMC3 maps the uniform special case of GMC3 (Theorem
// 5.3's hardness direction: all queries length 2, unit utilities, unit
// singleton costs, pair classifiers excluded, integer target) to SpES.
func SpESFromUniformGMC3(in *model.Instance, target float64) (SpESInstance, error) {
	g, _, err := DkSFromI2(in.WithBudget(0))
	if err != nil {
		return SpESInstance{}, err
	}
	if target != math.Trunc(target) {
		return SpESInstance{}, fmt.Errorf("reduction: SpES requires an integer target, got %v", target)
	}
	return SpESInstance{G: g, P: int(target)}, nil
}

// SolveSpESGreedy is a simple SpES heuristic: grow the node set by the
// vertex closing the most new edges until P edges are induced (then prune
// redundant nodes). Returns the chosen nodes, or ok=false when even the
// full graph has fewer than P edges.
func SolveSpESGreedy(inst SpESInstance) ([]int, bool) {
	g := inst.G
	n := g.NumNodes()
	if countEdges(g, all(n)) < inst.P {
		return nil, false
	}
	in := make([]bool, n)
	var sel []int
	edges := 0
	for edges < inst.P {
		best, bestGain := -1, -1
		for v := 0; v < n; v++ {
			if in[v] {
				continue
			}
			gain := 0
			g.Neighbors(v, func(u int, _ float64, _ int) {
				if in[u] {
					gain++
				}
			})
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		in[best] = true
		sel = append(sel, best)
		edges += bestGain
	}
	// Reverse-delete: drop nodes whose removal keeps ≥ P edges.
	for i := 0; i < len(sel); i++ {
		v := sel[i]
		in[v] = false
		if countEdgesIn(g, in) >= inst.P {
			sel = append(sel[:i], sel[i+1:]...)
			i--
		} else {
			in[v] = true
		}
	}
	return sel, true
}

func all(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func countEdges(g *wgraph.Graph, in []bool) int { return countEdgesIn(g, in) }

func countEdgesIn(g *wgraph.Graph, in []bool) int {
	c := 0
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			c++
		}
	}
	return c
}
