package core

import (
	"math"

	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/knapsack"
	"repro/internal/propset"
	"repro/internal/wgraph"
)

// subproblems is one materialization of the BCC(1) and BCC(2) instances of
// the paper (Observations 4.3 and 4.4) for the current tracker state: the
// knapsack items of all 1-covers and the QK graph of all 2-covers.
//
// In the residual setting (some classifiers already selected), a classifier
// c ⊆ q is a 1-cover of q iff c ⊇ residual(q), and a pair {c1, c2} ⊆ 2^q is
// a 2-cover iff c1 ∪ c2 ⊇ residual(q) while neither alone suffices —
// exactly the enlarged cover sets of Example 4.8.
type subproblems struct {
	items    []knapsack.Item
	itemSets []propset.Set
	// graph is the QK instance. Beyond the plain 2-cover edges of
	// Observation 4.4, every classifier's 1-cover value is attached as an
	// edge to a zero-cost virtual node vStar (the same encoding the
	// paper's ECC reduction uses for singleton queries): the QK solver
	// preselects zero-cost nodes, so these edges become linear bonuses and
	// the QK candidate optimizes the combined 1-cover + 2-cover objective
	// instead of being blind to singleton-query utility.
	graph     *wgraph.Graph
	nodeSets  []propset.Set
	nodeIndex map[string]int
	vStar     int // node index of the virtual anchor, -1 if absent
}

// buildSubproblems scans the uncovered queries and assembles both
// subproblem inputs. allowed (nil = everything) restricts the candidate
// classifiers, implementing the pruning of Algorithm 1 step 1. maxCost
// (+Inf = everything) drops candidates that cannot fit the calling
// phase's budget — the warm fast path's replacement for pruning.
func buildSubproblems(g *guard.Guard, t *cover.Tracker, allowed map[string]bool, maxCost float64) *subproblems {
	sp := &subproblems{nodeIndex: make(map[string]int)}
	itemIndex := make(map[string]int)
	type edgeAgg map[[2]int]float64
	edges := edgeAgg{}

	itemFor := func(c propset.Set, cost float64) int {
		k := c.Key()
		if i, ok := itemIndex[k]; ok {
			return i
		}
		i := len(sp.items)
		itemIndex[k] = i
		sp.items = append(sp.items, knapsack.Item{Weight: cost, Payload: i})
		sp.itemSets = append(sp.itemSets, c.Clone())
		return i
	}
	nodeFor := func(c propset.Set) int {
		k := c.Key()
		if i, ok := sp.nodeIndex[k]; ok {
			return i
		}
		i := len(sp.nodeSets)
		sp.nodeIndex[k] = i
		sp.nodeSets = append(sp.nodeSets, c.Clone())
		return i
	}

	type cand struct {
		c    propset.Set
		cost float64
	}
	in := t.Instance()
	for qi, q := range in.Queries() {
		// A trip yields a partial subproblem — the phase still solves it and
		// any candidate it produces remains feasibility-checked.
		if g.Check() {
			break
		}
		if t.Covered(qi) {
			continue
		}
		res := t.Residual(qi)
		u := q.Utility
		var cands []cand
		q.Props.Subsets(func(sub propset.Set) {
			k := sub.Key()
			if t.Has(sub) {
				return
			}
			if allowed != nil && !allowed[k] {
				return
			}
			cost := in.Cost(sub)
			if math.IsInf(cost, 1) || cost > maxCost+1e-9 {
				return
			}
			cands = append(cands, cand{c: sub, cost: cost})
		})
		// 1-covers.
		for _, cd := range cands {
			if res.SubsetOf(cd.c) {
				i := itemFor(cd.c, cd.cost)
				sp.items[i].Value += u
			}
		}
		// 2-covers (both classifiers needed).
		for i := 0; i < len(cands); i++ {
			if res.SubsetOf(cands[i].c) {
				continue
			}
			for j := i + 1; j < len(cands); j++ {
				if res.SubsetOf(cands[j].c) {
					continue
				}
				if !res.SubsetOf(cands[i].c.Union(cands[j].c)) {
					continue
				}
				a := nodeFor(cands[i].c)
				b := nodeFor(cands[j].c)
				if a > b {
					a, b = b, a
				}
				edges[[2]int{a, b}] += u
			}
		}
	}

	// Attach 1-cover values through vStar. Knapsack items that are not yet
	// QK nodes become nodes so the QK solver can select them too.
	sp.vStar = -1
	if len(sp.items) > 0 {
		for i := range sp.items {
			nodeFor(sp.itemSets[i])
		}
		sp.vStar = len(sp.nodeSets)
	}

	n := len(sp.nodeSets)
	if sp.vStar >= 0 {
		n++
	}
	sp.graph = wgraph.New(n)
	for i, c := range sp.nodeSets {
		sp.graph.SetCost(i, in.Cost(c))
	}
	for k, w := range edges {
		sp.graph.AddEdgeMerged(k[0], k[1], w)
	}
	if sp.vStar >= 0 {
		sp.graph.SetCost(sp.vStar, 0)
		for i := range sp.items {
			node := sp.nodeIndex[sp.itemSets[i].Key()]
			sp.graph.AddEdgeMerged(node, sp.vStar, sp.items[i].Value)
		}
	}
	return sp
}

// qkNodes translates a QK solution back to classifier sets, dropping the
// virtual anchor.
func (sp *subproblems) qkNodes(nodes []int) []propset.Set {
	var out []propset.Set
	for _, v := range nodes {
		if v == sp.vStar {
			continue
		}
		out = append(out, sp.nodeSets[v])
	}
	return out
}
