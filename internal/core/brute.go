package core

import (
	"fmt"
	"time"

	"repro/internal/cover"
	"repro/internal/model"
)

// BruteForce finds the exact optimum by depth-first search over the
// candidate classifier set with a simple utility bound (current utility
// plus all still-uncovered utility must beat the incumbent). It is the
// reference the paper compares against on small instances (Figure 3d) and
// refuses instances with more than maxBruteClassifiers candidates.
const maxBruteClassifiers = 26

func BruteForce(in *model.Instance) (Result, error) {
	start := time.Now()
	cls := in.Classifiers()
	if len(cls) > maxBruteClassifiers {
		return Result{}, fmt.Errorf("core: BruteForce limited to %d classifiers, instance has %d",
			maxBruteClassifiers, len(cls))
	}
	t := cover.New(in)
	// Free classifiers are always in.
	for _, c := range cls {
		if c.Cost == 0 {
			t.Add(c.Props)
		}
	}
	best := t.Clone()

	var rec func(idx int, cur *cover.Tracker)
	rec = func(idx int, cur *cover.Tracker) {
		if cur.Utility() > best.Utility() {
			best = cur.Clone()
		}
		if idx >= len(cls) {
			return
		}
		// Bound: remaining uncovered utility.
		var potential float64
		for qi, q := range in.Queries() {
			if !cur.Covered(qi) {
				potential += q.Utility
			}
		}
		if cur.Utility()+potential <= best.Utility() {
			return
		}
		// Branch: skip idx.
		rec(idx+1, cur)
		// Branch: take idx if affordable and new.
		c := cls[idx]
		if c.Cost > 0 && c.Cost <= cur.Remaining()+1e-9 && !cur.Has(c.Props) {
			next := cur.Clone()
			next.Add(c.Props)
			rec(idx+1, next)
		}
	}
	rec(0, t)
	return resultFrom(best, 0, 0, start), nil
}
