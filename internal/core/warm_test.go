package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/propset"
)

// warmSets extracts a result's plan as warm-start input.
func warmSets(res Result) []propset.Set {
	var out []propset.Set
	for _, c := range res.Solution.Classifiers() {
		out = append(out, c.Props)
	}
	return out
}

// A warm-started run under a near-exhausted deadline must keep the
// incumbent's utility: the checkpoint/resume path of internal/jobs
// depends on slices never regressing.
func TestWarmStartKeepsIncumbentUnderTightDeadline(t *testing.T) {
	in := anytimeInstance(7)
	incumbent := Solve(in, Options{Seed: 1})
	if incumbent.Utility <= 0 {
		t.Fatal("incumbent solved nothing; instance too easy to test warm start")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	res := SolveCtx(ctx, in, Options{Seed: 1, Warm: warmSets(incumbent)})
	checkFeasibleResult(t, in, res)
	if res.Utility < incumbent.Utility-1e-9 {
		t.Errorf("warm-started utility %v regressed below incumbent %v", res.Utility, incumbent.Utility)
	}
}

// Warm sets that no longer fit the budget are skipped, keeping the run
// feasible rather than failing.
func TestWarmStartSkipsOverBudgetSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomInstance(rng, 20, 120, 3, 40)
	incumbent := Solve(in, Options{Seed: 1})

	// Re-solve the same queries under a much smaller budget, seeded with
	// the (now partly unaffordable) old plan.
	tight := in.WithBudget(in.Budget() / 8)
	res := Solve(tight, Options{Seed: 1, Warm: warmSets(incumbent)})
	checkFeasibleResult(t, tight, res)
	if res.Cost > tight.Budget()+1e-9 {
		t.Errorf("warm start blew the reduced budget: cost %v > %v", res.Cost, tight.Budget())
	}
}
