package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/propset"
)

// fig1Instance is the Figure 1 input of the paper.
func fig1Instance(budget float64) *model.Instance {
	b := model.NewBuilder()
	b.AddQuery(8, "x", "y", "z")
	b.AddQuery(1, "x", "z")
	b.AddQuery(2, "x", "y")
	b.SetCost(5, "x")
	b.SetCost(3, "y")
	b.SetCost(3, "z")
	b.SetCost(3, "x", "y", "z")
	b.SetCost(4, "x", "z")
	b.SetCost(0, "y", "z")
	b.SetCost(math.Inf(1), "x", "y")
	return b.MustInstance(budget)
}

func TestFigure1Golden(t *testing.T) {
	// Golden optimal utilities from Figure 1: B=3 → 8, B=4 → 9, B=11 → 11.
	for _, c := range []struct {
		budget, utility float64
	}{{3, 8}, {4, 9}, {11, 11}} {
		in := fig1Instance(c.budget)
		res := Solve(in, Options{})
		if res.Utility != c.utility {
			t.Errorf("B=%v: A^BCC utility = %v, want %v (cost %v, %v)",
				c.budget, res.Utility, c.utility, res.Cost,
				res.Solution.Classifiers())
		}
		if res.Cost > c.budget+1e-9 {
			t.Errorf("B=%v: cost %v exceeds budget", c.budget, res.Cost)
		}
		// Cross-check against exact search.
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Utility != c.utility {
			t.Errorf("B=%v: brute force utility = %v, want %v", c.budget, opt.Utility, c.utility)
		}
	}
}

func TestFigure2Split(t *testing.T) {
	// The l=2 instance of Figure 2: queries xy (utility 2), yz (utility 1),
	// singleton query y (via the Knapsack instance the classifier YZ and XZ
	// are items). We reproduce the headline: the optimum 2-covers xy with
	// {X, Y} and 1-covers yz with YZ.
	b := model.NewBuilder()
	b.AddQuery(2, "x", "y")
	b.AddQuery(1, "y", "z")
	b.SetCost(2, "x")
	b.SetCost(1, "y")
	b.SetCost(2, "z")
	b.SetCost(4, "x", "y")
	b.SetCost(1, "y", "z")
	in := b.MustInstance(4)
	res := Solve(in, Options{})
	opt, err := BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility != opt.Utility {
		t.Fatalf("A^BCC %v != optimal %v", res.Utility, opt.Utility)
	}
	if opt.Utility != 3 { // X+Y+YZ costs 4, covers both queries
		t.Fatalf("optimal = %v, want 3", opt.Utility)
	}
}

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int, budget float64) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(20)))
	}
	costSeed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := costSeed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%7+7)%7)
	})
	return b.MustInstance(budget)
}

func checkResult(t *testing.T, in *model.Instance, res Result, name string) {
	t.Helper()
	if res.Cost > in.Budget()+1e-6 {
		t.Fatalf("%s: cost %v exceeds budget %v", name, res.Cost, in.Budget())
	}
	if got := res.Solution.Utility(); math.Abs(got-res.Utility) > 1e-6 {
		t.Fatalf("%s: reported utility %v != recomputed %v", name, res.Utility, got)
	}
	if got := res.Solution.Cost(); math.Abs(got-res.Cost) > 1e-6 {
		t.Fatalf("%s: reported cost %v != recomputed %v", name, res.Cost, got)
	}
}

func TestAllSolversFeasibleAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 8, 12, 3, float64(3+rng.Intn(15)))
		checkResult(t, in, Solve(in, Options{Seed: int64(trial + 1)}), "A^BCC")
		checkResult(t, in, SolveRand(in, int64(trial+1)), "RAND")
		checkResult(t, in, SolveIG1(in), "IG1")
		checkResult(t, in, SolveIG2(in), "IG2")
	}
}

func TestABCCNeverBelowBruteForceAndWithin20Pct(t *testing.T) {
	// Figure 3d claim: loss vs exhaustive search below 20% on small
	// instances.
	rng := rand.New(rand.NewSource(2))
	var totGot, totOpt float64
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 6, 7, 3, float64(4+rng.Intn(10)))
		res := Solve(in, Options{Seed: int64(trial + 1)})
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Utility > opt.Utility+1e-9 {
			t.Fatalf("trial %d: A^BCC %v beats brute force %v — a bug",
				trial, res.Utility, opt.Utility)
		}
		totGot += res.Utility
		totOpt += opt.Utility
	}
	if totGot < 0.8*totOpt {
		t.Fatalf("aggregate A^BCC/OPT = %.3f, below the 0.8 the paper reports",
			totGot/totOpt)
	}
}

func TestABCCBeatsOrMatchesBaselinesOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var abcc, randU, ig1, ig2 float64
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 10, 25, 3, float64(6+rng.Intn(20)))
		abcc += Solve(in, Options{Seed: int64(trial + 1)}).Utility
		randU += SolveRand(in, int64(trial+1)).Utility
		ig1 += SolveIG1(in).Utility
		ig2 += SolveIG2(in).Utility
	}
	if abcc < ig1 || abcc < ig2 || abcc < randU {
		t.Fatalf("A^BCC (%.1f) must dominate baselines on average: RAND %.1f IG1 %.1f IG2 %.1f",
			abcc, randU, ig1, ig2)
	}
}

func TestZeroBudgetOnlyFreeClassifiers(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(5, "a")
	b.AddQuery(3, "b")
	b.SetCost(0, "a")
	b.SetCost(2, "b")
	in := b.MustInstance(0)
	res := Solve(in, Options{})
	if res.Utility != 5 || res.Cost != 0 {
		t.Fatalf("zero budget: utility %v cost %v, want 5 and 0", res.Utility, res.Cost)
	}
}

func TestUniformCostsI2EquivalentToDkS(t *testing.T) {
	// The I_2 special case (Theorem 3.3): all queries length 2, singleton
	// costs 1, longer classifiers excluded, budget k. BCC = DkS. On a
	// 4-clique with budget 3, the best 3 nodes induce 3 edges.
	b := model.NewBuilder()
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddQuery(1, names[i], names[j])
		}
	}
	b.SetDefaultCost(func(s propset.Set) float64 {
		if s.Len() == 1 {
			return 1
		}
		return math.Inf(1)
	})
	in := b.MustInstance(3)
	res := Solve(in, Options{})
	if res.Utility != 3 {
		t.Fatalf("I_2 clique: utility %v, want 3 (DkS on K4, k=3)", res.Utility)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, 12, 30, 3, 15)
	a := Solve(in, Options{Seed: 9})
	b := Solve(in, Options{Seed: 9})
	if a.Utility != b.Utility || a.Cost != b.Cost {
		t.Fatalf("same seed, different outcomes: %v/%v vs %v/%v",
			a.Utility, a.Cost, b.Utility, b.Cost)
	}
}

func TestPruningPreservesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var withP, withoutP float64
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 10, 30, 4, float64(8+rng.Intn(15)))
		withP += Solve(in, Options{Seed: int64(trial + 1)}).Utility
		withoutP += Solve(in, Options{Seed: int64(trial + 1), DisablePruning: true}).Utility
	}
	if withP < 0.9*withoutP {
		t.Fatalf("pruning lost too much utility: %v vs %v", withP, withoutP)
	}
}

func TestMC3ImprovementNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 8, 20, 3, float64(6+rng.Intn(12)))
		with := Solve(in, Options{Seed: int64(trial + 1)})
		without := Solve(in, Options{Seed: int64(trial + 1), DisableMC3: true})
		if with.Utility < without.Utility-1e-9 {
			t.Fatalf("trial %d: MC3 step reduced utility: %v < %v",
				trial, with.Utility, without.Utility)
		}
	}
}

func TestBruteForceRefusesLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 40, 80, 3, 10)
	if _, err := BruteForce(in); err == nil {
		t.Fatal("BruteForce accepted an oversized instance")
	}
}

func TestResultAccounting(t *testing.T) {
	in := fig1Instance(11)
	res := Solve(in, Options{})
	if res.Covered != 3 {
		t.Fatalf("Covered = %d, want 3", res.Covered)
	}
	if res.Duration <= 0 {
		t.Fatal("Duration not recorded")
	}
	if res.Iterations < 1 {
		t.Fatal("Iterations not recorded")
	}
}

func BenchmarkABCCMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := randomInstance(rng, 100, 400, 3, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Solve(in, Options{Seed: int64(i + 1)})
	}
}

func BenchmarkIG2Medium(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := randomInstance(rng, 100, 400, 3, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveIG2(in)
	}
}
