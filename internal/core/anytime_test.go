package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/model"
)

// anytimeInstance is big enough to exercise every solver phase: length-2
// queries populate the BCC(2) graph (QK restarts), singletons the knapsack,
// and coverage triggers the MC3 improvement.
func anytimeInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, 30, 400, 3, 60)
}

func checkFeasibleResult(t *testing.T, in *model.Instance, res Result) {
	t.Helper()
	if res.Solution == nil {
		t.Fatal("nil Solution")
	}
	if res.Cost > in.Budget()+1e-9 {
		t.Fatalf("cost %v exceeds budget %v", res.Cost, in.Budget())
	}
	if got := res.Solution.Cost(); got > in.Budget()+1e-9 {
		t.Fatalf("solution cost %v exceeds budget %v", got, in.Budget())
	}
}

func TestSolveCtxExpiredDeadlineReturnsFast(t *testing.T) {
	in := anytimeInstance(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	res := SolveCtx(ctx, in, Options{Seed: 1})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("expired-context solve took %v, want < 10ms", elapsed)
	}
	if res.Status != guard.DeadlineExceeded {
		t.Errorf("Status = %v, want DeadlineExceeded", res.Status)
	}
	if res.Err == nil {
		t.Error("Err = nil on a deadline-exceeded run")
	}
	checkFeasibleResult(t, in, res)
}

func TestSolveCtxGenerousDeadlineMatchesSolve(t *testing.T) {
	in := anytimeInstance(2)
	plain := Solve(in, Options{Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res := SolveCtx(ctx, in, Options{Seed: 1})
	if res.Status != guard.Complete {
		t.Fatalf("Status = %v (err %v), want Complete", res.Status, res.Err)
	}
	if res.Utility != plain.Utility || res.Cost != plain.Cost {
		t.Errorf("generous deadline diverged: utility %v/%v, cost %v/%v",
			res.Utility, plain.Utility, res.Cost, plain.Cost)
	}
}

func TestSolveCtxCancelMidSolveStaysFeasible(t *testing.T) {
	in := anytimeInstance(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire the cancellation from inside the solver, right at a phase start.
	guard.Arm("core.phase", guard.CancelFault(cancel))
	defer guard.DisarmAll()
	res := SolveCtx(ctx, in, Options{Seed: 1})
	if res.Status != guard.Canceled {
		t.Errorf("Status = %v, want Canceled", res.Status)
	}
	checkFeasibleResult(t, in, res)
}

func TestSolveCtxShortDeadlineStillYieldsAPlan(t *testing.T) {
	// The degradation ladder: a 50ms deadline must still produce a sane
	// feasible plan (greedy floor at worst), not an empty panic-bail.
	in := anytimeInstance(4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res := SolveCtx(ctx, in, Options{Seed: 1})
	checkFeasibleResult(t, in, res)
	if res.Utility <= 0 {
		t.Errorf("short-deadline utility = %v, want > 0", res.Utility)
	}
}

func TestArmedPanicsSurfaceAsRecovered(t *testing.T) {
	// A panic at any injection point on the A^BCC path must surface as
	// Status Recovered with the error attached — never a crash — and the
	// returned solution must stay budget-feasible.
	for _, point := range []string{"core.phase", "knapsack.solve", "qk.restart", "mc3.solve"} {
		t.Run(point, func(t *testing.T) {
			in := anytimeInstance(5)
			guard.Arm(point, guard.PanicFault("injected: "+point))
			defer guard.DisarmAll()
			res := SolveCtx(context.Background(), in, Options{Seed: 1})
			if res.Status != guard.Recovered {
				t.Fatalf("Status = %v, want Recovered", res.Status)
			}
			if res.Err == nil {
				t.Fatal("Err = nil on a recovered run")
			}
			checkFeasibleResult(t, in, res)
		})
	}
}

func TestLegacySolveStillPanics(t *testing.T) {
	// The non-context entry points keep crash semantics only where no guard
	// exists at all; Solve delegates to SolveCtx, so its panics are now
	// contained too — verify that explicitly (a deliberate behavior change).
	in := anytimeInstance(6)
	guard.Arm("core.phase", guard.PanicFault("contained"))
	defer guard.DisarmAll()
	res := Solve(in, Options{Seed: 1})
	if res.Status != guard.Recovered {
		t.Fatalf("Solve: Status = %v, want Recovered (contained panic)", res.Status)
	}
}

func TestDegradeForDeadline(t *testing.T) {
	bg := guard.New(context.Background())
	opts, greedyOnly := degradeForDeadline(bg, Options{MixedPhase: true}.withDefaults())
	if greedyOnly || !opts.MixedPhase {
		t.Error("no deadline: options must be untouched")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	g := guard.New(ctx)
	opts, greedyOnly = degradeForDeadline(g, Options{MixedPhase: true, MaxIterations: 16}.withDefaults())
	if greedyOnly {
		t.Error("150ms: want light rung, got greedy floor")
	}
	if opts.MixedPhase || opts.QK.Iterations > 2 || opts.MaxIterations > 4 {
		t.Errorf("150ms: options not trimmed: %+v", opts)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	g2 := guard.New(ctx2)
	if _, greedyOnly = degradeForDeadline(g2, Options{}.withDefaults()); !greedyOnly {
		t.Error("10ms: want greedy floor")
	}
}
