package core

import (
	"context"
	"math"
	"time"

	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/knapsack"
	"repro/internal/mc3"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/propset"
	"repro/internal/qk"
)

// Options tunes the A^BCC solver. The zero value gives the defaults used
// in the experimental study.
type Options struct {
	// Seed drives all randomness (QK bipartitions) deterministically.
	// Default 1.
	Seed int64
	// Epsilon is the knapsack FPTAS precision for the BCC(1) subproblem.
	// Default 0.05.
	Epsilon float64
	// MaxIterations caps the residual-problem loop (lines 4–6 of
	// Algorithm 1). Default 16.
	MaxIterations int
	// DisablePruning skips step 1 of Algorithm 1 (both the
	// replaceable-classifier rule and the leverage-score rule). Used by
	// the Figure 3e/3f ablation.
	DisablePruning bool
	// DisableMC3 skips the MC3 local-search improvement (line 3). Used by
	// ablation benchmarks.
	DisableMC3 bool
	// LeverageKeep is the fraction of QK-graph weight the leverage-score
	// pruning must preserve; the lowest-score nodes carrying at most
	// (1 − LeverageKeep) of the total incident weight are dropped.
	// Default 0.95.
	LeverageKeep float64
	// MixedPhase additionally evaluates split-budget candidates in every
	// phase (knapsack-then-QK and QK-then-knapsack on half the round
	// budget each). Slightly better on some workloads, roughly 2–4×
	// slower; off by default.
	MixedPhase bool
	// DisableGreedyFloor skips the final best-of comparison against the
	// IG1 greedy (used by ablation benchmarks). With the floor enabled
	// (default), A^BCC never returns less utility than IG1.
	DisableGreedyFloor bool
	// Warm seeds the run with a previously found feasible plan — the
	// incumbent of an earlier checkpoint (internal/jobs) or a prior
	// anytime slice. Sets that fit the remaining budget are selected
	// before any phase runs, so a warm-started run never returns less
	// utility than the incumbent: phases and greedy fills only add, and
	// MC3 only adopts strictly cheaper re-coverings. Sets that no longer
	// fit (e.g. after a budget override) are skipped, not fatal.
	Warm []propset.Set
	// warmFast marks a run whose warm seed restored most of the coverage:
	// the solver then runs only residual work (see SolveCtx). Set
	// internally — never by callers — so cold runs stay byte-identical.
	warmFast bool
	// QK tunes the inner Quadratic Knapsack solver.
	QK qk.Options
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 16
	}
	if o.LeverageKeep == 0 {
		o.LeverageKeep = 0.95
	}
	if o.QK.Seed == 0 {
		o.QK.Seed = o.Seed
	}
	return o
}

// Graceful-degradation ladder: with this little deadline budget left the
// solver cuts optional work (degradeLight) or skips straight to the IG1
// greedy floor (degradeFloor). Thresholds are deliberately coarse — they
// only fire on deadlines far below a normal solve, so generous deadlines
// keep byte-identical results.
const (
	degradeLight = 250 * time.Millisecond
	degradeFloor = 50 * time.Millisecond
)

// degradeForDeadline inspects the remaining deadline budget and returns
// options trimmed to fit, plus whether only the greedy floor should run.
func degradeForDeadline(g *guard.Guard, opts Options) (Options, bool) {
	left, ok := g.Remaining()
	if !ok || left >= degradeLight {
		return opts, false
	}
	if left < degradeFloor {
		return opts, true
	}
	// Light rung: drop the expensive extras, keep the core pipeline.
	opts.MixedPhase = false
	if opts.QK.Iterations == 0 || opts.QK.Iterations > 2 {
		opts.QK.Iterations = 2
	}
	if opts.MaxIterations > 4 {
		opts.MaxIterations = 4
	}
	return opts, false
}

// Result reports a solver run: the solution plus accounting useful to the
// experiment harness.
type Result struct {
	Solution *model.Solution
	// Utility is the total utility of the covered queries.
	Utility float64
	// Cost is the total construction cost of the selected classifiers.
	Cost float64
	// Covered is the number of covered queries.
	Covered int
	// Iterations is the number of residual-loop rounds executed (A^BCC)
	// or selection steps (baselines).
	Iterations int
	// Pruned is the number of candidate classifiers removed by
	// preprocessing (A^BCC only).
	Pruned int
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended: Complete, DeadlineExceeded,
	// Canceled, or Recovered (a contained panic). On any non-Complete
	// status the Solution is still the best feasible one found.
	Status guard.Status
	// Err is the context error or the contained panic when Status is not
	// Complete.
	Err error
}

func resultFrom(t *cover.Tracker, iterations, pruned int, start time.Time) Result {
	return Result{
		Solution:   t.Solution(),
		Utility:    t.Utility(),
		Cost:       t.Cost(),
		Covered:    t.CoveredCount(),
		Iterations: iterations,
		Pruned:     pruned,
		Duration:   time.Since(start),
	}
}

// Solve runs A^BCC (Algorithm 1) on the instance: prune candidate
// classifiers, solve the BCC(1) and BCC(2) subproblems with half the
// budget, improve cost-wise with MC3, then iterate on residual problems
// with the full remaining budget until no further utility is gained.
func Solve(in *model.Instance, opts Options) Result {
	return SolveCtx(context.Background(), in, opts)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation
// the solver stops at the next guard check and returns the best feasible
// solution found so far, with Result.Status reporting why it stopped.
// Panics anywhere in the solver stack are contained and reported as
// Status Recovered. With a background context the result is identical to
// Solve.
func SolveCtx(ctx context.Context, in *model.Instance, opts Options) (res Result) {
	start := time.Now()
	opts = opts.withDefaults()
	g := guard.New(ctx)
	// Stage tracing: a nil recorder (no -trace, no /metrics interest in
	// stage splits) keeps every instrumentation point at one branch.
	rec := obs.FromContext(ctx)
	opts.QK.Trace = rec

	var t *cover.Tracker
	iterations, pruned := 0, 0
	finish := func() Result {
		var r Result
		if t != nil {
			r = resultFrom(t, iterations, pruned, start)
		} else {
			r = Result{Solution: model.NewSolution(in), Duration: time.Since(start)}
		}
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()
	if g.Tripped() {
		return finish()
	}
	var greedyOnly bool
	opts, greedyOnly = degradeForDeadline(g, opts)

	t = cover.New(in)
	// Free classifiers are always selected (paper §4.1 preprocessing).
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			t.Add(c.Props)
		}
	}
	// Warm start: restore the incumbent before any optimization so even
	// the bottom rung of the degradation ladder keeps prior progress.
	warmed := 0
	for _, w := range opts.Warm {
		if t.Has(w) {
			continue
		}
		if t.Cost()+in.Cost(w) <= in.Budget()+1e-9 {
			if t.Add(w) {
				warmed++
			}
		}
	}

	if greedyOnly {
		// Bottom rung of the ladder: almost no deadline budget left, so
		// skip the knapsack/QK machinery entirely — the IG1 greedy still
		// yields a sane, feasible plan.
		iterations += ig1Fill(g, t)
		return finish()
	}

	// Incremental fast path: when the warm seed already consumed most of
	// the budget, the run's only real job is the residual — whatever
	// cheap additions still fit the unspent sliver (plus what MC3 frees).
	// Candidate pruning is skipped (the per-phase budget filter in
	// phaseMaxCost shrinks the subproblems far harder than the pruning
	// rules would), QK restarts are trimmed as on the light degradation
	// rung, and the greedy floor runs un-refined. A warm seed that spent
	// little gets the full cold pipeline: correctness first, speed only
	// when the seed earned it.
	opts.warmFast = warmed > 0 && t.Cost() >= in.Budget()/2
	if opts.warmFast && (opts.QK.Iterations == 0 || opts.QK.Iterations > 2) {
		opts.QK.Iterations = 2
	}

	var allowed map[string]bool
	if !opts.DisablePruning && !opts.warmFast {
		t0 := rec.Start()
		allowed, pruned = pruneClassifiers(g, t, opts)
		rec.End(obs.StagePrune, t0, pruned)
	}

	// Line 2: half the budget for the first round.
	phase(g, rec, t, allowed, t.Remaining()/2+t.Cost(), opts)
	iterations++
	if !opts.DisableMC3 {
		mc3Improve(g, rec, t)
	}
	iterations += improveLoop(g, rec, t, allowed, opts)

	if !opts.DisableGreedyFloor && !g.Tripped() {
		// Greedy floor, refined: seed a second pipeline with the IG1
		// solution, reclaim cost with MC3 and spend the freed budget on
		// further residual rounds. A^BCC therefore never trails the
		// adaptive per-query greedy, and usually improves on it
		// (documented in DESIGN.md). On warm runs the refined pipeline is
		// the dominant cost and its refinement duplicates work the
		// incumbent already embodies, so only the plain IG1 comparison
		// runs — the never-below-IG1 guarantee is kept either way.
		t0 := rec.Start()
		t2 := cover.New(in)
		ig1Fill(g, t2)
		if !opts.warmFast {
			if !opts.DisableMC3 {
				mc3Improve(g, rec, t2)
			}
			iterations += improveLoop(g, rec, t2, allowed, opts)
		}
		rec.End(obs.StageGreedyFloor, t0, t2.CoveredCount())
		if t2.Utility() > t.Utility() ||
			(t2.Utility() == t.Utility() && t2.Cost() < t.Cost()) {
			t = t2
		}
	}
	return finish()
}

// improveLoop is lines 4–6 of Algorithm 1 plus the leftover-budget
// completion: residual rounds with the full remaining budget until neither
// the phase gains utility nor the MC3 local search frees budget, followed
// by an IG1-style fill of any stranded budget. It returns the number of
// rounds executed.
func improveLoop(g *guard.Guard, rec *obs.Recorder, t *cover.Tracker, allowed map[string]bool, opts Options) int {
	in := t.Instance()
	iterations := 0
	for iterations < opts.MaxIterations && !g.Tripped() {
		t0 := rec.Start()
		residual := in.NumQueries() - t.CoveredCount()
		gained := phase(g, rec, t, allowed, in.Budget(), opts)
		costBefore := t.Cost()
		if !opts.DisableMC3 {
			mc3Improve(g, rec, t)
		}
		iterations++
		rec.End(obs.StageResidual, t0, residual)
		if !gained && t.Cost() >= costBefore-1e-9 {
			break
		}
	}
	ig1Fill(g, t)
	if !opts.DisableMC3 && !g.Tripped() {
		mc3Improve(g, rec, t)
		ig1Fill(g, t)
	}
	return iterations
}

// phaseMaxCost bounds the per-candidate cost considered by a phase's
// subproblems. On warm fast-path runs a candidate costing more than the
// residual phase budget can never appear in a feasible selection, so
// filtering it up front shrinks the knapsack item list and — because
// 2-cover edges are quadratic in the candidates per query — collapses
// the QK graph, which is where warm runs otherwise spend their time.
// Cold runs keep the unfiltered subproblems, byte-for-byte.
func phaseMaxCost(opts Options, budget float64) float64 {
	if opts.warmFast {
		return budget
	}
	return math.Inf(1)
}

// phase solves BCC(1) (knapsack) and BCC(2) (QK) on the residual problem
// with the given absolute cost ceiling, applies the better of the two
// candidate selections, and reports whether utility increased.
func phase(g *guard.Guard, rec *obs.Recorder, t *cover.Tracker, allowed map[string]bool, ceiling float64, opts Options) bool {
	budget := ceiling - t.Cost()
	if budget <= 0 || g.Tripped() {
		return false
	}
	guard.Inject("core.phase")
	sp := buildSubproblems(g, t, allowed, phaseMaxCost(opts, budget))

	// BCC(1): knapsack over 1-covers.
	t0 := rec.Start()
	kres := knapsack.SolveGuard(g, sp.items, budget, opts.Epsilon)
	rec.End(obs.StageKnapsack, t0, len(sp.items))
	var kadd []propset.Set
	for _, i := range kres.Chosen {
		kadd = append(kadd, sp.itemSets[i])
	}

	// BCC(2): Quadratic Knapsack over 2-covers (plus the vStar-encoded
	// 1-cover bonuses; see subproblems).
	var qadd []propset.Set
	if sp.graph.NumEdges() > 0 && !g.Tripped() {
		t0 = rec.Start()
		qres := qk.SolveHeuristicGuard(g, sp.graph, budget, opts.QK)
		rec.End(obs.StageQK, t0, sp.graph.NumEdges())
		qadd = sp.qkNodes(qres.Nodes)
	}

	// Mixed candidates: give one subproblem half the round budget, then
	// let the other spend what is left on the updated residual. The
	// pick-the-better rule of Observation 4.2 holds a fortiori, and the
	// finer allocation captures workloads whose optimum needs both 1- and
	// 2-covers in the same round.
	mix := func(first []propset.Set) []propset.Set {
		c := t.Clone()
		halfCeil := t.Cost() + budget/2
		var add []propset.Set
		for _, s := range first {
			if c.Cost()+t.Instance().Cost(s) > halfCeil+1e-9 {
				continue
			}
			c.Add(s)
			add = append(add, s)
		}
		sp2 := buildSubproblems(g, c, allowed, phaseMaxCost(opts, ceiling-c.Cost()))
		t0 := rec.Start()
		k2 := knapsack.SolveGuard(g, sp2.items, ceiling-c.Cost(), opts.Epsilon)
		rec.End(obs.StageKnapsack, t0, len(sp2.items))
		for _, i := range k2.Chosen {
			c.Add(sp2.itemSets[i])
			add = append(add, sp2.itemSets[i])
		}
		if sp2.graph.NumEdges() > 0 && !g.Tripped() {
			t0 = rec.Start()
			q2 := qk.SolveHeuristicGuard(g, sp2.graph, ceiling-c.Cost(), opts.QK)
			rec.End(obs.StageQK, t0, sp2.graph.NumEdges())
			for _, probe := range sp2.qkNodes(q2.Nodes) {
				if c.Cost()+t.Instance().Cost(probe) > ceiling+1e-9 {
					continue
				}
				c.Add(probe)
				add = append(add, probe)
			}
		}
		return add
	}
	var mixK, mixQ []propset.Set
	if opts.MixedPhase && len(kadd) > 0 && len(qadd) > 0 && !g.Tripped() {
		mixK = mix(kadd)
		mixQ = mix(qadd)
	}

	// Apply the best candidate by true utility gain. This still runs after
	// a trip: the candidates already computed are feasibility-checked
	// below, and applying one is what makes the run anytime.
	bestGain, bestAdd := 0.0, []propset.Set(nil)
	for _, add := range [][]propset.Set{kadd, qadd, mixK, mixQ} {
		if len(add) == 0 {
			continue
		}
		c := t.Clone()
		for _, s := range add {
			c.Add(s)
		}
		if c.Cost() > ceiling+1e-9 {
			continue
		}
		if gain := c.Utility() - t.Utility(); gain > bestGain {
			bestGain, bestAdd = gain, add
		}
	}
	if bestAdd == nil {
		return false
	}
	for _, s := range bestAdd {
		t.Add(s)
	}
	return bestGain > 0
}

// mc3Improve re-covers the currently covered query set at minimum cost via
// the MC3 algorithm of [23] and adopts the result if it is strictly
// cheaper (line 3 of Algorithm 1 — a local-search step; the MC3 output is
// discarded when not an improvement).
func mc3Improve(g *guard.Guard, rec *obs.Recorder, t *cover.Tracker) {
	covered := t.CoveredQueries()
	if len(covered) == 0 || g.Tripped() {
		return
	}
	// A panic inside MC3 forfeits this improvement, not the whole run: the
	// tracker is only mutated after the MC3 result passed the cost check.
	defer g.Recover()
	defer rec.End(obs.StageMC3, rec.Start(), len(covered))
	in := t.Instance()
	out := mc3.Solve(mc3.Input{
		Queries: covered,
		Cost:    func(s propset.Set) float64 { return in.Cost(s) },
	})
	if len(out.Uncovered) > 0 || out.Cost >= t.Cost()-1e-9 {
		return
	}
	// Keep free classifiers in the selection (they cost nothing and may
	// still help residual rounds).
	sel := out.Classifiers
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			sel = append(sel, c.Props)
		}
	}
	old := t.Clone()
	t.Reset(sel)
	if t.Utility() < old.Utility()-1e-9 || t.Cost() > old.Cost()+1e-9 {
		// MC3 result unexpectedly worse (it optimizes cost for the covered
		// set only); roll back.
		t.CopyFrom(old)
	}
}
