package core

import (
	"time"

	"repro/internal/cover"
	"repro/internal/knapsack"
	"repro/internal/mc3"
	"repro/internal/model"
	"repro/internal/propset"
	"repro/internal/qk"
)

// Options tunes the A^BCC solver. The zero value gives the defaults used
// in the experimental study.
type Options struct {
	// Seed drives all randomness (QK bipartitions) deterministically.
	// Default 1.
	Seed int64
	// Epsilon is the knapsack FPTAS precision for the BCC(1) subproblem.
	// Default 0.05.
	Epsilon float64
	// MaxIterations caps the residual-problem loop (lines 4–6 of
	// Algorithm 1). Default 16.
	MaxIterations int
	// DisablePruning skips step 1 of Algorithm 1 (both the
	// replaceable-classifier rule and the leverage-score rule). Used by
	// the Figure 3e/3f ablation.
	DisablePruning bool
	// DisableMC3 skips the MC3 local-search improvement (line 3). Used by
	// ablation benchmarks.
	DisableMC3 bool
	// LeverageKeep is the fraction of QK-graph weight the leverage-score
	// pruning must preserve; the lowest-score nodes carrying at most
	// (1 − LeverageKeep) of the total incident weight are dropped.
	// Default 0.95.
	LeverageKeep float64
	// MixedPhase additionally evaluates split-budget candidates in every
	// phase (knapsack-then-QK and QK-then-knapsack on half the round
	// budget each). Slightly better on some workloads, roughly 2–4×
	// slower; off by default.
	MixedPhase bool
	// DisableGreedyFloor skips the final best-of comparison against the
	// IG1 greedy (used by ablation benchmarks). With the floor enabled
	// (default), A^BCC never returns less utility than IG1.
	DisableGreedyFloor bool
	// QK tunes the inner Quadratic Knapsack solver.
	QK qk.Options
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 16
	}
	if o.LeverageKeep == 0 {
		o.LeverageKeep = 0.95
	}
	if o.QK.Seed == 0 {
		o.QK.Seed = o.Seed
	}
	return o
}

// Result reports a solver run: the solution plus accounting useful to the
// experiment harness.
type Result struct {
	Solution *model.Solution
	// Utility is the total utility of the covered queries.
	Utility float64
	// Cost is the total construction cost of the selected classifiers.
	Cost float64
	// Covered is the number of covered queries.
	Covered int
	// Iterations is the number of residual-loop rounds executed (A^BCC)
	// or selection steps (baselines).
	Iterations int
	// Pruned is the number of candidate classifiers removed by
	// preprocessing (A^BCC only).
	Pruned int
	// Duration is the wall-clock solve time.
	Duration time.Duration
}

func resultFrom(t *cover.Tracker, iterations, pruned int, start time.Time) Result {
	return Result{
		Solution:   t.Solution(),
		Utility:    t.Utility(),
		Cost:       t.Cost(),
		Covered:    t.CoveredCount(),
		Iterations: iterations,
		Pruned:     pruned,
		Duration:   time.Since(start),
	}
}

// Solve runs A^BCC (Algorithm 1) on the instance: prune candidate
// classifiers, solve the BCC(1) and BCC(2) subproblems with half the
// budget, improve cost-wise with MC3, then iterate on residual problems
// with the full remaining budget until no further utility is gained.
func Solve(in *model.Instance, opts Options) Result {
	start := time.Now()
	opts = opts.withDefaults()
	t := cover.New(in)

	// Free classifiers are always selected (paper §4.1 preprocessing).
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			t.Add(c.Props)
		}
	}

	var allowed map[string]bool
	pruned := 0
	if !opts.DisablePruning {
		allowed, pruned = pruneClassifiers(t, opts)
	}

	iterations := 0
	// Line 2: half the budget for the first round.
	phase(t, allowed, t.Remaining()/2+t.Cost(), opts)
	iterations++
	if !opts.DisableMC3 {
		mc3Improve(t)
	}
	iterations += improveLoop(t, allowed, opts)

	if !opts.DisableGreedyFloor {
		// Greedy floor, refined: seed a second pipeline with the IG1
		// solution, reclaim cost with MC3 and spend the freed budget on
		// further residual rounds. A^BCC therefore never trails the
		// adaptive per-query greedy, and usually improves on it
		// (documented in DESIGN.md).
		t2 := cover.New(in)
		ig1Fill(t2)
		if !opts.DisableMC3 {
			mc3Improve(t2)
		}
		iterations += improveLoop(t2, allowed, opts)
		if t2.Utility() > t.Utility() ||
			(t2.Utility() == t.Utility() && t2.Cost() < t.Cost()) {
			t = t2
		}
	}
	return resultFrom(t, iterations, pruned, start)
}

// improveLoop is lines 4–6 of Algorithm 1 plus the leftover-budget
// completion: residual rounds with the full remaining budget until neither
// the phase gains utility nor the MC3 local search frees budget, followed
// by an IG1-style fill of any stranded budget. It returns the number of
// rounds executed.
func improveLoop(t *cover.Tracker, allowed map[string]bool, opts Options) int {
	in := t.Instance()
	iterations := 0
	for iterations < opts.MaxIterations {
		gained := phase(t, allowed, in.Budget(), opts)
		costBefore := t.Cost()
		if !opts.DisableMC3 {
			mc3Improve(t)
		}
		iterations++
		if !gained && t.Cost() >= costBefore-1e-9 {
			break
		}
	}
	ig1Fill(t)
	if !opts.DisableMC3 {
		mc3Improve(t)
		ig1Fill(t)
	}
	return iterations
}

// phase solves BCC(1) (knapsack) and BCC(2) (QK) on the residual problem
// with the given absolute cost ceiling, applies the better of the two
// candidate selections, and reports whether utility increased.
func phase(t *cover.Tracker, allowed map[string]bool, ceiling float64, opts Options) bool {
	budget := ceiling - t.Cost()
	if budget <= 0 {
		return false
	}
	sp := buildSubproblems(t, allowed)

	// BCC(1): knapsack over 1-covers.
	kres := knapsack.Solve(sp.items, budget, opts.Epsilon)
	var kadd []propset.Set
	for _, i := range kres.Chosen {
		kadd = append(kadd, sp.itemSets[i])
	}

	// BCC(2): Quadratic Knapsack over 2-covers (plus the vStar-encoded
	// 1-cover bonuses; see subproblems).
	var qadd []propset.Set
	if sp.graph.NumEdges() > 0 {
		qres := qk.SolveHeuristic(sp.graph, budget, opts.QK)
		qadd = sp.qkNodes(qres.Nodes)
	}

	// Mixed candidates: give one subproblem half the round budget, then
	// let the other spend what is left on the updated residual. The
	// pick-the-better rule of Observation 4.2 holds a fortiori, and the
	// finer allocation captures workloads whose optimum needs both 1- and
	// 2-covers in the same round.
	mix := func(first []propset.Set) []propset.Set {
		c := t.Clone()
		halfCeil := t.Cost() + budget/2
		var add []propset.Set
		for _, s := range first {
			if c.Cost()+t.Instance().Cost(s) > halfCeil+1e-9 {
				continue
			}
			c.Add(s)
			add = append(add, s)
		}
		sp2 := buildSubproblems(c, allowed)
		k2 := knapsack.Solve(sp2.items, ceiling-c.Cost(), opts.Epsilon)
		for _, i := range k2.Chosen {
			c.Add(sp2.itemSets[i])
			add = append(add, sp2.itemSets[i])
		}
		if sp2.graph.NumEdges() > 0 {
			q2 := qk.SolveHeuristic(sp2.graph, ceiling-c.Cost(), opts.QK)
			for _, probe := range sp2.qkNodes(q2.Nodes) {
				if c.Cost()+t.Instance().Cost(probe) > ceiling+1e-9 {
					continue
				}
				c.Add(probe)
				add = append(add, probe)
			}
		}
		return add
	}
	var mixK, mixQ []propset.Set
	if opts.MixedPhase && len(kadd) > 0 && len(qadd) > 0 {
		mixK = mix(kadd)
		mixQ = mix(qadd)
	}

	// Apply the best candidate by true utility gain.
	bestGain, bestAdd := 0.0, []propset.Set(nil)
	for _, add := range [][]propset.Set{kadd, qadd, mixK, mixQ} {
		if len(add) == 0 {
			continue
		}
		c := t.Clone()
		for _, s := range add {
			c.Add(s)
		}
		if c.Cost() > ceiling+1e-9 {
			continue
		}
		if gain := c.Utility() - t.Utility(); gain > bestGain {
			bestGain, bestAdd = gain, add
		}
	}
	if bestAdd == nil {
		return false
	}
	for _, s := range bestAdd {
		t.Add(s)
	}
	return bestGain > 0
}

// mc3Improve re-covers the currently covered query set at minimum cost via
// the MC3 algorithm of [23] and adopts the result if it is strictly
// cheaper (line 3 of Algorithm 1 — a local-search step; the MC3 output is
// discarded when not an improvement).
func mc3Improve(t *cover.Tracker) {
	covered := t.CoveredQueries()
	if len(covered) == 0 {
		return
	}
	in := t.Instance()
	out := mc3.Solve(mc3.Input{
		Queries: covered,
		Cost:    func(s propset.Set) float64 { return in.Cost(s) },
	})
	if len(out.Uncovered) > 0 || out.Cost >= t.Cost()-1e-9 {
		return
	}
	// Keep free classifiers in the selection (they cost nothing and may
	// still help residual rounds).
	sel := out.Classifiers
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			sel = append(sel, c.Props)
		}
	}
	old := t.Clone()
	t.Reset(sel)
	if t.Utility() < old.Utility()-1e-9 || t.Cost() > old.Cost()+1e-9 {
		// MC3 result unexpectedly worse (it optimizes cost for the covered
		// set only); roll back.
		t.CopyFrom(old)
	}
}
