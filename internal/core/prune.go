package core

import (
	"math"
	"sort"

	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/propset"
	"repro/internal/wgraph"
)

// pruneClassifiers implements step 1 of Algorithm 1: two pruning rules
// that shrink the candidate classifier set at a provably small cost.
//
// Rule R1 removes every classifier of length r > 1 that can be replaced by
// shorter classifiers (its singletons) whose total cost is at most r times
// its own cost; for uniform costs this collapses the solution space to
// singleton classifiers, as the paper notes. Rule R2 ranks the BCC(2)
// QK-graph nodes by weighted leverage scores (spectral, via power
// iteration with deflation) and drops the low-score tail carrying at most
// a (1 − LeverageKeep) fraction of the total edge weight — a bounded
// additive utility error.
//
// Both rules respect the budget-protection exception: a classifier is
// never pruned if that would push some query's cheapest cover above the
// budget while it was affordable before.
//
// The returned map marks the allowed classifier keys; the int is the
// number of pruned candidates.
func pruneClassifiers(g *guard.Guard, t *cover.Tracker, opts Options) (map[string]bool, int) {
	in := t.Instance()
	allowed := make(map[string]bool, len(in.Classifiers()))
	for _, c := range in.Classifiers() {
		allowed[c.Props.Key()] = true
	}

	// R1: replaceable long classifiers. Stopping early on a tripped guard
	// just prunes less — the allowed map stays valid.
	for _, c := range in.Classifiers() {
		if g.Check() {
			break
		}
		r := c.Props.Len()
		if r <= 1 || c.Cost == 0 {
			continue
		}
		sum := 0.0
		feasible := true
		for _, p := range c.Props {
			sc := in.Cost(propset.New(p))
			if math.IsInf(sc, 1) {
				feasible = false
				break
			}
			sum += sc
		}
		if feasible && sum <= float64(r)*c.Cost+1e-9 {
			allowed[c.Props.Key()] = false
		}
	}
	protectCoverability(g, t, allowed)

	// R2: leverage-score pruning of the QK graph.
	sp := buildSubproblems(g, t, allowed, math.Inf(1))
	if qg := sp.graph; qg.NumNodes() >= 32 && qg.NumEdges() > 0 && !g.Tripped() {
		scores := leverageScores(qg, 3, 40)
		order := make([]int, qg.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
		dropBudget := (1 - opts.LeverageKeep) * qg.TotalWeight()
		var droppedWeight float64
		for _, v := range order {
			w := qg.WeightedDegree(v)
			if droppedWeight+w > dropBudget {
				break
			}
			droppedWeight += w
			allowed[sp.nodeSets[v].Key()] = false
		}
		protectCoverability(g, t, allowed)
	}

	pruned := 0
	for _, ok := range allowed {
		if !ok {
			pruned++
		}
	}
	return allowed, pruned
}

// protectCoverability restores pruned classifiers for any query whose
// cheapest cover became unaffordable under the pruned set while being
// affordable with the full set.
func protectCoverability(g *guard.Guard, t *cover.Tracker, allowed map[string]bool) {
	in := t.Instance()
	budget := in.Budget()
	for qi := range in.Queries() {
		if g.Check() {
			// Fail open: restore everything still un-vetted so a truncated
			// pruning pass can never make a query uncoverable.
			for k := range allowed {
				allowed[k] = true
			}
			return
		}
		if t.Covered(qi) {
			continue
		}
		cost, _ := t.MinCoverCost(qi, allowed)
		if cost <= budget {
			continue
		}
		full, _ := t.MinCoverCost(qi, nil)
		if full > budget {
			continue // uncoverable either way
		}
		in.Queries()[qi].Props.Subsets(func(sub propset.Set) {
			k := sub.Key()
			if _, exists := allowed[k]; exists {
				allowed[k] = true
			} else if !math.IsInf(in.Cost(sub), 1) {
				allowed[k] = true
			}
		})
	}
}

// leverageScores approximates weighted leverage scores of the adjacency
// matrix: score(v) = Σ_j |λ_j| · u_j[v]², over the top k eigenpairs
// obtained by power iteration with deflation.
func leverageScores(g *wgraph.Graph, k, iters int) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	var basis [][]float64
	var lambdas []float64
	for j := 0; j < k; j++ {
		x := make([]float64, n)
		for i := range x {
			// Deterministic pseudo-random start.
			x[i] = math.Sin(float64(i*(j+3) + 1))
		}
		orthonormalize(x, basis)
		y := make([]float64, n)
		var lambda float64
		for it := 0; it < iters; it++ {
			for i := range y {
				y[i] = 0
			}
			for _, e := range g.Edges() {
				y[e.U] += e.W * x[e.V]
				y[e.V] += e.W * x[e.U]
			}
			orthonormalize(y, basis)
			norm := vecNorm(y)
			if norm < 1e-15 {
				lambda = 0
				break
			}
			lambda = norm
			for i := range x {
				x[i] = y[i] / norm
			}
		}
		if lambda == 0 {
			break
		}
		basis = append(basis, append([]float64(nil), x...))
		lambdas = append(lambdas, lambda)
	}
	for j, u := range basis {
		for v := 0; v < n; v++ {
			scores[v] += lambdas[j] * u[v] * u[v]
		}
	}
	return scores
}

func orthonormalize(x []float64, basis [][]float64) {
	for _, b := range basis {
		var dot float64
		for i := range x {
			dot += x[i] * b[i]
		}
		for i := range x {
			x[i] -= dot * b[i]
		}
	}
}

func vecNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
