package core

import (
	"container/heap"
	"math"
	"math/rand"
	"time"

	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// SolveRand is the RAND baseline: repeatedly select one uniformly random
// classifier among those whose selection does not exceed the budget, until
// none fits. (A classifier that has become unaffordable can never become
// affordable again, so rejected candidates are discarded permanently.)
func SolveRand(in *model.Instance, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := cover.New(in)
	pool := make([]propset.Set, 0, len(in.Classifiers()))
	for _, c := range in.Classifiers() {
		pool = append(pool, c.Props)
	}
	steps := 0
	for len(pool) > 0 {
		i := rng.Intn(len(pool))
		c := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if t.Has(c) || in.Cost(c) > t.Remaining()+1e-9 {
			continue
		}
		t.Add(c)
		steps++
	}
	return resultFrom(t, steps, 0, start)
}

// SolveIG1 is the IG1 baseline: an iterative greedy that, in each round,
// computes for every uncovered query the least costly classifier set that
// covers it (counting only not-yet-selected classifiers) and selects the
// set with the best utility-to-cost ratio that fits the remaining budget.
func SolveIG1(in *model.Instance) Result {
	start := time.Now()
	t := cover.New(in)
	steps := ig1Fill(nil, t)
	return resultFrom(t, steps, 0, start)
}

// IG1Fill runs the IG1 greedy selection loop on an existing tracker —
// which may already hold free, warm-started or previously selected
// classifiers — until no further query cover fits the remaining budget,
// stopping early when the guard trips (g may be nil). It returns the
// number of covers selected. Exported for the evolutionary and
// submodular solvers (internal/evo, internal/submod), which use it both
// as a seeding heuristic and as their never-worse-than-IG1 anytime
// floor.
func IG1Fill(g *guard.Guard, t *cover.Tracker) int { return ig1Fill(g, t) }

// ig1Fill runs the IG1 selection loop on an existing tracker until no
// further query cover fits the remaining budget, returning the number of
// covers selected. It is both the IG1 baseline and the leftover-budget
// completion pass of A^BCC. Query scores live in a lazily revalidated
// max-heap and are refreshed only for the queries a selected classifier
// can affect.
func ig1Fill(g *guard.Guard, t *cover.Tracker) int {
	in := t.Instance()
	h := &entryHeap{}
	heap.Init(h)
	score := make([]float64, in.NumQueries())
	covSets := make([][]propset.Set, in.NumQueries())
	covCost := make([]float64, in.NumQueries())

	refresh := func(qi int) {
		if t.Covered(qi) {
			score[qi] = 0
			return
		}
		cost, sets := t.MinCoverCost(qi, nil)
		covCost[qi], covSets[qi] = cost, sets
		u := in.Queries()[qi].Utility
		switch {
		case math.IsInf(cost, 1):
			score[qi] = 0
		case cost == 0:
			score[qi] = math.Inf(1)
		default:
			score[qi] = u / cost
		}
		if score[qi] > 0 {
			heap.Push(h, qEntry{qi, score[qi]})
		}
	}
	for qi := range in.Queries() {
		refresh(qi)
	}

	steps := 0
	for h.Len() > 0 {
		if g.Check() {
			break
		}
		e := heap.Pop(h).(qEntry)
		qi := e.qi
		if t.Covered(qi) || score[qi] == 0 {
			continue
		}
		if e.score > score[qi]+1e-12 || e.score < score[qi]-1e-12 {
			// Stale entry; re-push current value.
			heap.Push(h, qEntry{qi, score[qi]})
			continue
		}
		if covCost[qi] > t.Remaining()+1e-9 {
			score[qi] = 0 // cover may get cheaper later; it will be refreshed
			continue
		}
		// Select the whole cover set.
		touched := map[int]bool{}
		for _, c := range covSets[qi] {
			for _, q2 := range t.RelevantQueries(c) {
				touched[q2] = true
			}
			t.Add(c)
		}
		steps++
		for q2 := range touched {
			refresh(q2)
		}
	}
	return steps
}

// SolveIG2 is the IG2 baseline (the greedy Set Cover of [23] adapted to
// the budgeted setting): in each round select the single classifier
// maximizing the ratio between the summed utilities of the uncovered
// queries containing it and its cost, subject to the remaining budget.
func SolveIG2(in *model.Instance) Result {
	start := time.Now()
	t := cover.New(in)
	// util[c] = Σ utilities of uncovered queries containing classifier c.
	util := make(map[string]float64)
	for _, q := range in.Queries() {
		u := q.Utility
		q.Props.Subsets(func(sub propset.Set) {
			util[sub.Key()] += u
		})
	}
	classifiers := in.Classifiers()
	scoreOf := func(ci int) float64 {
		c := classifiers[ci]
		u := util[c.Props.Key()]
		if u <= 0 {
			return 0
		}
		if c.Cost == 0 {
			return math.Inf(1)
		}
		return u / c.Cost
	}
	h := &centryHeap{}
	heap.Init(h)
	for ci := range classifiers {
		if s := scoreOf(ci); s > 0 {
			heap.Push(h, cEntry{ci, s})
		}
	}
	steps := 0
	for h.Len() > 0 {
		e := heap.Pop(h).(cEntry)
		c := classifiers[e.ci]
		if t.Has(c.Props) {
			continue
		}
		s := scoreOf(e.ci)
		if s == 0 {
			continue
		}
		if e.score > s+1e-12 {
			heap.Push(h, cEntry{e.ci, s})
			continue
		}
		if c.Cost > t.Remaining()+1e-9 {
			continue // permanently unaffordable
		}
		// Select and update utilities of classifiers sharing newly covered
		// queries.
		rel := t.RelevantQueries(c.Props)
		before := make([]bool, len(rel))
		for i, qi := range rel {
			before[i] = t.Covered(qi)
		}
		t.Add(c.Props)
		steps++
		for i, qi := range rel {
			if t.Covered(qi) && !before[i] {
				u := in.Queries()[qi].Utility
				in.Queries()[qi].Props.Subsets(func(sub propset.Set) {
					util[sub.Key()] -= u
				})
			}
		}
	}
	return resultFrom(t, steps, 0, start)
}

type qEntry struct {
	qi    int
	score float64
}

type entryHeap []qEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) {
	*h = append(*h, x.(qEntry))
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type cEntry struct {
	ci    int
	score float64
}

type centryHeap []cEntry

func (h centryHeap) Len() int           { return len(h) }
func (h centryHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h centryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *centryHeap) Push(x interface{}) {
	*h = append(*h, x.(cEntry))
}
func (h *centryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
