package model

import (
	"strings"
	"testing"
)

// Golden values pin the canonical encoding (version bccfp2/1). The
// second-level fingerprint feeds the persisted sibling index in
// internal/solvecache: a silent encoding change would orphan every
// snapshot-restored sibling entry across binary versions. On a
// deliberate change, bump fingerprint2Version and regenerate.
func TestFingerprint2Golden(t *testing.T) {
	if got, want := quickstartInstance(false).Fingerprint2(),
		"b71ffd952893c542355b0bd0af856f658a2e4f47c78c32b1a9e62dd06a10baea"; got != want {
		t.Errorf("quickstart fingerprint2 = %s, want %s", got, want)
	}
	b := NewBuilder()
	b.AddQuery(1, "a")
	if got, want := b.MustInstance(1).Fingerprint2(),
		"95ede00918443eb9e54c79ca01b37f454d3b719c0c0c527bf3c102d669374ab7"; got != want {
		t.Errorf("singleton fingerprint2 = %s, want %s", got, want)
	}
}

func TestFingerprint2StableAcrossReordering(t *testing.T) {
	a, b := quickstartInstance(false), quickstartInstance(true)
	if fa, fb := a.Fingerprint2(), b.Fingerprint2(); fa != fb {
		t.Errorf("reordered construction changed fingerprint2:\n  %s\n  %s", fa, fb)
	}
}

func TestFingerprint2Shape(t *testing.T) {
	fp := quickstartInstance(false).Fingerprint2()
	if len(fp) != 64 || strings.ToLower(fp) != fp {
		t.Errorf("fingerprint2 %q is not lowercase hex sha256", fp)
	}
	if fp == quickstartInstance(false).Fingerprint() {
		t.Error("fingerprint2 collides with the first-level fingerprint")
	}
}

// The whole point of the second level: budget, utility, and cost changes
// are invisible, so near-miss instances share the hash.
func TestFingerprint2IgnoresBudgetUtilitiesCosts(t *testing.T) {
	base := quickstartInstance(false).Fingerprint2()

	if fp := quickstartInstance(false).WithBudget(10).Fingerprint2(); fp != base {
		t.Error("budget change altered fingerprint2")
	}

	b := NewBuilder()
	b.AddQuery(80, "wooden", "table") // 8 → 80
	b.AddQuery(1, "running", "shoes") // 5 → 1
	b.SetCost(4, "wooden")
	b.SetCost(2, "table")
	b.SetCost(3, "wooden", "table")
	b.SetCost(6, "running", "shoes")
	if fp := b.MustInstance(9).Fingerprint2(); fp != base {
		t.Error("utility change altered fingerprint2")
	}

	b = NewBuilder()
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(5, "running", "shoes")
	b.SetCost(40, "wooden") // 4 → 40
	b.SetCost(2, "table")
	b.SetCost(3, "wooden", "table")
	b.SetCost(6, "running", "shoes")
	if fp := b.MustInstance(9).Fingerprint2(); fp != base {
		t.Error("cost change altered fingerprint2")
	}
}

// Changing the query *set* must change the hash.
func TestFingerprint2QuerySensitivity(t *testing.T) {
	base := quickstartInstance(false).Fingerprint2()

	b := NewBuilder()
	b.AddQuery(8, "wooden", "table")
	b.AddQuery(5, "running", "shoes")
	b.AddQuery(1, "table")
	if fp := b.MustInstance(9).Fingerprint2(); fp == base {
		t.Error("added query did not change fingerprint2")
	}

	b = NewBuilder()
	b.AddQuery(8, "wooden", "table")
	if fp := b.MustInstance(9).Fingerprint2(); fp == base {
		t.Error("removed query did not change fingerprint2")
	}

	b = NewBuilder()
	b.AddQuery(8, "wooden", "chair") // table → chair
	b.AddQuery(5, "running", "shoes")
	if fp := b.MustInstance(9).Fingerprint2(); fp == base {
		t.Error("changed query conjunction did not change fingerprint2")
	}
}
