package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/propset"
)

// fig1Instance builds the shared input of Figure 1 in the paper:
// Q = {xyz, xz, xy}, U(xyz)=8, U(xz)=1, U(xy)=2,
// C(X)=5, C(Y)=C(Z)=C(XYZ)=3, C(XZ)=4, C(YZ)=0, C(XY)=∞.
func fig1Instance(t testing.TB, budget float64) *Instance {
	t.Helper()
	b := NewBuilder()
	b.AddQuery(8, "x", "y", "z")
	b.AddQuery(1, "x", "z")
	b.AddQuery(2, "x", "y")
	b.SetCost(5, "x")
	b.SetCost(3, "y")
	b.SetCost(3, "z")
	b.SetCost(3, "x", "y", "z")
	b.SetCost(4, "x", "z")
	b.SetCost(0, "y", "z")
	b.SetCost(math.Inf(1), "x", "y")
	return b.MustInstance(budget)
}

func set(in *Instance, names ...string) propset.Set {
	return in.Universe().SetOf(names...)
}

func TestBuilderBasics(t *testing.T) {
	in := fig1Instance(t, 3)
	if in.NumQueries() != 3 {
		t.Fatalf("NumQueries = %d, want 3", in.NumQueries())
	}
	if in.NumProperties() != 3 {
		t.Fatalf("NumProperties = %d, want 3", in.NumProperties())
	}
	if in.MaxQueryLength() != 3 {
		t.Fatalf("MaxQueryLength = %d, want 3", in.MaxQueryLength())
	}
	if got := in.TotalUtility(); got != 11 {
		t.Fatalf("TotalUtility = %v, want 11", got)
	}
}

func TestClassifierEnumerationExcludesInfinite(t *testing.T) {
	in := fig1Instance(t, 3)
	// CL without XY (infinite) has 6 members: X, Y, Z, XZ, YZ, XYZ.
	if got := len(in.Classifiers()); got != 6 {
		t.Fatalf("|CL| = %d, want 6 (got %v)", got, in.Classifiers())
	}
	if _, ok := in.ClassifierIndex(set(in, "x", "y")); ok {
		t.Fatal("infinite-cost classifier XY should be excluded from CL")
	}
	if math.IsInf(in.Cost(set(in, "x", "y")), 1) != true {
		t.Fatal("Cost(XY) should be +Inf")
	}
}

func TestClassifierEnumerationOnlyQuerySubsets(t *testing.T) {
	// Paper §2.1: P = {x,y,z}, Q = {xy, xz} ⇒ CL = {X, Y, Z, XY, XZ};
	// YZ must not appear since no query contains both y and z.
	b := NewBuilder()
	b.AddQuery(1, "x", "y")
	b.AddQuery(1, "x", "z")
	in := b.MustInstance(10)
	if got := len(in.Classifiers()); got != 5 {
		t.Fatalf("|CL| = %d, want 5: %v", got, in.Classifiers())
	}
	yz := in.Universe().SetOf("y", "z")
	if _, ok := in.ClassifierIndex(yz); ok {
		t.Fatal("YZ should not be in CL")
	}
}

func TestDuplicateQueriesAccumulateUtility(t *testing.T) {
	b := NewBuilder()
	b.AddQuery(3, "a", "b")
	b.AddQuery(4, "b", "a") // same conjunction
	in := b.MustInstance(1)
	if in.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d, want 1", in.NumQueries())
	}
	if u := in.Queries()[0].Utility; u != 7 {
		t.Fatalf("utility = %v, want 7", u)
	}
}

func TestDefaultCostUniform(t *testing.T) {
	b := NewBuilder()
	b.AddQuery(1, "a", "b")
	in := b.MustInstance(5)
	for _, c := range in.Classifiers() {
		if c.Cost != 1 {
			t.Fatalf("default cost = %v, want 1", c.Cost)
		}
	}
}

func TestDefaultCostFunc(t *testing.T) {
	b := NewBuilder()
	b.AddQuery(1, "a", "b")
	b.SetDefaultCost(func(s propset.Set) float64 { return float64(s.Len()) * 2 })
	in := b.MustInstance(5)
	ab := in.Universe().SetOf("a", "b")
	if got := in.Cost(ab); got != 4 {
		t.Fatalf("Cost(AB) = %v, want 4", got)
	}
	a := in.Universe().SetOf("a")
	if got := in.Cost(a); got != 2 {
		t.Fatalf("Cost(A) = %v, want 2", got)
	}
}

func TestInstanceValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Instance(1); err == nil {
		t.Fatal("empty instance should fail")
	}
	b.AddQuery(1, "a")
	if _, err := b.Instance(-1); err == nil {
		t.Fatal("negative budget should fail")
	}
	b2 := NewBuilder()
	b2.AddQuery(-5, "a")
	if _, err := b2.Instance(1); err == nil {
		t.Fatal("negative utility should fail")
	}
	b3 := NewBuilder()
	b3.AddQuery(1, "a")
	b3.SetCost(-2, "a")
	if _, err := b3.Instance(1); err == nil {
		t.Fatal("negative cost should fail")
	}
}

func TestCoverageSemantics(t *testing.T) {
	in := fig1Instance(t, 4)
	s := NewSolution(in)
	xyz := set(in, "x", "y", "z")
	xz := set(in, "x", "z")
	xy := set(in, "x", "y")

	if s.Covers(xyz) || s.Covers(xz) || s.Covers(xy) {
		t.Fatal("empty solution covers nothing")
	}
	// Paper Example 2.1 (B=4): {YZ, XZ} covers xyz and xz but not xy.
	s.Add(set(in, "y", "z"))
	s.Add(set(in, "x", "z"))
	if !s.Covers(xyz) {
		t.Error("YZ+XZ should cover xyz")
	}
	if !s.Covers(xz) {
		t.Error("XZ should cover xz")
	}
	if s.Covers(xy) {
		t.Error("YZ+XZ must not cover xy")
	}
	if got := s.Utility(); got != 9 {
		t.Errorf("Utility = %v, want 9", got)
	}
	if got := s.Cost(); got != 4 {
		t.Errorf("Cost = %v, want 4", got)
	}
	if !s.Feasible() {
		t.Error("solution of cost 4 must be feasible at budget 4")
	}
}

func TestCoverageIsExact(t *testing.T) {
	// A classifier strictly containing the query does NOT cover it: the
	// union must equal the query exactly.
	b := NewBuilder()
	b.AddQuery(1, "a")
	b.AddQuery(1, "a", "b")
	in := b.MustInstance(10)
	s := NewSolution(in)
	s.Add(in.Universe().SetOf("a", "b"))
	if s.Covers(in.Universe().SetOf("a")) {
		t.Fatal("AB must not cover the singleton query a")
	}
	if !s.Covers(in.Universe().SetOf("a", "b")) {
		t.Fatal("AB must cover ab")
	}
}

func TestResidual(t *testing.T) {
	in := fig1Instance(t, 11)
	s := NewSolution(in)
	xyz := set(in, "x", "y", "z")
	if got := s.Residual(xyz); !got.Equal(xyz) {
		t.Fatalf("Residual of empty solution = %v, want %v", got, xyz)
	}
	s.Add(set(in, "y", "z"))
	if got := s.Residual(xyz); !got.Equal(set(in, "x")) {
		t.Fatalf("Residual after YZ = %v, want {x}", got)
	}
	s.Add(set(in, "x"))
	if got := s.Residual(xyz); !got.Empty() {
		t.Fatalf("Residual after YZ+X = %v, want empty", got)
	}
}

func TestFigure1OptimaAreFeasibleAndValued(t *testing.T) {
	// Golden values from Figure 1 of the paper.
	cases := []struct {
		budget  float64
		picks   [][]string
		utility float64
	}{
		{3, [][]string{{"y", "z"}, {"x", "y", "z"}}, 8},
		{4, [][]string{{"y", "z"}, {"x", "z"}}, 9},
		{11, [][]string{{"y", "z"}, {"x"}, {"y"}, {"z"}}, 11},
	}
	for _, c := range cases {
		in := fig1Instance(t, c.budget)
		s := NewSolution(in)
		for _, p := range c.picks {
			s.Add(in.Universe().SetOf(p...))
		}
		if !s.Feasible() {
			t.Errorf("B=%v: depicted solution infeasible (cost %v)", c.budget, s.Cost())
		}
		if got := s.Utility(); got != c.utility {
			t.Errorf("B=%v: utility = %v, want %v", c.budget, got, c.utility)
		}
	}
}

func TestSolutionAddRemoveClone(t *testing.T) {
	in := fig1Instance(t, 11)
	s := NewSolution(in)
	x := set(in, "x")
	if !s.Add(x) {
		t.Fatal("first Add returned false")
	}
	if s.Add(x) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Size() != 1 || !s.Has(x) {
		t.Fatal("Add bookkeeping broken")
	}
	cl := s.Clone()
	s.Remove(x)
	if s.Has(x) {
		t.Fatal("Remove did not remove")
	}
	if !cl.Has(x) {
		t.Fatal("Clone aliases the original")
	}
}

func TestAddClassifierOverridesCost(t *testing.T) {
	in := fig1Instance(t, 11)
	s := NewSolution(in)
	s.AddClassifier(Classifier{Props: set(in, "x"), Cost: 0})
	if got := s.Cost(); got != 0 {
		t.Fatalf("Cost = %v, want 0 (override)", got)
	}
}

func TestMerge(t *testing.T) {
	in := fig1Instance(t, 11)
	a := NewSolution(in)
	a.Add(set(in, "x"))
	b := NewSolution(in)
	b.Add(set(in, "y"))
	b.Add(set(in, "x"))
	a.Merge(b)
	if a.Size() != 2 {
		t.Fatalf("merged size = %d, want 2", a.Size())
	}
}

func TestWithBudget(t *testing.T) {
	in := fig1Instance(t, 3)
	in2 := in.WithBudget(7)
	if in.Budget() != 3 || in2.Budget() != 7 {
		t.Fatal("WithBudget broken")
	}
	if in2.NumQueries() != in.NumQueries() {
		t.Fatal("WithBudget must preserve queries")
	}
}

func TestCoverageMonotoneUnderAdd(t *testing.T) {
	// Property: adding a classifier never uncovers a covered query.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 6, 8, 3)
		s := NewSolution(in)
		covered := make(map[string]bool)
		cls := in.Classifiers()
		for step := 0; step < len(cls); step++ {
			c := cls[rng.Intn(len(cls))]
			s.Add(c.Props)
			for _, q := range in.Queries() {
				k := q.Props.Key()
				now := s.Covers(q.Props)
				if covered[k] && !now {
					t.Fatalf("query %v became uncovered after adding %v", q.Props, c.Props)
				}
				covered[k] = now
			}
		}
		// Full CL must cover everything.
		for _, q := range in.Queries() {
			s2 := NewSolution(in)
			for _, c := range cls {
				s2.Add(c.Props)
			}
			if !s2.Covers(q.Props) {
				t.Fatalf("full CL fails to cover %v", q.Props)
			}
		}
	}
}

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int) *Instance {
	b := NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(10)))
	}
	b.SetDefaultCost(func(s propset.Set) float64 { return 1 + float64(rng.Intn(5)) })
	return b.MustInstance(10)
}

func BenchmarkCoverageCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 20, 100, 4)
	s := NewSolution(in)
	for _, c := range in.Classifiers() {
		if rng.Intn(2) == 0 {
			s.Add(c.Props)
		}
	}
	qs := in.Queries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Covers(qs[i%len(qs)].Props)
	}
}
