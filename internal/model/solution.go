package model

import (
	"sort"

	"repro/internal/propset"
)

// Solution is a mutable set of selected classifiers for one Instance,
// with utility/cost accounting under the exact-cover semantics of the
// paper: a query contributes its utility iff the union of the selected
// classifiers that are subsets of it equals it.
type Solution struct {
	inst     *Instance
	selected map[string]Classifier
}

// NewSolution returns an empty solution for the instance.
func NewSolution(in *Instance) *Solution {
	return &Solution{inst: in, selected: make(map[string]Classifier)}
}

// Instance returns the instance this solution belongs to.
func (s *Solution) Instance() *Instance { return s.inst }

// Add selects the classifier testing exactly props, at the instance's cost
// for it. Adding an already-selected classifier is a no-op. Add reports
// whether the classifier was newly selected.
func (s *Solution) Add(props propset.Set) bool {
	k := props.Key()
	if _, ok := s.selected[k]; ok {
		return false
	}
	s.selected[k] = Classifier{Props: props.Clone(), Cost: s.inst.Cost(props)}
	return true
}

// AddClassifier selects a classifier with an explicit cost, overriding the
// instance's cost lookup. Used by solvers that operate on transformed costs
// (e.g. residual problems where selected classifiers are free).
func (s *Solution) AddClassifier(c Classifier) bool {
	k := c.Props.Key()
	if _, ok := s.selected[k]; ok {
		return false
	}
	s.selected[k] = Classifier{Props: c.Props.Clone(), Cost: c.Cost}
	return true
}

// Remove deselects the classifier testing exactly props.
func (s *Solution) Remove(props propset.Set) {
	delete(s.selected, props.Key())
}

// Has reports whether the classifier testing exactly props is selected.
func (s *Solution) Has(props propset.Set) bool {
	_, ok := s.selected[props.Key()]
	return ok
}

// Size reports the number of selected classifiers.
func (s *Solution) Size() int { return len(s.selected) }

// Classifiers returns the selected classifiers in a deterministic order.
func (s *Solution) Classifiers() []Classifier {
	out := make([]Classifier, 0, len(s.selected))
	for _, c := range s.selected {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Props.Len() != out[j].Props.Len() {
			return out[i].Props.Len() < out[j].Props.Len()
		}
		return out[i].Props.Key() < out[j].Props.Key()
	})
	return out
}

// Cost returns the total construction cost of the selected classifiers.
func (s *Solution) Cost() float64 {
	var sum float64
	for _, c := range s.selected {
		sum += c.Cost
	}
	return sum
}

// CoveredPart returns the union of the selected classifiers that are
// subsets of q — the portion of q's conjunction the solution can already
// test. q is covered iff CoveredPart(q) equals q.
func (s *Solution) CoveredPart(q propset.Set) propset.Set {
	var acc propset.Set
	q.Subsets(func(sub propset.Set) {
		if len(acc) == len(q) {
			return
		}
		if _, ok := s.selected[sub.Key()]; ok {
			acc = acc.Union(sub)
		}
	})
	return acc
}

// Covers reports whether query props is covered by the solution.
func (s *Solution) Covers(q propset.Set) bool {
	return s.CoveredPart(q).Equal(q)
}

// Residual returns the properties of q not yet testable by the solution:
// q minus CoveredPart(q). An empty residual means q is covered.
func (s *Solution) Residual(q propset.Set) propset.Set {
	return q.Minus(s.CoveredPart(q))
}

// Utility returns the total utility of the queries covered by the solution.
func (s *Solution) Utility() float64 {
	var sum float64
	for _, q := range s.inst.queries {
		if s.Covers(q.Props) {
			sum += q.Utility
		}
	}
	return sum
}

// CoveredQueries returns the subset of the instance's queries covered by
// the solution, in instance order.
func (s *Solution) CoveredQueries() []Query {
	var out []Query
	for _, q := range s.inst.queries {
		if s.Covers(q.Props) {
			out = append(out, q)
		}
	}
	return out
}

// Feasible reports whether the solution's cost is within the instance's
// budget, up to a small tolerance for floating-point accumulation.
func (s *Solution) Feasible() bool {
	const eps = 1e-9
	return s.Cost() <= s.inst.Budget()*(1+eps)+eps
}

// Clone returns an independent copy of the solution.
func (s *Solution) Clone() *Solution {
	out := NewSolution(s.inst)
	for k, c := range s.selected {
		out.selected[k] = c
	}
	return out
}

// Merge adds every classifier of other into s (keeping s's existing costs
// on conflicts).
func (s *Solution) Merge(other *Solution) {
	for k, c := range other.selected {
		if _, ok := s.selected[k]; !ok {
			s.selected[k] = c
		}
	}
}
