// Package model defines the Budgeted Classifier Construction problem
// instance ⟨Q, U, C, B⟩ and its coverage semantics.
//
// A query is a conjunction of properties that must all hold for every item
// in its result set; a classifier tests the conjunction of its own property
// set for a given item. A query q is covered by a classifier set S iff some
// subset T ⊆ S satisfies P(T) = q, i.e. the union of the properties tested
// by T is exactly q — equivalently, iff the union of all classifiers in S
// that are subsets of q equals q.
//
// The candidate classifier set CL is the union of the power sets of all
// queries (minus the empty set): classifiers that are not a subset of any
// query can never participate in a cover and are excluded a priori.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/propset"
)

// Query is a search query: a conjunction of properties together with the
// utility gained by covering it.
type Query struct {
	Props   propset.Set
	Utility float64
}

// Length reports the number of conjuncts in the query.
func (q Query) Length() int { return q.Props.Len() }

// Classifier is a candidate binary classifier: the property conjunction it
// tests together with its construction cost. A cost of 0 means the
// classifier already exists; +Inf means construction is considered
// impractical and the classifier is excluded from the solution space.
type Classifier struct {
	Props propset.Set
	Cost  float64
}

// Length reports the number of properties the classifier tests.
func (c Classifier) Length() int { return c.Props.Len() }

// Instance is a complete BCC problem instance. Build one with Builder.
// Instances are immutable after construction and safe for concurrent use.
type Instance struct {
	universe *propset.Universe
	queries  []Query
	budget   float64

	costs       map[string]float64
	defaultCost func(propset.Set) float64

	classifiers []Classifier   // enumerated CL, finite-cost only, sorted
	byKey       map[string]int // classifier key -> index into classifiers
	maxLen      int            // the paper's length parameter l
}

// Universe returns the property universe of the instance.
func (in *Instance) Universe() *propset.Universe { return in.universe }

// Queries returns the query set Q. Callers must not modify it.
func (in *Instance) Queries() []Query { return in.queries }

// Budget returns the construction budget B.
func (in *Instance) Budget() float64 { return in.budget }

// NumProperties returns n = |P|, the number of distinct properties.
func (in *Instance) NumProperties() int { return in.universe.Size() }

// NumQueries returns m = |Q|.
func (in *Instance) NumQueries() int { return len(in.queries) }

// MaxQueryLength returns the length parameter l, the maximum number of
// conjuncts in any query.
func (in *Instance) MaxQueryLength() int { return in.maxLen }

// Classifiers returns the enumerated candidate set CL, excluding
// infinite-cost classifiers. Callers must not modify the returned slice.
func (in *Instance) Classifiers() []Classifier { return in.classifiers }

// ClassifierIndex returns the index into Classifiers of the classifier
// testing exactly props, and whether such a (finite-cost) candidate exists.
func (in *Instance) ClassifierIndex(props propset.Set) (int, bool) {
	i, ok := in.byKey[props.Key()]
	return i, ok
}

// Cost returns the construction cost of the classifier testing exactly
// props. Classifiers outside CL or explicitly priced +Inf return +Inf.
func (in *Instance) Cost(props propset.Set) float64 {
	if c, ok := in.costs[props.Key()]; ok {
		return c
	}
	if i, ok := in.byKey[props.Key()]; ok {
		return in.classifiers[i].Cost
	}
	return math.Inf(1)
}

// TotalUtility returns the sum of all query utilities — the objective value
// of a solution covering every query.
func (in *Instance) TotalUtility() float64 {
	var sum float64
	for _, q := range in.queries {
		sum += q.Utility
	}
	return sum
}

// WithBudget returns a copy of the instance with a different budget. The
// copy shares all other (immutable) state.
func (in *Instance) WithBudget(b float64) *Instance {
	out := *in
	out.budget = b
	return &out
}

// Builder accumulates queries and classifier costs and produces an
// immutable Instance.
type Builder struct {
	universe  *propset.Universe
	utilities map[string]float64
	order     []propset.Set // query insertion order, deduplicated
	costs     map[string]float64
	defCost   func(propset.Set) float64
}

// NewBuilder returns a Builder with a fresh property universe.
func NewBuilder() *Builder {
	return NewBuilderWithUniverse(propset.NewUniverse())
}

// NewBuilderWithUniverse returns a Builder interning into an existing
// universe, allowing several instances to share property IDs.
func NewBuilderWithUniverse(u *propset.Universe) *Builder {
	return &Builder{
		universe:  u,
		utilities: make(map[string]float64),
		costs:     make(map[string]float64),
	}
}

// Universe exposes the builder's property universe.
func (b *Builder) Universe() *propset.Universe { return b.universe }

// AddQuery records a query given by property names. Adding the same
// property set twice accumulates utility (two workload entries for the same
// conjunction are one query whose importance is their combined score).
func (b *Builder) AddQuery(utility float64, props ...string) *Builder {
	return b.AddQuerySet(b.universe.SetOf(props...), utility)
}

// AddQuerySet records a query given by an already-interned property set.
func (b *Builder) AddQuerySet(s propset.Set, utility float64) *Builder {
	if s.Empty() {
		return b
	}
	k := s.Key()
	if _, seen := b.utilities[k]; !seen {
		b.order = append(b.order, s.Clone())
	}
	b.utilities[k] += utility
	return b
}

// SetCost fixes the construction cost of the classifier testing exactly the
// named properties. Use math.Inf(1) to exclude a classifier, 0 for an
// already-constructed one.
func (b *Builder) SetCost(cost float64, props ...string) *Builder {
	return b.SetCostSet(b.universe.SetOf(props...), cost)
}

// SetCostSet fixes a classifier cost by property set.
func (b *Builder) SetCostSet(s propset.Set, cost float64) *Builder {
	b.costs[s.Key()] = cost
	return b
}

// SetDefaultCost installs the cost model used for classifiers without an
// explicit SetCost. When nil, unpriced classifiers cost 1 (uniform costs,
// the paper's convention when estimates are unavailable).
func (b *Builder) SetDefaultCost(fn func(propset.Set) float64) *Builder {
	b.defCost = fn
	return b
}

// Instance enumerates CL and freezes the problem with the given budget.
func (b *Builder) Instance(budget float64) (*Instance, error) {
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("model: invalid budget %v", budget)
	}
	if len(b.order) == 0 {
		return nil, errors.New("model: instance has no queries")
	}
	in := &Instance{
		universe:    b.universe,
		budget:      budget,
		costs:       b.costs,
		defaultCost: b.defCost,
		byKey:       make(map[string]int),
	}
	in.queries = make([]Query, 0, len(b.order))
	for _, s := range b.order {
		u := b.utilities[s.Key()]
		if u < 0 || math.IsNaN(u) {
			return nil, fmt.Errorf("model: invalid utility %v for query %v", u, s)
		}
		in.queries = append(in.queries, Query{Props: s, Utility: u})
		if s.Len() > in.maxLen {
			in.maxLen = s.Len()
		}
	}
	// Enumerate CL = ∪_q 2^q \ ∅, dropping infinite-cost classifiers.
	seen := make(map[string]bool)
	for _, q := range in.queries {
		q.Props.Subsets(func(sub propset.Set) {
			k := sub.Key()
			if seen[k] {
				return
			}
			seen[k] = true
			cost, priced := b.costs[k]
			if !priced {
				if b.defCost != nil {
					cost = b.defCost(sub)
				} else {
					cost = 1
				}
			}
			if math.IsInf(cost, 1) {
				return
			}
			if cost < 0 || math.IsNaN(cost) {
				// Report via sentinel; surfaced after enumeration.
				cost = math.NaN()
			}
			in.classifiers = append(in.classifiers, Classifier{Props: sub, Cost: cost})
		})
	}
	for _, c := range in.classifiers {
		if math.IsNaN(c.Cost) {
			return nil, fmt.Errorf("model: invalid (negative or NaN) cost for classifier %v", c.Props)
		}
	}
	// Deterministic order: by length, then lexicographic key.
	sort.Slice(in.classifiers, func(i, j int) bool {
		ci, cj := in.classifiers[i], in.classifiers[j]
		if ci.Props.Len() != cj.Props.Len() {
			return ci.Props.Len() < cj.Props.Len()
		}
		return ci.Props.Key() < cj.Props.Key()
	})
	for i, c := range in.classifiers {
		in.byKey[c.Props.Key()] = i
	}
	return in, nil
}

// MustInstance is Instance, panicking on error. Intended for tests and
// hand-built examples.
func (b *Builder) MustInstance(budget float64) *Instance {
	in, err := b.Instance(budget)
	if err != nil {
		panic(err)
	}
	return in
}
