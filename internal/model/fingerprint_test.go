package model

import (
	"strings"
	"testing"
)

// quickstartInstance is the README's running example, built with the
// given insertion order for queries, costs, and (implicitly) property
// interning.
func quickstartInstance(reordered bool) *Instance {
	b := NewBuilder()
	if !reordered {
		b.AddQuery(8, "wooden", "table")
		b.AddQuery(5, "running", "shoes")
		b.SetCost(4, "wooden")
		b.SetCost(2, "table")
		b.SetCost(3, "wooden", "table")
		b.SetCost(6, "running", "shoes")
	} else {
		// Same problem: different query order, different property order
		// inside each query (so the universe interns IDs differently),
		// different cost declaration order.
		b.AddQuery(5, "shoes", "running")
		b.AddQuery(8, "table", "wooden")
		b.SetCost(6, "shoes", "running")
		b.SetCost(3, "table", "wooden")
		b.SetCost(2, "table")
		b.SetCost(4, "wooden")
	}
	return b.MustInstance(9)
}

// Golden values pin the canonical encoding (version bccfp/1). If either
// assertion fails without a deliberate encoding change, cache keys have
// silently diverged between binary versions — a correctness bug for any
// deployment with a shared or persisted cache. On a deliberate change,
// bump fingerprintVersion and regenerate.
func TestFingerprintGolden(t *testing.T) {
	if got, want := quickstartInstance(false).Fingerprint(),
		"709f37d3adfd5185612acad795b0f56b9b0611f9e2f27e1a9a2107e77fb37fee"; got != want {
		t.Errorf("quickstart fingerprint = %s, want %s", got, want)
	}
	b := NewBuilder()
	b.AddQuery(1, "a")
	if got, want := b.MustInstance(1).Fingerprint(),
		"49bb0dd651b7369af64736b8c4f38a97d705cfad78d1daa48c11037dd26c61a9"; got != want {
		t.Errorf("singleton fingerprint = %s, want %s", got, want)
	}
}

func TestFingerprintStableAcrossReordering(t *testing.T) {
	a, b := quickstartInstance(false), quickstartInstance(true)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Errorf("reordered construction changed the fingerprint:\n  %s\n  %s", fa, fb)
	}
}

func TestFingerprintShape(t *testing.T) {
	fp := quickstartInstance(false).Fingerprint()
	if len(fp) != 64 || strings.ToLower(fp) != fp {
		t.Errorf("fingerprint %q is not lowercase hex sha256", fp)
	}
}

// Any change to a utility, a cost, or the budget must change the hash.
func TestFingerprintSensitivity(t *testing.T) {
	base := quickstartInstance(false).Fingerprint()

	variants := map[string]func(*Builder){
		"utility changed": func(b *Builder) {
			b.AddQuery(9, "wooden", "table") // 8 → 9
			b.AddQuery(5, "running", "shoes")
		},
		"extra query": func(b *Builder) {
			b.AddQuery(8, "wooden", "table")
			b.AddQuery(5, "running", "shoes")
			b.AddQuery(1, "table")
		},
	}
	seen := map[string]string{base: "base"}
	for name, addQueries := range variants {
		b := NewBuilder()
		addQueries(b)
		b.SetCost(4, "wooden")
		b.SetCost(2, "table")
		b.SetCost(3, "wooden", "table")
		b.SetCost(6, "running", "shoes")
		fp := b.MustInstance(9).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	mk := func(mutate func(*Builder)) string {
		b := NewBuilder()
		b.AddQuery(8, "wooden", "table")
		b.AddQuery(5, "running", "shoes")
		b.SetCost(4, "wooden")
		b.SetCost(2, "table")
		b.SetCost(3, "wooden", "table")
		b.SetCost(6, "running", "shoes")
		if mutate != nil {
			mutate(b)
		}
		return b.MustInstance(9).Fingerprint()
	}
	if fp := mk(func(b *Builder) { b.SetCost(5, "wooden") }); fp == base {
		t.Error("cost change did not change the fingerprint")
	}
	if fp := quickstartInstance(false).WithBudget(10).Fingerprint(); fp == base {
		t.Error("budget change did not change the fingerprint")
	}
	if fp := mk(nil); fp != base {
		t.Error("identical rebuild produced a different fingerprint")
	}
}

// WithBudget shares the underlying state; fingerprints of the original
// and the copy must differ only through the budget.
func TestFingerprintWithBudgetIsolated(t *testing.T) {
	in := quickstartInstance(false)
	fp9 := in.Fingerprint()
	in10 := in.WithBudget(10)
	if in10.Fingerprint() == fp9 {
		t.Error("budget copy shares the fingerprint")
	}
	if in.Fingerprint() != fp9 {
		t.Error("fingerprinting the budget copy mutated the original")
	}
}
