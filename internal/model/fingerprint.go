package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"repro/internal/propset"
)

// fingerprintVersion tags the canonical encoding hashed by Fingerprint.
// Bump it whenever the encoding changes so old cache entries cannot be
// mistaken for current ones.
const fingerprintVersion = "bccfp/1"

// Fingerprint returns a stable canonical hash of the problem content
// ⟨Q, U, C, B⟩: the query set with utilities, the enumerated candidate
// classifier set CL with effective costs, and the budget.
//
// The hash is independent of representation accidents — the order queries
// were added, the order property names were interned (and hence the dense
// ID assignment), and the order costs were declared — because every
// property set is canonicalized to its sorted property *names* and both
// the query and classifier sections are sorted by that canonical form
// before hashing. Two instances receive the same fingerprint iff they
// describe the same problem, so the fingerprint is a sound cache key for
// solver results: classifiers excluded via an infinite cost are absent
// from CL and therefore (correctly) do not contribute.
//
// Floats are hashed by their exact IEEE-754 bit patterns: any change to a
// utility, a cost, or the budget — however small — changes the hash.
func (in *Instance) Fingerprint() string {
	h := sha256.New()
	var word [8]byte
	writeUint := func(v uint64) {
		binary.BigEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	writeFloat := func(f float64) { writeUint(math.Float64bits(f)) }
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}

	// canon renders a property set as its length-prefixed, lexicographically
	// sorted property names — a universe-independent canonical form.
	canon := func(s propset.Set) string {
		names := make([]string, s.Len())
		for i, id := range s {
			names[i] = in.universe.Name(id)
		}
		sort.Strings(names)
		var buf bytes.Buffer
		var n [8]byte
		for _, name := range names {
			binary.BigEndian.PutUint64(n[:], uint64(len(name)))
			buf.Write(n[:])
			buf.WriteString(name)
		}
		return buf.String()
	}

	writeStr(fingerprintVersion)
	writeFloat(in.budget)

	type row struct {
		key string
		val float64
	}
	sortRows := func(rows []row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	}
	writeRows := func(tag string, rows []row) {
		writeStr(tag)
		writeUint(uint64(len(rows)))
		for _, r := range rows {
			writeStr(r.key)
			writeFloat(r.val)
		}
	}

	queries := make([]row, len(in.queries))
	for i, q := range in.queries {
		queries[i] = row{canon(q.Props), q.Utility}
	}
	sortRows(queries)
	writeRows("Q", queries)

	classifiers := make([]row, len(in.classifiers))
	for i, c := range in.classifiers {
		classifiers[i] = row{canon(c.Props), c.Cost}
	}
	sortRows(classifiers)
	writeRows("C", classifiers)

	return hex.EncodeToString(h.Sum(nil))
}
