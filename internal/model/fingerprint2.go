package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/propset"
)

// fingerprint2Version tags the canonical encoding hashed by Fingerprint2.
// Bump it whenever the encoding changes so old sibling-index entries
// cannot be mistaken for current ones.
const fingerprint2Version = "bccfp2/1"

// Fingerprint2 returns the second-level "near-miss" fingerprint: a stable
// canonical hash over the query *structure* alone. Unlike Fingerprint it
// ignores the budget B, the query utilities U, and the classifier costs C,
// so two instances that pose the same set of query conjunctions — however
// their utilities, costs, or budget differ — share a Fingerprint2.
//
// That makes it unsound as a result-cache key but exactly right as a
// sibling index: a cache entry with the same Fingerprint2 solved the same
// combinatorial structure, and its plan is a high-quality warm seed for
// the present instance after budget-feasibility repair (internal/incr).
//
// Canonicalization mirrors Fingerprint: each query renders as its
// length-prefixed, lexicographically sorted property names, and the rows
// are sorted before hashing, so interning order and insertion order are
// invisible. Duplicate conjunctions cannot occur (the builder merges
// them into one query), so the row multiset is a set.
func (in *Instance) Fingerprint2() string {
	h := sha256.New()
	var word [8]byte
	writeUint := func(v uint64) {
		binary.BigEndian.PutUint64(word[:], v)
		h.Write(word[:])
	}
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}

	canon := func(s propset.Set) string {
		names := make([]string, s.Len())
		for i, id := range s {
			names[i] = in.universe.Name(id)
		}
		sort.Strings(names)
		var buf bytes.Buffer
		var n [8]byte
		for _, name := range names {
			binary.BigEndian.PutUint64(n[:], uint64(len(name)))
			buf.Write(n[:])
			buf.WriteString(name)
		}
		return buf.String()
	}

	writeStr(fingerprint2Version)

	rows := make([]string, len(in.queries))
	for i, q := range in.queries {
		rows[i] = canon(q.Props)
	}
	sort.Strings(rows)
	writeStr("Q")
	writeUint(uint64(len(rows)))
	for _, r := range rows {
		writeStr(r)
	}

	return hex.EncodeToString(h.Sum(nil))
}
