// Package resilience is the client-side availability layer of the
// serving stack: jittered exponential backoff, a three-state circuit
// breaker (closed → open → half-open) with consecutive-failure and
// rolling-window trip policies, and a Retrier that composes the two
// under a context deadline while honoring server-advised Retry-After
// delays.
//
// The package mirrors the repo's zero-dependency stance (stdlib only)
// and its determinism conventions: clocks and random sources are
// injectable, so every policy is unit-testable without sleeping.
//
// Division of labor with the server: the server sheds load (429 +
// Retry-After derived from queue pressure, 503 once draining begins);
// this package teaches callers to react — back off at least as long as
// advised, stop hammering a failing endpoint entirely once the breaker
// trips, and give up cleanly when the caller's deadline cannot fit
// another attempt. internal/client wires it around the HTTP API;
// DESIGN.md §11 has the full architecture.
package resilience

import (
	"math/rand"
	"time"
)

// Backoff computes per-attempt retry delays: exponential growth from
// Base by Multiplier, capped at Max, with a uniform ±Jitter fraction so
// synchronized clients do not retry in lockstep (the classic thundering
// herd after a shared failure). The zero value is usable and picks the
// defaults below.
type Backoff struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 10s).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2; values < 1
	// are treated as the default).
	Multiplier float64
	// Jitter is the uniform spread fraction in [0, 1): the returned
	// delay is d * (1 ± Jitter/2). Default 0.2.
	Jitter float64
	// Rand returns a uniform float64 in [0, 1); nil uses math/rand's
	// global source. Injectable for deterministic tests.
	Rand func() float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 10 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	if b.Rand == nil {
		b.Rand = rand.Float64
	}
	return b
}

// Delay returns the delay to sleep after the given zero-based failed
// attempt: Base*Multiplier^attempt, capped at Max, jittered.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		// Spread uniformly over [d*(1-J/2), d*(1+J/2)].
		d *= 1 + b.Jitter*(b.Rand()-0.5)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
