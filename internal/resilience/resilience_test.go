package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Backoff

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2,
		Jitter: 0, Rand: func() float64 { return 0.5 }}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		b := Backoff{Base: time.Second, Max: time.Minute, Multiplier: 2,
			Jitter: 0.4, Rand: func() float64 { return r }}
		d := b.Delay(0)
		lo, hi := 800*time.Millisecond, 1200*time.Millisecond
		if d < lo || d > hi {
			t.Errorf("rand=%v: Delay(0) = %v outside [%v, %v]", r, d, lo, hi)
		}
	}
}

func TestBackoffZeroValueIsUsable(t *testing.T) {
	var b Backoff
	if d := b.Delay(0); d <= 0 || d > time.Second {
		t.Errorf("zero-value Delay(0) = %v", d)
	}
	if d := b.Delay(100); d > 11*time.Second {
		t.Errorf("zero-value Delay(100) = %v exceeds default cap", d)
	}
}

// ---------------------------------------------------------------------------
// Breaker

// testClock is a manually advanced clock for breaker tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerConsecutiveTripAndRecovery(t *testing.T) {
	clock := newTestClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 3,
		Cooldown:            5 * time.Second,
		HalfOpenSuccesses:   2,
		Now:                 clock.Now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s→%s", from, to))
		},
	})

	// Two failures, then a success: streak resets, still closed.
	for _, ok := range []bool{false, false, true, false, false} {
		if !b.Allow() {
			t.Fatal("closed breaker refused a request")
		}
		b.Record(ok)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after interrupted streak = %v", got)
	}

	// Third consecutive failure trips it.
	b.Allow()
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after 3 consecutive failures = %v", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if rem := b.OpenRemaining(); rem != 5*time.Second {
		t.Errorf("OpenRemaining = %v, want 5s", rem)
	}

	// Cooldown elapses: exactly one probe admitted at a time.
	clock.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2/2 probe successes = %v", got)
	}

	want := []string{"closed→open", "open→half-open", "half-open→closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	if st := b.Snapshot(); st.Opens != 1 || st.State != "closed" {
		t.Errorf("snapshot = %+v", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Second, Now: clock.Now})
	b.Allow()
	b.Record(false)
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v", got)
	}
	// The cooldown restarts from the re-open.
	if b.Allow() {
		t.Fatal("probe admitted immediately after a failed probe")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
}

func TestBreakerRollingWindowRatioTrip(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: -1, // disable the consecutive policy
		FailureRatio:        0.5,
		WindowMinSamples:    10,
		Window:              10 * time.Second,
		Now:                 clock.Now,
	})
	// Interleave so no long consecutive run: 5 ok + 4 fail stays under
	// min samples ratio trip only at the 10th sample.
	outcomes := []bool{true, false, true, false, true, false, true, false, true}
	for _, ok := range outcomes {
		b.Allow()
		b.Record(ok)
		clock.Advance(100 * time.Millisecond)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("tripped before WindowMinSamples: %v, snapshot %+v", got, b.Snapshot())
	}
	b.Allow()
	b.Record(false) // 10th sample: 5/10 failures = ratio 0.5
	if got := b.State(); got != Open {
		t.Fatalf("state after ratio reached = %v, snapshot %+v", got, b.Snapshot())
	}
}

func TestBreakerWindowForgetsOldSamples(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: -1,
		FailureRatio:        0.5,
		WindowMinSamples:    4,
		Window:              10 * time.Second,
		Now:                 clock.Now,
	})
	// Three failures now...
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	// ...aged out of the window entirely.
	clock.Advance(30 * time.Second)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(true)
	}
	b.Allow()
	b.Record(false) // 1/4 in-window failures: under ratio
	if got := b.State(); got != Closed {
		t.Fatalf("old samples still count: state %v, snapshot %+v", got, b.Snapshot())
	}
}

// ---------------------------------------------------------------------------
// Retrier

// advisedErr is a retryable error carrying a Retry-After hint.
type advisedErr struct{ d time.Duration }

func (e advisedErr) Error() string               { return "overloaded" }
func (e advisedErr) AdvisedDelay() time.Duration { return e.d }

// recordSleeps returns a fake sleep plus the recorded delays.
func recordSleeps() (func(context.Context, time.Duration) error, *[]time.Duration) {
	var delays []time.Duration
	return func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}, &delays
}

func TestRetrierRetriesUntilSuccess(t *testing.T) {
	sleep, delays := recordSleeps()
	r := &Retrier{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: 10 * time.Millisecond, Jitter: 0, Rand: func() float64 { return 0.5 }},
		Sleep:       sleep,
	}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if len(*delays) != 2 {
		t.Fatalf("slept %d times, want 2 (%v)", len(*delays), *delays)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	sleep, _ := recordSleeps()
	r := &Retrier{MaxAttempts: 3, Sleep: sleep}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("down")
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || !contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetrierNonRetryableStopsImmediately(t *testing.T) {
	sleep, delays := recordSleeps()
	bad := errors.New("bad request")
	r := &Retrier{
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return !errors.Is(err, bad) },
		Sleep:       sleep,
	}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return bad })
	if calls != 1 || !errors.Is(err, bad) {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
	if len(*delays) != 0 {
		t.Fatalf("slept on a non-retryable error: %v", *delays)
	}
}

func TestRetrierHonorsAdvisedDelay(t *testing.T) {
	sleep, delays := recordSleeps()
	r := &Retrier{
		MaxAttempts: 2,
		Backoff:     Backoff{Base: 10 * time.Millisecond, Jitter: 0, Rand: func() float64 { return 0.5 }},
		Sleep:       sleep,
	}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return advisedErr{d: 7 * time.Second}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(*delays) != 1 || (*delays)[0] < 7*time.Second {
		t.Fatalf("slept %v, want >= the advised 7s", *delays)
	}
}

func TestRetrierStopsWhenDeadlineCannotFitRetry(t *testing.T) {
	sleep, delays := recordSleeps()
	r := &Retrier{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: time.Hour, Jitter: 0, Rand: func() float64 { return 0.5 }},
		Sleep:       sleep,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	err := r.Do(ctx, func(context.Context) error { calls++; return errors.New("down") })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (retry cannot fit in 50ms)", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !contains(err.Error(), "down") {
		t.Fatalf("err = %v, want deadline wrap keeping the last error", err)
	}
	if len(*delays) != 0 {
		t.Fatalf("slept despite a hopeless deadline: %v", *delays)
	}
}

func TestRetrierPerAttemptTimeoutIsRetryable(t *testing.T) {
	sleep, _ := recordSleeps()
	r := &Retrier{
		MaxAttempts: 3,
		PerAttempt:  10 * time.Millisecond,
		Backoff:     Backoff{Base: time.Millisecond, Jitter: 0, Rand: func() float64 { return 0.5 }},
		Sleep:       sleep,
	}
	calls := 0
	err := r.Do(context.Background(), func(actx context.Context) error {
		calls++
		if calls < 3 {
			<-actx.Done() // stall until the per-attempt timer fires
			return actx.Err()
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; per-attempt timeouts must stay retryable", err, calls)
	}
}

func TestRetrierBreakerIntegration(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, Cooldown: time.Minute, Now: clock.Now})
	sleep, _ := recordSleeps()
	r := &Retrier{
		MaxAttempts: 10,
		Breaker:     b,
		Backoff:     Backoff{Base: time.Millisecond, Jitter: 0, Rand: func() float64 { return 0.5 }},
		Sleep:       sleep,
	}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return errors.New("down") })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (breaker trips after 2 consecutive failures)", calls)
	}
	// While open, Do fails fast without invoking the op at all.
	calls = 0
	if err := r.Do(context.Background(), func(context.Context) error { calls++; return nil }); !errors.Is(err, ErrOpen) || calls != 0 {
		t.Fatalf("open breaker: err = %v, calls = %d", err, calls)
	}
	// After the cooldown, the probe runs and success closes it again.
	clock.Advance(time.Minute)
	for i := 0; i < 2; i++ {
		if err := r.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probes = %v", got)
	}
}

func TestRetrierBreakerDoesNotCountNonRetryable(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1})
	bad := errors.New("bad request")
	r := &Retrier{
		MaxAttempts: 3,
		Breaker:     b,
		Retryable:   func(err error) bool { return !errors.Is(err, bad) },
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	_ = r.Do(context.Background(), func(context.Context) error { return bad })
	if got := b.State(); got != Closed {
		t.Fatalf("a caller error tripped the breaker: %v", got)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
