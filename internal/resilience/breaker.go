package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// Closed: requests flow; failures are being counted.
	Closed State = iota
	// Open: requests are refused locally until the cooldown elapses.
	Open
	// HalfOpen: a limited number of probe requests test recovery.
	HalfOpen
)

// String renders the state the way the metrics and statz report it.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrOpen is returned (wrapped) by Retrier.Do and reported by Breaker
// callers when the breaker refuses a request locally.
var ErrOpen = errors.New("resilience: circuit breaker open")

// windowBuckets is the rolling-window resolution: the window is split
// into this many rotating buckets, so the observed window length is
// within one bucket of the configured one.
const windowBuckets = 10

// BreakerConfig tunes a Breaker. The zero value gets the defaults
// documented per field.
type BreakerConfig struct {
	// ConsecutiveFailures trips the breaker after this many failures in
	// a row (default 5; negative disables the policy).
	ConsecutiveFailures int
	// FailureRatio trips the breaker when failures/total in the rolling
	// window reaches it, once the window holds at least WindowMinSamples
	// results. 0 disables the policy (consecutive-only breaker).
	FailureRatio float64
	// WindowMinSamples is the minimum rolling-window population before
	// FailureRatio applies (default 10).
	WindowMinSamples int
	// Window is the rolling-window length (default 10s).
	Window time.Duration
	// Cooldown is how long the breaker stays Open before allowing
	// half-open probes (default 5s).
	Cooldown time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close
	// the breaker again (default 2). A single probe failure re-opens it.
	HalfOpenSuccesses int
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time
	// OnStateChange, when non-nil, observes every transition (metrics
	// hooks). Called outside the breaker lock, in transition order.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures == 0 {
		c.ConsecutiveFailures = 5
	}
	if c.WindowMinSamples <= 0 {
		c.WindowMinSamples = 10
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket is one rolling-window cell.
type bucket struct {
	start     time.Time
	successes uint64
	failures  uint64
}

// Breaker is a three-state circuit breaker. Callers ask Allow before a
// request and Record after it; when Allow reports false the request
// must not be sent (fail fast with ErrOpen). All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        State
	consecutive  int       // consecutive failures while Closed
	openedAt     time.Time // when the breaker last opened
	probeInUse   bool      // a half-open probe is in flight
	probeStreak  int       // consecutive half-open successes
	buckets      [windowBuckets]bucket
	opens        uint64 // cumulative Closed/HalfOpen → Open transitions
	lastChangeAt time.Time

	// pending transitions to report outside the lock
	pendingHooks []func()
}

// NewBreaker returns a Breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, lastChangeAt: cfg.Now()}
}

// setStateLocked transitions and queues the OnStateChange hook.
func (b *Breaker) setStateLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.lastChangeAt = b.cfg.Now()
	if to == Open {
		b.opens++
		b.openedAt = b.lastChangeAt
	}
	if hook := b.cfg.OnStateChange; hook != nil {
		b.pendingHooks = append(b.pendingHooks, func() { hook(from, to) })
	}
}

// runHooks fires queued state-change hooks outside the lock.
func (b *Breaker) runHooks() {
	b.mu.Lock()
	hooks := b.pendingHooks
	b.pendingHooks = nil
	b.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// Allow reports whether a request may proceed. In Open it flips to
// HalfOpen once the cooldown elapsed and then admits exactly one probe
// at a time; additional callers are refused until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	now := b.cfg.Now()
	allowed := false
	switch b.state {
	case Closed:
		allowed = true
	case Open:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setStateLocked(HalfOpen)
			b.probeStreak = 0
			b.probeInUse = true
			allowed = true
		}
	case HalfOpen:
		if !b.probeInUse {
			b.probeInUse = true
			allowed = true
		}
	}
	b.mu.Unlock()
	b.runHooks()
	return allowed
}

// Record reports a request outcome. Failures while Closed count toward
// both trip policies; a failure while HalfOpen re-opens immediately;
// HalfOpenSuccesses consecutive probe successes close the breaker and
// reset the rolling window.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	now := b.cfg.Now()
	bk := b.currentBucketLocked(now)
	if ok {
		bk.successes++
	} else {
		bk.failures++
	}
	switch b.state {
	case Closed:
		if ok {
			b.consecutive = 0
		} else {
			b.consecutive++
			if b.tripLocked(now) {
				b.setStateLocked(Open)
			}
		}
	case HalfOpen:
		b.probeInUse = false
		if ok {
			b.probeStreak++
			if b.probeStreak >= b.cfg.HalfOpenSuccesses {
				b.consecutive = 0
				b.resetWindowLocked()
				b.setStateLocked(Closed)
			}
		} else {
			b.probeStreak = 0
			b.setStateLocked(Open)
		}
	case Open:
		// A straggler from before the trip; the window keeps the sample,
		// no transition.
	}
	b.mu.Unlock()
	b.runHooks()
}

// tripLocked evaluates both trip policies while Closed.
func (b *Breaker) tripLocked(now time.Time) bool {
	if b.cfg.ConsecutiveFailures > 0 && b.consecutive >= b.cfg.ConsecutiveFailures {
		return true
	}
	if b.cfg.FailureRatio > 0 {
		succ, fail := b.windowTotalsLocked(now)
		total := succ + fail
		if total >= uint64(b.cfg.WindowMinSamples) &&
			float64(fail)/float64(total) >= b.cfg.FailureRatio {
			return true
		}
	}
	return false
}

// currentBucketLocked rotates the ring to now and returns the live
// bucket. Buckets older than the window are zeroed lazily.
func (b *Breaker) currentBucketLocked(now time.Time) *bucket {
	width := b.cfg.Window / windowBuckets
	slot := int((now.UnixNano() / int64(width)) % windowBuckets)
	bk := &b.buckets[slot]
	start := now.Truncate(width)
	if !bk.start.Equal(start) {
		*bk = bucket{start: start}
	}
	return bk
}

func (b *Breaker) windowTotalsLocked(now time.Time) (successes, failures uint64) {
	for i := range b.buckets {
		bk := &b.buckets[i]
		if bk.start.IsZero() || now.Sub(bk.start) > b.cfg.Window {
			continue
		}
		successes += bk.successes
		failures += bk.failures
	}
	return successes, failures
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
}

// State returns the current state (rotating Open → HalfOpen is done by
// Allow, not here, so an idle open breaker reports Open until probed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// OpenRemaining returns how long until an Open breaker admits a probe
// (zero when not Open or already due).
func (b *Breaker) OpenRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// BreakerStats is a point-in-time view of a breaker, captured as one
// struct under one lock acquisition so consumers (statz, bccload
// reports) never mix fields from different instants.
type BreakerStats struct {
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	WindowSuccesses     uint64  `json:"window_successes"`
	WindowFailures      uint64  `json:"window_failures"`
	WindowFailureRatio  float64 `json:"window_failure_ratio"`
	Opens               uint64  `json:"opens"`
	SinceChangeSeconds  float64 `json:"since_change_seconds"`
}

// Snapshot captures the breaker counters together.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	succ, fail := b.windowTotalsLocked(now)
	st := BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.consecutive,
		WindowSuccesses:     succ,
		WindowFailures:      fail,
		Opens:               b.opens,
		SinceChangeSeconds:  now.Sub(b.lastChangeAt).Seconds(),
	}
	if total := succ + fail; total > 0 {
		st.WindowFailureRatio = float64(fail) / float64(total)
	}
	return st
}
