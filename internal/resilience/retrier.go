package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// AdvisedDelayer is implemented by errors that carry a server-advised
// minimum delay before the next attempt — the client-side face of an
// HTTP 429 Retry-After header. The Retrier never retries sooner than
// the advice.
type AdvisedDelayer interface {
	AdvisedDelay() time.Duration
}

// Retrier runs an operation with retries under a composed policy:
// breaker admission first (fail fast with ErrOpen), then up to
// MaxAttempts tries separated by Backoff delays, stretched to any
// server-advised Retry-After, and abandoned early when the caller's
// context deadline cannot fit the next attempt. The zero value is
// usable with the defaults documented per field.
type Retrier struct {
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// Backoff shapes the inter-attempt delays.
	Backoff Backoff
	// PerAttempt, when positive, caps each individual attempt with its
	// own sub-deadline so one stalled try cannot eat the whole budget.
	PerAttempt time.Duration
	// Breaker, when non-nil, gates every attempt and records outcomes.
	// Only retryable (per Retryable) failures count against it: a 400
	// is the caller's bug, not the server's health.
	Breaker *Breaker
	// Retryable classifies errors; nil retries everything except
	// context.Canceled / context.DeadlineExceeded from the caller's own
	// context.
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each scheduled retry (metrics):
	// the zero-based attempt that failed, the chosen delay, the error.
	OnRetry func(attempt int, delay time.Duration, err error)
	// Sleep waits between attempts; nil uses a timer honoring ctx.
	// Injectable so policy tests never really sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Retrier) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if r.Retryable != nil {
		return r.Retryable(err)
	}
	return true
}

// Do runs op until it succeeds, exhausts the attempt budget, hits a
// non-retryable error, or the context fires. The returned error is the
// last attempt's, wrapped with the attempt count when retries happened.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return joinAttempts(attempt, lastErr, err)
		}
		if r.Breaker != nil && !r.Breaker.Allow() {
			return joinAttempts(attempt, lastErr, fmt.Errorf("%w (retry in %v)", ErrOpen, r.Breaker.OpenRemaining().Round(time.Millisecond)))
		}

		actx, cancel := ctx, context.CancelFunc(nil)
		if r.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, r.PerAttempt)
		}
		err := op(actx)
		if cancel != nil {
			cancel()
		}
		// A per-attempt sub-deadline expiring is this attempt's failure,
		// not the caller giving up; translate so it stays retryable.
		if err != nil && r.PerAttempt > 0 && ctx.Err() == nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			err = fmt.Errorf("attempt timed out after %v: %w", r.PerAttempt, errAttemptTimeout)
		}

		if err == nil {
			if r.Breaker != nil {
				r.Breaker.Record(true)
			}
			return nil
		}
		lastErr = err
		retry := r.retryable(err)
		if r.Breaker != nil && retry {
			r.Breaker.Record(false)
		}
		if !retry || attempt == attempts-1 {
			return joinAttempts(attempt+1, lastErr, nil)
		}

		delay := r.Backoff.Delay(attempt)
		var adv AdvisedDelayer
		if errors.As(err, &adv) {
			if a := adv.AdvisedDelay(); a > delay {
				delay = a
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			// The advised/backed-off wait overshoots the caller's budget:
			// retrying is pointless, report the last real failure now.
			return joinAttempts(attempt+1, lastErr, context.DeadlineExceeded)
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, delay, err)
		}
		if err := sleep(ctx, delay); err != nil {
			return joinAttempts(attempt+1, lastErr, err)
		}
	}
	return lastErr
}

// errAttemptTimeout marks a per-attempt sub-deadline expiry, kept
// distinct from the caller's own context errors so it stays retryable.
var errAttemptTimeout = errors.New("resilience: per-attempt timeout")

// joinAttempts decorates the terminal error with how many attempts ran
// and, when the loop was cut short externally (deadline, breaker), why.
func joinAttempts(attempts int, lastErr, cause error) error {
	switch {
	case lastErr == nil && cause == nil:
		return nil
	case lastErr == nil:
		return cause
	case cause == nil:
		if attempts <= 1 {
			return lastErr
		}
		return fmt.Errorf("after %d attempts: %w", attempts, lastErr)
	default:
		return fmt.Errorf("after %d attempts: %w (last error: %s)", attempts, cause, lastErr)
	}
}
