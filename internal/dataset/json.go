package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/propset"
)

// FileFormat is the on-disk JSON schema for BCC instances, usable with
// cmd/bccsolve and cmd/bccgen. Costs may be "inf" to exclude a classifier.
type FileFormat struct {
	Budget  float64      `json:"budget"`
	Queries []FileQuery  `json:"queries"`
	Costs   []FileCost   `json:"costs,omitempty"`
	Default *FileDefault `json:"default_cost,omitempty"`
}

// FileQuery is one query row.
type FileQuery struct {
	Props   []string `json:"props"`
	Utility float64  `json:"utility"`
}

// FileCost prices one classifier; Inf marks it impractical.
type FileCost struct {
	Props []string `json:"props"`
	Cost  float64  `json:"cost"`
	Inf   bool     `json:"inf,omitempty"`
}

// FileDefault sets the cost of unpriced classifiers: Cost plus PerProp
// times the classifier length.
type FileDefault struct {
	Cost    float64 `json:"cost"`
	PerProp float64 `json:"per_prop"`
}

// ToFormat renders an instance as the canonical on-disk FileFormat:
// queries in builder order, costs sorted by property names, only the
// explicitly enumerable costs (those of classifiers in CL). Write and
// the eval-suite fixtures (internal/eval) share it so the same instance
// always serializes to the same bytes.
func ToFormat(in *model.Instance) FileFormat {
	ff := FileFormat{Budget: in.Budget()}
	u := in.Universe()
	names := func(s propset.Set) []string {
		out := make([]string, s.Len())
		for i, id := range s {
			out[i] = u.Name(id)
		}
		return out
	}
	for _, q := range in.Queries() {
		ff.Queries = append(ff.Queries, FileQuery{Props: names(q.Props), Utility: q.Utility})
	}
	for _, c := range in.Classifiers() {
		cost := FileCost{Props: names(c.Props), Cost: c.Cost}
		if math.IsInf(cost.Cost, 1) {
			cost.Cost, cost.Inf = 0, true
		}
		ff.Costs = append(ff.Costs, cost)
	}
	sort.Slice(ff.Costs, func(i, j int) bool { return less(ff.Costs[i].Props, ff.Costs[j].Props) })
	return ff
}

// Write serializes an instance to JSON. Only explicitly enumerable costs
// (those of classifiers in CL) are written.
func Write(w io.Writer, in *model.Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToFormat(in))
}

func less(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Read parses a JSON instance.
func Read(r io.Reader) (*model.Instance, error) {
	var ff FileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decoding instance: %w", err)
	}
	return FromFormat(ff)
}

// FromFormat validates a decoded FileFormat and builds the instance.
// Utilities must be finite (a NaN or ±Inf utility silently corrupts every
// downstream greedy comparison) and costs must be non-negative numbers;
// an impractical classifier is expressed with the Inf flag, not a raw
// infinity. A property repeated inside one query and a query repeated in
// the file are both rejected: each is almost certainly a generator bug,
// and silently deduplicating (or silently merging utilities) would let it
// pass unnoticed.
func FromFormat(ff FileFormat) (*model.Instance, error) {
	seenQueries := make(map[string]int, len(ff.Queries))
	for i, q := range ff.Queries {
		if math.IsNaN(q.Utility) || math.IsInf(q.Utility, 0) {
			return nil, fmt.Errorf("dataset: query %d (%v): utility %v is not finite", i, q.Props, q.Utility)
		}
		props := append([]string(nil), q.Props...)
		sort.Strings(props)
		for j := 1; j < len(props); j++ {
			if props[j] == props[j-1] {
				return nil, fmt.Errorf("dataset: query %d (%v): duplicate property %q", i, q.Props, props[j])
			}
		}
		key := strings.Join(props, "\x00")
		if first, dup := seenQueries[key]; dup {
			return nil, fmt.Errorf("dataset: query %d (%v): duplicate of query %d", i, q.Props, first)
		}
		seenQueries[key] = i
	}
	for i, c := range ff.Costs {
		if c.Inf {
			continue
		}
		if math.IsNaN(c.Cost) {
			return nil, fmt.Errorf("dataset: cost %d (%v): cost is NaN", i, c.Props)
		}
		if c.Cost < 0 {
			return nil, fmt.Errorf("dataset: cost %d (%v): cost %v is negative", i, c.Props, c.Cost)
		}
	}
	b := model.NewBuilder()
	for _, q := range ff.Queries {
		b.AddQuery(q.Utility, q.Props...)
	}
	for _, c := range ff.Costs {
		cost := c.Cost
		if c.Inf {
			cost = math.Inf(1)
		}
		b.SetCost(cost, c.Props...)
	}
	if d := ff.Default; d != nil {
		b.SetDefaultCost(func(s propset.Set) float64 {
			return d.Cost + d.PerProp*float64(s.Len())
		})
	}
	return b.Instance(ff.Budget)
}

// ReadFile loads an instance from a JSON file.
func ReadFile(path string) (*model.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile saves an instance to a JSON file.
func WriteFile(path string, in *model.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, in)
}
