package dataset

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes into the JSON instance reader; it must
// never panic, and accepted instances must be internally consistent.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, PrivateSubset(1, 10, 15))
	f.Add(seed.Bytes())
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": 1}]}`))
	f.Add([]byte(`{"budget": -1, "queries": [{"props": ["a"], "utility": 1}]}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": [], "utility": 1}]}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": -3}]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(`{"budget": 1e308, "queries": [{"props": ["x","y"], "utility": 2}],
	  "costs": [{"props": ["x"], "cost": 0, "inf": true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if in.NumQueries() == 0 {
			t.Fatal("accepted instance with no queries")
		}
		if in.Budget() < 0 {
			t.Fatalf("accepted negative budget %v", in.Budget())
		}
		for _, q := range in.Queries() {
			if q.Utility < 0 {
				t.Fatalf("accepted negative utility %v", q.Utility)
			}
		}
		for _, c := range in.Classifiers() {
			if c.Cost < 0 {
				t.Fatalf("accepted negative cost %v", c.Cost)
			}
		}
		// Round trip must preserve query count.
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumQueries() != in.NumQueries() {
			t.Fatalf("round trip query count %d != %d", back.NumQueries(), in.NumQueries())
		}
	})
}
