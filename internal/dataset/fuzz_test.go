package dataset

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// FuzzRead feeds arbitrary bytes into the JSON instance reader; it must
// never panic, and accepted instances must be internally consistent.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, PrivateSubset(1, 10, 15))
	f.Add(seed.Bytes())
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": 1}]}`))
	f.Add([]byte(`{"budget": -1, "queries": [{"props": ["a"], "utility": 1}]}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": [], "utility": 1}]}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": -3}]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(`{"budget": 1e308, "queries": [{"props": ["x","y"], "utility": 2}],
	  "costs": [{"props": ["x"], "cost": 0, "inf": true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if in.NumQueries() == 0 {
			t.Fatal("accepted instance with no queries")
		}
		if in.Budget() < 0 {
			t.Fatalf("accepted negative budget %v", in.Budget())
		}
		for _, q := range in.Queries() {
			if q.Utility < 0 {
				t.Fatalf("accepted negative utility %v", q.Utility)
			}
		}
		for _, c := range in.Classifiers() {
			if c.Cost < 0 {
				t.Fatalf("accepted negative cost %v", c.Cost)
			}
		}
		// Round trip must preserve query count.
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumQueries() != in.NumQueries() {
			t.Fatalf("round trip query count %d != %d", back.NumQueries(), in.NumQueries())
		}
	})
}

// FuzzFromFormat drives the server's decode path: arbitrary JSON is
// unmarshaled into a FileFormat (the wire schema of /v1/solve) and
// handed to FromFormat, which must never panic, and whose accepted
// instances must be consistent and fingerprint-stable — the solution
// cache keys on the fingerprint, so two decodes of the same bytes
// disagreeing would serve one instance's plan for another.
func FuzzFromFormat(f *testing.F) {
	quickstart, err := os.ReadFile("../../examples/instances/quickstart.json")
	if err != nil {
		f.Fatalf("reading quickstart seed: %v", err)
	}
	f.Add(quickstart)
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": 1}]}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a","b"], "utility": 1}],
	  "default_cost": {"cost": 1, "per_prop": 0.5}}`))
	f.Add([]byte(`{"budget": 5, "queries": [{"props": ["a"], "utility": 1}],
	  "costs": [{"props": ["a"], "cost": 0, "inf": true}]}`))
	f.Add([]byte(`{"budget": 0, "queries": []}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ff FileFormat
		if json.Unmarshal(data, &ff) != nil {
			return
		}
		in, err := FromFormat(ff)
		if err != nil {
			// Rejected instances must also be rejected on a second pass:
			// admission is deterministic.
			if _, err2 := FromFormat(ff); err2 == nil {
				t.Fatal("FromFormat accepted on retry what it first rejected")
			}
			return
		}
		if in.NumQueries() == 0 || in.NumQueries() > len(ff.Queries) {
			t.Fatalf("accepted %d queries from %d rows", in.NumQueries(), len(ff.Queries))
		}
		if in.Budget() < 0 {
			t.Fatalf("accepted negative budget %v", in.Budget())
		}
		// The cache key property: decoding the same wire bytes twice must
		// yield the same canonical fingerprint.
		again, err := FromFormat(ff)
		if err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		if in.Fingerprint() != again.Fingerprint() {
			t.Fatalf("fingerprint unstable: %s vs %s", in.Fingerprint(), again.Fingerprint())
		}
	})
}
