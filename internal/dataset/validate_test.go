package dataset

import (
	"math"
	"strings"
	"testing"
)

func validFormat() FileFormat {
	return FileFormat{
		Budget: 5,
		Queries: []FileQuery{
			{Props: []string{"a", "b"}, Utility: 3},
			{Props: []string{"b"}, Utility: 1},
		},
		Costs: []FileCost{
			{Props: []string{"a"}, Cost: 2},
			{Props: []string{"b"}, Cost: 1},
		},
	}
}

func TestFromFormatAcceptsValid(t *testing.T) {
	in, err := FromFormat(validFormat())
	if err != nil {
		t.Fatal(err)
	}
	if in.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", in.NumQueries())
	}
}

func TestFromFormatRejectsBadUtilities(t *testing.T) {
	for name, u := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		ff := validFormat()
		ff.Queries[1].Utility = u
		_, err := FromFormat(ff)
		if err == nil {
			t.Errorf("%s utility accepted", name)
			continue
		}
		// The error must name the offending query.
		if !strings.Contains(err.Error(), "query 1") {
			t.Errorf("%s: error does not name query 1: %v", name, err)
		}
	}
}

func TestFromFormatRejectsBadCosts(t *testing.T) {
	ff := validFormat()
	ff.Costs[0].Cost = math.NaN()
	if _, err := FromFormat(ff); err == nil || !strings.Contains(err.Error(), "cost 0") {
		t.Errorf("NaN cost: err = %v", err)
	}
	ff = validFormat()
	ff.Costs[1].Cost = -3
	if _, err := FromFormat(ff); err == nil || !strings.Contains(err.Error(), "cost 1") {
		t.Errorf("negative cost: err = %v", err)
	}
}

func TestFromFormatRejectsDuplicatePropertyInQuery(t *testing.T) {
	ff := validFormat()
	ff.Queries[1].Props = []string{"b", "a", "b"}
	_, err := FromFormat(ff)
	if err == nil {
		t.Fatal("query with a repeated property accepted")
	}
	// The error must name the offending query and the repeated property.
	if !strings.Contains(err.Error(), "query 1") || !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("error does not name query 1 / property b: %v", err)
	}
}

func TestFromFormatRejectsDuplicateQueries(t *testing.T) {
	ff := validFormat()
	// Same property set as query 0, in a different order: still the same
	// conjunction, so still a duplicate.
	ff.Queries = append(ff.Queries, FileQuery{Props: []string{"b", "a"}, Utility: 7})
	_, err := FromFormat(ff)
	if err == nil {
		t.Fatal("duplicate query accepted")
	}
	if !strings.Contains(err.Error(), "query 2") || !strings.Contains(err.Error(), "query 0") {
		t.Errorf("error does not name both indices: %v", err)
	}
}

func TestFromFormatAllowsInfFlag(t *testing.T) {
	ff := validFormat()
	// The Inf flag is the sanctioned spelling for impractical classifiers;
	// its Cost field is ignored and may hold anything.
	ff.Costs = append(ff.Costs, FileCost{Props: []string{"a", "b"}, Cost: math.NaN(), Inf: true})
	if _, err := FromFormat(ff); err != nil {
		t.Fatalf("Inf-flagged cost rejected: %v", err)
	}
}
