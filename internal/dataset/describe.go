package dataset

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
)

// Summary reports the marginal statistics of a workload — the numbers the
// paper quotes when describing its datasets (Section 6.1).
type Summary struct {
	Queries      int
	Properties   int
	Classifiers  int
	TotalUtility float64
	// LengthShare[i] is the fraction of queries of length i (index 0
	// unused).
	LengthShare []float64
	AvgLength   float64
	// Cost statistics over the enumerated candidate classifiers.
	MinCost, MaxCost, MeanCost float64
	FreeClassifiers            int
	// Utility statistics over queries.
	MinUtility, MaxUtility, MeanUtility float64
}

// Describe computes a Summary for the instance.
func Describe(in *model.Instance) Summary {
	s := Summary{
		Queries:      in.NumQueries(),
		Properties:   in.NumProperties(),
		Classifiers:  len(in.Classifiers()),
		TotalUtility: in.TotalUtility(),
		MinCost:      math.Inf(1),
		MinUtility:   math.Inf(1),
	}
	maxLen := in.MaxQueryLength()
	counts := make([]int, maxLen+1)
	var lenSum float64
	for _, q := range in.Queries() {
		counts[q.Length()]++
		lenSum += float64(q.Length())
		if q.Utility < s.MinUtility {
			s.MinUtility = q.Utility
		}
		if q.Utility > s.MaxUtility {
			s.MaxUtility = q.Utility
		}
	}
	s.AvgLength = lenSum / float64(s.Queries)
	s.MeanUtility = s.TotalUtility / float64(s.Queries)
	s.LengthShare = make([]float64, maxLen+1)
	for l := 1; l <= maxLen; l++ {
		s.LengthShare[l] = float64(counts[l]) / float64(s.Queries)
	}
	var costSum float64
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			s.FreeClassifiers++
		}
		if c.Cost < s.MinCost {
			s.MinCost = c.Cost
		}
		if c.Cost > s.MaxCost {
			s.MaxCost = c.Cost
		}
		costSum += c.Cost
	}
	if s.Classifiers > 0 {
		s.MeanCost = costSum / float64(s.Classifiers)
	} else {
		s.MinCost = 0
	}
	return s
}

// String renders the summary in the style of the paper's dataset
// descriptions.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d queries over %d properties (%d candidate classifiers), total utility %.0f\n",
		s.Queries, s.Properties, s.Classifiers, s.TotalUtility)
	var parts []string
	for l := 1; l < len(s.LengthShare); l++ {
		if s.LengthShare[l] > 0 {
			parts = append(parts, fmt.Sprintf("len %d: %.1f%%", l, 100*s.LengthShare[l]))
		}
	}
	fmt.Fprintf(&b, "lengths: %s (avg %.2f)\n", strings.Join(parts, ", "), s.AvgLength)
	fmt.Fprintf(&b, "costs: [%.0f, %.0f] mean %.1f (%d already built)\n",
		s.MinCost, s.MaxCost, s.MeanCost, s.FreeClassifiers)
	fmt.Fprintf(&b, "utilities: [%.0f, %.0f] mean %.1f",
		s.MinUtility, s.MaxUtility, s.MeanUtility)
	return b.String()
}
