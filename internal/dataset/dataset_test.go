package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/propset"
)

func TestBestBuyMarginals(t *testing.T) {
	in := BestBuy(1, 100)
	// Roughly 1000 queries (deduplication may shave a few).
	if in.NumQueries() < 900 || in.NumQueries() > 1000 {
		t.Fatalf("BB queries = %d, want ≈1000", in.NumQueries())
	}
	if in.NumProperties() != 725 {
		t.Fatalf("BB properties = %d, want 725", in.NumProperties())
	}
	var len1, len2, total int
	var lenSum float64
	for _, q := range in.Queries() {
		total++
		lenSum += float64(q.Length())
		switch q.Length() {
		case 1:
			len1++
			len2++
		case 2:
			len2++
		}
	}
	if f := float64(len1) / float64(total); f < 0.60 || f > 0.70 {
		t.Errorf("BB singleton fraction = %.2f, want ≈0.65", f)
	}
	if f := float64(len2) / float64(total); f < 0.95 {
		t.Errorf("BB ≤2 fraction = %.2f, want ≥0.95", f)
	}
	if avg := lenSum / float64(total); avg < 1.3 || avg > 1.5 {
		t.Errorf("BB average length = %.2f, want ≈1.4", avg)
	}
	// Uniform costs.
	for _, c := range in.Classifiers() {
		if c.Cost != 1 {
			t.Fatalf("BB costs must be uniform, got %v", c.Cost)
		}
	}
}

func TestPrivateMarginals(t *testing.T) {
	in := Private(1, 2000)
	if in.NumQueries() < 4500 || in.NumQueries() > 5000 {
		t.Fatalf("P queries = %d, want ≈5000", in.NumQueries())
	}
	// The paper quotes 2K distinct properties alongside 55% singleton
	// queries out of 5K — jointly impossible for distinct queries, so the
	// simulator uses ≈2.9K properties (documented in DESIGN.md).
	if in.NumProperties() < 2500 || in.NumProperties() > 3000 {
		t.Fatalf("P properties = %d, want ≈2900", in.NumProperties())
	}
	var len1, len12, total, maxLen int
	for _, q := range in.Queries() {
		total++
		if q.Length() == 1 {
			len1++
		}
		if q.Length() <= 2 {
			len12++
		}
		if q.Length() > maxLen {
			maxLen = q.Length()
		}
		if q.Utility < 1 || q.Utility > 50 {
			t.Fatalf("P utility %v out of [1,50]", q.Utility)
		}
	}
	if f := float64(len1) / float64(total); f < 0.48 || f > 0.62 {
		t.Errorf("P singleton fraction = %.2f, want ≈0.55", f)
	}
	if f := float64(len12) / float64(total); f < 0.94 {
		t.Errorf("P ≤2 fraction = %.2f, want ≥0.95", f)
	}
	if maxLen > 5 {
		t.Errorf("P max length = %d, want ≤5", maxLen)
	}
	// Costs in [0, 50] with a single-digit mean.
	var costSum float64
	var costCt int
	for _, c := range in.Classifiers() {
		if c.Cost < 0 || c.Cost > 50 {
			t.Fatalf("P cost %v out of range", c.Cost)
		}
		costSum += c.Cost
		costCt++
	}
	if mean := costSum / float64(costCt); mean < 4 || mean > 14 {
		t.Errorf("P mean cost = %.1f, want ≈8", mean)
	}
}

func TestPrivatePopularSubqueryCorrelation(t *testing.T) {
	// §6.2: popular queries tend to have popular subqueries — a large
	// fraction of length-2 queries should have at least one of their
	// singletons present in the workload too.
	in := Private(1, 2000)
	present := map[string]bool{}
	for _, q := range in.Queries() {
		present[q.Props.Key()] = true
	}
	withSub, l2 := 0, 0
	for _, q := range in.Queries() {
		if q.Length() != 2 {
			continue
		}
		l2++
		found := false
		q.Props.Subsets(func(sub propset.Set) {
			if sub.Len() == 1 && present[sub.Key()] {
				found = true
			}
		})
		if found {
			withSub++
		}
	}
	if l2 == 0 {
		t.Fatal("no length-2 queries")
	}
	if f := float64(withSub) / float64(l2); f < 0.3 {
		t.Errorf("only %.0f%% of pair queries have a singleton subquery; want ≥30%%", f*100)
	}
}

func TestSyntheticProcess(t *testing.T) {
	in := Synthetic(1, 5000, 5000)
	if in.NumQueries() < 4900 {
		t.Fatalf("S queries = %d, want ≈5000 (minor dedup ok)", in.NumQueries())
	}
	var counts [8]int
	total := 0
	for _, q := range in.Queries() {
		counts[q.Length()]++
		total++
		if q.Utility < 1 || q.Utility > 50 {
			t.Fatalf("S utility %v out of [1,50]", q.Utility)
		}
	}
	// Length i with probability ~2^-i: ≈50% singletons, ≈25% pairs.
	if f := float64(counts[1]) / float64(total); f < 0.45 || f > 0.55 {
		t.Errorf("S singleton fraction = %.2f, want ≈0.5", f)
	}
	if f := float64(counts[2]) / float64(total); f < 0.20 || f > 0.30 {
		t.Errorf("S pair fraction = %.2f, want ≈0.25", f)
	}
	if counts[7] != 0 && counts[6] == 0 {
		t.Error("S lengths must cap at 6")
	}
	for _, c := range in.Classifiers() {
		if c.Cost < 0 || c.Cost > 50 || c.Cost != math.Trunc(c.Cost) {
			t.Fatalf("S cost %v not an integer in [0,50]", c.Cost)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Synthetic(7, 500, 100)
	b := Synthetic(7, 500, 100)
	if a.NumQueries() != b.NumQueries() || a.TotalUtility() != b.TotalUtility() {
		t.Fatal("Synthetic not deterministic in seed")
	}
	c := Synthetic(8, 500, 100)
	if a.TotalUtility() == c.TotalUtility() && a.NumProperties() == c.NumProperties() {
		t.Log("warning: different seeds produced identical aggregate stats")
	}
}

func TestPrivateSubsetSmall(t *testing.T) {
	in := PrivateSubset(3, 20, 22)
	if len(in.Classifiers()) > 22 {
		t.Fatalf("subset CL = %d, want ≤ 22", len(in.Classifiers()))
	}
	if in.NumQueries() == 0 {
		t.Fatal("empty subset")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := PrivateSubset(5, 15, 20)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQueries() != in.NumQueries() {
		t.Fatalf("round trip queries: %d vs %d", back.NumQueries(), in.NumQueries())
	}
	if back.Budget() != in.Budget() {
		t.Fatalf("round trip budget: %v vs %v", back.Budget(), in.Budget())
	}
	if math.Abs(back.TotalUtility()-in.TotalUtility()) > 1e-9 {
		t.Fatalf("round trip utility: %v vs %v", back.TotalUtility(), in.TotalUtility())
	}
	// Costs of all classifiers must survive.
	for _, c := range in.Classifiers() {
		names := make([]string, c.Props.Len())
		for i, id := range c.Props {
			names[i] = in.Universe().Name(id)
		}
		rtProps := back.Universe().SetOf(names...)
		if got := back.Cost(rtProps); math.Abs(got-c.Cost) > 1e-9 {
			t.Fatalf("cost of %v: %v vs %v", names, got, c.Cost)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"budget": 5, "queries": []}`)); err == nil {
		t.Fatal("instance without queries accepted")
	}
}

func TestDescribe(t *testing.T) {
	in := BestBuy(1, 100)
	s := Describe(in)
	if s.Queries != in.NumQueries() || s.Properties != 725 {
		t.Fatalf("basic counts wrong: %+v", s)
	}
	if s.MeanCost != 1 || s.MinCost != 1 || s.MaxCost != 1 {
		t.Fatalf("BB costs are uniform 1: %+v", s)
	}
	if s.AvgLength < 1.3 || s.AvgLength > 1.5 {
		t.Fatalf("AvgLength = %v", s.AvgLength)
	}
	var share float64
	for _, f := range s.LengthShare {
		share += f
	}
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("length shares sum to %v", share)
	}
	str := s.String()
	for _, want := range []string{"queries over", "lengths:", "costs:", "utilities:"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String missing %q:\n%s", want, str)
		}
	}
}
