// Package dataset provides the three evaluation workloads of the paper's
// experimental study (Section 6.1) and JSON instance I/O.
//
// The paper evaluates on (1) a public BestBuy query log, (2) a private
// e-commerce dataset with analyst-estimated costs and utilities, and (3) a
// synthetic generator. The first two datasets are not distributable, so
// this package simulates them: each generator reproduces every marginal
// statistic the paper reports (query counts, property counts, length
// distribution, cost/utility ranges and means, sparsity, and the
// popular-queries-have-popular-subqueries structure that A^BCC exploits).
// The synthetic generator follows the paper's published process exactly.
// All generators are deterministic in their seed.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/propset"
)

// splitmix64 advances a deterministic hash state; used to derive stable
// per-classifier costs from a seed and a set key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashSet(seed uint64, s propset.Set) uint64 {
	h := seed
	for _, id := range s {
		h = splitmix64(h ^ uint64(id))
	}
	return h
}

// BestBuy simulates the public BestBuy dataset: ~1000 queries over 725
// electronics properties, average length 1.4 (65% singletons, >95% of
// length ≤ 2), search-frequency utilities (Zipf-distributed, as popular
// query logs are) and uniform classifier costs (the dataset ships no cost
// estimates; Section 2's uniform-cost fallback applies).
func BestBuy(seed int64, budget float64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	const nProps = 725
	b := model.NewBuilder()
	u := b.Universe()

	props := make([]propset.ID, nProps)
	for i := range props {
		props[i] = u.Intern(bbPropName(i))
	}
	// Zipf frequencies for utilities: rank r gets ~ C/r^0.85 searches.
	zipf := func(rank int) float64 {
		return math.Max(1, math.Round(400/math.Pow(float64(rank+1), 0.85)))
	}
	// Length quotas matching the published marginals: 65% singletons,
	// >95% of length ≤ 2, ~1000 queries, average length ≈ 1.4.
	const q1, q2, q3 = 650, 310, 40
	rank := 0
	// Singletons: 650 distinct properties, drawn without replacement.
	perm := rng.Perm(nProps)
	for i := 0; i < q1; i++ {
		b.AddQuerySet(propset.New(props[perm[i]]), zipf(rank))
		rank++
	}
	// Longer queries: anchor-based draws keep co-occurrence sparse (each
	// property appears in very few queries, the trait §6.2 credits for
	// IG2's competitiveness on BB).
	seenQ := map[string]bool{}
	for _, want := range []struct{ ln, count int }{{2, q2}, {3, q3}} {
		added := 0
		for attempt := 0; added < want.count && attempt < want.count*50; attempt++ {
			anchor := rng.Intn(nProps)
			ids := []propset.ID{props[anchor]}
			seen := map[int]bool{anchor: true}
			for len(ids) < want.ln {
				p := (anchor + 1 + rng.Intn(6)) % nProps
				if seen[p] {
					p = rng.Intn(nProps)
				}
				if !seen[p] {
					seen[p] = true
					ids = append(ids, props[p])
				}
			}
			q := propset.New(ids...)
			if seenQ[q.Key()] {
				continue
			}
			seenQ[q.Key()] = true
			b.AddQuerySet(q, zipf(rank))
			rank++
			added++
		}
	}
	b.SetDefaultCost(func(s propset.Set) float64 { return 1 }) // uniform costs
	return b.MustInstance(budget)
}

func bbPropName(i int) string {
	return "bb_" + itoa(i)
}

// Private simulates the paper's private e-commerce dataset: 5K popular
// queries over 2K properties grouped into product categories (Electronics,
// Fashion, Home & Garden, …), query lengths 1–5 with >95% of length ≤ 2
// and ~55% singletons, analyst-style costs in [0, 50] with mean ≈ 8
// (including some already-built classifiers at cost 0 and a few
// impractical ones omitted via +Inf), utilities in [1, 50] combining
// category importance and search frequency, and the popular-subquery
// correlation the paper highlights (§6.2): popular long queries extend
// popular short ones.
func Private(seed int64, budget float64) *model.Instance {
	return privateInstance(seed, budget, true)
}

// PrivateAllPaid is the Private workload without already-built (zero-cost)
// classifiers: every classifier carries its full analyst estimate. The ECC
// experiment uses it, since a single free classifier trivially yields an
// infinite utility-to-cost ratio.
func PrivateAllPaid(seed int64, budget float64) *model.Instance {
	return privateInstance(seed, budget, false)
}

func privateInstance(seed int64, budget float64, allowFree bool) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	const nCategories = 12
	const propsPerCat = 240 // ≈ 2.9K properties; enough distinct singletons
	const nQueries = 5000
	b := model.NewBuilder()
	u := b.Universe()

	type category struct {
		props      []propset.ID
		importance float64
	}
	cats := make([]category, nCategories)
	for ci := range cats {
		cats[ci].importance = 0.4 + rng.Float64()*0.6
		cats[ci].props = make([]propset.ID, propsPerCat)
		for pi := range cats[ci].props {
			cats[ci].props[pi] = u.Intern("c" + itoa(ci) + "_p" + itoa(pi))
		}
	}
	// Popularity of a property within its category: Zipf by index.
	propPop := func(pi int) float64 { return 1 / math.Pow(float64(pi+1), 0.7) }
	// Draw a property index biased toward popular ones.
	drawProp := func() int {
		return int(math.Pow(rng.Float64(), 2.2) * propsPerCat)
	}

	type genQuery struct {
		cat int
		ids propset.Set
		pop float64
	}
	var short []genQuery
	seenQ := map[string]bool{}
	addQuery := func(g genQuery) bool {
		if seenQ[g.ids.Key()] {
			return false
		}
		seenQ[g.ids.Key()] = true
		util := math.Max(1, math.Min(50, math.Round(50*g.pop*cats[g.cat].importance)))
		b.AddQuerySet(g.ids, util)
		return true
	}

	// Length quotas: ~55% singletons, >95% of length ≤ 2, tail up to 5.
	quota := []struct{ ln, count int }{{1, 2750}, {2, 2025}, {3, 150}, {4, 50}, {5, 25}}
	// Singletons first: the most popular properties of every category,
	// drawn without replacement so they stay distinct.
	for _, spec := range quota[:1] {
		perCat := spec.count / nCategories
		for ci := range cats {
			for pi := 0; pi < perCat && pi < propsPerCat; pi++ {
				g := genQuery{cat: ci, ids: propset.New(cats[ci].props[pi]), pop: 0.4 + 0.6*propPop(pi)}
				if addQuery(g) {
					short = append(short, g)
				}
			}
		}
	}
	// Longer queries extend popular shorter ones 70% of the time, so
	// popular queries have popular subqueries (§6.2).
	for _, spec := range quota[1:] {
		added := 0
		for attempt := 0; added < spec.count && attempt < spec.count*60; attempt++ {
			ci := rng.Intn(nCategories)
			var g genQuery
			if len(short) > 0 && rng.Float64() < 0.7 {
				base := short[rng.Intn(len(short))]
				ids := base.ids.Clone()
				g = genQuery{cat: base.cat, pop: base.pop}
				for len(ids) < spec.ln {
					pi := drawProp()
					ids = ids.Union(propset.New(cats[base.cat].props[pi]))
					g.pop *= 0.5 + 0.4*propPop(pi)
				}
				g.ids = ids
			} else {
				g = genQuery{cat: ci, pop: 1}
				var ids propset.Set
				for ids.Len() < spec.ln {
					pi := drawProp()
					ids = ids.Union(propset.New(cats[ci].props[pi]))
					g.pop *= 0.6 + 0.6*propPop(pi)
				}
				g.ids = ids
			}
			if g.ids.Len() != spec.ln {
				continue
			}
			if addQuery(g) {
				added++
				if spec.ln == 2 {
					short = append(short, g)
				}
			}
		}
	}
	_ = nQueries

	// Analyst-style costs: skewed-low in [0, 50] with mean ≈ 8; ~2% of
	// classifiers pre-built (cost 0); ~2% of multi-property classifiers
	// impractical (+Inf). Deterministic per classifier via hashing.
	// Singleton costs are partially correlated with property popularity —
	// the analysts' estimates reflect that commercially important
	// attributes are also the subtler ones to classify — which keeps the
	// utility-to-cost landscape non-degenerate (no single cheap classifier
	// for a top query dominates every aggregate, matching the finite ECC
	// ratios the paper reports).
	hseed := splitmix64(uint64(seed) ^ 0xda7a5e7)
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := hashSet(hseed, s)
		r := float64(h%10000) / 10000
		switch {
		case r < 0.02 && allowFree:
			return 0
		case r > 0.98 && s.Len() >= 2:
			return math.Inf(1)
		}
		// Beta(1,6)-style skew: mean ≈ 50/7 ≈ 7.1, plus a small floor.
		x := 1 - math.Pow(float64(splitmix64(h)%10000)/10000, 1.0/6)
		cost := math.Round(1 + 49*x)
		if s.Len() == 1 {
			// Popularity boost: property IDs are ci*propsPerCat + pi with
			// pi the within-category popularity rank.
			pi := int(s[0]) % propsPerCat
			cost = math.Round(0.55*cost + 32*propPopGlobal(pi))
			if cost < 1 {
				cost = 1
			}
		}
		// Conjunction classifiers need fewer examples than their hardest
		// component alone would suggest, but more than the easiest.
		if s.Len() >= 2 {
			cost = math.Round(cost*0.8) + float64(s.Len())
		}
		return math.Min(cost, 50)
	})
	return b.MustInstance(budget)
}

// propPopGlobal mirrors the within-category property popularity used by
// the Private generator (Zipf by rank).
func propPopGlobal(pi int) float64 { return 1 / math.Pow(float64(pi+1), 0.7) }

// PrivateSubset extracts a small coherent sub-instance of the Private
// dataset — the paper's Figure 3d setting ("iPhones"-style subdomains
// small enough for exhaustive search). It keeps picking queries from one
// category until the candidate classifier count would exceed maxCL.
func PrivateSubset(seed int64, budget float64, maxCL int) *model.Instance {
	full := Private(seed, budget)
	rng := rand.New(rand.NewSource(seed + 101))
	b := model.NewBuilderWithUniverse(full.Universe())
	b.SetDefaultCost(func(s propset.Set) float64 { return full.Cost(s) })

	// Pick a seed query, then greedily add queries sharing properties.
	queries := full.Queries()
	order := rng.Perm(len(queries))
	var chosen []model.Query
	clCount := map[string]bool{}
	var pool propset.Set
	for _, qi := range order {
		q := queries[qi]
		if len(chosen) > 0 && !q.Props.Intersects(pool) {
			continue
		}
		// Estimate classifier growth.
		grow := 0
		q.Props.Subsets(func(sub propset.Set) {
			if !clCount[sub.Key()] {
				grow++
			}
		})
		if len(clCount)+grow > maxCL {
			continue
		}
		q.Props.Subsets(func(sub propset.Set) { clCount[sub.Key()] = true })
		chosen = append(chosen, q)
		pool = pool.Union(q.Props)
		if len(clCount) >= maxCL-2 {
			break
		}
	}
	for _, q := range chosen {
		b.AddQuerySet(q.Props, q.Utility)
	}
	return b.MustInstance(budget)
}

// Synthetic follows the paper's generative process exactly: nQueries
// queries whose length is i with probability 2^-i (lengths above 6
// rejected and redrawn), properties drawn uniformly from a pool of 10K,
// integer costs uniform in [0, 50], integer utilities uniform in [1, 50].
func Synthetic(seed int64, nQueries int, budget float64) *model.Instance {
	return SyntheticPool(seed, nQueries, 10000, budget)
}

// SyntheticPool is Synthetic with an explicit property-pool size.
func SyntheticPool(seed int64, nQueries, poolSize int, budget float64) *model.Instance {
	return syntheticDriftPool(seed, nQueries, poolSize, budget, 0)
}

// SyntheticDrift returns the Synthetic(seed, nQueries, budget) workload
// after a churn event: ⌈churn·nQueries⌉ (at least one) randomly chosen
// queries are replaced with freshly drawn conjunctions over the same
// property pool, utility distribution, and cost model. The replacement
// stream is seeded independently of the base stream, so the un-churned
// queries are byte-identical to the base workload — exactly the drifted
// re-solve the incremental subsystem (internal/incr) warm-starts against,
// and deterministic for benchmark pinning.
func SyntheticDrift(seed int64, nQueries int, budget, churn float64) *model.Instance {
	return syntheticDriftPool(seed, nQueries, 10000, budget, churn)
}

func syntheticDriftPool(seed int64, nQueries, poolSize int, budget, churn float64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder()
	u := b.Universe()
	props := make([]propset.ID, poolSize)
	for i := range props {
		props[i] = u.Intern("s" + itoa(i))
	}
	seenQ := map[string]bool{}
	// draw samples one conjunction: length i with probability 2^-i, capped
	// at 6, properties uniform without replacement. Reports false on a
	// duplicate of an already-drawn conjunction (caller redraws).
	draw := func(r *rand.Rand) (propset.Set, bool) {
		ln := 1
		for ln < 6 && r.Float64() < 0.5 {
			ln++
		}
		ids := make([]propset.ID, 0, ln)
		seen := map[int]bool{}
		for len(ids) < ln {
			p := r.Intn(poolSize)
			if !seen[p] {
				seen[p] = true
				ids = append(ids, props[p])
			}
		}
		q := propset.New(ids...)
		return q, !seenQ[q.Key()]
	}
	type qrow struct {
		props   propset.Set
		utility float64
	}
	var rows []qrow
	for attempts := 0; len(rows) < nQueries && attempts < nQueries*20; attempts++ {
		q, fresh := draw(rng)
		if !fresh {
			continue // redraw duplicate conjunctions
		}
		seenQ[q.Key()] = true
		rows = append(rows, qrow{q, float64(1 + rng.Intn(50))})
	}
	if churn > 0 && len(rows) > 0 {
		drng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ 0xd21f7))))
		k := int(churn * float64(len(rows)))
		if k < 1 {
			k = 1
		}
		if k > len(rows) {
			k = len(rows)
		}
		perm := drng.Perm(len(rows))
		for i := 0; i < k; i++ {
			for attempts := 0; attempts < 20*nQueries; attempts++ {
				q, fresh := draw(drng)
				if !fresh {
					continue
				}
				seenQ[q.Key()] = true
				rows[perm[i]] = qrow{q, float64(1 + drng.Intn(50))}
				break
			}
		}
	}
	for _, r := range rows {
		b.AddQuerySet(r.props, r.utility)
	}
	hseed := splitmix64(uint64(seed) ^ 0x5feed)
	b.SetDefaultCost(func(s propset.Set) float64 {
		return float64(hashSet(hseed, s) % 51) // uniform integers in [0, 50]
	})
	return b.MustInstance(budget)
}

// SyntheticCorrelated is the Synthetic workload with cost–utility
// correlation: each property carries a latent "difficulty ≈ importance"
// value; query utilities average their properties' values and singleton
// classifier costs track the same values. Real analyst estimates show this
// correlation (hard-to-classify attributes are the commercially important
// ones), and without it the ECC objective degenerates to a single cheap
// high-utility classifier.
func SyntheticCorrelated(seed int64, nQueries int, budget float64) *model.Instance {
	return SyntheticCorrelatedPool(seed, nQueries, 10000, budget)
}

// SyntheticCorrelatedPool is SyntheticCorrelated with an explicit property
// pool size; smaller pools preserve the paper's queries-per-property
// density when the query count is scaled down.
func SyntheticCorrelatedPool(seed int64, nQueries, poolSize int, budget float64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder()
	u := b.Universe()
	props := make([]propset.ID, poolSize)
	value := make([]float64, poolSize) // latent importance/difficulty in [1, 50]
	for i := range props {
		props[i] = u.Intern("sc" + itoa(i))
		value[i] = 1 + 49*math.Pow(rng.Float64(), 2)
	}
	seenQ := map[string]bool{}
	added := 0
	for attempts := 0; added < nQueries && attempts < nQueries*20; attempts++ {
		ln := 1
		for ln < 6 && rng.Float64() < 0.5 {
			ln++
		}
		idx := make([]int, 0, ln)
		seen := map[int]bool{}
		for len(idx) < ln {
			p := rng.Intn(poolSize)
			if !seen[p] {
				seen[p] = true
				idx = append(idx, p)
			}
		}
		ids := make([]propset.ID, len(idx))
		var mean float64
		for j, p := range idx {
			ids[j] = props[p]
			mean += value[p]
		}
		mean /= float64(len(idx))
		q := propset.New(ids...)
		if seenQ[q.Key()] {
			continue
		}
		seenQ[q.Key()] = true
		util := math.Max(1, math.Min(50, math.Round(mean*(0.7+0.6*rng.Float64()))))
		b.AddQuerySet(q, util)
		added++
	}
	hseed := splitmix64(uint64(seed) ^ 0xc0441)
	b.SetDefaultCost(func(s propset.Set) float64 {
		var mx float64
		for _, id := range s {
			// Recover the pool index from the ID (IDs are assigned in
			// pool order).
			pi := int(id)
			if pi < poolSize && value[pi] > mx {
				mx = value[pi]
			}
		}
		noise := float64(hashSet(hseed, s)%9) - 4
		cost := math.Round(mx*0.8 + noise)
		if s.Len() >= 2 {
			cost += float64(s.Len())
		}
		return math.Max(1, math.Min(50, cost))
	})
	return b.MustInstance(budget)
}

// WithMinCost rebuilds an instance so that every classifier costs at
// least minCost (infinite costs stay infinite). The ECC experiments use it
// because already-built (zero-cost) classifiers make the optimal
// utility-to-cost ratio trivially infinite.
func WithMinCost(in *model.Instance, minCost float64) *model.Instance {
	b := model.NewBuilderWithUniverse(in.Universe())
	for _, q := range in.Queries() {
		b.AddQuerySet(q.Props, q.Utility)
	}
	b.SetDefaultCost(func(s propset.Set) float64 {
		c := in.Cost(s)
		if c < minCost {
			return minCost
		}
		return c
	})
	return b.MustInstance(in.Budget())
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
