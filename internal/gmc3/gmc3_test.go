package gmc3

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/propset"
)

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(20)))
	}
	seed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := seed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%7+7)%7)
	})
	return b.MustInstance(0) // budget unused by GMC3
}

func TestSolveReachesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 8, 15, 3)
		target := in.TotalUtility() * 0.5
		res := Solve(in, target, Options{Seed: int64(trial + 1)})
		if !res.Achieved {
			t.Fatalf("trial %d: target %v not reached (utility %v)", trial, target, res.Utility)
		}
		if got := res.Solution.Utility(); math.Abs(got-res.Utility) > 1e-6 {
			t.Fatalf("trial %d: reported utility %v != recomputed %v", trial, res.Utility, got)
		}
		if got := res.Solution.Cost(); math.Abs(got-res.Cost) > 1e-6 {
			t.Fatalf("trial %d: reported cost %v != recomputed %v", trial, res.Cost, got)
		}
	}
}

func TestSolveFullCoverageTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomInstance(rng, 6, 10, 2)
	res := Solve(in, in.TotalUtility(), Options{})
	if !res.Achieved {
		t.Fatalf("full-utility target unreachable: %v < %v", res.Utility, in.TotalUtility())
	}
}

func TestBaselinesReachTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 8, 15, 3)
		target := in.TotalUtility() * 0.4
		for name, res := range map[string]Result{
			"RAND(G)": SolveRand(in, target, int64(trial+1)),
			"IG1(G)":  SolveIG1(in, target),
			"IG2(G)":  SolveIG2(in, target),
		} {
			if !res.Achieved {
				t.Fatalf("trial %d: %s missed target %v (utility %v)",
					trial, name, target, res.Utility)
			}
		}
	}
}

func TestAGMC3CheaperOrEqualOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ours, ig1, ig2, rnd float64
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 10, 20, 3)
		target := in.TotalUtility() * 0.5
		ours += Solve(in, target, Options{Seed: int64(trial + 1)}).Cost
		ig1 += SolveIG1(in, target).Cost
		ig2 += SolveIG2(in, target).Cost
		rnd += SolveRand(in, target, int64(trial+1)).Cost
	}
	if ours > ig1+1e-9 && ours > ig2+1e-9 {
		t.Fatalf("A^GMC3 total cost %.1f worse than both IG1 %.1f and IG2 %.1f", ours, ig1, ig2)
	}
	if ours > rnd {
		t.Fatalf("A^GMC3 total cost %.1f worse than RAND %.1f", ours, rnd)
	}
}

func TestUnreachableTargetReturnsFullCover(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(5, "a")
	b.SetCost(2, "a")
	in := b.MustInstance(0)
	res := Solve(in, 100, Options{}) // target above total utility
	if res.Achieved {
		t.Fatal("unreachable target reported achieved")
	}
	if res.Utility != 5 {
		t.Fatalf("full cover should still be returned: utility %v", res.Utility)
	}
}

func TestZeroTarget(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(5, "a")
	b.SetCost(2, "a")
	in := b.MustInstance(0)
	res := Solve(in, 0, Options{})
	if !res.Achieved {
		t.Fatal("zero target must be trivially achieved")
	}
	if res.Cost != 0 {
		t.Fatalf("zero target should cost nothing, got %v", res.Cost)
	}
}
