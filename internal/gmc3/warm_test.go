package gmc3

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/propset"
)

// A warm-started run given an achieving incumbent must stay achieving
// and never report a higher cost, even when the deadline leaves no room
// to search: the checkpoint/resume path of internal/jobs depends on
// resumed slices never regressing.
func TestWarmStartKeepsAchievingIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 8, 20, 3)
	target := in.TotalUtility() * 0.6
	incumbent := Solve(in, target, Options{Seed: 1})
	if !incumbent.Achieved {
		t.Fatal("incumbent did not achieve the target; pick an easier target")
	}

	var warm []propset.Set
	for _, c := range incumbent.Solution.Classifiers() {
		warm = append(warm, c.Props)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := SolveCtx(ctx, in, target, Options{Seed: 1, Warm: warm})
	if !res.Achieved {
		t.Fatalf("warm-started run lost the achieved target (utility %v, target %v)", res.Utility, target)
	}
	if res.Cost > incumbent.Cost+1e-9 {
		t.Errorf("warm-started cost %v regressed above incumbent %v", res.Cost, incumbent.Cost)
	}
}

// A non-achieving incumbent still floors the best-effort answer.
func TestWarmStartFloorsBestEffort(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomInstance(rng, 8, 20, 3)
	target := in.TotalUtility() // everything: partial plans stay non-achieving
	partial := SolveIG1(in, in.TotalUtility()*0.4)

	var warm []propset.Set
	for _, c := range partial.Solution.Classifiers() {
		warm = append(warm, c.Props)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := SolveCtx(ctx, in, target, Options{Seed: 1, Warm: warm})
	if res.Utility < partial.Utility-1e-9 {
		t.Errorf("warm-started utility %v below incumbent floor %v", res.Utility, partial.Utility)
	}
}
