// Package gmc3 implements the Generalized MC3 problem (Definition 5.1 of
// the paper): given queries, utilities, classifier costs and a target
// utility T, find a classifier set of minimum cost whose covered queries
// have total utility at least T.
//
// The proposed algorithm A^GMC3 (Theorem 5.3) wraps the BCC solver: guess
// a budget B, repeatedly run A^BCC on the residual query set with budget B
// and commit its selection, until the accumulated utility reaches T; an
// outer binary search (seeded by the MC3 full-coverage cost, as in §6.3)
// finds the budget guess minimizing the final cost. The package also
// provides the RAND(G), IG1(G) and IG2(G) baselines: identical to their
// BCC counterparts except that the stopping condition is reaching the
// utility target rather than exhausting a budget.
package gmc3

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/guard"
	"repro/internal/mc3"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/propset"
)

// Options tunes A^GMC3.
type Options struct {
	// Seed drives all randomness. Default 1.
	Seed int64
	// BinarySearchSteps is the number of outer budget-guess halvings.
	// Default 8.
	BinarySearchSteps int
	// MaxInnerRounds caps the per-guess A^BCC repetitions. Default 8.
	MaxInnerRounds int
	// Warm seeds the run with a previously found plan — the incumbent of
	// an earlier checkpoint (internal/jobs). It is installed as the
	// initial best-effort result (and, when it already reaches the
	// target, as the initial cheapest achieving result after trimming),
	// so a warm-started run never reports less utility — or, once
	// achieving, higher cost — than the incumbent.
	Warm []propset.Set
	// Core tunes the inner A^BCC solver.
	Core core.Options
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BinarySearchSteps == 0 {
		o.BinarySearchSteps = 8
	}
	if o.MaxInnerRounds == 0 {
		o.MaxInnerRounds = 8
	}
	if o.Core.Seed == 0 {
		o.Core.Seed = o.Seed
	}
	// The inner A^BCC runs many times across budget guesses; cheaper
	// per-run settings trade a little per-guess quality for a much wider
	// search, which is the better bargain inside the binary search.
	if o.Core.MaxIterations == 0 {
		o.Core.MaxIterations = 6
	}
	if o.Core.QK.Iterations == 0 {
		o.Core.QK.Iterations = 4
	}
	return o
}

// Result reports a GMC3 run.
type Result struct {
	Solution *model.Solution
	// Cost is the total construction cost — the GMC3 objective.
	Cost float64
	// Utility is the achieved covered utility.
	Utility float64
	// Achieved reports whether Utility ≥ the target.
	Achieved bool
	// Iterations counts inner A^BCC runs (A^GMC3) or selection steps
	// (baselines).
	Iterations int
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; non-Complete results still carry
	// the best solution found (which may miss the target).
	Status guard.Status
	// Err is the context error or contained panic for a non-Complete run.
	Err error
}

func resultFrom(t *cover.Tracker, target float64, iters int, start time.Time) Result {
	return Result{
		Solution:   t.Solution(),
		Cost:       t.Cost(),
		Utility:    t.Utility(),
		Achieved:   t.Utility() >= target-1e-9,
		Iterations: iters,
		Duration:   time.Since(start),
	}
}

// Solve runs A^GMC3 on the instance's queries with the given utility
// target. The instance's own budget field is ignored.
func Solve(in *model.Instance, target float64, opts Options) Result {
	return SolveCtx(context.Background(), in, target, opts)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation it
// returns the cheapest target-achieving solution found so far — or, when
// no budget guess achieved the target yet, the highest-utility partial
// solution — with Result.Status reporting why it stopped. Panics in the
// solver stack (including inner A^BCC runs) surface as Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance, target float64, opts Options) (res Result) {
	start := time.Now()
	opts = opts.withDefaults()
	g := guard.New(ctx)
	rec := obs.FromContext(ctx)

	best := Result{Cost: math.Inf(1)}
	bestEffort := Result{Solution: model.NewSolution(in)}
	iters := 0
	finish := func() Result {
		r := best
		if math.IsInf(r.Cost, 1) {
			r = bestEffort
		}
		r.Iterations = iters
		r.Duration = time.Since(start)
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()
	if g.Tripped() {
		return finish()
	}

	// Warm start: adopt the checkpointed incumbent as the floor before
	// any search runs, so even an immediately-tripped resumed run keeps
	// prior progress.
	if len(opts.Warm) > 0 {
		t := cover.New(in)
		for _, w := range opts.Warm {
			t.Add(w)
		}
		if t.Utility() >= target-1e-9 {
			trimToTarget(t, target)
			best = resultFrom(t, target, 0, start)
		}
		bestEffort = resultFrom(t, target, 0, start)
	}

	// Upper bound: the MC3 full-coverage cost (covers every coverable
	// query, hence reaches any achievable target).
	var queries []propset.Set
	for _, q := range in.Queries() {
		queries = append(queries, q.Props)
	}
	full := mc3.Solve(mc3.Input{
		Queries: queries,
		Cost:    func(s propset.Set) float64 { return in.Cost(s) },
	})
	hi := full.Cost
	if hi <= 0 {
		hi = 1
	}

	try := func(budget float64) Result {
		t := cover.New(in)
		rounds := 0
		for t.Utility() < target-1e-9 && rounds < opts.MaxInnerRounds && !g.Tripped() {
			guard.Inject("gmc3.residual")
			t0 := rec.Start()
			residual := in.NumQueries() - t.CoveredCount()
			gain := runResidualBCC(ctx, g, in, t, budget, opts)
			rec.End(obs.StageGMC3Residual, t0, residual)
			rounds++
			iters++
			if gain == 0 {
				break // no progress at this budget
			}
		}
		if t.Utility() >= target-1e-9 {
			trimToTarget(t, target)
		}
		r := resultFrom(t, target, rounds, start)
		if r.Utility > bestEffort.Utility ||
			(r.Utility == bestEffort.Utility && r.Cost < bestEffort.Cost) {
			bestEffort = r
		}
		return r
	}

	// The full-coverage budget always succeeds (when the target is
	// achievable at all).
	if r := try(hi); r.Achieved && r.Cost < best.Cost {
		best = r
	}
	// Binary search for the cheapest successful budget guess.
	lo, hiB := 0.0, hi
	for step := 0; step < opts.BinarySearchSteps && !g.Tripped(); step++ {
		mid := (lo + hiB) / 2
		if mid <= 0 {
			break
		}
		r := try(mid)
		if r.Achieved {
			if r.Cost < best.Cost {
				best = r
			}
			hiB = mid
		} else {
			lo = mid
		}
	}
	// Greedy floors: trim the IG1(G)/IG2(G) solutions to the target and
	// adopt whichever is cheapest. As with A^BCC's floor (DESIGN.md), this
	// keeps A^GMC3 from trailing the adaptive greedies by slivers on
	// unstructured workloads.
	if !g.Tripped() {
		for _, seed := range []Result{SolveIG1(in, target), SolveIG2(in, target)} {
			if !seed.Achieved {
				continue
			}
			t := cover.New(in)
			for _, c := range seed.Solution.Classifiers() {
				t.Add(c.Props)
			}
			trimToTarget(t, target)
			if r := resultFrom(t, target, iters, start); r.Achieved && r.Cost < best.Cost {
				best = r
			}
		}
	}
	if math.IsInf(best.Cost, 1) && !g.Tripped() {
		// Target unreachable: return the full-coverage solution.
		t := cover.New(in)
		for _, c := range full.Classifiers {
			t.Add(c)
		}
		best = resultFrom(t, target, iters, start)
	}
	return finish()
}

// trimToTarget reverse-deletes selected classifiers (costliest first) as
// long as the covered utility stays at or above the target, removing the
// budget-guess overshoot that A^BCC's utility-maximizing inner runs incur.
// Each trial removal is incremental (only the affected queries are
// re-evaluated, and rolled back by re-adding on failure).
func trimToTarget(t *cover.Tracker, target float64) {
	sel := t.SelectedSets()
	in := t.Instance()
	// Costliest first.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && in.Cost(sel[j]) > in.Cost(sel[j-1]); j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	for _, c := range sel {
		if in.Cost(c) == 0 {
			continue
		}
		t.Remove(c)
		if t.Utility() < target-1e-9 {
			t.Add(c)
		}
	}
}

// runResidualBCC runs A^BCC with the given budget on the instance
// restricted to the queries not yet covered by t, committing the resulting
// selection into t. It returns the utility gained. A Recovered status from
// the inner run is propagated onto the outer guard so the caller's result
// reports it.
func runResidualBCC(ctx context.Context, g *guard.Guard, in *model.Instance, t *cover.Tracker, budget float64, opts Options) float64 {
	b := model.NewBuilderWithUniverse(in.Universe())
	any := false
	for qi, q := range in.Queries() {
		if !t.Covered(qi) {
			b.AddQuerySet(q.Props, q.Utility)
			any = true
		}
	}
	if !any {
		return 0
	}
	// Costs: already-selected classifiers are free in the residual.
	b.SetDefaultCost(func(s propset.Set) float64 {
		if t.Has(s) {
			return 0
		}
		return in.Cost(s)
	})
	sub, err := b.Instance(budget)
	if err != nil {
		return 0
	}
	res := core.SolveCtx(ctx, sub, opts.Core)
	if res.Status == guard.Recovered {
		g.NoteError(res.Err)
	}
	before := t.Utility()
	for _, c := range res.Solution.Classifiers() {
		t.Add(c.Props)
	}
	return t.Utility() - before
}

// SolveRand is RAND(G): select uniformly random classifiers until the
// target utility is reached (or no candidates remain).
func SolveRand(in *model.Instance, target float64, seed int64) Result {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	t := cover.New(in)
	pool := make([]propset.Set, 0, len(in.Classifiers()))
	for _, c := range in.Classifiers() {
		pool = append(pool, c.Props)
	}
	steps := 0
	for len(pool) > 0 && t.Utility() < target-1e-9 {
		i := rng.Intn(len(pool))
		c := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if t.Has(c) {
			continue
		}
		t.Add(c)
		steps++
	}
	return resultFrom(t, target, steps, start)
}

// SolveIG1 is IG1(G): repeatedly select the cheapest cover of the query
// with the best utility-to-cost ratio, until the target is reached. Query
// scores are kept in a lazily revalidated max-heap and refreshed only for
// the queries a selected classifier can affect.
func SolveIG1(in *model.Instance, target float64) Result {
	start := time.Now()
	t := cover.New(in)
	h := &scoreHeap{}
	heap.Init(h)
	score := make([]float64, in.NumQueries())
	covSets := make([][]propset.Set, in.NumQueries())

	refresh := func(qi int) {
		if t.Covered(qi) {
			score[qi] = 0
			return
		}
		cost, sets := t.MinCoverCost(qi, nil)
		covSets[qi] = sets
		u := in.Queries()[qi].Utility
		switch {
		case math.IsInf(cost, 1):
			score[qi] = 0
		case cost == 0:
			score[qi] = math.Inf(1)
		default:
			score[qi] = u / cost
		}
		if score[qi] > 0 {
			heap.Push(h, scoreEntry{qi, score[qi]})
		}
	}
	for qi := range in.Queries() {
		refresh(qi)
	}

	steps := 0
	for h.Len() > 0 && t.Utility() < target-1e-9 {
		e := heap.Pop(h).(scoreEntry)
		qi := e.ci
		if t.Covered(qi) || score[qi] == 0 {
			continue
		}
		if e.score > score[qi]+1e-12 || e.score < score[qi]-1e-12 {
			heap.Push(h, scoreEntry{qi, score[qi]})
			continue
		}
		touched := map[int]bool{}
		for _, c := range covSets[qi] {
			for _, q2 := range t.RelevantQueries(c) {
				touched[q2] = true
			}
			t.Add(c)
		}
		if len(covSets[qi]) == 0 {
			score[qi] = 0
			continue
		}
		steps++
		for q2 := range touched {
			refresh(q2)
		}
	}
	return resultFrom(t, target, steps, start)
}

// SolveIG2 is IG2(G): repeatedly select the single classifier with the
// best (uncovered-utility containing it) / cost ratio, until the target is
// reached.
func SolveIG2(in *model.Instance, target float64) Result {
	start := time.Now()
	t := cover.New(in)
	util := make(map[string]float64)
	for _, q := range in.Queries() {
		u := q.Utility
		q.Props.Subsets(func(sub propset.Set) {
			util[sub.Key()] += u
		})
	}
	classifiers := in.Classifiers()
	scoreOf := func(ci int) float64 {
		c := classifiers[ci]
		u := util[c.Props.Key()]
		if u <= 0 {
			return 0
		}
		if c.Cost == 0 {
			return math.Inf(1)
		}
		return u / c.Cost
	}
	h := &scoreHeap{}
	heap.Init(h)
	for ci := range classifiers {
		if s := scoreOf(ci); s > 0 {
			heap.Push(h, scoreEntry{ci, s})
		}
	}
	steps := 0
	for h.Len() > 0 && t.Utility() < target-1e-9 {
		e := heap.Pop(h).(scoreEntry)
		c := classifiers[e.ci]
		if t.Has(c.Props) {
			continue
		}
		s := scoreOf(e.ci)
		if s == 0 {
			continue
		}
		if e.score > s+1e-12 {
			heap.Push(h, scoreEntry{e.ci, s})
			continue
		}
		rel := t.RelevantQueries(c.Props)
		before := make([]bool, len(rel))
		for i, qi := range rel {
			before[i] = t.Covered(qi)
		}
		t.Add(c.Props)
		steps++
		for i, qi := range rel {
			if t.Covered(qi) && !before[i] {
				u := in.Queries()[qi].Utility
				in.Queries()[qi].Props.Subsets(func(sub propset.Set) {
					util[sub.Key()] -= u
				})
			}
		}
	}
	return resultFrom(t, target, steps, start)
}

type scoreEntry struct {
	ci    int
	score float64
}

type scoreHeap []scoreEntry

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(scoreEntry)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
