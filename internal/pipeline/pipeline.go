// Package pipeline is the supervised re-solve scheduler of the
// continuous workload loop: it tails the query-log WAL (internal/wal),
// assembles arriving records into tumbling windows, runs each window as
// a checkpointed solve job (internal/jobs), and atomically publishes a
// last-good plan that survives crashes.
//
// Crash-safety is position-based: the pipeline's whole consumption
// state — WAL position, cumulative counters, the published plan, and
// any in-flight window — lives in one bccplan/1 record rewritten
// atomically at every transition. On restart the scheduler adopts the
// in-flight window (awaiting its job, taking its finished result, or
// rebuilding the request from the WAL byte range it recorded) instead
// of re-solving completed windows or dropping acknowledged records.
//
// Falling behind degrades explicitly, never silently (the "degradation
// ladder", DESIGN.md §16):
//
//  1. on time   — each tick solves the pending records as one window;
//  2. coalesce  — a backlog spanning several windows is folded into one
//     solve (bcc_pipeline_windows_coalesced_total counts the extras);
//  3. skip      — records older than SkipAfter are advanced past
//     without solving (bcc_pipeline_windows_skipped_total,
//     bcc_pipeline_records_skipped_total), because a plan computed from
//     them would be staler than the last-good plan already serving;
//  4. shed      — Ingest refuses new lines once the backlog exceeds
//     MaxBacklogRecords (ErrBacklog → HTTP 429), protecting the WAL
//     from unbounded growth when the solver cannot keep up.
//
// Throughout, the last successfully published plan keeps serving, with
// bcc_pipeline_plan_age_seconds exposing exactly how stale it is.
package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/propset"
	"repro/internal/querylog"
	"repro/internal/resilience"
	"repro/internal/wal"
)

// StateFormat frames the persisted pipeline state record.
const StateFormat = "bccplan/1"

const stateFile = "plan.bccplan"

// ErrBacklog is returned by Ingest when the unconsumed backlog exceeds
// Options.MaxBacklogRecords; the HTTP layer maps it to 429 so clients
// back off instead of growing the WAL without bound.
var ErrBacklog = errors.New("pipeline: ingest backlog full")

// ErrNoPlan is returned by CurrentPlan before the first publish.
var ErrNoPlan = errors.New("pipeline: no plan published yet")

// errClosing aborts an in-progress wait when Close is called; the
// in-flight window stays persisted for the next Open to adopt.
var errClosing = errors.New("pipeline: shutting down")

// LineError reports which ingest line was malformed (HTTP 400).
type LineError struct {
	Index int
	Err   error
}

func (e *LineError) Error() string {
	return fmt.Sprintf("pipeline: line %d: %v", e.Index, e.Err)
}

func (e *LineError) Unwrap() error { return e.Err }

// Jobs is the slice of the solve-job machinery the scheduler needs;
// internal/server adapts jobs.Manager (validating and fingerprinting
// each request on the way in), and tests substitute fakes.
type Jobs interface {
	Submit(req *api.JobRequest) (*api.JobStatus, error)
	Status(id string) (*api.JobStatus, error)
	Result(id string) (*api.SolveResponse, *api.JobStatus, error)
	Cancel(id string) (*api.JobStatus, error)
}

// Options configures Open. Dir and Jobs are required.
type Options struct {
	// Dir is the WAL directory; the state record lives beside the
	// segments as plan.bccplan.
	Dir string
	// Window is the tumbling re-solve period (default 30s).
	Window time.Duration
	// Retention keeps fully-consumed WAL segments around this long
	// before compaction deletes them (0 = delete once consumed).
	Retention time.Duration
	// CoalesceLimit is how many windows of backlog are folded into one
	// solve before older records are skipped instead (default 4):
	// SkipAfter = CoalesceLimit × Window.
	CoalesceLimit int
	// MaxBacklogRecords sheds ingest (429) once the unconsumed backlog
	// exceeds it (default 100000).
	MaxBacklogRecords int64
	// WatchdogFactor sizes the per-window job deadline as a multiple of
	// Window (default 2). Checkpointed jobs complete with their anytime
	// incumbent at the deadline, so the watchdog bounds staleness, not
	// success.
	WatchdogFactor float64
	// WatchdogGrace is how long past the job deadline to keep waiting
	// before cancelling a wedged job (default Window).
	WatchdogGrace time.Duration
	// PollInterval paces job-status polling (default 25ms).
	PollInterval time.Duration
	// MaxRetries bounds re-submissions of a failed window before it is
	// counted failed and abandoned (default 3).
	MaxRetries int
	// Backoff paces those retries (zero value = resilience defaults).
	Backoff resilience.Backoff

	// Algo/Budget/Seed/Target shape the solve request built from each
	// window (defaults: submod, budget 10, seed 1).
	Algo   string
	Budget float64
	Seed   int64
	Target float64
	// CostBase/CostPerProp synthesize classifier costs for workload
	// queries (cost = CostBase + CostPerProp × |props|; default 0 + 1×,
	// the unit-cost model).
	CostBase    float64
	CostPerProp float64

	// SegmentBytes/SegmentAge/NoSync pass through to the WAL.
	SegmentBytes int64
	SegmentAge   time.Duration
	NoSync       bool

	// Jobs runs the solves. Required.
	Jobs Jobs
	// Registry receives the pipeline metric inventory (nil = none).
	Registry *obs.Registry
	// Logf receives supervision events (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 30 * time.Second
	}
	if o.CoalesceLimit <= 0 {
		o.CoalesceLimit = 4
	}
	if o.MaxBacklogRecords <= 0 {
		o.MaxBacklogRecords = 100000
	}
	if o.WatchdogFactor <= 0 {
		o.WatchdogFactor = 2
	}
	if o.WatchdogGrace <= 0 {
		o.WatchdogGrace = o.Window
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.Algo == "" {
		o.Algo = "submod"
	}
	if o.Budget <= 0 {
		o.Budget = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CostPerProp == 0 && o.CostBase == 0 {
		o.CostPerProp = 1
	}
	return o
}

// inflight records a window whose job has been submitted but whose
// result has not been published: enough to adopt it after a crash —
// await the job, take its result, or rebuild the request from the WAL
// range [Start, End).
type inflight struct {
	JobID     string       `json:"job_id"`
	Start     wal.Position `json:"start"`
	End       wal.Position `json:"end"`
	Records   int          `json:"records"`
	Coalesced int          `json:"coalesced"`
	FromMS    int64        `json:"from_ms"`
	ToMS      int64        `json:"to_ms"`
	Attempts  int          `json:"attempts"`
}

// state is the single atomically-persisted record (bccplan/1) holding
// everything the pipeline must not lose across a crash. Counters are
// cumulative so the conservation invariant
//
//	RecordsTotal + RecordsSkipped + RecordsFailed == acknowledged lines
//
// holds across restarts: every acknowledged record is eventually
// accounted to exactly one bucket.
type state struct {
	Seq uint64       `json:"seq"`
	Pos wal.Position `json:"pos"`

	RecordsTotal   uint64 `json:"records_total"`
	RecordsSkipped uint64 `json:"records_skipped"`
	RecordsFailed  uint64 `json:"records_failed"`

	WindowsSolved    uint64 `json:"windows_solved"`
	WindowsCoalesced uint64 `json:"windows_coalesced"`
	WindowsSkipped   uint64 `json:"windows_skipped"`
	WindowsFailed    uint64 `json:"windows_failed"`
	WindowsEmpty     uint64 `json:"windows_empty"`

	PublishedUnixMS  int64              `json:"published_unix_ms,omitempty"`
	WindowFromMS     int64              `json:"window_from_ms,omitempty"`
	WindowToMS       int64              `json:"window_to_ms,omitempty"`
	WindowRecords    int                `json:"window_records,omitempty"`
	CoalescedWindows int                `json:"coalesced_windows,omitempty"`
	Plan             *api.SolveResponse `json:"plan,omitempty"`

	Inflight *inflight `json:"inflight,omitempty"`
}

// windowMeta describes one window on its way through solve → publish.
type windowMeta struct {
	start, end   wal.Position
	records      int
	coalesced    int
	fromMS, toMS int64
	attempts     int
	adoptedJobID string
}

// Stats is the pipeline's /v1/statz section.
type Stats struct {
	Seq              uint64  `json:"seq"`
	PlanAgeSeconds   float64 `json:"plan_age_seconds"` // -1 before first publish
	BacklogRecords   int64   `json:"backlog_records"`
	Inflight         bool    `json:"inflight"`
	WindowsSolved    uint64  `json:"windows_solved"`
	WindowsCoalesced uint64  `json:"windows_coalesced"`
	WindowsSkipped   uint64  `json:"windows_skipped"`
	WindowsFailed    uint64  `json:"windows_failed"`
	WindowsEmpty     uint64  `json:"windows_empty"`
	RecordsTotal     uint64  `json:"records_total"`
	RecordsSkipped   uint64  `json:"records_skipped"`
	RecordsFailed    uint64  `json:"records_failed"`
	Ingested         uint64  `json:"ingested"`
	IngestRejected   uint64  `json:"ingest_rejected"`
	SolveRetries     uint64  `json:"solve_retries"`
	// WarmChained counts window solves seeded from the previous window's
	// published plan (incremental re-solve chaining, DESIGN.md §17).
	WarmChained uint64    `json:"warm_chained"`
	WAL         wal.Stats `json:"wal"`
}

// Pipeline is the running scheduler. Open it, feed it via Ingest, read
// via CurrentPlan/Stats, Close it to stop (the in-flight window, if
// any, is adopted by the next Open).
type Pipeline struct {
	opts      Options
	wal       *wal.WAL
	statePath string

	mu sync.Mutex
	st state

	backlog     atomic.Int64
	ingested    atomic.Uint64
	rejected    atomic.Uint64
	retries     atomic.Uint64
	warmChained atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// Open recovers the pipeline from dir (WAL + state record) and starts
// the scheduler goroutine.
func Open(opts Options) (*Pipeline, error) {
	opts = opts.withDefaults()
	if opts.Jobs == nil {
		return nil, errors.New("pipeline: Options.Jobs is required")
	}
	w, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		SegmentBytes: opts.SegmentBytes,
		SegmentAge:   opts.SegmentAge,
		NoSync:       opts.NoSync,
	})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		opts:      opts,
		wal:       w,
		statePath: filepath.Join(opts.Dir, stateFile),
		done:      make(chan struct{}),
	}
	p.st = p.loadState()
	// The WAL cursor is advisory redundancy: if the state record was
	// lost but the cursor survived (or vice versa), resume from the
	// furthest committed position rather than re-solving from zero.
	if cur, ok := w.LoadCursor(); ok && p.st.Pos.Less(cur) {
		p.st.Pos = cur
	}
	pending, err := w.CountFrom(p.st.Pos)
	if err != nil {
		w.Close()
		return nil, err
	}
	// An in-flight window's records are already counted: Pos only
	// advances when the window publishes, so CountFrom still sees them.
	p.backlog.Store(int64(pending))
	p.initMetrics(opts.Registry)

	p.wg.Add(1)
	go p.loop()
	return p, nil
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// loadState reads the persisted state record; a missing or corrupt
// record starts from zero (the WAL cursor and at-least-once delivery
// make that safe — never fatal, matching the WAL's repair stance).
func (p *Pipeline) loadState() state {
	var st state
	data, err := os.ReadFile(p.statePath)
	if err != nil {
		return st
	}
	body, err := durable.DecodeRecord(StateFormat, p.statePath, data)
	if err != nil {
		p.logf("pipeline: state record unreadable (%v); restarting from WAL cursor", err)
		return state{}
	}
	if err := json.Unmarshal(body, &st); err != nil {
		p.logf("pipeline: state record undecodable (%v); restarting from WAL cursor", err)
		return state{}
	}
	return st
}

// persistLocked atomically rewrites the state record and installs st as
// current. A persist failure keeps the in-memory state (the scheduler
// must make progress) but is loud: after a crash the lost transition is
// re-done, which at-least-once semantics absorb.
func (p *Pipeline) persistLocked(st state) {
	body, err := json.Marshal(&st)
	if err == nil {
		err = durable.WriteFileAtomic(p.statePath, durable.EncodeRecord(StateFormat, body))
	}
	if err != nil {
		p.logf("pipeline: persisting state: %v", err)
	}
	p.st = st
}

// Ingest validates and durably appends query-log lines; a line is only
// acknowledged after the WAL fsync. Blank and comment lines are
// accepted (a log replayer shouldn't have to strip them) but not
// appended. Returns how many lines were appended.
func (p *Pipeline) Ingest(lines []string) (int, error) {
	bodies := make([][]byte, 0, len(lines))
	for i, line := range lines {
		if err := querylog.CheckTimedLine(line); err != nil {
			p.rejected.Add(1)
			return 0, &LineError{Index: i, Err: err}
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		bodies = append(bodies, []byte(trimmed))
	}
	if len(bodies) == 0 {
		return 0, nil
	}
	if p.backlog.Load()+int64(len(bodies)) > p.opts.MaxBacklogRecords {
		p.rejected.Add(uint64(len(bodies)))
		return 0, ErrBacklog
	}
	if _, err := p.wal.Append(bodies...); err != nil {
		return 0, err
	}
	p.backlog.Add(int64(len(bodies)))
	p.ingested.Add(uint64(len(bodies)))
	return len(bodies), nil
}

// Window reports the configured tumbling window (the HTTP layer's
// Retry-After advice for a shed ingest).
func (p *Pipeline) Window() time.Duration { return p.opts.Window }

// CurrentPlan returns the last published plan with staleness metadata,
// or ErrNoPlan before the first publish.
func (p *Pipeline) CurrentPlan() (*api.CurrentPlanResponse, error) {
	p.mu.Lock()
	st := p.st
	backlog := p.backlog.Load()
	p.mu.Unlock()
	if st.Plan == nil {
		return nil, ErrNoPlan
	}
	return &api.CurrentPlanResponse{
		Seq:              st.Seq,
		Plan:             st.Plan,
		WindowFromUnixMS: st.WindowFromMS,
		WindowToUnixMS:   st.WindowToMS,
		WindowRecords:    st.WindowRecords,
		CoalescedWindows: st.CoalescedWindows,
		PublishedUnixMS:  st.PublishedUnixMS,
		AgeSeconds:       float64(time.Now().UnixMilli()-st.PublishedUnixMS) / 1000,
		BacklogRecords:   backlog,
	}, nil
}

// Stats snapshots the pipeline for /v1/statz.
func (p *Pipeline) Stats() *Stats {
	p.mu.Lock()
	st := p.st
	backlog := p.backlog.Load()
	p.mu.Unlock()
	s := &Stats{
		Seq:              st.Seq,
		PlanAgeSeconds:   -1,
		BacklogRecords:   backlog,
		Inflight:         st.Inflight != nil,
		WindowsSolved:    st.WindowsSolved,
		WindowsCoalesced: st.WindowsCoalesced,
		WindowsSkipped:   st.WindowsSkipped,
		WindowsFailed:    st.WindowsFailed,
		WindowsEmpty:     st.WindowsEmpty,
		RecordsTotal:     st.RecordsTotal,
		RecordsSkipped:   st.RecordsSkipped,
		RecordsFailed:    st.RecordsFailed,
		Ingested:         p.ingested.Load(),
		IngestRejected:   p.rejected.Load(),
		SolveRetries:     p.retries.Load(),
		WarmChained:      p.warmChained.Load(),
		WAL:              p.wal.Stats(),
	}
	if st.PublishedUnixMS > 0 {
		s.PlanAgeSeconds = float64(time.Now().UnixMilli()-st.PublishedUnixMS) / 1000
	}
	return s
}

func (p *Pipeline) initMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	counter := func(name, help string, fn func(st state) uint64) {
		reg.CounterFunc(name, help, nil, func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(fn(p.st))
		})
	}
	counter("bcc_pipeline_windows_solved_total", "Windows solved and published.",
		func(st state) uint64 { return st.WindowsSolved })
	counter("bcc_pipeline_windows_coalesced_total", "Extra backlog windows folded into a single solve.",
		func(st state) uint64 { return st.WindowsCoalesced })
	counter("bcc_pipeline_windows_skipped_total", "Stale windows advanced past without solving.",
		func(st state) uint64 { return st.WindowsSkipped })
	counter("bcc_pipeline_windows_failed_total", "Windows abandoned after exhausting solve retries.",
		func(st state) uint64 { return st.WindowsFailed })
	counter("bcc_pipeline_windows_empty_total", "Windows whose records produced no solvable workload.",
		func(st state) uint64 { return st.WindowsEmpty })
	counter("bcc_pipeline_records_total", "Records consumed into solved or empty windows.",
		func(st state) uint64 { return st.RecordsTotal })
	counter("bcc_pipeline_records_skipped_total", "Records skipped as stale by the degradation ladder.",
		func(st state) uint64 { return st.RecordsSkipped })
	counter("bcc_pipeline_records_failed_total", "Records in windows abandoned after retries.",
		func(st state) uint64 { return st.RecordsFailed })
	reg.CounterFunc("bcc_pipeline_ingested_total", "Lines durably acknowledged into the WAL.", nil,
		func() float64 { return float64(p.ingested.Load()) })
	reg.CounterFunc("bcc_pipeline_ingest_rejected_total", "Ingest lines rejected (malformed or backlog shed).", nil,
		func() float64 { return float64(p.rejected.Load()) })
	reg.CounterFunc("bcc_pipeline_solve_retries_total", "Window solve re-submissions after failure.", nil,
		func() float64 { return float64(p.retries.Load()) })
	reg.CounterFunc("bcc_incr_warm_chained_total", "Window solves seeded from the previous published plan.", nil,
		func() float64 { return float64(p.warmChained.Load()) })
	reg.CounterFunc("bcc_wal_corrupt_truncated_total", "WAL tails truncated at open (corrupt or torn).", nil,
		func() float64 { return float64(p.wal.Truncations()) })
	reg.GaugeFunc("bcc_pipeline_plan_age_seconds", "Seconds since the last plan publish (-1 before the first).", nil,
		func() float64 {
			p.mu.Lock()
			ms := p.st.PublishedUnixMS
			p.mu.Unlock()
			if ms == 0 {
				return -1
			}
			return float64(time.Now().UnixMilli()-ms) / 1000
		})
	reg.GaugeFunc("bcc_pipeline_backlog_records", "Acknowledged records not yet consumed by a published window.", nil,
		func() float64 { return float64(p.backlog.Load()) })
	reg.GaugeFunc("bcc_pipeline_inflight", "Whether a window solve is in flight (0/1).", nil,
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.st.Inflight != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("bcc_wal_segments", "Live WAL segment files.", nil,
		func() float64 { return float64(p.wal.Stats().Segments) })
}

// Close stops the scheduler. An in-flight job keeps running inside the
// jobs manager (which has its own drain semantics); its window stays
// persisted for the next Open to adopt.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return p.wal.Close()
}

// loop drives the scheduler: adopt any crashed-over in-flight window
// immediately, then tick every Window.
func (p *Pipeline) loop() {
	defer p.wg.Done()
	if !p.tick() {
		return
	}
	t := time.NewTicker(p.opts.Window)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			if !p.tick() {
				return
			}
		}
	}
}

// tick is one scheduler round. Returns false when shutting down.
func (p *Pipeline) tick() bool {
	if inf := p.inflightSnapshot(); inf != nil {
		if !p.adoptInflight(inf) {
			return false
		}
	}
	p.mu.Lock()
	pos := p.st.Pos
	p.mu.Unlock()

	recs, end, err := p.wal.ReadFrom(pos, 0)
	if err != nil {
		p.logf("pipeline: reading WAL from %v: %v", pos, err)
		return true
	}
	if len(recs) == 0 {
		p.compact(end)
		return true
	}
	now := time.Now().UnixMilli()
	winMS := p.opts.Window.Milliseconds()

	// Rung 3: skip the stale prefix. Records that waited longer than
	// CoalesceLimit windows would only yield a plan staler than the one
	// already serving; advancing past them (counted) is strictly better
	// than queueing further behind.
	skipCut := now - int64(p.opts.CoalesceLimit)*winMS
	stale := 0
	for stale < len(recs) && recs[stale].AppendUnixMS < skipCut {
		stale++
	}
	if stale > 0 {
		span := recs[stale-1].AppendUnixMS - recs[0].AppendUnixMS
		windows := int(math.Ceil(float64(span)/float64(winMS))) + 1
		p.mu.Lock()
		st := p.st
		st.Pos = recs[stale-1].End
		st.RecordsSkipped += uint64(stale)
		st.WindowsSkipped += uint64(windows)
		p.persistLocked(st)
		// Decrement while holding mu: a Stats reader must never see the
		// counters advanced with the backlog not yet drained.
		p.backlog.Add(-int64(stale))
		p.mu.Unlock()
		p.logf("pipeline: behind by >%d windows; skipped %d stale records (%d windows)",
			p.opts.CoalesceLimit, stale, windows)
		recs = recs[stale:]
		if len(recs) == 0 {
			return true
		}
	}

	// Rung 2: whatever survives the skip is solved as one window; a
	// backlog spanning several windows coalesces (counted).
	p.mu.Lock()
	start := p.st.Pos // may have advanced past pos if a stale prefix was skipped
	p.mu.Unlock()
	meta := windowMeta{
		start:   start,
		end:     recs[len(recs)-1].End,
		records: len(recs),
		fromMS:  recs[0].AppendUnixMS,
		toMS:    recs[len(recs)-1].AppendUnixMS,
	}
	if span := meta.toMS - meta.fromMS; span > winMS {
		meta.coalesced = int(span / winMS)
	}
	return p.solveWindow(recs, meta)
}

func (p *Pipeline) inflightSnapshot() *inflight {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.Inflight == nil {
		return nil
	}
	inf := *p.st.Inflight
	return &inf
}

// adoptInflight resumes a window whose job was submitted before a crash
// or restart: take its result if it finished, await it if it is still
// running, or rebuild and resubmit it if it died. Never re-solves a
// published window (publishing clears Inflight in the same atomic write
// that advances Pos) and never drops one. Returns false when shutting
// down.
func (p *Pipeline) adoptInflight(inf *inflight) bool {
	meta := windowMeta{
		start:        inf.Start,
		end:          inf.End,
		records:      inf.Records,
		coalesced:    inf.Coalesced,
		fromMS:       inf.FromMS,
		toMS:         inf.ToMS,
		attempts:     inf.Attempts,
		adoptedJobID: inf.JobID,
	}
	st, err := p.opts.Jobs.Status(inf.JobID)
	if err == nil && st != nil {
		p.logf("pipeline: adopting in-flight window (job %s, state %s)", inf.JobID, st.State)
		resp, werr := p.await(inf.JobID)
		switch {
		case errors.Is(werr, errClosing):
			return false
		case werr == nil:
			p.publish(resp, meta)
			return true
		default:
			p.logf("pipeline: adopted job %s: %v", inf.JobID, werr)
		}
	} else {
		p.logf("pipeline: in-flight job %s unknown after restart; re-solving its window", inf.JobID)
	}
	// The job is gone or failed: rebuild the request from the recorded
	// WAL byte range and run the window again.
	recs, _, err := p.wal.ReadFrom(inf.Start, 0)
	if err != nil {
		p.logf("pipeline: re-reading in-flight window: %v", err)
		return true // leave Inflight for the next tick; WAL may recover
	}
	window := recs[:0]
	for _, r := range recs {
		if !inf.End.Less(r.End) {
			window = append(window, r)
		}
	}
	if len(window) == 0 {
		// The range compacted away underneath a failed job — only
		// possible if it was already consumed, so drop the marker.
		p.clearInflight()
		return true
	}
	meta.adoptedJobID = ""
	return p.solveWindow(window, meta)
}

func (p *Pipeline) clearInflight() {
	p.mu.Lock()
	st := p.st
	st.Inflight = nil
	p.persistLocked(st)
	p.mu.Unlock()
}

// buildRequest turns a window of WAL records into a solve request via
// querylog accumulation. The window is arrival-ordered and already
// bounded, so ParseTimed runs unwindowed — event-time filtering
// happened when the producer chose what to ingest.
func (p *Pipeline) buildRequest(recs []wal.Record) (*api.JobRequest, error) {
	var sb strings.Builder
	for _, r := range recs {
		sb.Write(r.Body)
		sb.WriteByte('\n')
	}
	b, _, err := querylog.ParseTimed(strings.NewReader(sb.String()), querylog.TimedOptions{})
	if err != nil {
		return nil, err
	}
	b.SetDefaultCost(func(s propset.Set) float64 {
		return p.opts.CostBase + p.opts.CostPerProp*float64(s.Len())
	})
	in, err := b.Instance(p.opts.Budget)
	if err != nil {
		return nil, err
	}
	watchdog := time.Duration(p.opts.WatchdogFactor * float64(p.opts.Window))
	return &api.JobRequest{
		SolveRequest: api.SolveRequest{
			Instance:    dataset.ToFormat(in),
			Algo:        p.opts.Algo,
			Seed:        p.opts.Seed,
			Target:      p.opts.Target,
			IncludePlan: true,
			// Warm chaining: consecutive windows of one workload overlap
			// heavily, so the last published plan seeds this window's
			// solve. The server repairs it against the new instance (stale
			// queries drop out) and holds the result to the IG1 floor, so
			// a divergent window costs at most a cold re-solve.
			WarmPlan: p.lastPlanSets(),
		},
		JobDeadlineMS: watchdog.Milliseconds(),
	}, nil
}

// lastPlanSets extracts the last published plan as warm-start property
// sets, nil before the first publish (or when the plan carried no
// classifiers).
func (p *Pipeline) lastPlanSets() [][]string {
	p.mu.Lock()
	plan := p.st.Plan
	p.mu.Unlock()
	if plan == nil || len(plan.Classifiers) == 0 {
		return nil
	}
	sets := make([][]string, len(plan.Classifiers))
	for i, c := range plan.Classifiers {
		sets[i] = c.Props
	}
	p.warmChained.Add(1)
	return sets
}

// solveWindow runs one window to publication (or to counted
// abandonment), retrying failures with backoff. Returns false when
// shutting down.
func (p *Pipeline) solveWindow(recs []wal.Record, meta windowMeta) bool {
	req, err := p.buildRequest(recs)
	if err != nil {
		// Lines are validated at ingest, so an unparseable or unbuildable
		// window is deterministic — retrying cannot help. Count it and
		// move on; the last-good plan keeps serving.
		p.logf("pipeline: window of %d records unbuildable: %v", meta.records, err)
		p.consumeWithoutPlan(meta, true)
		return true
	}
	if len(req.Instance.Queries) == 0 {
		p.consumeWithoutPlan(meta, false)
		return true
	}
	for {
		if meta.adoptedJobID == "" {
			meta.attempts++
			if meta.attempts > 1 {
				p.retries.Add(1)
			}
			st, err := p.opts.Jobs.Submit(req)
			if err != nil {
				if !p.retryOrFail(&meta, fmt.Errorf("submit: %w", err)) {
					return true
				}
				if !p.sleep(p.opts.Backoff.Delay(meta.attempts - 1)) {
					return false
				}
				continue
			}
			p.setInflight(meta, st.ID)
			meta.adoptedJobID = st.ID
		}
		resp, err := p.await(meta.adoptedJobID)
		if errors.Is(err, errClosing) {
			return false
		}
		if err == nil {
			p.publish(resp, meta)
			return true
		}
		meta.adoptedJobID = ""
		if !p.retryOrFail(&meta, err) {
			return true
		}
		if !p.sleep(p.opts.Backoff.Delay(meta.attempts - 1)) {
			return false
		}
	}
}

// retryOrFail decides whether a failed attempt retries. When retries
// are exhausted the window is abandoned loudly: counted as failed,
// records accounted, position advanced, last-good plan untouched.
func (p *Pipeline) retryOrFail(meta *windowMeta, cause error) bool {
	if meta.attempts <= p.opts.MaxRetries {
		p.logf("pipeline: window attempt %d/%d failed: %v", meta.attempts, p.opts.MaxRetries, cause)
		return true
	}
	p.logf("pipeline: window of %d records abandoned after %d attempts: %v",
		meta.records, meta.attempts, cause)
	p.mu.Lock()
	st := p.st
	st.Pos = meta.end
	st.RecordsFailed += uint64(meta.records)
	st.WindowsFailed += uint64(1 + meta.coalesced)
	st.Inflight = nil
	p.persistLocked(st)
	p.backlog.Add(-int64(meta.records))
	p.mu.Unlock()
	return false
}

// consumeWithoutPlan advances past a window that cannot produce a plan
// (empty workload, or deterministic build failure).
func (p *Pipeline) consumeWithoutPlan(meta windowMeta, failed bool) {
	p.mu.Lock()
	st := p.st
	st.Pos = meta.end
	if failed {
		st.RecordsFailed += uint64(meta.records)
		st.WindowsFailed += uint64(1 + meta.coalesced)
	} else {
		st.RecordsTotal += uint64(meta.records)
		st.WindowsEmpty++
	}
	st.Inflight = nil
	p.persistLocked(st)
	p.backlog.Add(-int64(meta.records))
	p.mu.Unlock()
}

// setInflight persists the submitted window so a crash between here and
// publication is adoptable. Ordering matters: the job store has already
// persisted the job (Submit returned), so the worst crash point leaves
// an orphan job the manager resumes and nobody reads — harmless —
// rather than a consumed-but-never-solved window.
func (p *Pipeline) setInflight(meta windowMeta, jobID string) {
	p.mu.Lock()
	st := p.st
	st.Inflight = &inflight{
		JobID:     jobID,
		Start:     meta.start,
		End:       meta.end,
		Records:   meta.records,
		Coalesced: meta.coalesced,
		FromMS:    meta.fromMS,
		ToMS:      meta.toMS,
		Attempts:  meta.attempts,
	}
	p.persistLocked(st)
	p.mu.Unlock()
}

// await polls a job to its terminal state under the watchdog deadline.
// Jobs complete with their anytime incumbent when their own deadline
// expires, so the watchdog (deadline + grace) only fires for a wedged
// job — which is cancelled and reported as a failure.
func (p *Pipeline) await(jobID string) (*api.SolveResponse, error) {
	watchdog := time.Duration(p.opts.WatchdogFactor*float64(p.opts.Window)) + p.opts.WatchdogGrace
	deadline := time.Now().Add(watchdog)
	for {
		st, err := p.opts.Jobs.Status(jobID)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", jobID, err)
		}
		if api.JobTerminal(st.State) {
			if st.State == api.JobCompleted {
				resp, _, err := p.opts.Jobs.Result(jobID)
				if err != nil {
					return nil, fmt.Errorf("job %s result: %w", jobID, err)
				}
				return resp, nil
			}
			return nil, fmt.Errorf("job %s %s: %s", jobID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			_, _ = p.opts.Jobs.Cancel(jobID)
			return nil, fmt.Errorf("job %s overran the %v watchdog; cancelled", jobID, watchdog)
		}
		select {
		case <-p.done:
			return nil, errClosing
		case <-time.After(p.opts.PollInterval):
		}
	}
}

// publish atomically installs a new last-good plan: one state write
// moves Pos past the window, bumps the counters, stores the plan, and
// clears Inflight — so a crash either sees the old plan with the window
// in flight, or the new plan with it consumed, never half of each.
func (p *Pipeline) publish(resp *api.SolveResponse, meta windowMeta) {
	p.mu.Lock()
	st := p.st
	st.Seq++
	st.Pos = meta.end
	st.RecordsTotal += uint64(meta.records)
	st.WindowsSolved++
	st.WindowsCoalesced += uint64(meta.coalesced)
	st.Plan = resp
	st.PublishedUnixMS = time.Now().UnixMilli()
	st.WindowFromMS = meta.fromMS
	st.WindowToMS = meta.toMS
	st.WindowRecords = meta.records
	st.CoalescedWindows = meta.coalesced
	st.Inflight = nil
	p.persistLocked(st)
	pos := st.Pos
	p.backlog.Add(-int64(meta.records))
	p.mu.Unlock()
	if err := p.wal.SaveCursor(pos); err != nil {
		p.logf("pipeline: saving WAL cursor: %v", err)
	}
	p.compact(pos)
	p.logf("pipeline: published plan seq=%d (%d records, %d coalesced, utility %.3f)",
		st.Seq, meta.records, meta.coalesced, resp.Utility)
}

func (p *Pipeline) compact(upto wal.Position) {
	if _, err := p.wal.Compact(upto, p.opts.Retention); err != nil {
		p.logf("pipeline: compacting WAL: %v", err)
	}
}

// sleep waits d unless the pipeline is closing.
func (p *Pipeline) sleep(d time.Duration) bool {
	select {
	case <-p.done:
		return false
	case <-time.After(d):
		return true
	}
}
