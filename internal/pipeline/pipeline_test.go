package pipeline

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// fakeJobs is a controllable in-memory stand-in for the solve-job
// manager: jobs complete instantly (with utility = query count), fail a
// scripted number of times, or hang until released — and, crucially for
// the adoption tests, the job table survives a pipeline Close/Open the
// way the durable store survives a process restart.
type fakeJobs struct {
	mu        sync.Mutex
	nextID    int
	submitted int
	failNext  int // fail this many submissions before succeeding
	hold      bool
	jobs      map[string]*fakeJob
}

type fakeJob struct {
	status api.JobStatus
	result *api.SolveResponse
}

func newFakeJobs() *fakeJobs { return &fakeJobs{jobs: make(map[string]*fakeJob)} }

func (f *fakeJobs) Submit(req *api.JobRequest) (*api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	f.submitted++
	id := fmt.Sprintf("job-%04d", f.nextID)
	j := &fakeJob{status: api.JobStatus{ID: id, State: api.JobRunning}}
	if f.failNext > 0 {
		f.failNext--
		j.status.State = api.JobFailed
		j.status.Error = "scripted failure"
	} else {
		j.result = &api.SolveResponse{
			Status:  "complete",
			Utility: float64(len(req.Instance.Queries)),
			Queries: len(req.Instance.Queries),
		}
		if !f.hold {
			j.status.State = api.JobCompleted
		}
	}
	f.jobs[id] = j
	st := j.status
	return &st, nil
}

func (f *fakeJobs) Status(id string) (*api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return nil, errors.New("job not found")
	}
	st := j.status
	return &st, nil
}

func (f *fakeJobs) Result(id string) (*api.SolveResponse, *api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok || j.status.State != api.JobCompleted {
		return nil, nil, errors.New("no result")
	}
	return j.result, &j.status, nil
}

func (f *fakeJobs) Cancel(id string) (*api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return nil, errors.New("job not found")
	}
	j.status.State = api.JobCanceled
	st := j.status
	return &st, nil
}

// release completes every held job.
func (f *fakeJobs) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hold = false
	for _, j := range f.jobs {
		if j.status.State == api.JobRunning && j.result != nil {
			j.status.State = api.JobCompleted
		}
	}
}

func (f *fakeJobs) submissions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submitted
}

func testOptions(dir string, jobs Jobs) Options {
	return Options{
		Dir:          dir,
		Window:       25 * time.Millisecond,
		PollInterval: 2 * time.Millisecond,
		Jobs:         jobs,
		NoSync:       true,
	}
}

func openT(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	p, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func lines(n int, term string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d\t%s item%d\t%d", 1717243200+i, term, i, i+1)
	}
	return out
}

func TestPipelineSolvesWindowAndPublishes(t *testing.T) {
	jobs := newFakeJobs()
	p := openT(t, testOptions(t.TempDir(), jobs))

	if _, err := p.CurrentPlan(); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("plan before publish: err = %v, want ErrNoPlan", err)
	}
	n, err := p.Ingest(append(lines(5, "table"), "# comment", ""))
	if err != nil || n != 5 {
		t.Fatalf("Ingest = %d, %v; want 5 (comment/blank dropped)", n, err)
	}
	waitFor(t, "first publish", func() bool { return p.Stats().WindowsSolved >= 1 })

	plan, err := p.CurrentPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Plan == nil || plan.Plan.Utility != 5 {
		t.Fatalf("published plan = %+v, want utility 5 (5 distinct queries)", plan.Plan)
	}
	if plan.WindowRecords != 5 || plan.Seq != 1 {
		t.Fatalf("plan metadata: records=%d seq=%d", plan.WindowRecords, plan.Seq)
	}
	st := p.Stats()
	if st.RecordsTotal != 5 || st.BacklogRecords != 0 || st.Ingested != 5 {
		t.Fatalf("conservation: total=%d backlog=%d ingested=%d", st.RecordsTotal, st.BacklogRecords, st.Ingested)
	}
	if st.PlanAgeSeconds < 0 {
		t.Fatalf("plan age %v after publish", st.PlanAgeSeconds)
	}
}

func TestPipelineIngestValidation(t *testing.T) {
	jobs := newFakeJobs()
	p := openT(t, testOptions(t.TempDir(), jobs))
	var le *LineError
	if _, err := p.Ingest([]string{"1717243200\tok query", "no tab here"}); !errors.As(err, &le) || le.Index != 1 {
		t.Fatalf("malformed ingest: err = %v, want LineError at index 1", err)
	}
	if got := p.Stats().Ingested; got != 0 {
		t.Fatalf("rejected batch still acknowledged %d lines", got)
	}
}

func TestPipelineBacklogShed(t *testing.T) {
	jobs := newFakeJobs()
	jobs.hold = true
	opts := testOptions(t.TempDir(), jobs)
	opts.MaxBacklogRecords = 5
	p := openT(t, opts)

	if _, err := p.Ingest(lines(4, "shoes")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(lines(3, "boots")); !errors.Is(err, ErrBacklog) {
		t.Fatalf("over-backlog ingest: err = %v, want ErrBacklog", err)
	}
	st := p.Stats()
	if st.IngestRejected != 3 {
		t.Fatalf("IngestRejected = %d, want 3", st.IngestRejected)
	}
	// Draining the backlog reopens ingest.
	jobs.release()
	waitFor(t, "backlog drain", func() bool { return p.Stats().BacklogRecords == 0 })
	if _, err := p.Ingest(lines(3, "boots")); err != nil {
		t.Fatalf("ingest after drain: %v", err)
	}
}

// Counters and position survive a restart: nothing is lost, nothing is
// double-counted, and the reopened pipeline keeps solving.
func TestPipelineConservationAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	jobs := newFakeJobs()
	p := openT(t, testOptions(dir, jobs))
	if _, err := p.Ingest(lines(4, "alpha")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first batch solved", func() bool { return p.Stats().RecordsTotal == 4 })
	solvedBefore := p.Stats().WindowsSolved
	subsBefore := jobs.submissions()
	p.Close()

	p2 := openT(t, testOptions(dir, jobs))
	st := p2.Stats()
	if st.RecordsTotal != 4 || st.WindowsSolved != solvedBefore {
		t.Fatalf("counters after reopen: total=%d solved=%d, want 4/%d", st.RecordsTotal, st.WindowsSolved, solvedBefore)
	}
	if plan, err := p2.CurrentPlan(); err != nil || plan.Plan == nil {
		t.Fatalf("last-good plan lost across reopen: %v", err)
	}
	// Already-consumed records must not be re-solved.
	time.Sleep(100 * time.Millisecond)
	if got := jobs.submissions(); got != subsBefore {
		t.Fatalf("reopen re-solved a consumed window: %d submissions, had %d", got, subsBefore)
	}
	if _, err := p2.Ingest(lines(3, "beta")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second batch solved", func() bool { return p2.Stats().RecordsTotal == 7 })
	if st := p2.Stats(); st.BacklogRecords != 0 || st.WindowsSolved != solvedBefore+1 {
		t.Fatalf("after second batch: backlog=%d solved=%d", st.BacklogRecords, st.WindowsSolved)
	}
}

// A window whose job was submitted but not finished when the pipeline
// stopped is adopted on reopen: the finished result is taken without a
// second submission.
func TestPipelineAdoptsInflightWindow(t *testing.T) {
	dir := t.TempDir()
	jobs := newFakeJobs()
	jobs.hold = true
	p := openT(t, testOptions(dir, jobs))
	if _, err := p.Ingest(lines(6, "gamma")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window in flight", func() bool { return p.Stats().Inflight })
	p.Close()

	// The "restart": the job completes while the pipeline is down.
	jobs.release()
	p2 := openT(t, testOptions(dir, jobs))
	waitFor(t, "adopted publish", func() bool { return p2.Stats().WindowsSolved == 1 })
	if got := jobs.submissions(); got != 1 {
		t.Fatalf("adoption re-submitted: %d submissions, want 1", got)
	}
	st := p2.Stats()
	if st.RecordsTotal != 6 || st.BacklogRecords != 0 || st.Inflight {
		t.Fatalf("after adoption: total=%d backlog=%d inflight=%v", st.RecordsTotal, st.BacklogRecords, st.Inflight)
	}
}

// If the in-flight job vanished with the crash (e.g. its store was on
// another disk), the window is rebuilt from the recorded WAL range and
// re-solved — acknowledged records are never dropped.
func TestPipelineRebuildsLostInflightJob(t *testing.T) {
	dir := t.TempDir()
	jobs := newFakeJobs()
	jobs.hold = true
	p := openT(t, testOptions(dir, jobs))
	if _, err := p.Ingest(lines(5, "delta")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window in flight", func() bool { return p.Stats().Inflight })
	p.Close()

	fresh := newFakeJobs() // job table lost in the "crash"
	p2 := openT(t, testOptions(dir, fresh))
	waitFor(t, "rebuilt publish", func() bool { return p2.Stats().WindowsSolved == 1 })
	if got := fresh.submissions(); got != 1 {
		t.Fatalf("rebuild submitted %d jobs, want 1", got)
	}
	if st := p2.Stats(); st.RecordsTotal != 5 || st.BacklogRecords != 0 {
		t.Fatalf("after rebuild: total=%d backlog=%d", st.RecordsTotal, st.BacklogRecords)
	}
}

// Failures retry with backoff, then the window is abandoned loudly —
// counted, records accounted, and the scheduler keeps going.
func TestPipelineRetriesThenAbandons(t *testing.T) {
	jobs := newFakeJobs()
	jobs.failNext = 100 // every attempt fails
	opts := testOptions(t.TempDir(), jobs)
	opts.MaxRetries = 2
	opts.Backoff.Base = time.Millisecond
	opts.Backoff.Max = 2 * time.Millisecond
	p := openT(t, opts)

	if _, err := p.Ingest(lines(3, "epsilon")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window abandoned", func() bool { return p.Stats().WindowsFailed >= 1 })
	st := p.Stats()
	if st.RecordsFailed != 3 || st.BacklogRecords != 0 {
		t.Fatalf("abandoned window: failed=%d backlog=%d", st.RecordsFailed, st.BacklogRecords)
	}
	if st.SolveRetries < 2 {
		t.Fatalf("SolveRetries = %d, want >= 2", st.SolveRetries)
	}
	// The pipeline is not wedged: later windows still solve.
	jobs.mu.Lock()
	jobs.failNext = 0
	jobs.mu.Unlock()
	if _, err := p.Ingest(lines(2, "zeta")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovery publish", func() bool { return p.Stats().WindowsSolved >= 1 })
	if st := p.Stats(); st.RecordsTotal != 2 {
		t.Fatalf("post-recovery RecordsTotal = %d, want 2", st.RecordsTotal)
	}
}

// writeBackdatedSegment plants a WAL segment whose records claim an old
// arrival time — the only way to exercise the stale-skip rung without
// waiting CoalesceLimit real windows. The framing is a public format
// (DESIGN.md §16), so spelling it out here doubles as a format pin.
func writeBackdatedSegment(t *testing.T, dir string, bodies []string, unixMS int64) {
	t.Helper()
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	var sb strings.Builder
	for _, b := range bodies {
		sb.WriteString(fmt.Sprintf("bccwal/1 %08x %d %d\n%s\n",
			crc32.Checksum([]byte(b), castagnoli), len(b), unixMS, b))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "wal-0000000000000001.bccwal")
	if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSkipsStaleBacklog(t *testing.T) {
	dir := t.TempDir()
	// Records that arrived 10 minutes ago against a 25ms window are
	// hopelessly past the CoalesceLimit horizon.
	writeBackdatedSegment(t, dir, lines(4, "stale"), time.Now().Add(-10*time.Minute).UnixMilli())

	jobs := newFakeJobs()
	p := openT(t, testOptions(dir, jobs))
	waitFor(t, "stale skip", func() bool { return p.Stats().RecordsSkipped == 4 })
	st := p.Stats()
	if st.WindowsSkipped < 1 || st.RecordsTotal != 0 {
		t.Fatalf("stale backlog: skipped windows=%d total=%d", st.WindowsSkipped, st.RecordsTotal)
	}
	if jobs.submissions() != 0 {
		t.Fatalf("stale records were solved (%d submissions)", jobs.submissions())
	}
	// Fresh records after the skip solve normally.
	if _, err := p.Ingest(lines(2, "fresh")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fresh publish", func() bool { return p.Stats().WindowsSolved == 1 })
	if st := p.Stats(); st.RecordsTotal != 2 || st.BacklogRecords != 0 {
		t.Fatalf("after fresh batch: total=%d backlog=%d", st.RecordsTotal, st.BacklogRecords)
	}
}

// A backlog spanning several windows coalesces into one solve, with the
// folded windows counted.
func TestPipelineCoalescesBacklog(t *testing.T) {
	jobs := newFakeJobs()
	jobs.hold = true
	opts := testOptions(t.TempDir(), jobs)
	opts.CoalesceLimit = 1000 // never skip in this test
	p := openT(t, opts)

	// First batch goes in flight and holds the scheduler...
	if _, err := p.Ingest(lines(2, "head")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "head in flight", func() bool { return p.Stats().Inflight })
	// ...while more arrives over a span exceeding one window.
	if _, err := p.Ingest(lines(3, "tail-a")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * opts.Window)
	if _, err := p.Ingest(lines(3, "tail-b")); err != nil {
		t.Fatal(err)
	}
	jobs.release()
	waitFor(t, "both windows published", func() bool { return p.Stats().WindowsSolved == 2 })
	st := p.Stats()
	if st.WindowsCoalesced < 1 {
		t.Fatalf("WindowsCoalesced = %d, want >= 1 (tail spanned %v)", st.WindowsCoalesced, 3*opts.Window)
	}
	if st.RecordsTotal != 8 || st.BacklogRecords != 0 {
		t.Fatalf("conservation after coalesce: total=%d backlog=%d", st.RecordsTotal, st.BacklogRecords)
	}
}

// A scribbled state record is never fatal: the pipeline falls back to
// the WAL cursor, keeps already-consumed records consumed, and carries
// on solving new ones.
func TestPipelineSurvivesCorruptStateRecord(t *testing.T) {
	dir := t.TempDir()
	jobs := newFakeJobs()
	p := openT(t, testOptions(dir, jobs))
	if _, err := p.Ingest(lines(3, "eta")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "publish", func() bool { return p.Stats().WindowsSolved == 1 })
	subs := jobs.submissions()
	p.Close()

	if err := os.WriteFile(filepath.Join(dir, stateFile), []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := openT(t, testOptions(dir, jobs))
	time.Sleep(100 * time.Millisecond)
	if got := jobs.submissions(); got != subs {
		t.Fatalf("cursor fallback re-solved consumed records (%d submissions, had %d)", got, subs)
	}
	if _, err := p2.Ingest(lines(2, "theta")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-corruption publish", func() bool { return p2.Stats().WindowsSolved >= 1 })
}
