package algo

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/evo"
	"repro/internal/gmc3"
	"repro/internal/model"
	"repro/internal/submod"
)

// The built-in solver table. Every algorithm selectable anywhere in the
// system — server, gateway, jobs, bccsolve, bccbench — is one entry
// here.
//
// EvalFloor values are pinned from an internal/eval run at PinSeed on
// the golden suite: each is the observed minimum utility ratio across
// all suite datasets, rounded down with a small safety margin (see
// DESIGN.md §15). Lowering one to make the gate pass is a quality
// regression by definition; raise the question in review instead.
func init() {
	MustRegister(Descriptor{
		Name:          "abcc",
		WarmStart:     true,
		Summary:       "the paper's A^BCC (Algorithm 1: pruning, knapsack + QK phases, MC3, residual rounds)",
		Tier:          "reference",
		Anytime:       true,
		Deterministic: true,
		Seeded:        true,
		Servable:      true,
		EvalFloor:     0.99,
		Run: func(ctx context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := core.SolveCtx(ctx, in, core.Options{Seed: p.Seed, Warm: p.Warm})
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Iterations,
				Duration: r.Duration, Status: r.Status, Err: r.Err,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "rand",
		Summary:       "uniformly random affordable picks (the paper's RAND baseline)",
		Tier:          "baseline",
		Deterministic: true,
		Seeded:        true,
		Servable:      true,
		EvalFloor:     0.07,
		Run: func(_ context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := core.SolveRand(in, p.Seed)
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Iterations, Duration: r.Duration,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "ig1",
		Summary:       "per-query cheapest-cover greedy (IG1 baseline)",
		Tier:          "baseline",
		Deterministic: true,
		Servable:      true,
		EvalFloor:     0.95,
		Run: func(_ context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := core.SolveIG1(in)
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Iterations, Duration: r.Duration,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "ig2",
		Summary:       "per-classifier utility-density greedy (IG2 baseline)",
		Tier:          "baseline",
		Deterministic: true,
		Servable:      true,
		EvalFloor:     0.25,
		Run: func(_ context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := core.SolveIG2(in)
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Iterations, Duration: r.Duration,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "brute",
		Summary:       "exhaustive exact reference (≤ 26 candidate classifiers)",
		Tier:          "exact",
		Deterministic: true,
		EvalFloor:     1.0,
		Run: func(_ context.Context, in *model.Instance, p Params) (Outcome, error) {
			r, err := core.BruteForce(in)
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Iterations, Duration: r.Duration,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "gmc3",
		WarmStart:     true,
		Summary:       "cheapest classifier set reaching a utility target (A^GMC3)",
		Tier:          "reference",
		Anytime:       true,
		Deterministic: true,
		NeedsTarget:   true,
		Seeded:        true,
		Servable:      true,
		IgnoresBudget: true,
		EvalFloor:     0.58,
		Run: func(ctx context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := gmc3.SolveCtx(ctx, in, p.Target, gmc3.Options{Seed: p.Seed, Warm: p.Warm})
			achieved := r.Achieved
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: coveredCount(r.Solution), Iterations: r.Iterations,
				Duration: r.Duration, Status: r.Status, Err: r.Err,
				Achieved: &achieved,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "ecc",
		Summary:       "best utility-per-cost classifier set (A^ECC)",
		Tier:          "reference",
		Anytime:       true,
		Deterministic: true,
		Servable:      true,
		IgnoresBudget: true,
		EvalFloor:     0.02,
		Run: func(ctx context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := ecc.SolveCtx(ctx, in)
			out := Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered:  coveredCount(r.Solution),
				Duration: r.Duration, Status: r.Status, Err: r.Err,
			}
			if !math.IsInf(r.Ratio, 0) {
				ratio := r.Ratio
				out.Ratio = &ratio
			}
			return out, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "evo",
		WarmStart:     true,
		Summary:       "anytime evolutionary search (coverage-aware crossover, utility-per-cost mutation, elitism)",
		Tier:          "anytime-meta",
		Anytime:       true,
		Deterministic: true,
		Seeded:        true,
		Servable:      true,
		EvalFloor:     0.95,
		Run: func(ctx context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := evo.SolveCtx(ctx, in, evo.Options{Seed: p.Seed, Warm: p.Warm})
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Generations,
				Duration: r.Duration, Status: r.Status, Err: r.Err,
			}, nil
		},
	})
	MustRegister(Descriptor{
		Name:          "submod",
		WarmStart:     true,
		Summary:       "budgeted submodular lazy greedy (cost-scaled + unscaled passes, max of both)",
		Tier:          "fast-approx",
		Anytime:       true,
		Deterministic: true,
		Servable:      true,
		EvalFloor:     0.97,
		Run: func(ctx context.Context, in *model.Instance, p Params) (Outcome, error) {
			r := submod.SolveCtx(ctx, in, submod.Options{Warm: p.Warm})
			return Outcome{
				Solution: r.Solution, Utility: r.Utility, Cost: r.Cost,
				Covered: r.Covered, Iterations: r.Steps,
				Duration: r.Duration, Status: r.Status, Err: r.Err,
			}, nil
		},
	})
}

func coveredCount(sol *model.Solution) int {
	if sol == nil {
		return 0
	}
	return len(sol.CoveredQueries())
}
