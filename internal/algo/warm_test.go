package algo

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/propset"
)

// The incremental re-solve subsystem routes warm plans only to solvers
// that declare WarmStart; pin the set so adding a solver forces a
// decision about its warm contract.
func TestWarmStartRegistry(t *testing.T) {
	want := map[string]bool{"abcc": true, "gmc3": true, "evo": true, "submod": true}
	for _, name := range Names() {
		d, _ := Lookup(name)
		if d.WarmStart != want[name] {
			t.Errorf("%s: WarmStart = %v, want %v", name, d.WarmStart, want[name])
		}
	}
}

// warmSeeds builds the adversarial Warm inputs every WarmStart solver
// must survive: a stale set outside CL, a plan that overshoots the
// budget, duplicates, and an empty set.
func warmSeeds(in *model.Instance) map[string][]propset.Set {
	u := in.Universe()
	// A conjunction of many properties is (almost surely) no query's
	// subset, so its cost is +Inf — the "stale plan after drift" case.
	stale := make(propset.Set, 0, 12)
	for id := 0; id < u.Size() && len(stale) < 12; id++ {
		stale = append(stale, propset.ID(id))
	}
	// An oversized plan: the solution of a 3x-budget solve, whose total
	// cost exceeds this instance's budget.
	rich := core.Solve(in.WithBudget(in.Budget()*3), core.Options{Seed: 1})
	var oversized []propset.Set
	for _, c := range rich.Solution.Classifiers() {
		oversized = append(oversized, c.Props)
	}
	good := core.SolveIG1(in)
	var dup []propset.Set
	for _, c := range good.Solution.Classifiers() {
		dup = append(dup, c.Props, c.Props) // every set twice
	}
	return map[string][]propset.Set{
		"stale":     {stale},
		"oversized": oversized,
		"dup":       dup,
		"empty-set": {nil, {}},
		"mixed":     append([]propset.Set{stale, nil}, dup...),
	}
}

// TestWarmContract runs every WarmStart solver against every
// adversarial seed: no error, no panic, budget feasibility (unless the
// family ignores budgets), and utility no worse than the cold IG1
// greedy floor — a garbage warm seed must never make a solver worse
// than not warming at all.
func TestWarmContract(t *testing.T) {
	in := dataset.Synthetic(2, 120, 80)
	floor := core.SolveIG1(in).Utility
	if floor <= 0 {
		t.Fatal("IG1 floor not positive; instance unusable")
	}
	target := floor // a reachable utility target for gmc3
	seeds := warmSeeds(in)

	for _, name := range Names() {
		d, _ := Lookup(name)
		if !d.WarmStart {
			continue
		}
		for label, warm := range seeds {
			t.Run(name+"/"+label, func(t *testing.T) {
				out, err := d.Run(context.Background(), in, Params{
					Seed: 1, Target: target, Warm: warm,
				})
				if err != nil {
					t.Fatalf("warm run rejected: %v", err)
				}
				if out.Err != nil {
					t.Fatalf("warm run failed: status=%v err=%v", out.Status, out.Err)
				}
				if !d.IgnoresBudget && out.Cost > in.Budget()+1e-9 {
					t.Errorf("warm cost %v exceeds budget %v", out.Cost, in.Budget())
				}
				if d.IgnoresBudget {
					// Target-seeking: the contract is reaching the target,
					// not the budgeted floor.
					if out.Achieved != nil && !*out.Achieved {
						t.Errorf("warm run missed target %v (utility %v)", target, out.Utility)
					}
					return
				}
				if out.Utility < floor {
					t.Errorf("warm utility %v below cold IG1 floor %v", out.Utility, floor)
				}
			})
		}
	}
}
