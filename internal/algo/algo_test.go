package algo

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/model"
)

// builtins is the complete expected registry population; a new solver
// family must be added here (and to the docs) when it registers itself.
var builtins = []string{"abcc", "brute", "ecc", "evo", "gmc3", "ig1", "ig2", "rand", "submod"}

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) != len(builtins) {
		t.Fatalf("Names() = %v, want %v", names, builtins)
	}
	for i, want := range builtins {
		if names[i] != want {
			t.Fatalf("Names() = %v, want %v", names, builtins)
		}
	}
	for _, name := range names {
		d, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed a listed name", name)
		}
		if d.Name != name || d.Summary == "" || d.Tier == "" || d.Run == nil {
			t.Errorf("descriptor %q incomplete: %+v", name, d)
		}
	}
}

func TestServableNamesExcludeCLIOnly(t *testing.T) {
	servable := ServableNames()
	if !sort.StringsAreSorted(servable) {
		t.Errorf("ServableNames() not sorted: %v", servable)
	}
	for _, name := range servable {
		if name == "brute" {
			t.Error("brute (exponential, CLI-only) must not be servable")
		}
	}
	if len(servable) != len(builtins)-1 {
		t.Errorf("ServableNames() = %v, want all builtins except brute", servable)
	}
}

func TestLookupUnknown(t *testing.T) {
	if d, ok := Lookup("no-such-algo"); ok {
		t.Fatalf("Lookup of unknown name returned %+v", d)
	}
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	if err := Register(Descriptor{Name: "", Run: nil}); err == nil {
		t.Error("Register accepted a blank name")
	}
	if err := Register(Descriptor{Name: "x-no-run"}); err == nil {
		t.Error("Register accepted a nil Run")
	}
	dup := Descriptor{Name: "abcc", Run: func(context.Context, *model.Instance, Params) (Outcome, error) {
		return Outcome{}, nil
	}}
	if err := Register(dup); err == nil {
		t.Error("Register accepted a duplicate name")
	}
}

func TestUsageListsEveryAlgo(t *testing.T) {
	usage := Usage()
	for _, name := range builtins {
		if !strings.Contains(usage, name) {
			t.Errorf("Usage() omits %q:\n%s", name, usage)
		}
	}
	if !strings.Contains(usage, "needs target") {
		t.Errorf("Usage() omits the needs-target capability:\n%s", usage)
	}
}

// TestServableRunContracts runs every servable algorithm on one small
// instance and checks the normalized Outcome contract: a feasible
// solution, consistent quality accounting, Complete status.
func TestServableRunContracts(t *testing.T) {
	in := dataset.Synthetic(3, 40, 15)
	total := 0.0
	for _, q := range in.Queries() {
		total += q.Utility
	}
	for _, name := range ServableNames() {
		d, _ := Lookup(name)
		out, err := d.Run(context.Background(), in, Params{Seed: 1, Target: total * 0.2})
		if err != nil {
			t.Errorf("%s: Run error: %v", name, err)
			continue
		}
		if out.Solution == nil {
			t.Errorf("%s: nil Solution", name)
			continue
		}
		if out.Status != guard.Complete {
			t.Errorf("%s: Status = %v, want Complete", name, out.Status)
		}
		if out.Utility < 0 || out.Cost < 0 {
			t.Errorf("%s: negative accounting: utility=%v cost=%v", name, out.Utility, out.Cost)
		}
		// gmc3 and ecc answer different objectives (target / ratio) and
		// may exceed the instance budget by design; the budgeted solvers
		// must not.
		if !d.NeedsTarget && name != "ecc" && out.Cost > in.Budget()+1e-9 {
			t.Errorf("%s: cost %v exceeds budget %v", name, out.Cost, in.Budget())
		}
		if d.NeedsTarget && out.Achieved == nil {
			t.Errorf("%s: NeedsTarget descriptor returned no Achieved", name)
		}
	}
}

// TestBruteRejectsLargeInstances pins the registry's error channel: the
// exponential solver refuses instances it cannot enumerate, as a Run
// error rather than a panic or a bogus result.
func TestBruteRejectsLargeInstances(t *testing.T) {
	d, ok := Lookup("brute")
	if !ok {
		t.Fatal("brute not registered")
	}
	in := dataset.Synthetic(1, 2000, 800)
	if _, err := d.Run(context.Background(), in, Params{}); err == nil {
		t.Error("brute accepted a 2000-query instance")
	}
}
