// Package algo is the solver registry: one table mapping algorithm
// names to descriptors — a normalized entry point plus capability flags
// — so the server, the gateway (via the server's validation), the job
// runner and the CLI tools all dispatch from the same source of truth
// instead of parallel hard-coded switches. Adding a solver family is
// one MustRegister call in builtin.go; the HTTP 400 for an unknown
// algo, the bccsolve/bccbench usage text and the bench rows all follow
// automatically.
package algo

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// Params carries the per-request solver knobs shared by every
// algorithm; each Run uses the ones its family understands and ignores
// the rest.
type Params struct {
	// Seed drives solver randomness; 0 means the solver default.
	Seed int64
	// Target is the utility target for target-seeking solvers (gmc3).
	Target float64
	// Warm seeds anytime solvers with a previous incumbent (checkpoint
	// resume); one-shot solvers ignore it.
	Warm []propset.Set
}

// Outcome is the normalized result every registered Run returns: the
// common accounting all solvers share plus the optional family-specific
// extras (Achieved for target-seeking runs, Ratio for ratio-maximizing
// ones).
type Outcome struct {
	Solution *model.Solution
	Utility  float64
	Cost     float64
	// Covered is the number of covered queries.
	Covered int
	// Iterations is the family's own progress unit: residual rounds,
	// greedy steps, generations.
	Iterations int
	Duration   time.Duration
	// Status and Err report how the run ended (see guard.Status); every
	// status carries a budget-feasible Solution.
	Status guard.Status
	Err    error
	// Achieved is set by target-seeking solvers (gmc3): whether the
	// target utility was reached.
	Achieved *bool
	// Ratio is set by ratio-maximizing solvers (ecc) when finite.
	Ratio *float64
}

// RunFunc executes one solve. The error return is for hard input
// rejections (e.g. brute force on an oversized instance) — solver
// failures inside a run surface as Outcome.Status/Err instead.
type RunFunc func(ctx context.Context, in *model.Instance, p Params) (Outcome, error)

// Descriptor describes one registered algorithm.
type Descriptor struct {
	// Name is the algo= / -algo selector.
	Name string
	// Summary is the one-line description shown in usage text.
	Summary string
	// Tier is the speed/quality tier shown in docs: "exact",
	// "baseline", "fast-approx", "reference" or "anytime-meta".
	Tier string
	// Anytime solvers honor context deadlines/cancellation and always
	// return the best feasible incumbent found so far.
	Anytime bool
	// Deterministic solvers produce bit-identical output for the same
	// instance and Params (including Seed).
	Deterministic bool
	// NeedsTarget solvers require Params.Target > 0 (gmc3).
	NeedsTarget bool
	// Seeded solvers consume Params.Seed.
	Seeded bool
	// Servable solvers are selectable through the HTTP API; the rest
	// (brute force) are CLI-only.
	Servable bool
	// IgnoresBudget solvers optimize an objective that is allowed to
	// spend past the instance budget (gmc3 minimizes cost to a target,
	// ecc maximizes utility per cost); the quality harness skips the
	// budget-feasibility invariant for them.
	IgnoresBudget bool
	// WarmStart solvers consume Params.Warm as an initial incumbent:
	// infeasible, oversized or stale seeds must be repaired or ignored,
	// never fatal, and the warm result must not fall below what the cold
	// greedy floor (incr.Floor) would deliver. The incremental re-solve
	// subsystem (internal/incr, DESIGN.md §17) only routes warm plans to
	// solvers with this flag.
	WarmStart bool
	// EvalFloor is the pinned minimum utility ratio (solver utility /
	// best-known) this algorithm must reach on every golden eval dataset
	// (internal/eval, cmd/bcceval) at the pinned seed. 0 means ungated.
	// Floors are chosen from the observed per-suite minimum minus a
	// safety margin — see DESIGN.md §15 for the methodology.
	EvalFloor float64
	// Run executes the solver.
	Run RunFunc
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Descriptor)
)

// Register adds a descriptor to the registry, rejecting blanks,
// duplicates and nil Run funcs.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("algo: descriptor with empty name")
	}
	if d.Run == nil {
		return fmt.Errorf("algo: descriptor %q has no Run", d.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[d.Name]; dup {
		return fmt.Errorf("algo: %q already registered", d.Name)
	}
	registry[d.Name] = d
	return nil
}

// MustRegister is Register, panicking on error. The built-in table uses
// it from init, where a failure is a programming error.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ServableNames returns the sorted names selectable through the HTTP
// API — the list the server's unknown-algo 400 reports.
func ServableNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, d := range registry {
		if d.Servable {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Usage renders one line per registered algorithm — name, summary,
// capability flags — for CLI usage text, so the docs cannot drift from
// the registry.
func Usage() string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		d := registry[name]
		caps := []string{d.Tier}
		if d.Anytime {
			caps = append(caps, "anytime")
		}
		if d.Seeded {
			caps = append(caps, "seeded")
		}
		if d.NeedsTarget {
			caps = append(caps, "needs target")
		}
		if !d.Servable {
			caps = append(caps, "cli-only")
		}
		fmt.Fprintf(&b, "  %-7s %s [%s]\n", name, d.Summary, strings.Join(caps, ", "))
	}
	return b.String()
}
