package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilGuardInert(t *testing.T) {
	var g *Guard
	if g.Check() {
		t.Error("nil guard Check() = true")
	}
	if g.Tripped() {
		t.Error("nil guard Tripped() = true")
	}
	if g.Status() != Complete {
		t.Errorf("nil guard Status() = %v", g.Status())
	}
	if g.Err() != nil {
		t.Errorf("nil guard Err() = %v", g.Err())
	}
	if _, ok := g.Remaining(); ok {
		t.Error("nil guard reports a deadline")
	}
	g.NotePanic("ignored")
	g.NoteError(errors.New("ignored"))
}

func TestNilGuardRecoverRepanics(t *testing.T) {
	// Legacy non-context entry points must still crash on a bug.
	defer func() {
		if p := recover(); p == nil {
			t.Error("nil guard Recover swallowed the panic")
		}
	}()
	var g *Guard
	defer g.Recover()
	panic("boom")
}

func TestBackgroundNeverTrips(t *testing.T) {
	g := New(context.Background())
	for i := 0; i < 10*checkStride; i++ {
		if g.Check() {
			t.Fatal("background guard tripped")
		}
	}
	if g.Tripped() || g.Status() != Complete || g.Err() != nil {
		t.Errorf("background guard: tripped=%v status=%v err=%v", g.Tripped(), g.Status(), g.Err())
	}
}

func TestExpiredContextTripsAtNew(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := New(ctx)
	if !g.Tripped() {
		t.Fatal("expired context did not trip the guard at New")
	}
	if g.Status() != DeadlineExceeded {
		t.Errorf("Status() = %v, want DeadlineExceeded", g.Status())
	}
	if !errors.Is(g.Err(), context.DeadlineExceeded) {
		t.Errorf("Err() = %v", g.Err())
	}
}

func TestCancelTripsAndSticks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx)
	if g.Tripped() {
		t.Fatal("guard tripped before cancel")
	}
	cancel()
	if !g.Tripped() {
		t.Fatal("guard not tripped after cancel")
	}
	// Check must report true immediately once tripped, regardless of stride.
	if !g.Check() {
		t.Fatal("Check() false on a tripped guard")
	}
	if g.Status() != Canceled {
		t.Errorf("Status() = %v, want Canceled", g.Status())
	}
}

func TestCheckIsAmortized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx)
	cancel()
	// The guard polled at New (before cancel), so only a stride-boundary
	// Check observes the cancellation; at most checkStride calls pass.
	trippedWithin := false
	for i := 0; i < checkStride; i++ {
		if g.Check() {
			trippedWithin = true
			break
		}
	}
	if !trippedWithin {
		t.Fatalf("Check did not observe cancellation within %d calls", checkStride)
	}
}

func TestRecoverRecordsPanic(t *testing.T) {
	g := New(context.Background())
	func() {
		defer g.Recover()
		panic("injected failure")
	}()
	if g.Status() != Recovered {
		t.Fatalf("Status() = %v, want Recovered", g.Status())
	}
	if err := g.Err(); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("Err() = %v, want the panic message", err)
	}
}

func TestProtectContainsPanic(t *testing.T) {
	g := New(context.Background())
	g.Protect(func() { panic(errors.New("typed")) })
	if g.Status() != Recovered {
		t.Fatalf("Status() = %v, want Recovered", g.Status())
	}
	if !strings.Contains(g.Err().Error(), "typed") {
		t.Errorf("Err() = %v", g.Err())
	}
}

func TestFirstPanicWins(t *testing.T) {
	g := New(context.Background())
	g.NoteError(errors.New("first"))
	g.NoteError(errors.New("second"))
	if !strings.Contains(g.PanicErr().Error(), "first") {
		t.Errorf("PanicErr() = %v, want first error", g.PanicErr())
	}
}

func TestRecoveredDominatesDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := New(ctx)
	g.NoteError(errors.New("panic while already late"))
	if g.Status() != Recovered {
		t.Errorf("Status() = %v, want Recovered to dominate DeadlineExceeded", g.Status())
	}
}

func TestRemaining(t *testing.T) {
	g := New(context.Background())
	if _, ok := g.Remaining(); ok {
		t.Error("background guard reports a deadline")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	g = New(ctx)
	d, ok := g.Remaining()
	if !ok || d <= 0 || d > time.Hour {
		t.Errorf("Remaining() = %v, %v", d, ok)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Complete:         "complete",
		DeadlineExceeded: "deadline",
		Canceled:         "canceled",
		Recovered:        "recovered",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestArmDisarmInject(t *testing.T) {
	defer DisarmAll()
	fired := 0
	Arm("test.point", func() { fired++ })
	Inject("test.point")
	Inject("other.point")
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	Disarm("test.point")
	Inject("test.point")
	if fired != 1 {
		t.Fatalf("fired after Disarm = %d, want 1", fired)
	}
}

func TestDisarmAll(t *testing.T) {
	fired := 0
	Arm("a", func() { fired++ })
	Arm("b", func() { fired++ })
	DisarmAll()
	Inject("a")
	Inject("b")
	if fired != 0 {
		t.Fatalf("fired = %d after DisarmAll", fired)
	}
}

func TestPanicFaultAndCancelFault(t *testing.T) {
	defer DisarmAll()
	g := New(context.Background())
	Arm("test.panic", PanicFault("armed"))
	g.Protect(func() { Inject("test.panic") })
	if g.Status() != Recovered {
		t.Fatalf("Status() = %v, want Recovered", g.Status())
	}

	ctx, cancel := context.WithCancel(context.Background())
	g2 := New(ctx)
	Arm("test.cancel", CancelFault(cancel))
	Inject("test.cancel")
	if !g2.Tripped() || g2.Status() != Canceled {
		t.Fatalf("CancelFault: tripped=%v status=%v", g2.Tripped(), g2.Status())
	}
}
