// Package guard is the solver-wide robustness layer: deadline/cancel
// propagation with an amortized check cheap enough for hot inner loops,
// panic-to-error containment so a bug in one subsystem degrades the
// result instead of killing the process, and named fault-injection points
// that tests arm with panics, delays or cancellations.
//
// A Guard wraps a context.Context. Hot loops call Check(), which polls the
// context only once per stride of calls; round boundaries call Tripped(),
// which polls every time. Once the context fires, the guard stays tripped.
// Panics recovered via Recover or Protect are recorded on the guard, and
// Status() folds everything into the status the solver entry points
// report: Complete, DeadlineExceeded, Canceled or Recovered.
//
// A nil *Guard is valid and inert: Check and Tripped report false, Recover
// re-panics (preserving crash semantics for the non-context entry points),
// and Status reports Complete. Fault-injection points (Inject) are
// package-level and cost one atomic load when nothing is armed.
//
// Injection points currently wired through the solver stack:
//
//	core.phase       every knapsack/QK phase of A^BCC
//	knapsack.solve   every knapsack subproblem solve
//	qk.restart       every QK random-bipartition restart (worker goroutine)
//	mc3.solve        every MC3 re-cover call
//	dks.solve        every DkS portfolio call
//	gmc3.residual    every residual A^BCC round inside A^GMC3
//	ecc.solve        the A^ECC entry
//	evo.generation   every generation of the evolutionary solver
//	submod.pass      every lazy-greedy pass of the submodular solver
//	submod.step      every lazy-queue pop of the submodular solver
//	partial.solve    the partial-cover greedy entry
//	overlap.round    every overlap-aware greedy round
//
// and through the durability layer (internal/jobs), so the chaos
// harness can kill the process between any two writes:
//
//	jobs.store.append  every bccjob/1 record write (submit + transitions)
//	jobs.checkpoint    every incumbent checkpoint between solve slices
//	jobs.resume        every requeue of a persisted job at startup
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Status reports how a solver run ended.
type Status int

const (
	// Complete: the solver ran to its normal termination.
	Complete Status = iota
	// DeadlineExceeded: the context deadline expired; the result is the
	// best feasible solution found before the deadline.
	DeadlineExceeded
	// Canceled: the context was canceled; the result is the best feasible
	// solution found before cancellation.
	Canceled
	// Recovered: a panic inside the solver stack was contained; the result
	// is the best feasible solution unaffected by the failure.
	Recovered
)

// String renders the status in the spelling the CLI tools print
// (status=deadline, status=canceled, ...).
func (s Status) String() string {
	switch s {
	case Complete:
		return "complete"
	case DeadlineExceeded:
		return "deadline"
	case Canceled:
		return "canceled"
	case Recovered:
		return "recovered"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// checkStride is how many Check calls share one context poll.
const checkStride = 64

// Guard wraps a context for cheap cooperative cancellation plus panic
// recording. Create one with New; a nil *Guard is inert.
type Guard struct {
	ctx     context.Context
	done    <-chan struct{}
	calls   atomic.Uint64
	tripped atomic.Bool

	mu       sync.Mutex
	panicErr error
}

// New returns a Guard over ctx (nil means context.Background()). An
// already-expired context trips the guard immediately.
func New(ctx context.Context) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{ctx: ctx, done: ctx.Done()}
	g.poll()
	return g
}

// Check reports whether the solver should stop. It is amortized — the
// context is polled once every checkStride calls — so it is safe to call
// on every inner-loop iteration. Once tripped it stays tripped.
func (g *Guard) Check() bool {
	if g == nil {
		return false
	}
	if g.tripped.Load() {
		return true
	}
	if g.done == nil {
		return false
	}
	if g.calls.Add(1)%checkStride != 0 {
		return false
	}
	return g.poll()
}

// Tripped reports whether the guard has fired, polling the context on
// every call. Use it at round boundaries where promptness matters more
// than per-call cost.
func (g *Guard) Tripped() bool {
	if g == nil {
		return false
	}
	if g.tripped.Load() {
		return true
	}
	return g.poll()
}

func (g *Guard) poll() bool {
	if g.done == nil {
		return false
	}
	select {
	case <-g.done:
		g.tripped.Store(true)
		return true
	default:
		return false
	}
}

// Remaining returns the time left until the context deadline, and whether
// a deadline is set at all.
func (g *Guard) Remaining() (time.Duration, bool) {
	if g == nil || g.ctx == nil {
		return 0, false
	}
	dl, ok := g.ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}

// NotePanic records a recovered panic value (first one wins) with the
// stack of the panicking goroutine.
func (g *Guard) NotePanic(p interface{}) {
	if g == nil {
		return
	}
	err, ok := p.(error)
	if !ok {
		err = fmt.Errorf("%v", p)
	}
	g.NoteError(fmt.Errorf("recovered panic: %w\n%s", err, debug.Stack()))
}

// NoteError records a contained failure (first one wins); the guard then
// reports Status Recovered. Used to propagate a Recovered status from an
// inner solver run to its orchestrating outer solver.
func (g *Guard) NoteError(err error) {
	if g == nil || err == nil {
		return
	}
	g.mu.Lock()
	if g.panicErr == nil {
		g.panicErr = err
	}
	g.mu.Unlock()
}

// PanicErr returns the first recorded panic/failure, or nil.
func (g *Guard) PanicErr() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.panicErr
}

// Recover is meant to be deferred directly (defer g.Recover()): it
// converts an in-flight panic into a recorded error on the guard. On a nil
// guard the panic is re-raised, preserving crash semantics for legacy
// non-context entry points.
func (g *Guard) Recover() {
	if p := recover(); p != nil {
		if g == nil {
			panic(p)
		}
		g.NotePanic(p)
	}
}

// Protect runs fn, containing any panic into the guard.
func (g *Guard) Protect(fn func()) {
	defer g.Recover()
	fn()
}

// Err returns the error to attach to a result: the recorded panic if any,
// else the context error once tripped, else nil.
func (g *Guard) Err() error {
	if g == nil {
		return nil
	}
	if pe := g.PanicErr(); pe != nil {
		return pe
	}
	if g.Tripped() {
		return g.ctx.Err()
	}
	return nil
}

// Status folds the guard state into a result status. A recorded panic
// dominates (the run is Recovered even if the deadline also expired).
func (g *Guard) Status() Status {
	if g == nil {
		return Complete
	}
	if g.PanicErr() != nil {
		return Recovered
	}
	if g.Tripped() {
		if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
			return DeadlineExceeded
		}
		return Canceled
	}
	return Complete
}

// ---------------------------------------------------------------------------
// Fault injection.

var faults struct {
	mu    sync.Mutex
	armed map[string]func()
	count atomic.Int32 // number of armed points; Inject fast-path gate
}

// Arm installs fn at the named injection point; it runs on every Inject of
// that point until Disarm. Test-only machinery: with nothing armed, Inject
// is a single atomic load.
func Arm(point string, fn func()) {
	faults.mu.Lock()
	defer faults.mu.Unlock()
	if faults.armed == nil {
		faults.armed = make(map[string]func())
	}
	if _, ok := faults.armed[point]; !ok {
		faults.count.Add(1)
	}
	faults.armed[point] = fn
}

// Disarm removes the fault at the named point, if any.
func Disarm(point string) {
	faults.mu.Lock()
	defer faults.mu.Unlock()
	if _, ok := faults.armed[point]; ok {
		delete(faults.armed, point)
		faults.count.Add(-1)
	}
}

// DisarmAll removes every armed fault.
func DisarmAll() {
	faults.mu.Lock()
	defer faults.mu.Unlock()
	for point := range faults.armed {
		delete(faults.armed, point)
	}
	faults.count.Store(0)
}

// Inject fires the fault armed at the named point, if any. Solvers call it
// at the points documented in the package comment.
func Inject(point string) {
	if faults.count.Load() == 0 {
		return
	}
	faults.mu.Lock()
	fn := faults.armed[point]
	faults.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// PanicFault returns a fault that panics with msg.
func PanicFault(msg string) func() {
	return func() { panic(msg) }
}

// DelayFault returns a fault that sleeps for d, simulating a stall.
func DelayFault(d time.Duration) func() {
	return func() { time.Sleep(d) }
}

// CancelFault returns a fault that fires the given cancel function,
// simulating a caller abandoning the solve mid-flight.
func CancelFault(cancel context.CancelFunc) func() {
	return func() { cancel() }
}
