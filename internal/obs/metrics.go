package obs

import (
	"io"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable, but series handed out by Registry.Counter are the normal way
// to get one.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) writeExposition(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, float64(c.v.Load()))
}

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeExposition(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, g.Value())
}

// valueFunc adapts a read-at-scrape-time function to a series
// (CounterFunc / GaugeFunc registrations).
type valueFunc func() float64

func (f valueFunc) writeExposition(w io.Writer, name, labels string) error {
	return sampleLine(w, name, labels, f())
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond knapsack calls to multi-second full solves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket distribution. An observation lands in the
// first bucket whose upper bound is >= the value (Prometheus `le`
// semantics: upper bounds are inclusive); values above every bound land
// in the implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // len(uppers)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-added
}

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	cp := append([]float64(nil), uppers...)
	return &Histogram{uppers: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~16) and the slice is in
	// cache; a binary search costs more in branch misses at this size.
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// it returns the upper bound of the first bucket at which the cumulative
// count reaches q of the total — the same upper-bound estimate a
// Prometheus histogram_quantile yields at bucket resolution. Values in
// the +Inf overflow bucket are reported as the largest finite bound.
// With no observations it returns 0, false. The bucket snapshot is taken
// the same way the exposition writer takes it, so a concurrent Observe
// can only shift the estimate by one sample, never tear it.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	if q <= 0 || q > 1 || len(h.uppers) == 0 {
		return 0, false
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0, false
	}
	need := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, upper := range h.uppers {
		cum += counts[i]
		if cum >= need {
			return upper, true
		}
	}
	return h.uppers[len(h.uppers)-1], true
}

func (h *Histogram) writeExposition(w io.Writer, name, labels string) error {
	// Snapshot the per-bucket counts first, then derive the total from
	// that same snapshot: `_count` and the +Inf bucket are always equal
	// and never torn against the buckets, even under concurrent
	// Observe calls. The float sum is read last and may trail by an
	// in-flight observation — the standard, Prometheus-tolerated skew.
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	sum := h.Sum()

	var cum uint64
	for i, upper := range h.uppers {
		cum += counts[i]
		le := `le="` + formatValue(upper) + `"`
		bl := le
		if labels != "" {
			bl = labels + "," + le
		}
		if err := sampleLine(w, name+"_bucket", bl, float64(cum)); err != nil {
			return err
		}
	}
	bl := `le="+Inf"`
	if labels != "" {
		bl = labels + "," + bl
	}
	if err := sampleLine(w, name+"_bucket", bl, float64(total)); err != nil {
		return err
	}
	if err := sampleLine(w, name+"_sum", labels, sum); err != nil {
		return err
	}
	return sampleLine(w, name+"_count", labels, float64(total))
}
