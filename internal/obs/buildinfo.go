package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identifies the running binary: module path/version, toolchain,
// and the VCS stamp `go build` embeds. It is what /v1/statz reports and
// what every binary's -version flag prints, so a deployed server and a
// local CLI can be matched to the same commit.
type Build struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// ReadBuild returns the binary's build identity, reading
// runtime/debug.ReadBuildInfo once and caching the result. Binaries
// built without module info (rare: test binaries under some modes)
// still get the Go version.
func ReadBuild() Build {
	buildOnce.Do(func() {
		buildInfo = Build{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the one-line form the -version flags print, e.g.
//
//	repro (devel) go1.24.0 rev=7a2ca0f… dirty=false
func (b Build) String() string {
	s := fmt.Sprintf("%s %s %s", orUnknown(b.Module), orUnknown(b.Version), b.GoVersion)
	if b.Revision != "" {
		s += fmt.Sprintf(" rev=%s dirty=%v", b.Revision, b.Dirty)
	}
	return s
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
