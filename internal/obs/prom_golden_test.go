package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition output — family and
// series ordering, HELP/TYPE lines, label rendering, histogram
// bucket/sum/count structure, and value formatting. If this test
// breaks, a scrape-format change reached the wire: update deliberately.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcc_requests_total", "Solve requests admitted.", Labels{"route": "/v1/solve", "code": "200"}).Add(3)
	r.Counter("bcc_requests_total", "Solve requests admitted.", Labels{"route": "/v1/solve", "code": "429"}).Add(1)
	g := r.Gauge("bcc_queue_depth", "Jobs waiting for a worker.", nil)
	g.Set(2)
	r.GaugeFunc("bcc_uptime_seconds", "Seconds since start.", nil, func() float64 { return 12.5 })
	h := r.Histogram("bcc_request_seconds", "Request latency.", Labels{"route": "/v1/solve"}, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.1) // boundary: le="0.1"
	h.Observe(3)   // overflow

	const want = `# HELP bcc_queue_depth Jobs waiting for a worker.
# TYPE bcc_queue_depth gauge
bcc_queue_depth 2
# HELP bcc_request_seconds Request latency.
# TYPE bcc_request_seconds histogram
bcc_request_seconds_bucket{route="/v1/solve",le="0.01"} 1
bcc_request_seconds_bucket{route="/v1/solve",le="0.1"} 2
bcc_request_seconds_bucket{route="/v1/solve",le="1"} 2
bcc_request_seconds_bucket{route="/v1/solve",le="+Inf"} 3
bcc_request_seconds_sum{route="/v1/solve"} 3.105
bcc_request_seconds_count{route="/v1/solve"} 3
# HELP bcc_requests_total Solve requests admitted.
# TYPE bcc_requests_total counter
bcc_requests_total{code="200",route="/v1/solve"} 3
bcc_requests_total{code="429",route="/v1/solve"} 1
# HELP bcc_uptime_seconds Seconds since start.
# TYPE bcc_uptime_seconds gauge
bcc_uptime_seconds 12.5
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
