package obs

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Stage names one instrumented phase of the solver pipeline (§5 of the
// paper plus the engineering additions around it). The enum is closed
// on purpose: a fixed array of cells is what keeps Recorder alloc-free.
type Stage uint8

const (
	// StagePrune is step 1 of Algorithm 1 (R1 + leverage-score R2).
	StagePrune Stage = iota
	// StageKnapsack is one BCC(1) knapsack subproblem solve.
	StageKnapsack
	// StageQK is one BCC(2) Quadratic Knapsack solve (all restarts).
	StageQK
	// StageQKRestart is one QK random-bipartition restart batch (runs
	// on the restart worker goroutines).
	StageQKRestart
	// StageMC3 is one MC3 re-cover local-search call.
	StageMC3
	// StageResidual is one residual round of A^BCC's improvement loop
	// (lines 4–6 of Algorithm 1).
	StageResidual
	// StageGreedyFloor is the IG1-seeded second pipeline A^BCC compares
	// against before returning.
	StageGreedyFloor
	// StageGMC3Residual is one residual A^BCC run inside A^GMC3's
	// budget-guess loop.
	StageGMC3Residual
	// StageECC is the densest-subgraph candidate construction of A^ECC.
	StageECC
	// StageSubmodPass is one full lazy-greedy pass of the budgeted
	// submodular solver (cost-scaled or unscaled).
	StageSubmodPass
	// StageEvoGeneration is one generation of the evolutionary solver
	// (selection, crossover, mutation, elitist replacement).
	StageEvoGeneration

	numStages
)

var stageNames = [numStages]string{
	StagePrune:         "prune",
	StageKnapsack:      "knapsack",
	StageQK:            "qk",
	StageQKRestart:     "qk_restart",
	StageMC3:           "mc3",
	StageResidual:      "residual_round",
	StageGreedyFloor:   "greedy_floor",
	StageGMC3Residual:  "gmc3_residual",
	StageECC:           "ecc_densest",
	StageSubmodPass:    "submod_pass",
	StageEvoGeneration: "evo_generation",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// stageCell aggregates one stage's spans. All fields are atomics so the
// QK restart workers can record concurrently with the main goroutine.
type stageCell struct {
	count atomic.Int64
	nanos atomic.Int64
	max   atomic.Int64
	size  atomic.Int64
}

// Recorder aggregates per-stage span statistics for one solve. It is
// carried in the context (WithRecorder) and extracted by the SolveCtx
// façades; the solver stack then brackets each stage with Start/End.
//
// A nil *Recorder is valid and disabled: Start returns the zero Time
// without reading the clock and End returns immediately — one branch
// per call, no allocation (mirroring the nil-*Guard convention), so the
// instrumentation stays in the hot paths unconditionally.
type Recorder struct {
	cells [numStages]stageCell
}

// NewRecorder returns an enabled recorder with all stages at zero.
func NewRecorder() *Recorder { return &Recorder{} }

// Start begins a stage span: it returns the wall-clock start to be
// passed to End. On a nil recorder it is a single branch.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// End completes a stage span started at start, folding its wall time
// and size (items, queries, rounds — the stage's natural unit) into the
// stage's aggregate. Safe for concurrent use; on a nil recorder it is a
// single branch.
func (r *Recorder) End(s Stage, start time.Time, size int) {
	if r == nil {
		return
	}
	d := int64(time.Since(start))
	c := &r.cells[s]
	c.count.Add(1)
	c.nanos.Add(d)
	c.size.Add(int64(size))
	for {
		max := c.max.Load()
		if d <= max || c.max.CompareAndSwap(max, d) {
			return
		}
	}
}

// StageStat is one stage's aggregated spans.
type StageStat struct {
	// Stage is the stage name as printed (see Stage.String).
	Stage string `json:"stage"`
	// Calls is the number of completed spans.
	Calls int64 `json:"calls"`
	// Total is the summed wall time across spans. Spans on concurrent
	// goroutines (qk_restart) overlap, so totals can exceed the solve's
	// wall clock — they measure work, not elapsed time.
	Total time.Duration `json:"total_ns"`
	// Max is the longest single span.
	Max time.Duration `json:"max_ns"`
	// Size is the summed span sizes (stage-specific unit).
	Size int64 `json:"size"`
}

// Snapshot returns the stages with at least one span, in pipeline
// order. Safe to call while spans are still being recorded.
func (r *Recorder) Snapshot() []StageStat {
	if r == nil {
		return nil
	}
	var out []StageStat
	for s := Stage(0); s < numStages; s++ {
		c := &r.cells[s]
		n := c.count.Load()
		if n == 0 {
			continue
		}
		out = append(out, StageStat{
			Stage: s.String(),
			Calls: n,
			Total: time.Duration(c.nanos.Load()),
			Max:   time.Duration(c.max.Load()),
			Size:  c.size.Load(),
		})
	}
	return out
}

// WriteTable renders the snapshot as the aligned breakdown bccsolve
// -trace prints: one row per stage with calls, total/avg/max wall time,
// size, and each stage's share of the summed stage time.
func (r *Recorder) WriteTable(w io.Writer) error {
	stats := r.Snapshot()
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "trace: no stages recorded")
		return err
	}
	var grand time.Duration
	for _, st := range stats {
		grand += st.Total
	}
	if _, err := fmt.Fprintf(w, "%-14s %7s %12s %12s %12s %10s %6s\n",
		"stage", "calls", "total", "avg", "max", "size", "share"); err != nil {
		return err
	}
	for _, st := range stats {
		share := 0.0
		if grand > 0 {
			share = float64(st.Total) / float64(grand) * 100
		}
		avg := st.Total / time.Duration(st.Calls)
		if _, err := fmt.Fprintf(w, "%-14s %7d %12s %12s %12s %10d %5.1f%%\n",
			st.Stage, st.Calls,
			st.Total.Round(time.Microsecond),
			avg.Round(time.Microsecond),
			st.Max.Round(time.Microsecond),
			st.Size, share); err != nil {
			return err
		}
	}
	return nil
}

// recorderKey carries the Recorder in a context.
type recorderKey struct{}

// WithRecorder returns a context carrying rec; the SolveCtx façades
// pick it up via FromContext. A nil rec is allowed and yields a context
// that traces nothing.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// FromContext extracts the Recorder from ctx, or nil (disabled) when
// none was attached. Called once per solve entry, not in hot loops.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
