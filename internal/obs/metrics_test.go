package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bcc_test_total", "h", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same series.
	if again := r.Counter("bcc_test_total", "h", nil); again != c {
		t.Fatalf("second lookup returned a different counter")
	}
	g := r.Gauge("bcc_test_gauge", "h", Labels{"k": "v"})
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcc_x", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering bcc_x as a gauge did not panic")
		}
	}()
	r.Gauge("bcc_x", "h", nil)
}

// TestHistogramBucketBoundaries pins the `le` semantics: an observation
// exactly on a bucket's upper bound lands in that bucket (inclusive),
// values above every bound land only in +Inf, and an untouched
// histogram renders all-zero buckets.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bcc_h", "h", nil, []float64{1, 2.5, 10})

	h.Observe(1)    // exact boundary: bucket le=1
	h.Observe(1.0)  // again
	h.Observe(2.5)  // exact boundary: bucket le=2.5
	h.Observe(10)   // exact boundary: bucket le=10
	h.Observe(10.1) // overflow: +Inf only
	h.Observe(0)    // below everything: first bucket

	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 1+1+2.5+10+10.1+0.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`bcc_h_bucket{le="1"} 3`,    // 0, 1, 1
		`bcc_h_bucket{le="2.5"} 4`,  // + 2.5
		`bcc_h_bucket{le="10"} 5`,   // + 10
		`bcc_h_bucket{le="+Inf"} 6`, // + 10.1
		`bcc_h_count 6`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("bcc_empty", "h", nil, []float64{1, 2})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`bcc_empty_bucket{le="1"} 0`,
		`bcc_empty_bucket{le="2"} 0`,
		`bcc_empty_bucket{le="+Inf"} 0`,
		`bcc_empty_sum 0`,
		`bcc_empty_count 0`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestHistogramQuantile pins the upper-bound estimate: the q-quantile is
// the bound of the first bucket whose cumulative count reaches q·total,
// and overflow observations report the largest finite bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bcc_q", "h", nil, []float64{0.01, 0.1, 1})
	if _, ok := h.Quantile(0.9); ok {
		t.Fatalf("empty histogram reported a quantile")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // le=0.01
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // le=1
	}
	if got, ok := h.Quantile(0.5); !ok || got != 0.01 {
		t.Fatalf("p50 = %v,%v, want 0.01,true", got, ok)
	}
	if got, ok := h.Quantile(0.95); !ok || got != 1 {
		t.Fatalf("p95 = %v,%v, want 1,true", got, ok)
	}
	h.Observe(50) // +Inf overflow clamps to the largest finite bound
	if got, ok := h.Quantile(1); !ok || got != 1 {
		t.Fatalf("p100 = %v,%v, want 1,true", got, ok)
	}
	if _, ok := h.Quantile(0); ok {
		t.Fatalf("q=0 must report not-ok")
	}
	if _, ok := h.Quantile(1.5); ok {
		t.Fatalf("q>1 must report not-ok")
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("non-ascending buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bcc_bad", "h", nil, []float64{1, 1})
}

// TestConcurrentObserve exercises the lock-free paths under the race
// detector and checks that no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bcc_conc", "h", nil, DefBuckets)
	c := r.Counter("bcc_conc_total", "h", nil)
	g := r.Gauge("bcc_conc_gauge", "h", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) * 0.001)
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	// Concurrent scrapes must not tear bucket totals: the +Inf bucket
	// and _count always agree within one exposition.
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcc_esc_total", "h", Labels{"path": `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `bcc_esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label missing %q:\n%s", want, b.String())
	}
}
