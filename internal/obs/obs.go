// Package obs is the zero-third-party-dependency observability layer:
// a metrics registry (atomic counters, gauges, fixed-bucket histograms)
// rendered in the Prometheus text exposition format, a per-solve stage
// tracer (Recorder) threaded through the solver stack alongside the
// guard plumbing, and build-info helpers shared by the CLI tools.
//
// The registry is scrape-oriented: metric values live in lock-free
// atomics, and WritePrometheus takes a point-in-time snapshot in a
// stable order (families by name, series by label set), so the output
// is diffable and golden-testable. Families are created on demand and
// get-or-create is idempotent: asking for the same name+labels returns
// the same series, which is what lets the HTTP layer resolve a
// {route,code} series per request without pre-registration.
//
// Naming scheme: every metric this repository exports is prefixed
// "bcc_", with Prometheus unit conventions (_total for counters,
// _seconds for durations). The inventory lives in DESIGN.md §10.
//
// The tracer mirrors the nil-*Guard convention of internal/guard: a nil
// *Recorder is valid, disabled, and costs one branch per call with no
// allocation — cheap enough to leave the instrumentation permanently in
// the solver hot paths (verified by a testing.AllocsPerRun test).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the Prometheus type of a metric family.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Labels is one metric series' label set. A nil or empty map means the
// unlabeled series.
type Labels map[string]string

// renderLabels produces the canonical `k1="v1",k2="v2"` form with keys
// sorted, used both as the series map key and in the exposition output.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ls[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escaping rules for
// label values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one labeled time series inside a family.
type series interface {
	// writeExposition appends the series' sample lines. name is the
	// family name, labels the rendered label set (may be empty).
	writeExposition(w io.Writer, name, labels string) error
}

type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]series // rendered labels -> series
}

// Registry holds metric families. The zero value is not usable; create
// one with NewRegistry. All methods are safe for concurrent use; the
// returned metric handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the series registered under name+labels, creating the
// family and/or series as needed. It panics when the name is reused
// with a different kind — that is a programming error, not a runtime
// condition.
func (r *Registry) lookup(name, help string, kind Kind, labels Labels, mk func() series) series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = mk()
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, KindCounter, labels, func() series { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, KindGauge, labels, func() series { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for pre-existing atomic counters that are
// maintained elsewhere (e.g. the server's request counters).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, KindCounter, labels, func() series { return valueFunc(fn) })
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time (queue depths, goroutine counts, cache sizes, uptimes).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, KindGauge, labels, func() series { return valueFunc(fn) })
}

// Histogram returns the histogram series for name+labels, creating it
// with the given bucket upper bounds (ascending; +Inf is implicit) on
// first use. Later calls for an existing series ignore buckets.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, labels, func() series { return newHistogram(buckets) }).(*Histogram)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// by label set, so output order is stable across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]series, len(keys))
		for i, k := range keys {
			ss[i] = f.series[k]
		}
		r.mu.Unlock()
		for i, s := range ss {
			if err := s.writeExposition(w, f.name, keys[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, with infinities spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine writes one `name{labels} value` line.
func sampleLine(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	}
	return err
}
