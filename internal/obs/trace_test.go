package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderAggregates(t *testing.T) {
	rec := NewRecorder()
	t0 := rec.Start()
	time.Sleep(time.Millisecond)
	rec.End(StageKnapsack, t0, 40)
	t1 := rec.Start()
	rec.End(StageKnapsack, t1, 2)
	stats := rec.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("got %d stages, want 1: %+v", len(stats), stats)
	}
	st := stats[0]
	if st.Stage != "knapsack" || st.Calls != 2 || st.Size != 42 {
		t.Fatalf("unexpected stat: %+v", st)
	}
	if st.Total < time.Millisecond || st.Max < time.Millisecond || st.Max > st.Total {
		t.Fatalf("implausible durations: %+v", st)
	}
}

func TestSnapshotPipelineOrder(t *testing.T) {
	rec := NewRecorder()
	// Record out of order; the snapshot must come back in enum order.
	rec.End(StageMC3, rec.Start(), 0)
	rec.End(StagePrune, rec.Start(), 0)
	rec.End(StageQK, rec.Start(), 0)
	var names []string
	for _, st := range rec.Snapshot() {
		names = append(names, st.Stage)
	}
	want := []string{"prune", "qk", "mc3"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", names, want)
	}
}

// TestNilRecorderHotPath pins the disabled-tracer cost contract: a nil
// Recorder's Start/End pair must not allocate (it is left permanently
// in the solver inner loops, mirroring the nil-*Guard convention).
func TestNilRecorderHotPath(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := rec.Start()
		rec.End(StageKnapsack, t0, 17)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder hot path allocates %v per stage, want 0", allocs)
	}
	if rec.Snapshot() != nil {
		t.Fatalf("nil recorder snapshot should be nil")
	}
}

// TestEnabledRecorderNoAllocs verifies the enabled path is also
// allocation-free — aggregation happens in the fixed cell array.
func TestEnabledRecorderNoAllocs(t *testing.T) {
	rec := NewRecorder()
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := rec.Start()
		rec.End(StageQKRestart, t0, 3)
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder hot path allocates %v per stage, want 0", allocs)
	}
}

// TestRecorderConcurrent mirrors the QK restart workers recording into
// the same stage from many goroutines.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.End(StageQKRestart, rec.Start(), 1)
			}
		}()
	}
	wg.Wait()
	stats := rec.Snapshot()
	if len(stats) != 1 || stats[0].Calls != workers*per || stats[0].Size != workers*per {
		t.Fatalf("unexpected stats: %+v", stats)
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatalf("background context should carry no recorder")
	}
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Fatalf("recorder lost in context round-trip")
	}
}

func TestWriteTable(t *testing.T) {
	var rec *Recorder
	var b strings.Builder
	if err := rec.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no stages recorded") {
		t.Fatalf("nil recorder table = %q", b.String())
	}

	rec = NewRecorder()
	rec.End(StagePrune, rec.Start(), 12)
	rec.End(StageKnapsack, rec.Start(), 100)
	b.Reset()
	if err := rec.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"stage", "prune", "knapsack", "share"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	b := ReadBuild()
	if b.GoVersion == "" {
		t.Fatalf("build info missing Go version: %+v", b)
	}
	if b.String() == "" {
		t.Fatalf("empty build string")
	}
}
