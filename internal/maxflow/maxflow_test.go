package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Fatalf("MaxFlow = %v, want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 3, 4)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 6 {
		t.Fatalf("MaxFlow = %v, want 6", got)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with a cross edge.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %v, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 7)
	g.AddEdge(2, 3, 7)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Fatalf("MaxFlow = %v, want 0", got)
	}
}

func TestInfiniteEdges(t *testing.T) {
	// s -∞-> a -2-> t : flow limited by the finite bottleneck.
	g := New(3)
	g.AddEdge(0, 1, math.Inf(1))
	g.AddEdge(1, 2, 2)
	if got := g.MaxFlow(0, 2); got != 2 {
		t.Fatalf("MaxFlow = %v, want 2", got)
	}
}

func TestMinCutSides(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1) // bottleneck
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	side := g.MinCut(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("MinCut sides = %v, want [true true false false]", side)
	}
}

func TestMinCutAvoidsInfiniteEdges(t *testing.T) {
	// The only finite cut is the source edge.
	g := New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, math.Inf(1))
	g.MaxFlow(0, 2)
	side := g.MinCut(0)
	if side[1] || side[2] {
		t.Fatalf("cut must separate at the finite edge, got %v", side)
	}
}

func TestFlowAccessor(t *testing.T) {
	g := New(3)
	e0 := g.AddEdge(0, 1, 5)
	e1 := g.AddEdge(1, 2, 3)
	g.MaxFlow(0, 2)
	if g.Flow(e0) != 3 || g.Flow(e1) != 3 {
		t.Fatalf("edge flows = %v, %v, want 3, 3", g.Flow(e0), g.Flow(e1))
	}
}

func TestNegativeCapacityTreatedAsZero(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -5)
	if got := g.MaxFlow(0, 1); got != 0 {
		t.Fatalf("MaxFlow = %v, want 0", got)
	}
}

// bruteMinCut computes min s-t cut by enumerating all node bipartitions.
func bruteMinCut(n int, caps [][]float64, s, t int) float64 {
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var cut float64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if caps[u][v] > 0 && mask&(1<<u) != 0 && mask&(1<<v) == 0 {
					cut += caps[u][v]
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMaxFlowEqualsBruteMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		caps := make([][]float64, n)
		for i := range caps {
			caps[i] = make([]float64, n)
		}
		g := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					c := float64(rng.Intn(10))
					caps[u][v] = c
					g.AddEdge(u, v, c)
				}
			}
		}
		flow := g.MaxFlow(0, n-1)
		cut := bruteMinCut(n, caps, 0, n-1)
		if math.Abs(flow-cut) > 1e-6 {
			t.Fatalf("trial %d: flow %v != min cut %v (n=%d)", trial, flow, cut, n)
		}
		// Cut extraction must match the cut value.
		side := g.MinCut(0)
		var cutVal float64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if caps[u][v] > 0 && side[u] && !side[v] {
					cutVal += caps[u][v]
				}
			}
		}
		if math.Abs(cutVal-flow) > 1e-6 {
			t.Fatalf("trial %d: extracted cut %v != flow %v", trial, cutVal, flow)
		}
	}
}

func BenchmarkDinicGrid(b *testing.B) {
	const side = 30
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := side*side + 2
		g := New(n)
		id := func(r, c int) int { return r*side + c + 1 }
		for r := 0; r < side; r++ {
			g.AddEdge(0, id(r, 0), 10)
			g.AddEdge(id(r, side-1), n-1, 10)
			for c := 0; c+1 < side; c++ {
				g.AddEdge(id(r, c), id(r, c+1), 5)
				if r+1 < side {
					g.AddEdge(id(r, c), id(r+1, c), 5)
				}
			}
		}
		b.StartTimer()
		_ = g.MaxFlow(0, n-1)
	}
}
