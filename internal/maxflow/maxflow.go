// Package maxflow implements Dinic's maximum-flow algorithm on
// floating-point capacities, together with minimum-cut extraction.
//
// It is the substrate for two exact solvers in this repository: the
// project-selection min-cut that solves MC3 exactly for l ≤ 2, and the
// parametric min-cut that solves the densest-subgraph step of the ECC
// algorithm exactly.
package maxflow

import "math"

type edge struct {
	to   int
	cap  float64
	flow float64
}

// Graph is a flow network under construction. Nodes are integers in
// [0, n). The zero value is not usable; create graphs with New.
type Graph struct {
	n     int
	edges []edge // paired: edges[i] and edges[i^1] are residual twins
	head  [][]int

	// Infinite capacities are replaced by a finite surrogate exceeding any
	// possible flow; recorded here so MinCut can still treat them as
	// uncuttable.
	finiteSum float64
	infEdges  []int
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, head: make([][]int, n)}
}

// NumNodes reports the number of nodes in the network.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// edge index (usable with Flow). Capacities may be math.Inf(1); negative or
// NaN capacities are treated as zero.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if capacity < 0 || math.IsNaN(capacity) {
		capacity = 0
	}
	id := len(g.edges)
	inf := math.IsInf(capacity, 1)
	if inf {
		g.infEdges = append(g.infEdges, id)
		capacity = 0 // patched in MaxFlow once finiteSum is known
	} else {
		g.finiteSum += capacity
	}
	g.edges = append(g.edges, edge{to: v, cap: capacity})
	g.edges = append(g.edges, edge{to: u, cap: 0})
	g.head[u] = append(g.head[u], id)
	g.head[v] = append(g.head[v], id+1)
	return id
}

// Flow returns the flow currently routed through the edge with the given
// index (as returned by AddEdge).
func (g *Graph) Flow(edgeID int) float64 { return g.edges[edgeID].flow }

// MaxFlow computes the maximum s→t flow. It may be called once per graph.
func (g *Graph) MaxFlow(s, t int) float64 {
	// Patch infinite edges with a surrogate above any feasible flow.
	surrogate := g.finiteSum*float64(g.n+2) + 1
	for _, id := range g.infEdges {
		g.edges[id].cap = surrogate
	}
	const eps = 1e-12
	var total float64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for {
		// BFS layering.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap-e.flow > eps && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			break
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, math.Inf(1), level, iter)
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Graph) dfs(u, t int, limit float64, level, iter []int) float64 {
	if u == t {
		return limit
	}
	const eps = 1e-12
	for ; iter[u] < len(g.head[u]); iter[u]++ {
		id := g.head[u][iter[u]]
		e := &g.edges[id]
		if e.cap-e.flow <= eps || level[e.to] != level[u]+1 {
			continue
		}
		d := g.dfs(e.to, t, math.Min(limit, e.cap-e.flow), level, iter)
		if d > eps {
			g.edges[id].flow += d
			g.edges[id^1].flow -= d
			return d
		}
	}
	return 0
}

// MinCut returns, after MaxFlow has run, the source side of a minimum cut:
// sourceSide[v] is true iff v is reachable from s in the residual network.
func (g *Graph) MinCut(s int) []bool {
	const eps = 1e-12
	side := make([]bool, g.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.head[u] {
			e := g.edges[id]
			if e.cap-e.flow > eps && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}
