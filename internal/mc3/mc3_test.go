package mc3

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/propset"
)

// costMap builds a Cost oracle from explicit entries with a default.
func costMap(def float64, entries map[string]float64) func(propset.Set) float64 {
	return func(s propset.Set) float64 {
		if c, ok := entries[s.Key()]; ok {
			return c
		}
		return def
	}
}

// bruteMC3 finds the true minimum cost cover by enumerating classifier
// subsets. Queries that cannot be covered are skipped (matching Solve).
func bruteMC3(inp Input) float64 {
	// Enumerate candidate classifiers.
	seen := map[string]propset.Set{}
	for _, q := range inp.Queries {
		q.Subsets(func(sub propset.Set) {
			if !math.IsInf(inp.Cost(sub), 1) {
				seen[sub.Key()] = sub.Clone()
			}
		})
	}
	var cands []propset.Set
	for _, c := range seen {
		cands = append(cands, c)
	}
	if len(cands) > 20 {
		panic("bruteMC3 too large")
	}
	coverable := func(q propset.Set, have map[string]bool) bool {
		var acc propset.Set
		q.Subsets(func(sub propset.Set) {
			if have[sub.Key()] {
				acc = acc.Union(sub)
			}
		})
		return acc.Equal(q)
	}
	all := map[string]bool{}
	for _, c := range cands {
		all[c.Key()] = true
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(cands); mask++ {
		have := map[string]bool{}
		var cost float64
		for i, c := range cands {
			if mask&(1<<i) != 0 {
				have[c.Key()] = true
				cost += inp.Cost(c)
			}
		}
		ok := true
		for _, q := range inp.Queries {
			if !coverable(q, all) {
				continue // uncoverable, excluded from guarantee
			}
			if !coverable(q, have) {
				ok = false
				break
			}
		}
		if ok && cost < best {
			best = cost
		}
	}
	return best
}

func TestExactSimpleChain(t *testing.T) {
	// Queries x, xy; buying X is forced; then covering xy needs Y (cost 2)
	// or XY (cost 1): XY wins.
	u := propset.NewUniverse()
	x := u.SetOf("x")
	xy := u.SetOf("x", "y")
	inp := Input{
		Queries: []propset.Set{x, xy},
		Cost: costMap(0, map[string]float64{
			x.Key():            3,
			u.SetOf("y").Key(): 2,
			xy.Key():           1,
		}),
	}
	out := SolveExactL2(inp)
	if out.Cost != 4 {
		t.Fatalf("Cost = %v, want 4 (X + XY)", out.Cost)
	}
	for _, q := range inp.Queries {
		if !out.Covers(q) {
			t.Fatalf("query %v not covered", q)
		}
	}
}

func TestExactSharedEndpointsBeatPairs(t *testing.T) {
	// Star: queries xy, xz, xw. Singletons cost 1, pairs cost 1.9:
	// buying {X,Y,Z,W} (cost 4) beats three pairs (5.7).
	u := propset.NewUniverse()
	queries := []propset.Set{u.SetOf("x", "y"), u.SetOf("x", "z"), u.SetOf("x", "w")}
	inp := Input{
		Queries: queries,
		Cost: func(s propset.Set) float64 {
			if s.Len() == 1 {
				return 1
			}
			return 1.9
		},
	}
	out := SolveExactL2(inp)
	if math.Abs(out.Cost-4) > 1e-9 {
		t.Fatalf("Cost = %v, want 4", out.Cost)
	}
}

func TestExactPairsBeatSingletons(t *testing.T) {
	// Disjoint queries: xy and zw. Pairs cost 1, singletons cost 10.
	u := propset.NewUniverse()
	inp := Input{
		Queries: []propset.Set{u.SetOf("x", "y"), u.SetOf("z", "w")},
		Cost: func(s propset.Set) float64 {
			if s.Len() == 2 {
				return 1
			}
			return 10
		},
	}
	out := SolveExactL2(inp)
	if out.Cost != 2 {
		t.Fatalf("Cost = %v, want 2", out.Cost)
	}
}

func TestExactInfinitePairForcesSingletons(t *testing.T) {
	u := propset.NewUniverse()
	xy := u.SetOf("x", "y")
	inp := Input{
		Queries: []propset.Set{xy},
		Cost: costMap(1, map[string]float64{
			xy.Key(): math.Inf(1),
		}),
	}
	out := SolveExactL2(inp)
	if out.Cost != 2 || len(out.Classifiers) != 2 {
		t.Fatalf("want both singletons at cost 2, got %+v", out)
	}
}

func TestExactUncoverableQuery(t *testing.T) {
	u := propset.NewUniverse()
	xy := u.SetOf("x", "y")
	inp := Input{
		Queries: []propset.Set{xy},
		Cost: costMap(math.Inf(1), map[string]float64{
			u.SetOf("x").Key(): 1,
		}),
	}
	out := SolveExactL2(inp)
	if len(out.Uncovered) != 1 {
		t.Fatalf("want 1 uncoverable query, got %+v", out)
	}
	if out.Cost != 0 {
		t.Fatalf("nothing should be bought, cost %v", out.Cost)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 200; trial++ {
		u := propset.NewUniverse()
		var queries []propset.Set
		nq := 1 + rng.Intn(4)
		for i := 0; i < nq; i++ {
			if rng.Intn(3) == 0 {
				queries = append(queries, u.SetOf(names[rng.Intn(len(names))]))
			} else {
				a, b := rng.Intn(len(names)), rng.Intn(len(names))
				if a == b {
					b = (b + 1) % len(names)
				}
				queries = append(queries, u.SetOf(names[a], names[b]))
			}
		}
		costs := map[string]float64{}
		inp := Input{
			Queries: queries,
			Cost: func(s propset.Set) float64 {
				k := s.Key()
				if c, ok := costs[k]; ok {
					return c
				}
				var c float64
				switch rng.Intn(6) {
				case 0:
					c = 0
				case 5:
					c = math.Inf(1)
				default:
					c = float64(1 + rng.Intn(9))
				}
				costs[k] = c
				return c
			},
		}
		// Materialize all costs first (oracle must be deterministic).
		for _, q := range queries {
			q.Subsets(func(sub propset.Set) { inp.Cost(sub) })
		}
		got := SolveExactL2(inp)
		want := bruteMC3(inp)
		if math.IsInf(want, 1) {
			continue
		}
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: exact cost %v != brute %v (queries %v)",
				trial, got.Cost, want, queries)
		}
		for _, q := range queries {
			unc := false
			for _, uq := range got.Uncovered {
				if uq.Equal(q) {
					unc = true
				}
			}
			if !unc && !got.Covers(q) {
				t.Fatalf("trial %d: query %v not covered", trial, q)
			}
		}
	}
}

func TestGreedyCoversLongQueries(t *testing.T) {
	u := propset.NewUniverse()
	queries := []propset.Set{
		u.SetOf("a", "b", "c"),
		u.SetOf("a", "b", "d"),
		u.SetOf("c", "d"),
		u.SetOf("a"),
	}
	inp := Input{Queries: queries, Cost: func(s propset.Set) float64 { return float64(s.Len()) }}
	out := Solve(inp)
	for _, q := range queries {
		if !out.Covers(q) {
			t.Fatalf("greedy left %v uncovered", q)
		}
	}
	if len(out.Uncovered) != 0 {
		t.Fatalf("unexpected uncovered: %v", out.Uncovered)
	}
}

func TestGreedyNotTerribleVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		u := propset.NewUniverse()
		var queries []propset.Set
		nq := 1 + rng.Intn(3)
		for i := 0; i < nq; i++ {
			ln := 1 + rng.Intn(3)
			ids := map[string]bool{}
			for len(ids) < ln {
				ids[names[rng.Intn(len(names))]] = true
			}
			var sel []string
			for s := range ids {
				sel = append(sel, s)
			}
			queries = append(queries, u.SetOf(sel...))
		}
		costs := map[string]float64{}
		inp := Input{
			Queries: queries,
			Cost: func(s propset.Set) float64 {
				k := s.Key()
				if c, ok := costs[k]; ok {
					return c
				}
				c := float64(1 + rng.Intn(9))
				costs[k] = c
				return c
			},
		}
		for _, q := range queries {
			q.Subsets(func(sub propset.Set) { inp.Cost(sub) })
		}
		got := SolveGreedy(inp)
		want := bruteMC3(inp)
		if got.Cost < want-1e-9 {
			t.Fatalf("trial %d: greedy %v below optimum %v — coverage bug", trial, got.Cost, want)
		}
		if got.Cost > want*4+1e-9 {
			t.Errorf("trial %d: greedy %v > 4 × optimum %v", trial, got.Cost, want)
		}
		for _, q := range queries {
			if !got.Covers(q) {
				t.Fatalf("trial %d: %v uncovered", trial, q)
			}
		}
	}
}

func TestSolveDispatchesByLength(t *testing.T) {
	u := propset.NewUniverse()
	inp := Input{
		Queries: []propset.Set{u.SetOf("a", "b")},
		Cost:    func(s propset.Set) float64 { return 1 },
	}
	out := Solve(inp)
	if out.Cost != 1 {
		t.Fatalf("l=2 dispatch: cost %v, want 1 (exact picks AB)", out.Cost)
	}
}

func TestZeroCostClassifiersFree(t *testing.T) {
	u := propset.NewUniverse()
	xy := u.SetOf("x", "y")
	inp := Input{
		Queries: []propset.Set{xy},
		Cost:    costMap(5, map[string]float64{xy.Key(): 0}),
	}
	out := SolveExactL2(inp)
	if out.Cost != 0 {
		t.Fatalf("free pair classifier should win, cost %v", out.Cost)
	}
}

func TestDuplicateQueriesDeduped(t *testing.T) {
	u := propset.NewUniverse()
	q := u.SetOf("x", "y")
	inp := Input{
		Queries: []propset.Set{q, q, q},
		Cost:    func(s propset.Set) float64 { return 1 },
	}
	out := SolveExactL2(inp)
	if out.Cost != 1 {
		t.Fatalf("duplicates should not raise cost: %v", out.Cost)
	}
}

func BenchmarkExactL2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	u := propset.NewUniverse()
	var queries []propset.Set
	names := make([]string, 200)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for i := 0; i < 500; i++ {
		a, b2 := rng.Intn(200), rng.Intn(200)
		if a == b2 {
			queries = append(queries, u.SetOf(names[a]))
		} else {
			queries = append(queries, u.SetOf(names[a], names[b2]))
		}
	}
	costs := map[string]float64{}
	inp := Input{Queries: queries, Cost: func(s propset.Set) float64 {
		k := s.Key()
		if c, ok := costs[k]; ok {
			return c
		}
		c := float64(1 + rng.Intn(20))
		costs[k] = c
		return c
	}}
	for _, q := range queries {
		q.Subsets(func(sub propset.Set) { inp.Cost(sub) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveExactL2(inp)
	}
}
