// Package mc3 implements the Minimization of Classifier Construction
// Costs problem (MC3) of Gershtein et al. [22, 23], the non-budgeted
// predecessor of BCC (Definition 2.4 of the paper): find a classifier set
// of minimum total cost that covers every input query.
//
// Matching the published guarantees (Theorem 2.5):
//
//   - for l ≤ 2 the problem is solved exactly in polynomial time, here by
//     reduction to maximum-weight closure / project selection, i.e. one
//     min-cut: choosing the set N of singleton classifiers to buy and
//     paying the pair classifier of every length-2 query not inside N is
//     equivalent to maximizing Σ_{e ⊆ N} C(e) − Σ_{v∈N} C(v);
//   - for l ≥ 3 a greedy weighted set cover over (query, property) slots
//     achieves an O(log n) approximation, followed by a reverse-delete
//     redundancy prune.
//
// The BCC algorithm A^BCC uses MC3 as a black-box local-search step
// (line 3 of Algorithm 1): re-cover the query set of the current solution
// at minimum cost and keep the outcome if it is cheaper.
package mc3

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/guard"
	"repro/internal/maxflow"
	"repro/internal/propset"
)

// Input is an MC3 problem: queries to cover and the classifier cost
// oracle. Cost must be defined (possibly +Inf) for every non-empty subset
// of every query; +Inf excludes a classifier.
type Input struct {
	Queries []propset.Set
	Cost    func(propset.Set) float64
}

// Output is a solved MC3 instance.
type Output struct {
	// Classifiers is the selected set, sorted by (length, key).
	Classifiers []propset.Set
	// Cost is the total construction cost of Classifiers.
	Cost float64
	// Uncovered lists queries that cannot be covered by any finite-cost
	// classifier combination; they are excluded from the guarantee.
	Uncovered []propset.Set
}

// Solve covers all coverable queries at low cost: exactly for l ≤ 2,
// greedily (O(log n)-approximate) otherwise.
func Solve(inp Input) Output {
	guard.Inject("mc3.solve")
	maxLen := 0
	for _, q := range inp.Queries {
		if q.Len() > maxLen {
			maxLen = q.Len()
		}
	}
	if maxLen <= 2 {
		return SolveExactL2(inp)
	}
	return SolveGreedy(inp)
}

// SolveExactL2 solves MC3 exactly when every query has length ≤ 2, via a
// single min-cut on the project-selection network. It panics if a query is
// longer.
func SolveExactL2(inp Input) Output {
	var out Output

	// Intern the properties appearing in the queries.
	propIdx := map[propset.ID]int{}
	var props []propset.ID
	idx := func(p propset.ID) int {
		if i, ok := propIdx[p]; ok {
			return i
		}
		i := len(props)
		propIdx[p] = i
		props = append(props, p)
		return i
	}

	type pairQuery struct {
		q        propset.Set
		u, v     int // property indices
		edgeCost float64
	}
	var pairs []pairQuery
	forced := map[int]bool{} // property index → must buy singleton
	seen := map[string]bool{}

	singletonCost := func(p propset.ID) float64 { return inp.Cost(propset.New(p)) }

	for _, q := range inp.Queries {
		if seen[q.Key()] {
			continue
		}
		seen[q.Key()] = true
		switch q.Len() {
		case 0:
			continue
		case 1:
			if math.IsInf(singletonCost(q[0]), 1) {
				out.Uncovered = append(out.Uncovered, q)
				continue
			}
			forced[idx(q[0])] = true
		case 2:
			cXY := inp.Cost(q)
			cX, cY := singletonCost(q[0]), singletonCost(q[1])
			if math.IsInf(cXY, 1) && (math.IsInf(cX, 1) || math.IsInf(cY, 1)) {
				out.Uncovered = append(out.Uncovered, q)
				continue
			}
			if math.IsInf(cX, 1) || math.IsInf(cY, 1) {
				// Must buy the pair classifier.
				pairs = append(pairs, pairQuery{q: q, u: -1, v: -1, edgeCost: cXY})
				continue
			}
			pairs = append(pairs, pairQuery{q: q, u: idx(q[0]), v: idx(q[1]), edgeCost: cXY})
		default:
			panic("mc3: SolveExactL2 requires queries of length ≤ 2")
		}
	}

	nProps := len(props)
	// Network: source 0, sink 1, edge-gadget nodes 2..2+|pairs|,
	// property nodes follow.
	src, snk := 0, 1
	edgeNode := func(i int) int { return 2 + i }
	propNode := func(i int) int { return 2 + len(pairs) + i }
	g := maxflow.New(2 + len(pairs) + nProps)
	for i, pq := range pairs {
		if pq.u < 0 {
			continue // unconditional pair purchase, no gadget needed
		}
		g.AddEdge(src, edgeNode(i), pq.edgeCost) // may be +Inf
		g.AddEdge(edgeNode(i), propNode(pq.u), math.Inf(1))
		g.AddEdge(edgeNode(i), propNode(pq.v), math.Inf(1))
	}
	for i := range props {
		c := singletonCost(props[i])
		if forced[i] {
			c = 0 // already paid below
		}
		g.AddEdge(propNode(i), snk, c)
	}
	g.MaxFlow(src, snk)
	side := g.MinCut(src)

	chosen := map[string]propset.Set{}
	add := func(s propset.Set) { chosen[s.Key()] = s }
	for i := range props {
		if side[propNode(i)] || forced[i] {
			add(propset.New(props[i]))
		}
	}
	for _, pq := range pairs {
		if pq.u < 0 {
			add(pq.q)
			continue
		}
		buyBoth := side[propNode(pq.u)] && side[propNode(pq.v)]
		if !buyBoth {
			add(pq.q)
		}
	}
	return finish(inp, out, chosen)
}

// SolveGreedy covers the queries by weighted set-cover greedy over
// (query, property) slots: each step selects the classifier minimizing
// cost per newly covered slot; a reverse-delete pass then removes
// redundant classifiers.
func SolveGreedy(inp Input) Output {
	var out Output

	type queryState struct {
		q       propset.Set
		covered propset.Set
	}
	var states []queryState
	seen := map[string]bool{}
	for _, q := range inp.Queries {
		if q.Len() == 0 || seen[q.Key()] {
			continue
		}
		seen[q.Key()] = true
		states = append(states, queryState{q: q})
	}

	// Candidate classifiers: all finite-cost subsets of queries, indexed
	// by the queries they are relevant to.
	type candidate struct {
		c       propset.Set
		cost    float64
		queries []int
	}
	candIdx := map[string]int{}
	var cands []candidate
	for qi, st := range states {
		st.q.Subsets(func(sub propset.Set) {
			k := sub.Key()
			if i, ok := candIdx[k]; ok {
				cands[i].queries = append(cands[i].queries, qi)
				return
			}
			cost := inp.Cost(sub)
			if math.IsInf(cost, 1) {
				return
			}
			candIdx[k] = len(cands)
			cands = append(cands, candidate{c: sub.Clone(), cost: cost, queries: []int{qi}})
		})
	}

	// Queries with no finite path to full coverage: detect by checking
	// whether the union of finite-cost subsets equals the query.
	coverable := make([]bool, len(states))
	for qi, st := range states {
		var acc propset.Set
		st.q.Subsets(func(sub propset.Set) {
			if _, ok := candIdx[sub.Key()]; ok {
				acc = acc.Union(sub)
			}
		})
		if acc.Equal(st.q) {
			coverable[qi] = true
		} else {
			out.Uncovered = append(out.Uncovered, st.q)
		}
	}

	chosen := map[string]propset.Set{}
	remainingSlots := 0
	for qi := range states {
		if coverable[qi] {
			remainingSlots += states[qi].q.Len()
		}
	}
	// Lazy-greedy: a candidate's cost-per-new-slot only grows as coverage
	// accumulates, so a stale heap entry can be revalidated on pop.
	newSlotsOf := func(i int) int {
		n := 0
		for _, qi := range cands[i].queries {
			if coverable[qi] {
				n += cands[i].c.Minus(states[qi].covered).Len()
			}
		}
		return n
	}
	scoreOf := func(i int, slots int) float64 {
		if slots == 0 {
			return math.Inf(1)
		}
		return cands[i].cost / float64(slots)
	}
	h := &candHeap{}
	heap.Init(h)
	for i := range cands {
		if slots := newSlotsOf(i); slots > 0 {
			heap.Push(h, candEntry{i, scoreOf(i, slots)})
		}
	}
	for remainingSlots > 0 && h.Len() > 0 {
		e := heap.Pop(h).(candEntry)
		if _, ok := chosen[cands[e.i].c.Key()]; ok {
			continue
		}
		slots := newSlotsOf(e.i)
		if slots == 0 {
			continue
		}
		if cur := scoreOf(e.i, slots); cur > e.score+1e-12 {
			heap.Push(h, candEntry{e.i, cur})
			continue
		}
		cand := cands[e.i]
		chosen[cand.c.Key()] = cand.c
		for _, qi := range cand.queries {
			if !coverable[qi] {
				continue
			}
			gained := cand.c.Minus(states[qi].covered).Len()
			states[qi].covered = states[qi].covered.Union(cand.c)
			remainingSlots -= gained
		}
	}

	out = finish(inp, out, chosen)
	return reverseDelete(inp, out)
}

// reverseDelete drops classifiers (costliest first) whose removal keeps
// every non-uncovered query covered. Each removal trial only revisits the
// queries the classifier is relevant to.
func reverseDelete(inp Input, out Output) Output {
	uncovered := map[string]bool{}
	for _, q := range out.Uncovered {
		uncovered[q.Key()] = true
	}
	classifiers := append([]propset.Set(nil), out.Classifiers...)
	sort.Slice(classifiers, func(i, j int) bool {
		return inp.Cost(classifiers[i]) > inp.Cost(classifiers[j])
	})
	have := map[string]bool{}
	for _, c := range classifiers {
		have[c.Key()] = true
	}
	// Index: classifier key → queries it is a subset of.
	relq := map[string][]propset.Set{}
	seenQ := map[string]bool{}
	for _, q := range inp.Queries {
		if q.Len() == 0 || uncovered[q.Key()] || seenQ[q.Key()] {
			continue
		}
		seenQ[q.Key()] = true
		q.Subsets(func(sub propset.Set) {
			k := sub.Key()
			if have[k] {
				relq[k] = append(relq[k], q)
			}
		})
	}
	covers := func(q propset.Set) bool {
		var acc propset.Set
		q.Subsets(func(sub propset.Set) {
			if have[sub.Key()] {
				acc = acc.Union(sub)
			}
		})
		return acc.Equal(q)
	}
	for _, c := range classifiers {
		if inp.Cost(c) == 0 {
			continue
		}
		k := c.Key()
		have[k] = false
		ok := true
		for _, q := range relq[k] {
			if !covers(q) {
				ok = false
				break
			}
		}
		if !ok {
			have[k] = true
		}
	}
	chosen := map[string]propset.Set{}
	for _, c := range classifiers {
		if have[c.Key()] {
			chosen[c.Key()] = c
		}
	}
	return finish(inp, Output{Uncovered: out.Uncovered}, chosen)
}

// finish assembles a deterministic Output from the chosen set.
func finish(inp Input, out Output, chosen map[string]propset.Set) Output {
	out.Classifiers = out.Classifiers[:0]
	out.Cost = 0
	for _, c := range chosen {
		out.Classifiers = append(out.Classifiers, c)
		out.Cost += inp.Cost(c)
	}
	sort.Slice(out.Classifiers, func(i, j int) bool {
		a, b := out.Classifiers[i], out.Classifiers[j]
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		return a.Key() < b.Key()
	})
	return out
}

// Covers reports whether the output's classifier set covers q.
func (o Output) Covers(q propset.Set) bool {
	have := map[string]bool{}
	for _, c := range o.Classifiers {
		have[c.Key()] = true
	}
	var acc propset.Set
	q.Subsets(func(sub propset.Set) {
		if have[sub.Key()] {
			acc = acc.Union(sub)
		}
	})
	return acc.Equal(q)
}

type candEntry struct {
	i     int
	score float64
}

type candHeap []candEntry

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candEntry)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
