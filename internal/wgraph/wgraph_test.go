package wgraph

import (
	"math/rand"
	"testing"
)

func triangle() *Graph {
	g := New(3)
	g.SetCost(0, 1)
	g.SetCost(1, 2)
	g.SetCost(2, 3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 20)
	g.AddEdge(0, 2, 30)
	return g
}

func TestBasicAccounting(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size = (%d,%d), want (3,3)", g.NumNodes(), g.NumEdges())
	}
	if g.TotalWeight() != 60 {
		t.Fatalf("TotalWeight = %v, want 60", g.TotalWeight())
	}
	if g.MaxEdgeWeight() != 30 {
		t.Fatalf("MaxEdgeWeight = %v, want 30", g.MaxEdgeWeight())
	}
	if got := g.TotalCost([]int{0, 2}); got != 4 {
		t.Fatalf("TotalCost = %v, want 4", got)
	}
	if g.WeightedDegree(1) != 30 {
		t.Fatalf("WeightedDegree(1) = %v, want 30", g.WeightedDegree(1))
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2).AddEdge(0, 5, 1)
}

func TestAddEdgeMerged(t *testing.T) {
	g := New(3)
	g.AddEdgeMerged(0, 1, 5)
	g.AddEdgeMerged(1, 0, 7) // same undirected edge
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.EdgeWeight(0, 1) != 12 {
		t.Fatalf("EdgeWeight = %v, want 12", g.EdgeWeight(0, 1))
	}
	if g.EdgeWeight(0, 2) != 0 {
		t.Fatalf("EdgeWeight(0,2) = %v, want 0", g.EdgeWeight(0, 2))
	}
}

func TestInducedWeight(t *testing.T) {
	g := triangle()
	in := []bool{true, true, false}
	if got := g.InducedWeight(in); got != 10 {
		t.Fatalf("InducedWeight = %v, want 10", got)
	}
	if got := g.InducedWeightOf([]int{0, 1, 2}); got != 60 {
		t.Fatalf("InducedWeightOf = %v, want 60", got)
	}
	if got := g.WeightedDegreeInto(2, in); got != 50 {
		t.Fatalf("WeightedDegreeInto = %v, want 50", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := triangle()
	sub, oldToNew, newToOld := g.Subgraph([]bool{true, false, true})
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph size = (%d,%d), want (2,1)", sub.NumNodes(), sub.NumEdges())
	}
	if sub.TotalWeight() != 30 {
		t.Fatalf("subgraph weight = %v, want 30", sub.TotalWeight())
	}
	if oldToNew[1] != -1 {
		t.Fatal("dropped node should map to -1")
	}
	if g.Cost(newToOld[0]) != sub.Cost(0) {
		t.Fatal("costs not preserved")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.SetCost(0, 99)
	c.AddEdge(0, 1, 1)
	if g.Cost(0) == 99 || g.NumEdges() == c.NumEdges() {
		t.Fatal("Clone aliases original")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[3] || !sizes[2] {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestIsTreeComponent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if !g.IsTreeComponent([]int{0, 1, 2}) {
		t.Fatal("path should be a tree")
	}
	g.AddEdge(0, 2, 1)
	if g.IsTreeComponent([]int{0, 1, 2}) {
		t.Fatal("triangle is not a tree")
	}
}

func TestNeighborsIteration(t *testing.T) {
	g := triangle()
	var sum float64
	seen := map[int]bool{}
	g.Neighbors(0, func(v int, w float64, eid int) {
		sum += w
		seen[v] = true
	})
	if sum != 40 || !seen[1] || !seen[2] {
		t.Fatalf("Neighbors(0): sum=%v seen=%v", sum, seen)
	}
}

func TestValidate(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph failed: %v", err)
	}
}

func TestInducedWeightConsistency(t *testing.T) {
	// Property: InducedWeight(S) = (Σ_{v∈S} WeightedDegreeInto(v,S)) / 2.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
		}
		in := make([]bool, n)
		for v := range in {
			in[v] = rng.Intn(2) == 0
		}
		var half float64
		for v := 0; v < n; v++ {
			if in[v] {
				half += g.WeightedDegreeInto(v, in)
			}
		}
		if w := g.InducedWeight(in); w*2 != half {
			t.Fatalf("trial %d: induced %v, half-sum %v", trial, w, half)
		}
	}
}

func BenchmarkInducedWeight(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	g := New(n)
	for i := 0; i < 20000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, rng.Float64())
		}
	}
	in := make([]bool, n)
	for v := range in {
		in[v] = rng.Intn(2) == 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.InducedWeight(in)
	}
}
