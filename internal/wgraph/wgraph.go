// Package wgraph provides the undirected weighted graph used throughout
// the density-problem solvers: nodes carry construction costs, edges carry
// utilities. It is the common input type for the DkS/HkS heuristics
// (internal/dks), the Quadratic Knapsack solvers (internal/qk) and the
// densest-subgraph solver (internal/densest).
package wgraph

import (
	"fmt"
	"math"
)

// Edge is an undirected edge with a non-negative weight.
type Edge struct {
	U, V int
	W    float64
}

type halfEdge struct {
	to  int
	eid int
}

// Graph is an undirected multigraph with node costs and edge weights.
// Parallel edges are permitted (AddEdge merges them by default through
// AddEdgeMerged; use AddEdge for raw appends). Self-loops are rejected.
type Graph struct {
	cost  []float64
	edges []Edge
	adj   [][]halfEdge
	byKey map[[2]int]int // endpoint pair -> edge index, for merged adds
}

// New returns a graph with n nodes, all of cost 0 and no edges.
func New(n int) *Graph {
	return &Graph{
		cost:  make([]float64, n),
		adj:   make([][]halfEdge, n),
		byKey: make(map[[2]int]int),
	}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.cost) }

// NumEdges reports the number of (distinct) edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// SetCost assigns a node's cost.
func (g *Graph) SetCost(v int, c float64) { g.cost[v] = c }

// Cost returns a node's cost.
func (g *Graph) Cost(v int) float64 { return g.cost[v] }

// TotalCost returns the sum of costs over the given node set.
func (g *Graph) TotalCost(nodes []int) float64 {
	var sum float64
	for _, v := range nodes {
		sum += g.cost[v]
	}
	return sum
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AddEdge appends an undirected edge u–v of weight w and returns its index.
// It panics on self-loops and out-of-range endpoints.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u == v {
		panic(fmt.Sprintf("wgraph: self-loop on node %d", u))
	}
	if u < 0 || v < 0 || u >= len(g.cost) || v >= len(g.cost) {
		panic(fmt.Sprintf("wgraph: edge (%d,%d) out of range [0,%d)", u, v, len(g.cost)))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, eid: id})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, eid: id})
	return id
}

// AddEdgeMerged adds weight w to the existing u–v edge if one was
// previously added through AddEdgeMerged, creating it otherwise. Use this
// when several logical contributions (e.g. multiple queries 2-covered by
// the same classifier pair) collapse onto one graph edge.
func (g *Graph) AddEdgeMerged(u, v int, w float64) int {
	k := edgeKey(u, v)
	if id, ok := g.byKey[k]; ok {
		g.edges[id].W += w
		return id
	}
	id := g.AddEdge(u, v, w)
	g.byKey[k] = id
	return id
}

// EdgeWeight returns the total weight of u–v edges (summing parallel
// edges), or 0 if none exist. It scans the smaller adjacency list.
func (g *Graph) EdgeWeight(u, v int) float64 {
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	var sum float64
	for _, h := range g.adj[a] {
		if h.to == b {
			sum += g.edges[h.eid].W
		}
	}
	return sum
}

// Neighbors calls fn(v, w, eid) for every edge incident to u.
func (g *Graph) Neighbors(u int, fn func(v int, w float64, eid int)) {
	for _, h := range g.adj[u] {
		fn(h.to, g.edges[h.eid].W, h.eid)
	}
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the sum of weights of edges incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	var sum float64
	for _, h := range g.adj[u] {
		sum += g.edges[h.eid].W
	}
	return sum
}

// WeightedDegreeInto returns the sum of weights of edges from u into the
// node set marked by in.
func (g *Graph) WeightedDegreeInto(u int, in []bool) float64 {
	var sum float64
	for _, h := range g.adj[u] {
		if in[h.to] {
			sum += g.edges[h.eid].W
		}
	}
	return sum
}

// InducedWeight returns the total weight of edges with both endpoints in
// the node set marked by in.
func (g *Graph) InducedWeight(in []bool) float64 {
	var sum float64
	for _, e := range g.edges {
		if in[e.U] && in[e.V] {
			sum += e.W
		}
	}
	return sum
}

// InducedWeightOf is InducedWeight for a node list.
func (g *Graph) InducedWeightOf(nodes []int) float64 {
	in := make([]bool, len(g.cost))
	for _, v := range nodes {
		in[v] = true
	}
	return g.InducedWeight(in)
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.W
	}
	return sum
}

// MaxEdgeWeight returns the maximum edge weight, or 0 on an edgeless graph.
func (g *Graph) MaxEdgeWeight() float64 {
	var max float64
	for _, e := range g.edges {
		if e.W > max {
			max = e.W
		}
	}
	return max
}

// Subgraph returns the subgraph induced by keep (nodes with keep[v] true)
// plus the mapping old→new node index (−1 for dropped nodes) and new→old.
// Costs are preserved; only edges with both endpoints kept survive.
func (g *Graph) Subgraph(keep []bool) (*Graph, []int, []int) {
	oldToNew := make([]int, len(g.cost))
	var newToOld []int
	for v := range g.cost {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	sub := New(len(newToOld))
	for i, old := range newToOld {
		sub.cost[i] = g.cost[old]
	}
	for _, e := range g.edges {
		nu, nv := oldToNew[e.U], oldToNew[e.V]
		if nu >= 0 && nv >= 0 {
			sub.AddEdgeMerged(nu, nv, e.W)
		}
	}
	return sub, oldToNew, newToOld
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(len(g.cost))
	copy(out.cost, g.cost)
	for _, e := range g.edges {
		out.AddEdge(e.U, e.V, e.W)
	}
	for k, v := range g.byKey {
		out.byKey[k] = v
	}
	return out
}

// ConnectedComponents returns the node lists of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, len(g.cost))
	var comps [][]int
	for start := range g.cost {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, h := range g.adj[u] {
				if !seen[h.to] {
					seen[h.to] = true
					stack = append(stack, h.to)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsTreeComponent reports whether the component containing the given nodes
// (assumed to be exactly one component's nodes) is acyclic.
func (g *Graph) IsTreeComponent(comp []int) bool {
	in := make([]bool, len(g.cost))
	for _, v := range comp {
		in[v] = true
	}
	edges := 0
	for _, e := range g.edges {
		if in[e.U] && in[e.V] {
			edges++
		}
	}
	return edges == len(comp)-1
}

// Validate checks internal consistency; used by tests.
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if e.U == e.V {
			return fmt.Errorf("edge %d is a self-loop", i)
		}
		if e.W < 0 || math.IsNaN(e.W) {
			return fmt.Errorf("edge %d has invalid weight %v", i, e.W)
		}
	}
	return nil
}
