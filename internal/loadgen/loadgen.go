// Package loadgen drives concurrent load through a bcc service client
// and tallies what came back. It is the engine of cmd/bccload and of
// the chaos soak test: both need the same loop — N workers hammering
// /v1/solve (with an occasional batch), classifying every outcome, and
// folding per-worker tallies into one report — so it lives here rather
// than in package main where tests could not reach it.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/resilience"
)

// Target is one service a load run drives: a name for the report (its
// base URL in bccload) and the client that reaches it.
type Target struct {
	Name   string
	Client *client.Client
}

// Config tunes a load run. Requests plus either Client or Targets are
// required.
type Config struct {
	// Client sends the traffic. Ignored when Targets is set.
	Client *client.Client
	// Targets, when non-empty, spreads the load round-robin across
	// several services (e.g. the gateway next to its backends, or two
	// gateway replicas) and adds per-target outcome counts to the report.
	Targets []Target
	// Requests is the workload, issued round-robin across workers. A few
	// distinct instances (SyntheticWorkload) exercise both cache hits and
	// real solves.
	Requests []api.SolveRequest
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Duration bounds the run (default 2s); the context can end it
	// earlier.
	Duration time.Duration
	// BatchEvery makes every Nth logical op a /v1/solve/batch call of
	// BatchSize requests instead of a single solve (0 = never batch).
	BatchEvery int
	// BatchSize is the batch call's size (default 3).
	BatchSize int
	// OpDelay, when positive, spaces a worker's ops (open-loop-ish load
	// instead of a tight closed loop).
	OpDelay time.Duration
}

// TargetReport is one target's share of a multi-target run.
type TargetReport struct {
	Ops    uint64 `json:"ops"`
	OK     uint64 `json:"ok"`
	Failed uint64 `json:"failed"`
}

// Report tallies one load run. Maps are keyed by solve status
// ("complete", "deadline", "recovered", ...) and error class
// ("http-429", "http-5xx", "breaker-open", "transport", ...).
type Report struct {
	Ops        uint64            `json:"ops"`
	OK         uint64            `json:"ok"`
	Failed     uint64            `json:"failed"`
	BatchItems uint64            `json:"batch_items,omitempty"`
	ItemErrors uint64            `json:"item_errors,omitempty"`
	CacheHits  uint64            `json:"cache_hits"`
	Statuses   map[string]uint64 `json:"statuses,omitempty"`
	Errors     map[string]uint64 `json:"errors,omitempty"`
	// Targets breaks the outcomes down per target; present only when the
	// run drove more than one.
	Targets map[string]*TargetReport `json:"targets,omitempty"`
	Elapsed time.Duration            `json:"elapsed_ns"`
	Client  client.Stats             `json:"client"`
}

// tally is one worker's private counters, merged into the Report at the
// end so the hot loop never touches shared state.
type tally struct {
	ops, ok, failed, batchItems, itemErrors, cacheHits uint64
	statuses, errors                                   map[string]uint64
	targets                                            map[string]*TargetReport
}

func newTally() *tally {
	return &tally{
		statuses: map[string]uint64{},
		errors:   map[string]uint64{},
		targets:  map[string]*TargetReport{},
	}
}

// target returns the worker-private per-target row, creating it on
// first use.
func (t *tally) target(name string) *TargetReport {
	tr := t.targets[name]
	if tr == nil {
		tr = &TargetReport{}
		t.targets[name] = tr
	}
	return tr
}

func (t *tally) result(resp *api.SolveResponse) {
	t.ok++
	t.statuses[resp.Status]++
	if resp.Cached {
		t.cacheHits++
	}
}

func (t *tally) failure(err error) {
	t.failed++
	t.errors[Classify(err)]++
}

// Classify buckets an error for reporting: breaker fast-fails, HTTP
// status classes, caller deadline, and everything else as transport.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, resilience.ErrOpen):
		return "breaker-open"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	}
	var he *client.HTTPError
	if errors.As(err, &he) {
		switch {
		case he.StatusCode == http.StatusTooManyRequests:
			return "http-429"
		case he.StatusCode >= 500:
			return "http-5xx"
		default:
			return "http-4xx"
		}
	}
	return "transport"
}

// Run drives the configured load until Duration elapses or ctx ends,
// then reports. Every op gets a valid classification — a chaos run
// where requests vanish unanswered shows up as transport errors, never
// as a hang.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	targets := cfg.Targets
	if len(targets) == 0 {
		if cfg.Client == nil {
			return nil, errors.New("loadgen: Client or Targets is required")
		}
		targets = []Target{{Name: "default", Client: cfg.Client}}
	}
	for _, tg := range targets {
		if tg.Client == nil {
			return nil, fmt.Errorf("loadgen: target %q has no client", tg.Name)
		}
	}
	if len(cfg.Requests) == 0 {
		return nil, errors.New("loadgen: empty workload")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 2 * time.Second
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = 3
	}

	ctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()

	start := time.Now()
	tallies := make([]*tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		t := newTally()
		tallies[w] = t
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for seq := worker; ctx.Err() == nil; seq++ {
				t.ops++
				// Each op picks its target round-robin; a whole batch call
				// goes to one target so its per-target row stays meaningful.
				tg := targets[seq%len(targets)]
				tt := t.target(tg.Name)
				tt.Ops++
				if cfg.BatchEvery > 0 && int(t.ops)%cfg.BatchEvery == 0 {
					reqs := make([]api.SolveRequest, 0, batchSize)
					for i := 0; i < batchSize; i++ {
						reqs = append(reqs, cfg.Requests[(seq+i)%len(cfg.Requests)])
					}
					resp, err := tg.Client.SolveBatch(ctx, reqs)
					if err != nil {
						if ctx.Err() != nil {
							t.ops-- // cut off by the run clock, not a real outcome
							tt.Ops--
							continue
						}
						t.failure(err)
						tt.Failed++
					} else {
						tt.OK++
						t.ok++
						for _, item := range resp.Responses {
							t.batchItems++
							if item.Result != nil {
								t.statuses[item.Result.Status]++
								if item.Result.Cached {
									t.cacheHits++
								}
							} else {
								t.itemErrors++
								t.errors[fmt.Sprintf("item-%d", item.Code)]++
							}
						}
					}
				} else {
					req := cfg.Requests[seq%len(cfg.Requests)]
					resp, err := tg.Client.Solve(ctx, &req)
					switch {
					case err != nil && ctx.Err() != nil:
						// The run's own clock cut this op off mid-flight; it says
						// nothing about the server, drop it from the tally.
						t.ops--
						tt.Ops--
					case err != nil:
						t.failure(err)
						tt.Failed++
					default:
						t.result(resp)
						tt.OK++
					}
				}
				if cfg.OpDelay > 0 {
					timer := time.NewTimer(cfg.OpDelay)
					select {
					case <-ctx.Done():
						timer.Stop()
					case <-timer.C:
					}
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &Report{
		Statuses: map[string]uint64{},
		Errors:   map[string]uint64{},
		Elapsed:  time.Since(start),
		// The headline client stats come from the first target; a
		// multi-target run reads per-target outcomes from Targets instead.
		Client: targets[0].Client.Stats(),
	}
	for _, t := range tallies {
		rep.Ops += t.ops
		rep.OK += t.ok
		rep.Failed += t.failed
		rep.BatchItems += t.batchItems
		rep.ItemErrors += t.itemErrors
		rep.CacheHits += t.cacheHits
		for k, v := range t.statuses {
			rep.Statuses[k] += v
		}
		for k, v := range t.errors {
			rep.Errors[k] += v
		}
		if len(targets) > 1 {
			if rep.Targets == nil {
				rep.Targets = map[string]*TargetReport{}
			}
			for name, tt := range t.targets {
				agg := rep.Targets[name]
				if agg == nil {
					agg = &TargetReport{}
					rep.Targets[name] = agg
				}
				agg.Ops += tt.Ops
				agg.OK += tt.OK
				agg.Failed += tt.Failed
			}
		}
	}
	return rep, nil
}

// String renders the report for terminals (bccload's default output).
func (r *Report) String() string {
	var b strings.Builder
	secs := r.Elapsed.Seconds()
	fmt.Fprintf(&b, "ops=%d ok=%d failed=%d (%.1f ops/s over %.1fs)\n",
		r.Ops, r.OK, r.Failed, float64(r.Ops)/secs, secs)
	if r.BatchItems > 0 {
		fmt.Fprintf(&b, "batch items=%d item-errors=%d\n", r.BatchItems, r.ItemErrors)
	}
	fmt.Fprintf(&b, "cache hits=%d\n", r.CacheHits)
	writeMap(&b, "statuses", r.Statuses)
	writeMap(&b, "errors", r.Errors)
	if len(r.Targets) > 0 {
		names := make([]string, 0, len(r.Targets))
		for name := range r.Targets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tt := r.Targets[name]
			fmt.Fprintf(&b, "target %s: ops=%d ok=%d failed=%d\n", name, tt.Ops, tt.OK, tt.Failed)
		}
	}
	fmt.Fprintf(&b, "client: requests=%d retries=%d breaker=%s opens=%d open-rejects=%d\n",
		r.Client.Requests, r.Client.Retries, r.Client.Breaker.State,
		r.Client.Breaker.Opens, r.Client.BreakerOpenRejects)
	return b.String()
}

func writeMap(b *strings.Builder, name string, m map[string]uint64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%s:", name)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, m[k])
	}
	b.WriteByte('\n')
}

// SyntheticWorkload builds n distinct small instances (deterministic in
// seed) shaped like the repo's synthetic dataset family but tiny, so a
// load run exercises cache hits, real solves and distinct fingerprints
// without multi-second solve times.
func SyntheticWorkload(n int, seed int64) []api.SolveRequest {
	rng := rand.New(rand.NewSource(seed))
	props := []string{"wooden", "table", "running", "shoes", "red", "leather", "office", "garden"}
	reqs := make([]api.SolveRequest, 0, n)
	for i := 0; i < n; i++ {
		var ff dataset.FileFormat
		total := 0.0
		seen := map[string]bool{}
		for q, nq := 0, 3+rng.Intn(4); q < nq; q++ {
			a, b := rng.Intn(len(props)), rng.Intn(len(props))
			if a == b {
				b = (a + 1) % len(props)
			}
			if a > b {
				// Canonical order: {table,wooden} and {wooden,table} are the
				// same query, and the server rejects duplicates.
				a, b = b, a
			}
			qp := []string{props[a], props[b]}
			if key := qp[0] + "+" + qp[1]; seen[key] {
				continue
			} else {
				seen[key] = true
			}
			ff.Queries = append(ff.Queries, dataset.FileQuery{Props: qp, Utility: 1 + float64(rng.Intn(9))})
			cost := 1 + float64(rng.Intn(5))
			ff.Costs = append(ff.Costs, dataset.FileCost{Props: qp, Cost: cost})
			total += cost
		}
		// A budget around 60% of the total classifier cost keeps the choice
		// non-trivial: some plans fit, the best ones compete.
		ff.Budget = 1 + total*0.6
		reqs = append(reqs, api.SolveRequest{Instance: ff})
	}
	return reqs
}
