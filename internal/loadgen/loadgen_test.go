package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/resilience"
)

func fakeService(t *testing.T, shedEvery int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if shedEvery > 0 && n%int64(shedEvery) == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full","retry_after_seconds":1}`))
			return
		}
		switch r.URL.Path {
		case "/v1/solve":
			json.NewEncoder(w).Encode(&api.SolveResponse{Status: "complete", Cached: n%2 == 0})
		case "/v1/solve/batch":
			var in api.BatchRequest
			json.NewDecoder(r.Body).Decode(&in)
			out := api.BatchResponse{}
			for range in.Requests {
				out.Responses = append(out.Responses, api.BatchItem{Result: &api.SolveResponse{Status: "complete"}})
			}
			json.NewEncoder(w).Encode(&out)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	return srv, &calls
}

func newTestClient(t *testing.T, url string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{BaseURL: url, MaxAttempts: 1, DisableBreaker: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunTalliesResultsAndBatches(t *testing.T) {
	srv, _ := fakeService(t, 0)
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Client:      newTestClient(t, srv.URL),
		Requests:    SyntheticWorkload(4, 1),
		Concurrency: 3,
		Duration:    150 * time.Millisecond,
		BatchEvery:  5,
		BatchSize:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Errorf("failures against a healthy fake: %+v", rep.Errors)
	}
	if rep.BatchItems == 0 {
		t.Error("BatchEvery=5 produced no batch items")
	}
	if rep.Statuses["complete"] == 0 || rep.CacheHits == 0 {
		t.Errorf("statuses = %v, cache hits = %d", rep.Statuses, rep.CacheHits)
	}
	if rep.Client.Requests == 0 {
		t.Error("client stats not captured")
	}
	if s := rep.String(); s == "" {
		t.Error("empty report rendering")
	}
}

func TestRunClassifiesShedding(t *testing.T) {
	srv, _ := fakeService(t, 3) // every 3rd call answers 429
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Client:      newTestClient(t, srv.URL),
		Requests:    SyntheticWorkload(2, 7),
		Concurrency: 2,
		Duration:    120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors["http-429"] == 0 {
		t.Errorf("shed answers not classified: %+v", rep.Errors)
	}
	if rep.Ops != rep.OK+rep.Failed {
		t.Errorf("ops %d != ok %d + failed %d", rep.Ops, rep.OK, rep.Failed)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("want error without a client")
	}
	c := newTestClient(t, "http://127.0.0.1:0")
	if _, err := Run(context.Background(), Config{Client: c}); err == nil {
		t.Error("want error with an empty workload")
	}
}

func TestSyntheticWorkloadDeterministicAndDistinct(t *testing.T) {
	a, b := SyntheticWorkload(6, 42), SyntheticWorkload(6, 42)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("same seed produced different workloads")
	}
	if len(a) != 6 {
		t.Fatalf("len = %d", len(a))
	}
	distinct := map[string]bool{}
	for _, r := range a {
		j, _ := json.Marshal(r.Instance)
		distinct[string(j)] = true
		if r.Instance.Budget <= 0 || len(r.Instance.Queries) == 0 {
			t.Errorf("degenerate instance: %s", j)
		}
	}
	if len(distinct) < 2 {
		t.Error("workload instances are not distinct")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{resilience.ErrOpen, "breaker-open"},
		{context.DeadlineExceeded, "deadline"},
		{&client.HTTPError{StatusCode: 429}, "http-429"},
		{&client.HTTPError{StatusCode: 503}, "http-5xx"},
		{&client.HTTPError{StatusCode: 400}, "http-4xx"},
		{errors.New("connection refused"), "transport"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
