package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
)

// SyntheticQueryLog builds n timestamped query-log lines in the
// pipeline ingest format ("unix-seconds<TAB>terms[<TAB>count]"),
// deterministic in seed, with timestamps spread evenly from start over
// spread. The term pool matches SyntheticWorkload so ingest-driven
// window solves look like the synthetic solve workload.
func SyntheticQueryLog(n int, seed int64, start time.Time, spread time.Duration) []string {
	rng := rand.New(rand.NewSource(seed))
	props := []string{"wooden", "table", "running", "shoes", "red", "leather", "office", "garden"}
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ts := start
		if n > 1 {
			ts = start.Add(spread * time.Duration(i) / time.Duration(n-1))
		}
		a, b := rng.Intn(len(props)), rng.Intn(len(props))
		if a == b {
			b = (a + 1) % len(props)
		}
		if a > b {
			a, b = b, a
		}
		lines = append(lines, fmt.Sprintf("%d\t%s %s\t%d", ts.Unix(), props[a], props[b], 1+rng.Intn(9)))
	}
	return lines
}

// IngestConfig tunes an ingest load run (bccload -ingest).
type IngestConfig struct {
	// Client sends the traffic (required).
	Client *client.Client
	// Concurrency is the worker count (default 4).
	Concurrency int
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// BatchSize is how many lines each ingest call carries (default 16).
	BatchSize int
	// Seed drives the synthetic query-log generator.
	Seed int64
	// OpDelay, when positive, spaces a worker's ops.
	OpDelay time.Duration
}

// IngestReport tallies one ingest run. A 429 shed is a classified
// outcome, not noise: the pipeline is expected to push back when the
// drivers outrun the solve cadence.
type IngestReport struct {
	Ops           uint64            `json:"ops"`
	OK            uint64            `json:"ok"`
	Failed        uint64            `json:"failed"`
	LinesAccepted uint64            `json:"lines_accepted"`
	Errors        map[string]uint64 `json:"errors,omitempty"`
	// Backlog is the server's unconsumed-record count on the last
	// acknowledged ingest.
	Backlog int64 `json:"backlog"`
	// Plan is the last-good plan observed after the run (nil when the
	// server had not published one yet).
	Plan    *api.CurrentPlanResponse `json:"plan,omitempty"`
	Elapsed time.Duration            `json:"elapsed_ns"`
	Client  client.Stats             `json:"client"`
}

// RunIngest drives timestamped query-log lines at POST /v1/ingest until
// Duration elapses, then reads back the current plan. Each op generates
// a fresh batch stamped now, so a long run keeps feeding the pipeline's
// newest window rather than replaying one stale burst.
func RunIngest(ctx context.Context, cfg IngestConfig) (*IngestReport, error) {
	if cfg.Client == nil {
		return nil, errors.New("loadgen: Client is required")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 2 * time.Second
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}

	runCtx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()

	start := time.Now()
	type tally struct {
		ops, ok, failed, lines uint64
		backlog                int64
		errors                 map[string]uint64
	}
	tallies := make([]*tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		t := &tally{errors: map[string]uint64{}}
		tallies[w] = t
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for seq := 0; runCtx.Err() == nil; seq++ {
				t.ops++
				lines := SyntheticQueryLog(batch, cfg.Seed+int64(worker*1_000_003+seq), time.Now(), 0)
				resp, err := cfg.Client.Ingest(runCtx, lines)
				switch {
				case err != nil && runCtx.Err() != nil:
					t.ops-- // cut off by the run clock, not a real outcome
				case err != nil:
					t.failed++
					t.errors[Classify(err)]++
				default:
					t.ok++
					t.lines += uint64(resp.Accepted)
					t.backlog = resp.BacklogRecords
				}
				if cfg.OpDelay > 0 {
					timer := time.NewTimer(cfg.OpDelay)
					select {
					case <-runCtx.Done():
						timer.Stop()
					case <-timer.C:
					}
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &IngestReport{
		Errors:  map[string]uint64{},
		Elapsed: time.Since(start),
		Client:  cfg.Client.Stats(),
	}
	for _, t := range tallies {
		rep.Ops += t.ops
		rep.OK += t.ok
		rep.Failed += t.failed
		rep.LinesAccepted += t.lines
		if t.backlog > rep.Backlog {
			rep.Backlog = t.backlog
		}
		for k, v := range t.errors {
			rep.Errors[k] += v
		}
	}

	// Read back the plan with the caller's context (the run clock has
	// expired); no plan yet is a report field, not an error.
	planCtx, planCancel := context.WithTimeout(ctx, 5*time.Second)
	defer planCancel()
	if plan, err := cfg.Client.CurrentPlan(planCtx); err == nil {
		rep.Plan = plan
	} else if !errors.Is(err, client.ErrNoPlan) {
		rep.Errors["plan-"+Classify(err)]++
	}
	return rep, nil
}

// String renders the report for terminals.
func (r *IngestReport) String() string {
	var b strings.Builder
	secs := r.Elapsed.Seconds()
	fmt.Fprintf(&b, "ingest ops=%d ok=%d failed=%d lines=%d (%.1f lines/s over %.1fs) backlog=%d\n",
		r.Ops, r.OK, r.Failed, r.LinesAccepted, float64(r.LinesAccepted)/secs, secs, r.Backlog)
	writeMap(&b, "errors", r.Errors)
	if r.Plan != nil {
		fmt.Fprintf(&b, "plan: seq=%d utility=%.2f cost=%.2f records=%d age=%.1fs\n",
			r.Plan.Seq, r.Plan.Plan.Utility, r.Plan.Plan.Cost, r.Plan.WindowRecords, r.Plan.AgeSeconds)
	} else {
		b.WriteString("plan: none published\n")
	}
	fmt.Fprintf(&b, "client: requests=%d retries=%d breaker=%s opens=%d open-rejects=%d\n",
		r.Client.Requests, r.Client.Retries, r.Client.Breaker.State,
		r.Client.Breaker.Opens, r.Client.BreakerOpenRejects)
	return b.String()
}
