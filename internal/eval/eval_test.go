package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/algo"
)

// The embedded suite and a full evaluation of it are shared across the
// package's tests; both are deterministic, so computing them once is
// safe and keeps the test binary inside CI seconds.
var (
	suiteOnce sync.Once
	suite     []Dataset
	suiteErr  error

	reportOnce sync.Once
	report     *Report
	reportErr  error
)

func goldenSuite(t *testing.T) []Dataset {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = DefaultSuite()
	})
	if suiteErr != nil {
		t.Fatalf("loading embedded suite: %v", suiteErr)
	}
	return suite
}

func goldenReport(t *testing.T) *Report {
	t.Helper()
	reportOnce.Do(func() {
		report, reportErr = Evaluate(context.Background(), goldenSuite(t), Options{MinRatio: -1})
	})
	if reportErr != nil {
		t.Fatalf("evaluating golden suite: %v", reportErr)
	}
	return report
}

// The committed fixture must be exactly what BuildSuite regenerates
// from the named seeds: the golden file is a cache, not a source of
// truth, and this is the test that keeps it honest (and reproducible
// via bccgen -eval-suite / bcceval -update-golden).
func TestSuiteRegeneratesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating the suite pins best-known via every solver")
	}
	built, err := BuildSuite(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSuite(&buf, built); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), embeddedSuite) {
		t.Fatalf("BuildSuite output differs from testdata/suite.jsonl (%d vs %d bytes);\n"+
			"if the grid or a generator changed deliberately, regenerate with:\n"+
			"  go run ./cmd/bcceval -update-golden", buf.Len(), len(embeddedSuite))
	}
}

// Every registered algorithm must clear its pinned floor on the golden
// suite — the library-level form of the `make eval-smoke` CI gate.
func TestGoldenSuitePassesPinnedFloors(t *testing.T) {
	rep := goldenReport(t)
	if !rep.Pass {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("quality gate failed:\n%s", buf.String())
	}
	// Every registered algorithm shows up, none silently dropped.
	if got, want := len(rep.Algorithms), len(algo.Names()); got != want {
		t.Fatalf("report covers %d algorithms, registry has %d", got, want)
	}
	for _, a := range rep.Algorithms {
		d, ok := algo.Lookup(a.Algo)
		if !ok {
			t.Fatalf("report row for unregistered algo %q", a.Algo)
		}
		if d.EvalFloor == 0 {
			t.Errorf("algo %q has no pinned EvalFloor; every built-in must be gated", a.Algo)
		}
		if a.Datasets == 0 && a.Algo != "brute" {
			t.Errorf("algo %q was skipped on every dataset", a.Algo)
		}
	}
}

// Two evaluations of the same suite at the same seed must be
// bit-identical — the property that makes the report bytes pinnable
// and the floors meaningful.
func TestEvaluateDeterministic(t *testing.T) {
	first := goldenReport(t)
	second, err := Evaluate(context.Background(), goldenSuite(t), Options{MinRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first.Canonical())
	b, _ := json.Marshal(second.Canonical())
	if !bytes.Equal(a, b) {
		t.Fatalf("two evaluations differ:\n%s\n---\n%s", a, b)
	}
}

// The exact reference must agree with the pin on every brute-pinned
// dataset: ratio exactly 1 — anything else means the pinned best-known
// drifted from the optimum.
func TestBruteMatchesPinExactly(t *testing.T) {
	rep := goldenReport(t)
	pinned := map[string]string{}
	for _, ds := range rep.Datasets {
		pinned[ds.Name] = ds.Method
	}
	checked := 0
	for _, res := range rep.Results {
		if res.Algo != "brute" || res.Skipped {
			continue
		}
		if pinned[res.Dataset] != "brute" {
			t.Errorf("brute ran on %s but its pin method is %q", res.Dataset, pinned[res.Dataset])
		}
		if res.Ratio != 1 {
			t.Errorf("brute ratio on %s = %v, want exactly 1", res.Dataset, res.Ratio)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no brute-pinned datasets in the suite")
	}
}

// A global -min-ratio above any achievable ratio must flip the verdict:
// the failure path the CI gate relies on.
func TestMinRatioOverrideFailsGate(t *testing.T) {
	rep, err := Evaluate(context.Background(), goldenSuite(t), Options{
		Dataset: "private-sub18-b8", MinRatio: 1.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("gate passed with an unachievable min-ratio of 1.01")
	}
	for _, res := range rep.Results {
		if res.Skipped {
			continue
		}
		if res.Floor != 1.01 {
			t.Errorf("row %s/%s floor = %v, want the 1.01 override", res.Dataset, res.Algo, res.Floor)
		}
	}
}

func TestFilters(t *testing.T) {
	ctx := context.Background()
	rep, err := Evaluate(ctx, goldenSuite(t), Options{Dataset: "private-sub18-b8", Algo: "ig1", MinRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Algo != "ig1" || rep.Results[0].Dataset != "private-sub18-b8" {
		t.Fatalf("filtered report rows = %+v", rep.Results)
	}
	if _, err := Evaluate(ctx, goldenSuite(t), Options{Dataset: "no-such"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Evaluate(ctx, goldenSuite(t), Options{Algo: "no-such"}); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func TestReadSuiteRejectsCorruption(t *testing.T) {
	for name, line := range map[string]string{
		"not json":      "{nope",
		"no name":       `{"generator":"g","seed":1,"best_known":5,"instance":{"budget":1,"queries":[{"props":["a"],"utility":1}]}}`,
		"zero best":     `{"name":"x","best_known":0,"instance":{"budget":1,"queries":[{"props":["a"],"utility":1}]}}`,
		"bad instance":  `{"name":"x","best_known":5,"instance":{"budget":1,"queries":[{"props":["a","a"],"utility":1}]}}`,
		"empty suite":   "\n\n",
		"negative best": `{"name":"x","best_known":-2,"instance":{"budget":1,"queries":[{"props":["a"],"utility":1}]}}`,
	} {
		if _, err := ReadSuite(strings.NewReader(line)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The suite must stay small enough that the full gate runs in CI
// seconds: no dataset past a few thousand queries, and at least one
// dataset pinned exactly by brute force.
func TestSuiteStaysSmallAndPartlyExact(t *testing.T) {
	exact := 0
	for _, ds := range goldenSuite(t) {
		if ds.Queries > 2000 {
			t.Errorf("dataset %s has %d queries; the gate must stay CI-fast", ds.Name, ds.Queries)
		}
		if ds.Method == "brute" {
			exact++
		}
	}
	if exact == 0 {
		t.Error("no brute-pinned dataset: the suite has lost its exact anchor")
	}
}
