package eval

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/algo"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/propset"
)

// Spec names one generator configuration of the eval grid. The suite is
// fully determined by these named seeds: regenerating it (bccgen
// -eval-suite, bcceval -update-golden) must reproduce the committed
// fixture byte for byte, so the golden file is auditable rather than an
// opaque blob.
type Spec struct {
	// Name identifies the dataset in reports and -dataset filters.
	Name string
	// Generator describes the simulator family (bestbuy, private-subset,
	// synthetic, synthetic-correlated, catalog).
	Generator string
	// Seed is the generator seed.
	Seed int64
	// Budget is the instance budget.
	Budget float64
	// Build materializes the instance from the spec.
	Build func(Spec) *model.Instance `json:"-"`
}

// Suite is the golden evaluation grid: one entry per (simulator,
// budget) point, curated small enough that best-known utilities are
// computable (exactly where brute force fits) and the whole gate runs
// in CI seconds. The BB/P/S simulators are the paper's three evaluation
// workloads (internal/dataset); the catalog entry exercises the §6.2
// end-to-end workload derivation (internal/catalog).
func Suite() []Spec {
	return []Spec{
		{
			Name: "bb-b40", Generator: "bestbuy", Seed: 7, Budget: 40,
			Build: func(s Spec) *model.Instance { return dataset.BestBuy(s.Seed, s.Budget) },
		},
		{
			Name: "private-sub18-b8", Generator: "private-subset", Seed: 11, Budget: 8,
			Build: func(s Spec) *model.Instance { return dataset.PrivateSubset(s.Seed, s.Budget, 18) },
		},
		{
			Name: "private-sub24-b20", Generator: "private-subset", Seed: 23, Budget: 20,
			Build: func(s Spec) *model.Instance { return dataset.PrivateSubset(s.Seed, s.Budget, 24) },
		},
		{
			Name: "synth-150-b120", Generator: "synthetic", Seed: 5, Budget: 120,
			Build: func(s Spec) *model.Instance { return dataset.SyntheticPool(s.Seed, 150, 200, s.Budget) },
		},
		{
			Name: "synthcorr-150-b120", Generator: "synthetic-correlated", Seed: 9, Budget: 120,
			Build: func(s Spec) *model.Instance { return dataset.SyntheticCorrelatedPool(s.Seed, 150, 200, s.Budget) },
		},
		{
			Name: "catalog-b80", Generator: "catalog", Seed: 13, Budget: 80,
			Build: func(s Spec) *model.Instance { return catalogWorkload(s) },
		},
	}
}

// catalogWorkload derives a BCC workload from a small simulated item
// catalog, the §6.2 end-to-end pipeline. Costs are a deterministic
// function of classifier length so the instance is reproducible.
func catalogWorkload(s Spec) *model.Instance {
	c := catalog.Generate(s.Seed, catalog.Options{Items: 1500, Attributes: 80, AttrsPerItem: 4})
	cost := func(p propset.Set) float64 { return 2 + 3*float64(p.Len()) }
	in, err := c.DeriveWorkload(s.Seed, catalog.WorkloadOptions{Queries: 60, MaxLen: 3}, cost, s.Budget)
	if err != nil {
		panic(fmt.Sprintf("eval: catalog workload %s: %v", s.Name, err))
	}
	return in
}

// Dataset is one golden suite entry as persisted in the JSONL fixture:
// the spec identity, the instance itself (canonical dataset.FileFormat,
// so bccsolve and the server accept it unchanged), and the pinned
// best-known utility every algorithm is measured against.
type Dataset struct {
	Name      string  `json:"name"`
	Generator string  `json:"generator"`
	Seed      int64   `json:"seed"`
	Budget    float64 `json:"budget"`
	// Queries and Classifiers describe the instance size.
	Queries     int `json:"queries"`
	Classifiers int `json:"classifiers"`
	// BestKnown is the pinned reference utility; Method records how it
	// was computed: "brute" (exact optimum, instances small enough for
	// core.BruteForce) or "best-of-registry" (max over every registered
	// algorithm at the pinning seed).
	BestKnown float64 `json:"best_known"`
	Method    string  `json:"method"`
	// Instance is the problem itself.
	Instance dataset.FileFormat `json:"instance"`
}

// BuildSuite regenerates every suite dataset from its spec and pins the
// best-known utility for each. It is deterministic: two calls (or two
// machines) produce identical datasets.
func BuildSuite(ctx context.Context) ([]Dataset, error) {
	var out []Dataset
	for _, spec := range Suite() {
		in := spec.Build(spec)
		ds := Dataset{
			Name:        spec.Name,
			Generator:   spec.Generator,
			Seed:        spec.Seed,
			Budget:      in.Budget(),
			Queries:     in.NumQueries(),
			Classifiers: len(in.Classifiers()),
			Instance:    dataset.ToFormat(in),
		}
		best, method, err := bestKnown(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("eval: pinning %s: %w", spec.Name, err)
		}
		ds.BestKnown, ds.Method = best, method
		out = append(out, ds)
	}
	return out, nil
}

// bestKnown computes the reference utility for one instance: the exact
// brute-force optimum when the candidate set is small enough, otherwise
// the best utility any registered algorithm achieves at the pinning
// seed (a lower bound on the optimum, which is the standard best-known
// discipline when exact search is out of reach).
func bestKnown(ctx context.Context, in *model.Instance) (float64, string, error) {
	if r, err := core.BruteForce(in); err == nil {
		return r.Utility, "brute", nil
	}
	best := 0.0
	for _, name := range algo.Names() {
		d, _ := algo.Lookup(name)
		if d.NeedsTarget {
			continue // target-seekers need a reference to aim at
		}
		out, err := d.Run(ctx, in, algo.Params{Seed: PinSeed})
		if err != nil {
			continue // hard input rejection (brute on oversized instances)
		}
		if d.IgnoresBudget && out.Cost > in.Budget()+1e-9 {
			continue // not a budget-feasible reference
		}
		if out.Utility > best {
			best = out.Utility
		}
	}
	if best <= 0 {
		return 0, "", fmt.Errorf("no algorithm produced positive utility")
	}
	return best, "best-of-registry", nil
}

// WriteSuite renders datasets as JSONL: one compact JSON object per
// line, diffable and streamable.
func WriteSuite(w io.Writer, suite []Dataset) error {
	bw := bufio.NewWriter(w)
	for _, ds := range suite {
		raw, err := json.Marshal(ds)
		if err != nil {
			return fmt.Errorf("eval: encoding dataset %s: %w", ds.Name, err)
		}
		bw.Write(raw)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadSuite parses a JSONL suite, validating that every embedded
// instance still decodes and that the pinned reference is positive.
func ReadSuite(r io.Reader) ([]Dataset, error) {
	var out []Dataset
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ds Dataset
		if err := json.Unmarshal(raw, &ds); err != nil {
			return nil, fmt.Errorf("eval: suite line %d: %w", line, err)
		}
		if ds.Name == "" {
			return nil, fmt.Errorf("eval: suite line %d: dataset without a name", line)
		}
		if !(ds.BestKnown > 0) {
			return nil, fmt.Errorf("eval: suite line %d (%s): best_known %v must be positive", line, ds.Name, ds.BestKnown)
		}
		if _, err := dataset.FromFormat(ds.Instance); err != nil {
			return nil, fmt.Errorf("eval: suite line %d (%s): %w", line, ds.Name, err)
		}
		out = append(out, ds)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: reading suite: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: suite is empty")
	}
	return out, nil
}

// ReadSuiteFile loads a JSONL suite from disk.
func ReadSuiteFile(path string) ([]Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSuite(f)
}
