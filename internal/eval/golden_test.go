// Golden pin of the bcc-eval/1 report bytes: a full evaluation of the
// embedded suite at the pinned seed must render to exactly the
// committed JSON — utilities, ratios, verdicts and all. If this breaks,
// solution quality (or the report schema) changed: either a regression
// the floors were too loose to catch, or a deliberate change — in which
// case regenerate with `go test ./internal/eval -run Golden -update-eval-golden`
// and justify the diff in review.
package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateEvalGolden = flag.Bool("update-eval-golden", false, "rewrite testdata/report_golden.json from the current evaluation")

func TestReportGolden(t *testing.T) {
	rep := goldenReport(t)
	var buf bytes.Buffer
	if err := rep.Canonical().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateEvalGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden report (regenerate with -update-eval-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("bcc-eval/1 report drifted from the golden pin.\n"+
			"Solver quality at the pinned seed changed (or the schema did).\n"+
			"If deliberate: go test ./internal/eval -run Golden -update-eval-golden\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}
