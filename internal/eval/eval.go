// Package eval is the offline solution-quality harness: it runs every
// registered solver (internal/algo) on a golden suite of small,
// reproducible instances with pinned best-known utilities and gates
// each algorithm's utility ratio against its pinned floor. It is the
// quality counterpart of the bcc-bench/1 speed pins — a refactor of the
// pruning rules or the solver hot path that silently costs utility now
// fails CI (`make eval-smoke`, cmd/bcceval) instead of shipping.
//
// Everything is seed-deterministic: the suite is regenerated from named
// seeds (Suite, bccgen -eval-suite), every solver runs with a fixed
// Params.Seed and no deadline, and the bcc-eval/1 report canonicalizes
// to byte-identical JSON across runs — which is what lets the report
// bytes themselves be golden-pinned in tests.
package eval

import (
	"context"
	_ "embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/algo"
	"repro/internal/dataset"
	"repro/internal/guard"
)

// PinSeed is the fixed Params.Seed every evaluation and best-known pin
// runs with. Quality floors are statements about this seed; changing it
// invalidates the golden suite.
const PinSeed = 42

// TargetFraction is the utility target handed to target-seeking solvers
// (gmc3), as a fraction of the dataset's best-known utility. The gate
// then checks the solver actually reaches it: ratio ≈ TargetFraction.
const TargetFraction = 0.6

//go:embed testdata/suite.jsonl
var embeddedSuite []byte

// DefaultSuite parses the golden suite compiled into the binary, so
// bcceval gates quality from any working directory.
func DefaultSuite() ([]Dataset, error) {
	return ReadSuite(strings.NewReader(string(embeddedSuite)))
}

// Options tunes Evaluate. The zero value evaluates the full suite with
// the registry's pinned floors.
type Options struct {
	// Seed overrides PinSeed (0 keeps it). The golden floors are only
	// meaningful at PinSeed; other seeds are for exploration.
	Seed int64
	// Dataset, when non-empty, restricts evaluation to that dataset.
	Dataset string
	// Algo, when non-empty, restricts evaluation to that algorithm.
	Algo string
	// MinRatio, when >= 0, overrides every per-algorithm floor with one
	// global threshold. Negative (the default built by cmd/bcceval)
	// keeps the descriptors' pinned floors.
	MinRatio float64
}

// Evaluate runs the gate: every registered algorithm on every suite
// dataset, utility ratios against the pinned best-known, floors from
// the algorithm descriptors (or the MinRatio override). The returned
// report's Pass field is the CI verdict.
func Evaluate(ctx context.Context, suite []Dataset, opts Options) (*Report, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = PinSeed
	}
	names := algo.Names()
	if opts.Algo != "" {
		if _, ok := algo.Lookup(opts.Algo); !ok {
			return nil, fmt.Errorf("eval: unknown algo %q (registered: %s)", opts.Algo, strings.Join(names, ", "))
		}
		names = []string{opts.Algo}
	}
	if opts.Dataset != "" {
		var filtered []Dataset
		for _, ds := range suite {
			if ds.Name == opts.Dataset {
				filtered = append(filtered, ds)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("eval: unknown dataset %q", opts.Dataset)
		}
		suite = filtered
	}

	rep := &Report{Schema: Schema, Seed: seed}
	for _, ds := range suite {
		rep.Datasets = append(rep.Datasets, DatasetInfo{
			Name: ds.Name, Generator: ds.Generator, Seed: ds.Seed,
			Budget: ds.Budget, Queries: ds.Queries, Classifiers: ds.Classifiers,
			BestKnown: ds.BestKnown, Method: ds.Method,
		})
		in, err := dataset.FromFormat(ds.Instance)
		if err != nil {
			return nil, fmt.Errorf("eval: dataset %s: %w", ds.Name, err)
		}
		for _, name := range names {
			d, _ := algo.Lookup(name)
			res := Result{Dataset: ds.Name, Algo: name, Floor: floorFor(d, opts.MinRatio)}
			params := algo.Params{Seed: seed}
			if d.NeedsTarget {
				params.Target = TargetFraction * ds.BestKnown
				res.Target = params.Target
			}
			out, err := d.Run(ctx, in, params)
			if err != nil {
				// A hard input rejection (brute force on an oversized
				// instance) is a skip, not a quality failure.
				res.Skipped, res.SkipReason = true, err.Error()
				rep.Results = append(rep.Results, res)
				continue
			}
			res.Utility, res.Cost, res.Covered = out.Utility, out.Cost, out.Covered
			res.Status = out.Status.String()
			res.Ratio = out.Utility / ds.BestKnown
			res.Pass = res.Ratio >= res.Floor
			if out.Status != guard.Complete {
				res.Pass = false // the run was cut short or recovered
			}
			// Budget feasibility is part of the contract for every solver
			// that optimizes under the budget; gmc3/ecc legitimately spend
			// past it (their objectives ignore B).
			if !d.IgnoresBudget && out.Cost > in.Budget()+1e-9 {
				res.Pass = false
				res.Infeasible = true
			}
			rep.Results = append(rep.Results, res)
		}
	}
	rep.Algorithms = summarize(rep.Results)
	rep.Pass = true
	for _, a := range rep.Algorithms {
		if !a.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// floorFor resolves the effective floor: the global override when set,
// the descriptor's pinned floor otherwise.
func floorFor(d algo.Descriptor, minRatio float64) float64 {
	if minRatio >= 0 {
		return minRatio
	}
	return d.EvalFloor
}

// summarize folds per-(dataset, algo) rows into per-algorithm verdicts.
// An algorithm passes when every non-skipped row passes; an algorithm
// with only skipped rows passes vacuously (brute on a suite of large
// instances has nothing to prove).
func summarize(results []Result) []AlgoSummary {
	byAlgo := map[string]*AlgoSummary{}
	var order []string
	for _, r := range results {
		s, ok := byAlgo[r.Algo]
		if !ok {
			s = &AlgoSummary{Algo: r.Algo, Floor: r.Floor, MinRatio: -1, Pass: true}
			byAlgo[r.Algo] = s
			order = append(order, r.Algo)
		}
		if r.Skipped {
			continue
		}
		s.Datasets++
		s.MeanRatio += r.Ratio
		if s.MinRatio < 0 || r.Ratio < s.MinRatio {
			s.MinRatio = r.Ratio
		}
		if !r.Pass {
			s.Pass = false
		}
	}
	sort.Strings(order)
	out := make([]AlgoSummary, 0, len(order))
	for _, name := range order {
		s := byAlgo[name]
		if s.Datasets > 0 {
			s.MeanRatio = round6(s.MeanRatio / float64(s.Datasets))
		}
		if s.MinRatio < 0 {
			s.MinRatio = 0
		}
		s.MinRatio = round6(s.MinRatio)
		out = append(out, *s)
	}
	return out
}
