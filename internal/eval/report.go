package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/obs"
)

// Schema versions the machine-readable quality report, the bcc-eval/1
// counterpart of internal/exper's bcc-bench/1. Bump the suffix whenever
// a field changes meaning or disappears.
const Schema = "bcc-eval/1"

// DatasetInfo is the report's view of one suite dataset — the identity
// and the pinned reference, without echoing the instance back.
type DatasetInfo struct {
	Name        string  `json:"name"`
	Generator   string  `json:"generator"`
	Seed        int64   `json:"seed"`
	Budget      float64 `json:"budget"`
	Queries     int     `json:"queries"`
	Classifiers int     `json:"classifiers"`
	BestKnown   float64 `json:"best_known"`
	Method      string  `json:"method"`
}

// Result is one (dataset, algorithm) evaluation row.
type Result struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	// Utility/Cost/Covered describe the solution found at the pinned
	// seed; Status is the solver's final status (always "complete" in a
	// healthy run — there is no deadline).
	Utility float64 `json:"utility"`
	Cost    float64 `json:"cost"`
	Covered int     `json:"covered"`
	Status  string  `json:"status,omitempty"`
	// Target is set for target-seeking solvers: TargetFraction of the
	// dataset's best-known utility.
	Target float64 `json:"target,omitempty"`
	// Ratio is Utility / best-known; Floor is the pinned (or overridden)
	// minimum; Pass is the row verdict.
	Ratio float64 `json:"ratio"`
	Floor float64 `json:"floor"`
	Pass  bool    `json:"pass"`
	// Infeasible marks a budget-respecting solver that spent past the
	// budget — always a failure, whatever the ratio.
	Infeasible bool `json:"infeasible,omitempty"`
	// Skipped rows record hard input rejections (brute force on an
	// oversized instance); they do not gate.
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
}

// AlgoSummary is the per-algorithm verdict across the suite.
type AlgoSummary struct {
	Algo string `json:"algo"`
	// Datasets counts non-skipped evaluations.
	Datasets  int     `json:"datasets"`
	MinRatio  float64 `json:"min_ratio"`
	MeanRatio float64 `json:"mean_ratio"`
	Floor     float64 `json:"floor"`
	Pass      bool    `json:"pass"`
}

// Report is the versioned bcc-eval/1 document cmd/bcceval emits.
// Everything in it is deterministic for a fixed suite and seed — which
// is why Build is a pointer set only by the CLI, never by Evaluate: the
// canonical form golden tests pin carries no machine-varying bytes.
type Report struct {
	Schema string `json:"schema"`
	// Build is stamped by cmd/bcceval for provenance; Evaluate leaves it
	// nil so library callers (and golden tests) get canonical output.
	Build      *obs.Build    `json:"build,omitempty"`
	Seed       int64         `json:"seed"`
	Datasets   []DatasetInfo `json:"datasets"`
	Results    []Result      `json:"results"`
	Algorithms []AlgoSummary `json:"algorithms"`
	// Pass is the gate verdict: every algorithm at or above its floor,
	// every budget-respecting solver feasible, every run complete.
	Pass bool `json:"pass"`
}

// WriteJSON renders the report with stable indentation, the same
// convention as bcc-bench/1, so committed reports diff cleanly.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Canonical returns a copy stripped of provenance (Build), leaving only
// the deterministic content. Golden tests pin the canonical bytes.
func (r *Report) Canonical() *Report {
	c := *r
	c.Build = nil
	return &c
}

// WriteText renders the human-readable gate table: one row per
// algorithm plus the per-dataset detail for anything failing.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "eval suite: %d datasets, seed %d (%s)\n", len(r.Datasets), r.Seed, r.Schema)
	for _, ds := range r.Datasets {
		fmt.Fprintf(w, "  %-20s %-20s q=%-4d cl=%-4d B=%-6.0f best=%.2f (%s)\n",
			ds.Name, ds.Generator, ds.Queries, ds.Classifiers, ds.Budget, ds.BestKnown, ds.Method)
	}
	fmt.Fprintf(w, "\n%-8s %-9s %-10s %-10s %-7s %s\n", "algo", "datasets", "min-ratio", "mean-ratio", "floor", "verdict")
	for _, a := range r.Algorithms {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-8s %-9d %-10.4f %-10.4f %-7.3f %s\n",
			a.Algo, a.Datasets, a.MinRatio, a.MeanRatio, a.Floor, verdict)
	}
	for _, res := range r.Results {
		if res.Pass || res.Skipped {
			continue
		}
		why := fmt.Sprintf("ratio %.4f < floor %.3f", res.Ratio, res.Floor)
		if res.Infeasible {
			why = fmt.Sprintf("cost %.2f exceeds budget", res.Cost)
		} else if res.Status != "" && res.Status != "complete" {
			why = "status " + res.Status
		}
		fmt.Fprintf(w, "FAIL %s on %s: %s\n", res.Algo, res.Dataset, why)
	}
	return nil
}

// round6 keeps summary ratios readable (and stable) at six decimals.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
