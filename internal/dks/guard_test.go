package dks

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/guard"
	"repro/internal/wgraph"
)

func TestArmedPanicContainedByProtect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := wgraph.New(20)
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if rng.Float64() < 0.3 {
				g.AddEdge(u, v, float64(1+rng.Intn(5)))
			}
		}
	}
	guard.Arm("dks.solve", guard.PanicFault("dks boom"))
	defer guard.DisarmAll()

	gu := guard.New(context.Background())
	var nodes []int
	gu.Protect(func() { nodes = Solve(g, 5, Options{}) })
	if gu.Status() != guard.Recovered {
		t.Fatalf("Status = %v, want Recovered", gu.Status())
	}
	if gu.PanicErr() == nil {
		t.Fatal("no panic recorded")
	}
	if nodes != nil {
		t.Errorf("partial result leaked through a contained panic: %v", nodes)
	}

	// Disarmed, the same call succeeds.
	guard.DisarmAll()
	if got := Solve(g, 5, Options{}); len(got) != 5 {
		t.Fatalf("Solve after disarm returned %d nodes, want 5", len(got))
	}
}
