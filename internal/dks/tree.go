package dks

import (
	"math"

	"repro/internal/wgraph"
)

// ExactForest solves HkS exactly when the graph is a forest (every
// connected component acyclic), via the classic O(n·k²) tree dynamic
// program the paper cites ([44]). It returns the chosen nodes and true, or
// nil and false when the graph contains a cycle.
func ExactForest(g *wgraph.Graph, k int) ([]int, bool) {
	n := g.NumNodes()
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, isForest(g)
	}
	if !isForest(g) {
		return nil, false
	}
	if k <= 0 {
		return []int{}, true
	}

	negInf := math.Inf(-1)
	type table struct {
		// val[b][j]: best induced weight using exactly j chosen nodes in
		// the subtree, with the root chosen iff b==1.
		val [2][]float64
	}
	tables := make([]table, n)
	parent := make([]int, n)
	parentW := make([]float64, n)
	children := make([][]int, n)
	// split[v][ci][b][j] = (jPrev, jChild, bChild) for reconstruction.
	type splitEntryW struct{ jPrev, jChild, bChild int }
	splits := make([][][2][]splitEntryW, n)

	visited := make([]bool, n)
	var roots []int
	var order []int // post-order
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		roots = append(roots, start)
		parent[start] = -1
		// Iterative DFS to build parent/children and post-order.
		stack := []int{start}
		visited[start] = true
		var pre []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pre = append(pre, u)
			g.Neighbors(u, func(w int, wt float64, _ int) {
				if !visited[w] {
					visited[w] = true
					parent[w] = u
					parentW[w] = wt
					children[u] = append(children[u], w)
					stack = append(stack, w)
				}
			})
		}
		for i := len(pre) - 1; i >= 0; i-- {
			order = append(order, pre[i])
		}
	}

	for _, v := range order {
		var t table
		t.val[0] = make([]float64, k+1)
		t.val[1] = make([]float64, k+1)
		for j := 0; j <= k; j++ {
			t.val[0][j] = negInf
			t.val[1][j] = negInf
		}
		t.val[0][0] = 0
		if k >= 1 {
			t.val[1][1] = 0
		}
		splits[v] = make([][2][]splitEntryW, len(children[v]))
		for ci, c := range children[v] {
			ct := tables[c]
			var nt table
			nt.val[0] = make([]float64, k+1)
			nt.val[1] = make([]float64, k+1)
			var sp [2][]splitEntryW
			sp[0] = make([]splitEntryW, k+1)
			sp[1] = make([]splitEntryW, k+1)
			for b := 0; b <= 1; b++ {
				for j := 0; j <= k; j++ {
					nt.val[b][j] = negInf
					sp[b][j] = splitEntryW{-1, -1, -1}
					for jc := 0; jc <= j; jc++ {
						if t.val[b][j-jc] == negInf {
							continue
						}
						for bc := 0; bc <= 1; bc++ {
							if ct.val[bc][jc] == negInf {
								continue
							}
							cand := t.val[b][j-jc] + ct.val[bc][jc]
							if b == 1 && bc == 1 {
								cand += parentW[c]
							}
							if cand > nt.val[b][j] {
								nt.val[b][j] = cand
								sp[b][j] = splitEntryW{j - jc, jc, bc}
							}
						}
					}
				}
			}
			t = nt
			splits[v][ci] = sp
		}
		tables[v] = t
	}

	// Roots behave like children of a virtual super-node with no edges:
	// distribute k among them by one more knapsack merge.
	best := make([]float64, k+1)
	choice := make([][]struct{ jPrev, jRoot, bRoot int }, len(roots))
	for j := range best {
		best[j] = negInf
	}
	best[0] = 0
	for ri, r := range roots {
		nt := make([]float64, k+1)
		ch := make([]struct{ jPrev, jRoot, bRoot int }, k+1)
		for j := 0; j <= k; j++ {
			nt[j] = negInf
			ch[j] = struct{ jPrev, jRoot, bRoot int }{-1, -1, -1}
			for jr := 0; jr <= j; jr++ {
				if best[j-jr] == negInf {
					continue
				}
				for br := 0; br <= 1; br++ {
					if tables[r].val[br][jr] == negInf {
						continue
					}
					if cand := best[j-jr] + tables[r].val[br][jr]; cand > nt[j] {
						nt[j] = cand
						ch[j] = struct{ jPrev, jRoot, bRoot int }{j - jr, jr, br}
					}
				}
			}
		}
		best = nt
		choice[ri] = ch
	}
	// Optimum allows fewer than k nodes (extra isolated picks are free, but
	// exactly-j DP may be infeasible for some j; take the best j ≤ k).
	bestJ, bestVal := 0, negInf
	for j := 0; j <= k; j++ {
		if best[j] > bestVal {
			bestJ, bestVal = j, best[j]
		}
	}

	// Reconstruct root allocations backwards.
	var out []int
	type nodeTask struct{ v, j, b int }
	var tasks []nodeTask
	j := bestJ
	for ri := len(roots) - 1; ri >= 0; ri-- {
		ch := choice[ri][j]
		if ch.jPrev < 0 {
			// This j was reached without this root contributing; skip.
			continue
		}
		tasks = append(tasks, nodeTask{roots[ri], ch.jRoot, ch.bRoot})
		j = ch.jPrev
	}
	for len(tasks) > 0 {
		tk := tasks[len(tasks)-1]
		tasks = tasks[:len(tasks)-1]
		if tk.b == 1 {
			out = append(out, tk.v)
		}
		jj, bb := tk.j, tk.b
		for ci := len(children[tk.v]) - 1; ci >= 0; ci-- {
			sp := splits[tk.v][ci][bb][jj]
			if sp.jPrev < 0 {
				continue
			}
			tasks = append(tasks, nodeTask{children[tk.v][ci], sp.jChild, sp.bChild})
			jj = sp.jPrev
		}
	}
	return out, true
}

func isForest(g *wgraph.Graph) bool {
	for _, comp := range g.ConnectedComponents() {
		if !g.IsTreeComponent(comp) {
			return false
		}
	}
	return true
}
