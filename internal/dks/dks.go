// Package dks implements Densest/Heaviest k-Subgraph solvers: given an
// edge-weighted graph and a cardinality bound k, find k nodes whose induced
// subgraph has maximum total edge weight (DkS is the unit-weight special
// case of HkS).
//
// The paper's algorithm A_H^QK uses the state-of-the-art HkS heuristic of
// Konar & Sidiropoulos [41] as a black box with an O(1) empirical
// performance ratio (65–80% of optimal). This package provides a portfolio
// heuristic in that spirit — greedy peeling, greedy expansion, spectral
// rounding of the low-rank bilinear relaxation (in the style of
// Papailiopoulos et al. [53]), and swap-based local search — returning the
// best solution found. It also provides the exact tree DP the paper cites
// [44] and an exhaustive solver for validation.
package dks

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"repro/internal/guard"
	"repro/internal/wgraph"
)

// Options tunes the portfolio heuristic. The zero value gives sensible
// defaults.
type Options struct {
	// Restarts is the number of extra randomized greedy-expansion starts
	// (default 4).
	Restarts int
	// LocalSearchRounds caps swap-improvement sweeps (default 12).
	LocalSearchRounds int
	// PowerIterations for the spectral candidate (default 60).
	PowerIterations int
	// Seed for the internal RNG (default 1).
	Seed int64
	// DisableSpectral skips the spectral candidate (used by tests and by
	// ablation benchmarks).
	DisableSpectral bool
}

func (o Options) withDefaults() Options {
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	if o.LocalSearchRounds == 0 {
		o.LocalSearchRounds = 12
	}
	if o.PowerIterations == 0 {
		o.PowerIterations = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Solve returns (up to) k nodes approximately maximizing induced edge
// weight, using the full portfolio. The returned slice is sorted.
func Solve(g *wgraph.Graph, k int, opts Options) []int {
	guard.Inject("dks.solve")
	opts = opts.withDefaults()
	n := g.NumNodes()
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k <= 0 || g.NumEdges() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	best := GreedyPeel(g, k)
	bestW := g.InducedWeightOf(best)
	consider := func(cand []int) {
		if len(cand) == 0 {
			return
		}
		cand = LocalSearch(g, k, cand, opts.LocalSearchRounds)
		if w := g.InducedWeightOf(cand); w > bestW {
			best, bestW = cand, w
		}
	}
	consider(best)
	consider(GreedyExpand(g, k, -1))
	for r := 0; r < opts.Restarts; r++ {
		consider(GreedyExpand(g, k, rng.Intn(n)))
	}
	if !opts.DisableSpectral {
		consider(Spectral(g, k, opts.PowerIterations))
	}
	sort.Ints(best)
	return best
}

// GreedyPeel repeatedly removes the node of minimum weighted degree until k
// nodes remain (Charikar-style peeling adapted to the cardinality bound).
// Among the peeling prefix it returns the k-node suffix.
func GreedyPeel(g *wgraph.Graph, k int) []int {
	n := g.NumNodes()
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k <= 0 {
		return nil
	}
	deg := make([]float64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.WeightedDegree(v)
		alive[v] = true
	}
	h := &floatHeap{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		heap.Push(h, heapItem{v, deg[v]})
	}
	remaining := n
	for remaining > k {
		it := heap.Pop(h).(heapItem)
		if !alive[it.node] {
			continue
		}
		if it.key > deg[it.node]+1e-12 {
			// Stale entry; re-push with the current key.
			heap.Push(h, heapItem{it.node, deg[it.node]})
			continue
		}
		alive[it.node] = false
		remaining--
		g.Neighbors(it.node, func(u int, w float64, _ int) {
			if alive[u] {
				deg[u] -= w
				heap.Push(h, heapItem{u, deg[u]})
			}
		})
	}
	out := make([]int, 0, k)
	for v := 0; v < n; v++ {
		if alive[v] {
			out = append(out, v)
		}
	}
	return out
}

// GreedyExpand grows a k-node set by repeatedly adding the node with the
// largest weighted degree into the current set. start picks the first node;
// pass -1 to start from an endpoint of the heaviest edge.
func GreedyExpand(g *wgraph.Graph, k int, start int) []int {
	n := g.NumNodes()
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if k <= 0 {
		return nil
	}
	if start < 0 {
		bestW := -1.0
		for _, e := range g.Edges() {
			if e.W > bestW {
				bestW = e.W
				start = e.U
			}
		}
		if start < 0 {
			start = 0
		}
	}
	in := make([]bool, n)
	gain := make([]float64, n)
	sel := make([]int, 0, k)
	add := func(v int) {
		in[v] = true
		sel = append(sel, v)
		g.Neighbors(v, func(u int, w float64, _ int) {
			gain[u] += w
		})
	}
	add(start)
	h := &floatHeapMax{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		if !in[v] && gain[v] > 0 {
			heap.Push(h, heapItem{v, gain[v]})
		}
	}
	for len(sel) < k {
		var next int = -1
		for h.Len() > 0 {
			it := heap.Pop(h).(heapItem)
			if in[it.node] {
				continue
			}
			if it.key < gain[it.node]-1e-12 {
				heap.Push(h, heapItem{it.node, gain[it.node]})
				continue
			}
			next = it.node
			break
		}
		if next < 0 {
			// No connected candidate left; add any remaining node.
			for v := 0; v < n && next < 0; v++ {
				if !in[v] {
					next = v
				}
			}
			if next < 0 {
				break
			}
		}
		add(next)
		g.Neighbors(next, func(u int, w float64, _ int) {
			if !in[u] {
				heap.Push(h, heapItem{u, gain[u]})
			}
		})
	}
	return sel
}

// LocalSearch improves a candidate set by single-swap hill climbing: swap a
// selected node for an unselected one whenever that raises the induced
// weight. rounds caps full sweeps. The (possibly improved) set is returned.
func LocalSearch(g *wgraph.Graph, k int, cand []int, rounds int) []int {
	n := g.NumNodes()
	if len(cand) == 0 || len(cand) >= n {
		return cand
	}
	in := make([]bool, n)
	for _, v := range cand {
		in[v] = true
	}
	// inDeg[v] = weighted degree of v into the current set.
	inDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		inDeg[v] = g.WeightedDegreeInto(v, in)
	}
	sel := append([]int(nil), cand...)
	for round := 0; round < rounds; round++ {
		// Best single swap over all (selected u, unselected v) pairs.
		bestI, bestV, bestDelta := -1, -1, 1e-12
		for i, u := range sel {
			loss := inDeg[u]
			for v := 0; v < n; v++ {
				if in[v] {
					continue
				}
				delta := inDeg[v] - g.EdgeWeight(u, v) - loss
				if delta > bestDelta {
					bestI, bestV, bestDelta = i, v, delta
				}
			}
		}
		if bestI < 0 {
			break
		}
		swapNodes(g, in, inDeg, sel[bestI], bestV)
		sel[bestI] = bestV
	}
	return sel
}

func swapNodes(g *wgraph.Graph, in []bool, inDeg []float64, out, add int) {
	in[out] = false
	g.Neighbors(out, func(w int, wt float64, _ int) {
		inDeg[w] -= wt
	})
	in[add] = true
	g.Neighbors(add, func(w int, wt float64, _ int) {
		inDeg[w] += wt
	})
}

// Spectral computes the leading eigenvector of the weighted adjacency
// matrix by power iteration and returns the k nodes of the largest entries
// (dense-subgraph rounding of the rank-1 bilinear relaxation [53]).
func Spectral(g *wgraph.Graph, k int, iters int) []int {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for it := 0; it < iters; it++ {
		for i := range y {
			y[i] = 0
		}
		for _, e := range g.Edges() {
			y[e.U] += e.W * x[e.V]
			y[e.V] += e.W * x[e.U]
		}
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-15 {
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(x[idx[a]]) > math.Abs(x[idx[b]])
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

// BruteForce finds the exact optimum by enumerating all k-subsets; use only
// on tiny graphs (n ≤ 24).
func BruteForce(g *wgraph.Graph, k int) []int {
	n := g.NumNodes()
	if n > 24 {
		panic("dks: BruteForce limited to 24 nodes")
	}
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var best []int
	bestW := -1.0
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			if w := g.InducedWeightOf(cur); w > bestW {
				bestW = w
				best = append([]int(nil), cur...)
			}
			return
		}
		for v := start; v <= n-(k-len(cur)); v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return best
}

// heap plumbing

type heapItem struct {
	node int
	key  float64
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type floatHeapMax []heapItem

func (h floatHeapMax) Len() int            { return len(h) }
func (h floatHeapMax) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h floatHeapMax) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeapMax) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeapMax) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
