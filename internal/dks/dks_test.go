package dks

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wgraph"
)

// plantedGraph hides a dense clique of size k inside a sparse random graph.
func plantedGraph(rng *rand.Rand, n, k int, noise float64) (*wgraph.Graph, []int) {
	g := wgraph.New(n)
	perm := rng.Perm(n)
	clique := append([]int(nil), perm[:k]...)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(clique[i], clique[j], 1)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < noise {
				g.AddEdgeMerged(u, v, 1)
			}
		}
	}
	return g, clique
}

func randomWeighted(rng *rand.Rand, n int, p float64) *wgraph.Graph {
	g := wgraph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1+rng.Float64()*9)
			}
		}
	}
	return g
}

func TestSolveCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := randomWeighted(rng, 20, 0.3)
		for k := 0; k <= 22; k++ {
			got := Solve(g, k, Options{Seed: 7})
			limit := k
			if limit > 20 {
				limit = 20
			}
			if len(got) > limit {
				t.Fatalf("Solve returned %d nodes for k=%d", len(got), k)
			}
			seen := map[int]bool{}
			for _, v := range got {
				if seen[v] {
					t.Fatalf("duplicate node %d in solution", v)
				}
				seen[v] = true
			}
		}
	}
}

func TestSolveFindsPlantedClique(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, clique := plantedGraph(rng, 60, 8, 0.02)
	got := Solve(g, 8, Options{Seed: 3})
	gotW := g.InducedWeightOf(got)
	wantW := g.InducedWeightOf(clique)
	if gotW < wantW*0.9 {
		t.Fatalf("planted clique: got weight %v, planted %v", gotW, wantW)
	}
}

func TestSolveNearOptimalSmall(t *testing.T) {
	// Portfolio should stay within the 65–80%-of-optimal band the paper
	// quotes for the HkS heuristic; on these tiny instances it is usually
	// exact, so check a conservative 80% floor.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(8)
		g := randomWeighted(rng, n, 0.4)
		if g.NumEdges() == 0 {
			continue
		}
		k := 2 + rng.Intn(4)
		got := g.InducedWeightOf(Solve(g, k, Options{Seed: int64(trial + 1)}))
		opt := g.InducedWeightOf(BruteForce(g, k))
		if opt > 0 && got < 0.8*opt {
			t.Fatalf("trial %d: heuristic %v < 0.8 × optimal %v (n=%d k=%d)",
				trial, got, opt, n, k)
		}
	}
}

func TestGreedyPeelBasics(t *testing.T) {
	// Two triangles bridged by one edge; peeling to 3 should keep the
	// heavier triangle.
	g := wgraph.New(6)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 5)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(3, 5, 1)
	g.AddEdge(2, 3, 0.5)
	got := GreedyPeel(g, 3)
	if w := g.InducedWeightOf(got); w != 15 {
		t.Fatalf("peel weight = %v, want 15 (nodes %v)", w, got)
	}
}

func TestGreedyExpandBasics(t *testing.T) {
	g := wgraph.New(5)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 9)
	g.AddEdge(3, 4, 1)
	got := GreedyExpand(g, 3, -1)
	if w := g.InducedWeightOf(got); w != 19 {
		t.Fatalf("expand weight = %v, want 19 (nodes %v)", w, got)
	}
}

func TestGreedyExpandDisconnectedFill(t *testing.T) {
	g := wgraph.New(4)
	g.AddEdge(0, 1, 1)
	got := GreedyExpand(g, 4, 0)
	if len(got) != 4 {
		t.Fatalf("expand should fill to k across components, got %v", got)
	}
}

func TestLocalSearchImproves(t *testing.T) {
	// Start from a deliberately bad set; local search must find the
	// heavy pair.
	g := wgraph.New(6)
	g.AddEdge(0, 1, 100)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	out := LocalSearch(g, 2, []int{0, 2}, 10)
	if w := g.InducedWeightOf(out); w != 100 {
		t.Fatalf("local search ended at weight %v, want 100 (%v)", w, out)
	}
}

func TestSpectralFindsDenseCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, clique := plantedGraph(rng, 40, 6, 0.01)
	got := Spectral(g, 6, 80)
	gotW := g.InducedWeightOf(got)
	wantW := g.InducedWeightOf(clique)
	if gotW < wantW*0.7 {
		t.Fatalf("spectral weight %v too far below planted %v", gotW, wantW)
	}
}

func TestBruteForceExactTriangle(t *testing.T) {
	g := wgraph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(3, 4, 10)
	got := BruteForce(g, 2)
	if w := g.InducedWeightOf(got); w != 10 {
		t.Fatalf("brute k=2 weight = %v, want 10", w)
	}
	// k=3: the heavy pair {3,4} plus any third node (weight 10) beats the
	// unit triangle (weight 3).
	got = BruteForce(g, 3)
	if w := g.InducedWeightOf(got); w != 10 {
		t.Fatalf("brute k=3 weight = %v, want 10", w)
	}
}

func TestExactForestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		g := wgraph.New(n)
		// Random forest: each node i>0 connects to a random earlier node
		// with probability 0.8 (otherwise it starts a new component).
		for i := 1; i < n; i++ {
			if rng.Float64() < 0.8 {
				g.AddEdge(rng.Intn(i), i, 1+float64(rng.Intn(9)))
			}
		}
		k := 1 + rng.Intn(n)
		got, ok := ExactForest(g, k)
		if !ok {
			t.Fatalf("trial %d: forest not recognized", trial)
		}
		if len(got) > k {
			t.Fatalf("trial %d: %d nodes exceed k=%d", trial, len(got), k)
		}
		gotW := g.InducedWeightOf(got)
		optW := g.InducedWeightOf(BruteForce(g, k))
		if math.Abs(gotW-optW) > 1e-9 {
			t.Fatalf("trial %d: tree DP %v != brute %v (n=%d k=%d)",
				trial, gotW, optW, n, k)
		}
	}
}

func TestExactForestRejectsCycle(t *testing.T) {
	g := wgraph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if _, ok := ExactForest(g, 2); ok {
		t.Fatal("cycle accepted as forest")
	}
}

func TestSolveEdgeCases(t *testing.T) {
	g := wgraph.New(3)
	if got := Solve(g, 2, Options{}); got != nil {
		t.Fatalf("edgeless graph: got %v, want nil", got)
	}
	g.AddEdge(0, 1, 1)
	if got := Solve(g, 0, Options{}); got != nil {
		t.Fatalf("k=0: got %v", got)
	}
	if got := Solve(g, 5, Options{}); len(got) != 3 {
		t.Fatalf("k≥n should return all nodes, got %v", got)
	}
}

func BenchmarkSolvePortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := randomWeighted(rng, 400, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Solve(g, 40, Options{Seed: int64(i + 1)})
	}
}

func BenchmarkGreedyPeel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomWeighted(rng, 1000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GreedyPeel(g, 100)
	}
}
