package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// quickReq is a minimal valid solve request (one unit-cost classifier
// covering one query, budget 1) so fake servers can echo plausible
// bodies without running a solver.
func quickReq() *api.SolveRequest {
	raw := `{"budget":1,"queries":[{"props":["p"],"utility":1}],"costs":[{"props":["p"],"cost":1}]}`
	req := &api.SolveRequest{}
	if err := json.Unmarshal([]byte(raw), &req.Instance); err != nil {
		panic(err)
	}
	return req
}

func okBody() []byte {
	b, _ := json.Marshal(&api.SolveResponse{Fingerprint: "fp", Algo: "abcc", Status: "complete", Utility: 1})
	return b
}

// newClient builds a Client against url with no real sleeping: every
// scheduled retry delay is appended to *slept instead of waited out.
func newClient(t *testing.T, url string, slept *[]time.Duration, cfg Config) *Client {
	t.Helper()
	cfg.BaseURL = url
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.retrier.Backoff.Rand = func() float64 { return 0.5 } // jitter term 1.0: deterministic delays
	c.retrier.Sleep = func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return c
}

func TestSolveSuccessFirstTry(t *testing.T) {
	var gotPath atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath.Store(r.URL.Path)
		w.Write(okBody())
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	resp, err := c.Solve(context.Background(), quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "complete" || resp.Fingerprint != "fp" {
		t.Errorf("resp = %+v", resp)
	}
	if p := gotPath.Load(); p != "/v1/solve" {
		t.Errorf("posted to %v", p)
	}
	if len(slept) != 0 {
		t.Errorf("slept %v on a clean call", slept)
	}
	st := c.Stats()
	if st.Requests != 1 || st.Successes != 1 || st.Failures != 0 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetriesTransientServerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"transient"}`, http.StatusBadGateway)
			return
		}
		w.Write(okBody())
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3", n)
	}
	if len(slept) != 2 {
		t.Errorf("slept %v, want 2 backoff delays", slept)
	}
	if st := c.Stats(); st.Retries != 2 || st.Successes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"algo \"nope\" unknown"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	_, err := c.Solve(context.Background(), quickReq())
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want *HTTPError 400", err)
	}
	if !strings.Contains(he.Msg, "unknown") {
		t.Errorf("error body not extracted: %q", he.Msg)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("a 400 was retried: %d calls", n)
	}
	if st := c.Stats(); st.Failures != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRespectsRetryAfterAdvice is the ISSUE's satellite check: a shed
// 429 carrying Retry-After: 7 must not be retried before the advised
// delay — the recorded sleep is stretched to 7s even though the
// backoff alone would be ~100ms.
func TestRespectsRetryAfterAdvice(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "queue full", "retry_after_seconds": 7})
			return
		}
		w.Write(okBody())
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one stretched delay", slept)
	}
	if slept[0] < 7*time.Second {
		t.Errorf("retried after %v, before the server's 7s Retry-After advice", slept[0])
	}
}

// RFC 9110 §10.2.3 allows Retry-After to be an HTTP-date instead of
// delta-seconds; the advised sleep must stretch to roughly the gap
// between now and that date.
func TestRespectsRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(7*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.Write(okBody())
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one stretched delay", slept)
	}
	// HTTP-dates have whole-second resolution, so the parsed advice can
	// round down by up to a second from the 7s the server intended.
	if slept[0] < 5*time.Second {
		t.Errorf("retried after %v, before the server's HTTP-date advice", slept[0])
	}
}

// An HTTP-date in the past means "no wait", not "no advice": the retry
// falls back to ordinary backoff instead of a stretched sleep.
func TestRetryAfterHTTPDateInPast(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.Write(okBody())
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one backoff delay", slept)
	}
	if slept[0] > time.Second {
		t.Errorf("slept %v on a past-date Retry-After; want plain backoff", slept[0])
	}
}

// A Retry-After that overshoots the caller's deadline aborts instead of
// scheduling a doomed sleep.
func TestRetryAfterBeyondDeadlineAborts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "60")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full","retry_after_seconds":60}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.Solve(ctx, quickReq())
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if !strings.Contains(err.Error(), "429") {
		t.Errorf("terminal error lost the 429 cause: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("%d calls despite 60s advice inside a 1s budget", n)
	}
	if len(slept) != 0 {
		t.Errorf("slept %v for a doomed retry", slept)
	}
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	var transitions []string
	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{
		MaxAttempts: 2,
		Breaker: &resilience.BreakerConfig{
			ConsecutiveFailures: 3,
			OnStateChange: func(from, to resilience.State) {
				transitions = append(transitions, from.String()+">"+to.String())
			},
		},
	})

	// Two calls x two attempts = 4 failures; the breaker trips at 3.
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(context.Background(), quickReq()); err == nil {
			t.Fatal("want error")
		}
	}
	before := calls.Load()
	_, err := c.Solve(context.Background(), quickReq())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still hit the network")
	}
	if len(transitions) != 1 || transitions[0] != "closed>open" {
		t.Errorf("transitions = %v", transitions)
	}
	// Two open-rejects: the tripping call's own follow-up attempt plus
	// the whole third call.
	st := c.Stats()
	if st.BreakerOpenRejects != 2 || st.Breaker.State != "open" || st.Breaker.Opens != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMetricsExported(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write(okBody())
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{Registry: reg})
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"bcc_retry_total 1",
		"bcc_breaker_state 0",
		`bcc_client_requests_total{outcome="success"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestSolveBatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/solve/batch" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var in api.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			t.Error(err)
		}
		out := api.BatchResponse{Responses: []api.BatchItem{
			{Result: &api.SolveResponse{Status: "complete"}},
			{Error: "queue full", Code: 429, RetryAfterSeconds: 3},
		}}
		json.NewEncoder(w).Encode(&out)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	resp, err := c.SolveBatch(context.Background(), []api.SolveRequest{*quickReq(), *quickReq()})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 2 {
		t.Fatalf("responses = %+v", resp.Responses)
	}
	if resp.Responses[1].Code != 429 || resp.Responses[1].RetryAfterSeconds != 3 {
		t.Errorf("per-item shed advice lost: %+v", resp.Responses[1])
	}
	// Per-item failures must not trigger whole-batch retries.
	if len(slept) != 0 {
		t.Errorf("slept %v retrying a 200 batch", slept)
	}
}

func TestTransportErrorsAreRetryable(t *testing.T) {
	// A server that closes immediately: connection refused on every try.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	var slept []time.Duration
	c := newClient(t, url, &slept, Config{MaxAttempts: 3})
	_, err := c.Solve(context.Background(), quickReq())
	if err == nil {
		t.Fatal("want error against a dead server")
	}
	if len(slept) != 2 {
		t.Errorf("slept %v, want 2 retries against a dead server", slept)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("terminal error does not report the attempt count: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	draining := atomic.Bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"draining"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthy server: %v", err)
	}
	draining.Store(true)
	err := c.Healthz(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz err = %v, want *HTTPError 503", err)
	}
}

func TestNewRejectsEmptyBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for missing BaseURL")
	}
}

// TestCallOptsBaseURLOverride routes one call of a shared client at a
// second backend; both the request and the accounting hooks must see
// the overridden target, and the default base must be untouched after.
func TestCallOptsBaseURLOverride(t *testing.T) {
	var hitsA, hitsB atomic.Int32
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsA.Add(1)
		w.Write(okBody())
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitsB.Add(1)
		w.Write(okBody())
	}))
	defer b.Close()

	var mu sync.Mutex
	var started, ended []string
	var slept []time.Duration
	c := newClient(t, a.URL, &slept, Config{
		OnCallStart: func(base string) {
			mu.Lock()
			started = append(started, base)
			mu.Unlock()
		},
		OnCallEnd: func(base string, elapsed time.Duration, err error) {
			mu.Lock()
			ended = append(ended, base)
			mu.Unlock()
			if elapsed < 0 {
				t.Errorf("negative elapsed %v", elapsed)
			}
			if err != nil {
				t.Errorf("hook saw error %v on a clean call", err)
			}
		},
	})

	if _, err := c.SolveOpts(context.Background(), quickReq(), &CallOpts{BaseURL: b.URL + "/"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(context.Background(), quickReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SolveBatchOpts(context.Background(), []api.SolveRequest{*quickReq()}, &CallOpts{BaseURL: b.URL}); err != nil {
		t.Fatal(err)
	}
	if hitsA.Load() != 1 || hitsB.Load() != 2 {
		t.Errorf("hits A=%d B=%d, want 1 and 2", hitsA.Load(), hitsB.Load())
	}
	wantTargets := []string{b.URL, a.URL, b.URL}
	mu.Lock()
	defer mu.Unlock()
	for i, want := range wantTargets {
		if started[i] != want || ended[i] != want {
			t.Errorf("call %d: hooks saw start=%q end=%q, want %q", i, started[i], ended[i], want)
		}
	}
}

// The end hook reports the terminal error so a routing tier can fold
// failures into per-backend health.
func TestCallEndHookSeesError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // dead backend: every attempt is a transport error

	var gotErr error
	var slept []time.Duration
	c := newClient(t, url, &slept, Config{
		MaxAttempts: 1,
		OnCallEnd:   func(_ string, _ time.Duration, err error) { gotErr = err },
	})
	if _, err := c.Solve(context.Background(), quickReq()); err == nil {
		t.Fatal("want error against a dead server")
	}
	if gotErr == nil {
		t.Error("OnCallEnd saw a nil error for a failed call")
	}
}
