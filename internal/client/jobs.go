package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/resilience"
)

// Job helpers: submit/poll/await wrappers over the async job endpoints,
// sharing the client's retry policy, breaker and per-backend accounting
// hooks with the synchronous calls. The result endpoint's status codes
// carry the protocol (200 result, 202 still running, 409 ended without
// a result), so these helpers never sniff body shapes.

// ErrJobNotCompleted is wrapped into the error a result fetch returns
// for a job that ended failed or canceled (HTTP 409); the *HTTPError in
// the same chain carries the server's reason.
var ErrJobNotCompleted = errors.New("job ended without a result")

// SubmitJob submits an async solve through POST /v1/jobs and returns
// the queued job's status. A successful return means the server
// persisted the job: it will run to a terminal state even across server
// restarts.
func (c *Client) SubmitJob(ctx context.Context, req *api.JobRequest) (*api.JobStatus, error) {
	return c.SubmitJobOpts(ctx, req, nil)
}

// SubmitJobOpts is SubmitJob with per-call options.
func (c *Client) SubmitJobOpts(ctx context.Context, req *api.JobRequest, opts *CallOpts) (*api.JobStatus, error) {
	var st api.JobStatus
	err := c.callMethod(ctx, opts, http.MethodPost, "/v1/jobs", req, func(code int, data []byte) error {
		if code != http.StatusAccepted {
			return errors.New("expected 202")
		}
		return json.Unmarshal(data, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// JobStatus fetches a job's current status (GET /v1/jobs/{id}).
func (c *Client) JobStatus(ctx context.Context, id string) (*api.JobStatus, error) {
	return c.JobStatusOpts(ctx, id, nil)
}

// JobStatusOpts is JobStatus with per-call options.
func (c *Client) JobStatusOpts(ctx context.Context, id string, opts *CallOpts) (*api.JobStatus, error) {
	var st api.JobStatus
	err := c.callMethod(ctx, opts, http.MethodGet, "/v1/jobs/"+id, nil, func(code int, data []byte) error {
		if code != http.StatusOK {
			return errors.New("expected 200")
		}
		return json.Unmarshal(data, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// ListJobs fetches every job the backend knows (GET /v1/jobs).
func (c *Client) ListJobs(ctx context.Context) (*api.JobList, error) {
	return c.ListJobsOpts(ctx, nil)
}

// ListJobsOpts is ListJobs with per-call options.
func (c *Client) ListJobsOpts(ctx context.Context, opts *CallOpts) (*api.JobList, error) {
	var list api.JobList
	err := c.callMethod(ctx, opts, http.MethodGet, "/v1/jobs", nil, func(code int, data []byte) error {
		if code != http.StatusOK {
			return errors.New("expected 200")
		}
		return json.Unmarshal(data, &list)
	})
	if err != nil {
		return nil, err
	}
	return &list, nil
}

// JobResult fetches a job's result. result is non-nil once the job
// completed; while the job is queued or running, result is nil and
// status carries the anytime progress. A job that ended failed or
// canceled answers an error wrapping ErrJobNotCompleted.
func (c *Client) JobResult(ctx context.Context, id string) (*api.SolveResponse, *api.JobStatus, error) {
	return c.JobResultOpts(ctx, id, nil)
}

// JobResultOpts is JobResult with per-call options.
func (c *Client) JobResultOpts(ctx context.Context, id string, opts *CallOpts) (*api.SolveResponse, *api.JobStatus, error) {
	var (
		result *api.SolveResponse
		status *api.JobStatus
	)
	err := c.callMethod(ctx, opts, http.MethodGet, "/v1/jobs/"+id+"/result", nil, func(code int, data []byte) error {
		switch code {
		case http.StatusOK:
			var resp api.SolveResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				return err
			}
			result = &resp
			return nil
		case http.StatusAccepted:
			var st api.JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return err
			}
			status = &st
			return nil
		default:
			return fmt.Errorf("expected 200 or 202")
		}
	})
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) && he.StatusCode == http.StatusConflict {
			return nil, nil, fmt.Errorf("%w: %s", ErrJobNotCompleted, he.Msg)
		}
		return nil, nil, err
	}
	return result, status, nil
}

// CancelJob asks the server to stop a job (POST /v1/jobs/{id}/cancel).
// The returned status reflects the cancel: terminal immediately for a
// queued job, at the next slice boundary for a running one.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobStatus, error) {
	return c.CancelJobOpts(ctx, id, nil)
}

// CancelJobOpts is CancelJob with per-call options.
func (c *Client) CancelJobOpts(ctx context.Context, id string, opts *CallOpts) (*api.JobStatus, error) {
	var st api.JobStatus
	err := c.callMethod(ctx, opts, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, func(code int, data []byte) error {
		if code != http.StatusOK {
			return errors.New("expected 200")
		}
		return json.Unmarshal(data, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// AwaitJob polls a job's status every poll interval (default 500ms)
// until it reaches a terminal state or ctx expires, then returns the
// final status — and, for a completed job, its result. A failed or
// canceled job returns the terminal status with a nil result and a nil
// error; the status carries the reason.
func (c *Client) AwaitJob(ctx context.Context, id string, poll time.Duration) (*api.SolveResponse, *api.JobStatus, error) {
	return c.AwaitJobOpts(ctx, id, poll, nil)
}

// AwaitJobOpts is AwaitJob with per-call options.
func (c *Client) AwaitJobOpts(ctx context.Context, id string, poll time.Duration, opts *CallOpts) (*api.SolveResponse, *api.JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.JobStatusOpts(ctx, id, opts)
		if err != nil {
			return nil, nil, err
		}
		if api.JobTerminal(st.State) {
			if st.State != api.JobCompleted {
				return nil, st, nil
			}
			result, _, err := c.JobResultOpts(ctx, id, opts)
			if err != nil {
				return nil, st, err
			}
			return result, st, nil
		}
		select {
		case <-ctx.Done():
			return nil, st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// callMethod drives one logical call of any method through the retrier
// (call is its POST-200-only ancestor, kept verbatim for the hot solve
// path). handle classifies the decoded attempt: a non-nil return on a
// non-2xx code is replaced by the richer *HTTPError so retry discipline
// and breaker accounting see the status code.
func (c *Client) callMethod(ctx context.Context, opts *CallOpts, method, path string, in any, handle func(code int, data []byte) error) error {
	return c.callMethodHeader(ctx, opts, method, path, in, nil,
		func(code int, _ http.Header, data []byte) error { return handle(code, data) })
}

// callMethodHeader is callMethod with request headers attached to every
// attempt and response headers surfaced to handle — the conditional-GET
// (If-None-Match / ETag) variant.
func (c *Client) callMethodHeader(ctx context.Context, opts *CallOpts, method, path string, in any, reqHeader http.Header, handle func(code int, header http.Header, data []byte) error) error {
	base := c.base
	if opts != nil && opts.BaseURL != "" {
		base = strings.TrimRight(opts.BaseURL, "/")
	}
	c.requests.Add(1)
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	if c.onCallStart != nil {
		c.onCallStart(base)
	}
	start := time.Now()
	err := c.retrier.Do(ctx, func(actx context.Context) error {
		code, header, data, err := c.roundTrip(actx, method, base, path, reqHeader, body)
		if err != nil {
			return err
		}
		if herr := handle(code, header, data); herr != nil {
			if code/100 != 2 {
				return newHTTPError(code, header, data)
			}
			return fmt.Errorf("client: decoding %d response: %w", code, herr)
		}
		return nil
	})
	if c.onCallEnd != nil {
		c.onCallEnd(base, time.Since(start), err)
	}
	if err != nil {
		c.failures.Add(1)
		if errors.Is(err, resilience.ErrOpen) {
			c.openFast.Add(1)
		}
		return err
	}
	c.successes.Add(1)
	return nil
}

// roundTrip performs one HTTP attempt of any method and returns the
// status, headers and capped body.
func (c *Client) roundTrip(ctx context.Context, method, base, path string, header http.Header, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("client: reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, data, nil
}
