// Package client is the resilient HTTP client for the BCC solving
// service (re-exported as bcc.Client): it wraps POST /v1/solve and
// /v1/solve/batch with the internal/resilience stack — jittered
// exponential backoff, honoring the server's Retry-After shedding
// advice, and a circuit breaker so a failing endpoint is left alone
// for a cooldown instead of being hammered — under the caller's
// context deadline.
//
// Retry discipline: transport failures, 5xx answers, 408s and shed
// 429s are retryable and count against the breaker; other 4xx answers
// are the caller's bug, never retried and never held against the
// server's health. A 429's Retry-After (header or JSON body) stretches
// the backoff delay — the client will not knock again before the
// server said it is worth it.
//
// Observability: pass an obs.Registry and the client exports
// bcc_retry_total, bcc_breaker_state (0 closed / 1 open / 2 half-open),
// bcc_breaker_transitions_total{to} and bcc_client_requests_total by
// outcome. Stats() returns the same numbers as one consistent struct.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Config tunes a Client. Only BaseURL is required.
type Config struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport (default: a plain http.Client; the
	// per-attempt and per-call deadlines come from contexts, not a
	// client-wide timeout that would cap long solves).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first included (default 4).
	MaxAttempts int
	// Backoff shapes inter-attempt delays (zero value = defaults:
	// 100ms base, ×2, 10s cap, 20% jitter).
	Backoff resilience.Backoff
	// PerAttempt, when positive, caps each individual HTTP attempt.
	PerAttempt time.Duration
	// Breaker overrides the circuit breaker policy (nil = defaults).
	Breaker *resilience.BreakerConfig
	// DisableBreaker turns the breaker off entirely (load tests that
	// must keep hammering).
	DisableBreaker bool
	// Registry, when non-nil, receives the client's metric series.
	Registry *obs.Registry
	// MaxResponseBytes caps response bodies (default 32 MiB).
	MaxResponseBytes int64
	// OnCallStart / OnCallEnd, when non-nil, observe every logical call
	// (Solve and SolveBatch each count one, however many attempts it
	// takes) keyed by the base URL it targeted after any CallOpts
	// override. They are the per-backend in-flight and latency
	// accounting hooks of the bccgate routing tier: the cluster bumps a
	// per-backend gauge on start and folds the elapsed time into that
	// backend's latency estimate on end. Both may be called from many
	// goroutines at once and must not block.
	OnCallStart func(baseURL string)
	OnCallEnd   func(baseURL string, elapsed time.Duration, err error)
}

// CallOpts adjusts one call. The zero value (and a nil pointer) means
// the client's defaults.
type CallOpts struct {
	// BaseURL, when non-empty, overrides the client's base URL for this
	// call only. A routing tier (bccgate) keeps one client — one retry
	// policy, one metrics registration — and directs each request at the
	// backend its hash ranking chose.
	BaseURL string
}

// HTTPError is a non-2xx answer from the service, carrying any
// Retry-After advice; it implements resilience.AdvisedDelayer so the
// retrier never retries sooner than the server asked.
type HTTPError struct {
	StatusCode int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server answered %d: %s (retry after %v)", e.StatusCode, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("server answered %d: %s", e.StatusCode, e.Msg)
}

// AdvisedDelay reports the server's Retry-After advice (0 = none).
func (e *HTTPError) AdvisedDelay() time.Duration { return e.RetryAfter }

// retryableStatus classifies response codes worth retrying: shed load
// (429), request timeout (408), and server-side failures (5xx).
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusRequestTimeout || code >= 500
}

// Retryable reports whether err is worth retrying under this package's
// discipline (exported for load drivers that classify outcomes).
func Retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return retryableStatus(he.StatusCode)
	}
	// Anything else the transport produced (connection refused, reset,
	// EOF mid-body) is worth another try.
	return true
}

// Client is a resilient caller of the solving service. Create one with
// New; it is safe for concurrent use.
type Client struct {
	base     string
	http     *http.Client
	breaker  *resilience.Breaker
	retrier  *resilience.Retrier
	maxBody  int64
	registry *obs.Registry

	onCallStart func(string)
	onCallEnd   func(string, time.Duration, error)

	requests  atomic.Uint64 // logical calls (Solve / SolveBatch each count 1)
	successes atomic.Uint64
	failures  atomic.Uint64
	retries   atomic.Uint64 // scheduled retries across all calls
	openFast  atomic.Uint64 // calls refused locally by the open breaker
}

// New builds a Client.
func New(cfg Config) (*Client, error) {
	base := strings.TrimRight(cfg.BaseURL, "/")
	if base == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	maxBody := cfg.MaxResponseBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	c := &Client{
		base: base, http: httpc, maxBody: maxBody, registry: cfg.Registry,
		onCallStart: cfg.OnCallStart, onCallEnd: cfg.OnCallEnd,
	}

	if !cfg.DisableBreaker {
		bcfg := resilience.BreakerConfig{}
		if cfg.Breaker != nil {
			bcfg = *cfg.Breaker
		}
		userHook := bcfg.OnStateChange
		bcfg.OnStateChange = func(from, to resilience.State) {
			if c.registry != nil {
				c.registry.Counter("bcc_breaker_transitions_total",
					"Circuit breaker state transitions by destination state.",
					obs.Labels{"to": to.String()}).Inc()
			}
			if userHook != nil {
				userHook(from, to)
			}
		}
		c.breaker = resilience.NewBreaker(bcfg)
	}

	c.retrier = &resilience.Retrier{
		MaxAttempts: cfg.MaxAttempts,
		Backoff:     cfg.Backoff,
		PerAttempt:  cfg.PerAttempt,
		Breaker:     c.breaker,
		Retryable:   Retryable,
		OnRetry: func(int, time.Duration, error) {
			c.retries.Add(1)
		},
	}

	if reg := c.registry; reg != nil {
		reg.CounterFunc("bcc_retry_total", "Retries scheduled by the client across all calls.", nil,
			func() float64 { return float64(c.retries.Load()) })
		reg.CounterFunc("bcc_client_requests_total", "Client calls by outcome.", obs.Labels{"outcome": "success"},
			func() float64 { return float64(c.successes.Load()) })
		reg.CounterFunc("bcc_client_requests_total", "Client calls by outcome.", obs.Labels{"outcome": "failure"},
			func() float64 { return float64(c.failures.Load()) })
		reg.CounterFunc("bcc_breaker_open_rejects_total", "Calls refused locally by the open breaker.", nil,
			func() float64 { return float64(c.openFast.Load()) })
		reg.GaugeFunc("bcc_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.", nil,
			func() float64 {
				if c.breaker == nil {
					return 0
				}
				switch c.breaker.State() {
				case resilience.Open:
					return 1
				case resilience.HalfOpen:
					return 2
				default:
					return 0
				}
			})
	}
	return c, nil
}

// Breaker exposes the client's breaker (nil when disabled) for tests
// and load drivers that report its state.
func (c *Client) Breaker() *resilience.Breaker { return c.breaker }

// Solve runs one request through POST /v1/solve with retries.
func (c *Client) Solve(ctx context.Context, req *api.SolveRequest) (*api.SolveResponse, error) {
	return c.SolveOpts(ctx, req, nil)
}

// SolveOpts is Solve with per-call options (e.g. a backend override).
func (c *Client) SolveOpts(ctx context.Context, req *api.SolveRequest, opts *CallOpts) (*api.SolveResponse, error) {
	var out api.SolveResponse
	if err := c.call(ctx, opts, "/v1/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveBatch runs requests through POST /v1/solve/batch with retries.
// The batch answers 200 even when individual items fail; per-item
// errors (including per-item 429 shedding with retry advice) are the
// caller's to inspect, deliberately not retried here — retrying a
// whole batch for one shed item would re-solve the others.
func (c *Client) SolveBatch(ctx context.Context, reqs []api.SolveRequest) (*api.BatchResponse, error) {
	return c.SolveBatchOpts(ctx, reqs, nil)
}

// SolveBatchOpts is SolveBatch with per-call options.
func (c *Client) SolveBatchOpts(ctx context.Context, reqs []api.SolveRequest, opts *CallOpts) (*api.BatchResponse, error) {
	var out api.BatchResponse
	if err := c.call(ctx, opts, "/v1/solve/batch", &api.BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes GET /v1/healthz once (no retries — a health probe
// that retries until the target looks healthy defeats its purpose).
// It returns nil while serving and an *HTTPError with StatusCode 503
// once the server is draining.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return &HTTPError{StatusCode: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	return nil
}

// call drives one logical API call through the retrier. opts may carry
// a per-call base-URL override; the accounting hooks see the resolved
// target.
func (c *Client) call(ctx context.Context, opts *CallOpts, path string, in, out any) error {
	base := c.base
	if opts != nil && opts.BaseURL != "" {
		base = strings.TrimRight(opts.BaseURL, "/")
	}
	c.requests.Add(1)
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	if c.onCallStart != nil {
		c.onCallStart(base)
	}
	start := time.Now()
	err = c.retrier.Do(ctx, func(actx context.Context) error {
		return c.post(actx, base, path, body, out)
	})
	if c.onCallEnd != nil {
		c.onCallEnd(base, time.Since(start), err)
	}
	if err != nil {
		c.failures.Add(1)
		if errors.Is(err, resilience.ErrOpen) {
			c.openFast.Add(1)
		}
		return err
	}
	c.successes.Add(1)
	return nil
}

// post performs one HTTP attempt.
func (c *Client) post(ctx context.Context, base, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return httpError(resp, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %d-byte response: %w", len(data), err)
	}
	return nil
}

// httpError folds a non-200 answer into an *HTTPError, extracting the
// error message and retry advice from the JSON body and the standard
// Retry-After header (the header wins when both are present).
func httpError(resp *http.Response, data []byte) *HTTPError {
	return newHTTPError(resp.StatusCode, resp.Header, data)
}

func newHTTPError(code int, header http.Header, data []byte) *HTTPError {
	he := &HTTPError{StatusCode: code, Msg: strings.TrimSpace(string(data))}
	var body struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(data, &body); err == nil && body.Error != "" {
		he.Msg = body.Error
		if body.RetryAfterSeconds > 0 {
			he.RetryAfter = time.Duration(body.RetryAfterSeconds) * time.Second
		}
	}
	if h := header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(h); err == nil {
			// RFC 9110 §10.2.3: Retry-After is either delta-seconds or an
			// HTTP-date. A date in the past (or exactly now) means "no
			// wait", not "no advice".
			if d := time.Until(t); d > 0 {
				he.RetryAfter = d
			}
		}
	}
	return he
}

// Stats is a point-in-time view of the client, captured together so a
// report never mixes instants (successes+failures never exceed
// requests, retries belong to the same horizon).
type Stats struct {
	Requests  uint64 `json:"requests"`
	Successes uint64 `json:"successes"`
	Failures  uint64 `json:"failures"`
	Retries   uint64 `json:"retries"`
	// BreakerOpenRejects counts calls refused locally without touching
	// the network (a subset of Failures).
	BreakerOpenRejects uint64 `json:"breaker_open_rejects"`
	// Breaker is the breaker's own consistent snapshot; zero value when
	// the breaker is disabled.
	Breaker resilience.BreakerStats `json:"breaker"`
}

// Stats captures the client counters. Numerators are read before their
// dominating denominator (requests last), mirroring the server's statz
// convention, so Successes+Failures <= Requests always holds in the
// returned struct.
func (c *Client) Stats() Stats {
	st := Stats{
		Successes:          c.successes.Load(),
		Failures:           c.failures.Load(),
		Retries:            c.retries.Load(),
		BreakerOpenRejects: c.openFast.Load(),
	}
	st.Requests = c.requests.Load()
	if c.breaker != nil {
		st.Breaker = c.breaker.Snapshot()
	}
	return st
}
