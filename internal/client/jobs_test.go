package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// fakeJobServer emulates the job endpoints' status-code protocol: a
// submitted job answers queued, then running for `runningPolls` status
// fetches, then completed; the result endpoint mirrors that with
// 202/200. One job at a time is plenty for protocol tests.
type fakeJobServer struct {
	runningPolls int32
	polls        atomic.Int32
	failJob      bool  // job ends failed instead of completed
	status500s   int32 // first N status fetches answer 500 (retry fodder)
	s500         atomic.Int32
}

func (f *fakeJobServer) state() string {
	if f.polls.Load() <= f.runningPolls {
		return api.JobRunning
	}
	if f.failJob {
		return api.JobFailed
	}
	return api.JobCompleted
}

func (f *fakeJobServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req api.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "fakejob0000000001", State: api.JobQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if f.s500.Add(1) <= f.status500s {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		f.polls.Add(1)
		st := api.JobStatus{ID: r.PathValue("id"), State: f.state()}
		if st.State == api.JobFailed {
			st.Error = "synthetic failure"
		}
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		switch f.state() {
		case api.JobRunning:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(api.JobStatus{ID: r.PathValue("id"), State: api.JobRunning})
		case api.JobFailed:
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{"error": "job ended failed: synthetic failure"})
		default:
			json.NewEncoder(w).Encode(api.SolveResponse{Fingerprint: "fp", Status: "complete", Utility: 7})
		}
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobStatus{ID: r.PathValue("id"), State: api.JobCanceled})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(api.JobList{Jobs: []api.JobStatus{{ID: "fakejob0000000001", State: f.state()}}})
	})
	return mux
}

func TestSubmitAwaitJobCompletes(t *testing.T) {
	f := &fakeJobServer{runningPolls: 2}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	st, err := c.SubmitJob(context.Background(), &api.JobRequest{SolveRequest: *quickReq()})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" || st.State != api.JobQueued {
		t.Fatalf("submit status = %+v", st)
	}

	// While running, the result endpoint answers 202 + status.
	result, running, err := c.JobResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("JobResult while running: %v", err)
	}
	if result != nil || running == nil || running.State != api.JobRunning {
		t.Fatalf("mid-flight result = %v status = %+v", result, running)
	}

	result, final, err := c.AwaitJob(context.Background(), st.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("AwaitJob: %v", err)
	}
	if final.State != api.JobCompleted || result == nil || result.Utility != 7 {
		t.Fatalf("awaited: status %+v result %+v", final, result)
	}
}

func TestAwaitJobFailedReturnsStatusNotError(t *testing.T) {
	f := &fakeJobServer{runningPolls: 1, failJob: true}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	result, st, err := c.AwaitJob(context.Background(), "fakejob0000000001", time.Millisecond)
	if err != nil {
		t.Fatalf("AwaitJob on failed job: %v", err)
	}
	if result != nil || st.State != api.JobFailed || st.Error == "" {
		t.Fatalf("result %v status %+v, want nil result + failed status with reason", result, st)
	}

	// A direct result fetch surfaces the 409 as ErrJobNotCompleted.
	if _, _, err := c.JobResult(context.Background(), st.ID); !errors.Is(err, ErrJobNotCompleted) {
		t.Fatalf("JobResult on failed job: %v, want ErrJobNotCompleted", err)
	}
}

func TestJobStatusRetriesTransient500(t *testing.T) {
	f := &fakeJobServer{runningPolls: 0, status500s: 2}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	st, err := c.JobStatus(context.Background(), "fakejob0000000001")
	if err != nil {
		t.Fatalf("JobStatus: %v", err)
	}
	if st.State != api.JobCompleted {
		t.Fatalf("state = %q", st.State)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs for 2 transient 500s", slept)
	}
}

func TestCancelAndListJobs(t *testing.T) {
	f := &fakeJobServer{runningPolls: 1000}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	st, err := c.CancelJob(context.Background(), "fakejob0000000001")
	if err != nil || st.State != api.JobCanceled {
		t.Fatalf("CancelJob: %+v / %v", st, err)
	}
	list, err := c.ListJobs(context.Background())
	if err != nil || len(list.Jobs) != 1 {
		t.Fatalf("ListJobs: %+v / %v", list, err)
	}
}
