package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
)

// Continuous-pipeline helpers: durable query-log ingest and last-good
// plan reads, sharing the client's retry policy, breaker and Retry-After
// handling with every other call. An ingest acknowledged here is on the
// server's WAL — fsynced before the 200 — so a crash on either side
// cannot lose it.

// ErrNoPlan is wrapped into the error CurrentPlan returns while the
// server has not published a plan yet (HTTP 404) — expected during the
// first window after a cold start, so callers can poll politely.
var ErrNoPlan = errors.New("no plan published yet")

// Ingest appends timestamped query-log lines ("ts<TAB>terms[<TAB>count]")
// to the server's durable ingest WAL (POST /v1/ingest). A 429 backlog
// shed is retried under the client's policy, honoring the server's
// Retry-After advice.
func (c *Client) Ingest(ctx context.Context, lines []string) (*api.IngestResponse, error) {
	return c.IngestOpts(ctx, lines, nil)
}

// IngestOpts is Ingest with per-call options.
func (c *Client) IngestOpts(ctx context.Context, lines []string, opts *CallOpts) (*api.IngestResponse, error) {
	var out api.IngestResponse
	err := c.callMethod(ctx, opts, http.MethodPost, "/v1/ingest", &api.IngestRequest{Lines: lines},
		func(code int, data []byte) error {
			if code != http.StatusOK {
				return errors.New("expected 200")
			}
			return json.Unmarshal(data, &out)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CurrentPlan fetches the last-good published plan with its window and
// staleness metadata (GET /v1/plan/current). Before the first publish
// the returned error wraps ErrNoPlan.
func (c *Client) CurrentPlan(ctx context.Context) (*api.CurrentPlanResponse, error) {
	return c.CurrentPlanOpts(ctx, nil)
}

// CurrentPlanOpts is CurrentPlan with per-call options.
func (c *Client) CurrentPlanOpts(ctx context.Context, opts *CallOpts) (*api.CurrentPlanResponse, error) {
	var out api.CurrentPlanResponse
	err := c.callMethod(ctx, opts, http.MethodGet, "/v1/plan/current", nil,
		func(code int, data []byte) error {
			if code != http.StatusOK {
				return errors.New("expected 200")
			}
			return json.Unmarshal(data, &out)
		})
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) && he.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %v", ErrNoPlan, err)
		}
		return nil, err
	}
	return &out, nil
}
