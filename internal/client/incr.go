package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/api"
)

// Incremental re-solve helpers (DESIGN.md §17): the cache-entry export
// used for fleet peer fill, and the conditional form of CurrentPlan so
// plan pollers pay for a body only when a new window actually published.

// ErrNoCacheEntry is wrapped into the error a cache-entry fetch returns
// when the backend has nothing matching (HTTP 404) — the expected
// outcome for a cold peer, so callers fall back to a cold solve without
// logging noise.
var ErrNoCacheEntry = errors.New("no matching cache entry")

// ErrPlanUnchanged is wrapped into the error CurrentPlanIfChanged
// returns when the server answered 304: the caller's plan is still
// current.
var ErrPlanUnchanged = errors.New("plan unchanged")

// CacheEntry fetches one solution-cache entry by its exact key
// (GET /v1/cache/entry?key=). A backend taking over a fingerprint after
// a rendezvous remap uses it to pull the previous owner's answer.
func (c *Client) CacheEntry(ctx context.Context, key string) (*api.CacheEntryResponse, error) {
	return c.CacheEntryOpts(ctx, key, nil)
}

// CacheEntryOpts is CacheEntry with per-call options.
func (c *Client) CacheEntryOpts(ctx context.Context, key string, opts *CallOpts) (*api.CacheEntryResponse, error) {
	return c.cacheEntry(ctx, opts, url.Values{"key": {key}})
}

// CacheSibling fetches any near-miss cache entry for a query-set hash
// and algorithm (GET /v1/cache/entry?fp2=&algo=): the peer-fill lookup
// when the exact key is unknown or missing on the peer.
func (c *Client) CacheSibling(ctx context.Context, fp2, algo string) (*api.CacheEntryResponse, error) {
	return c.CacheSiblingOpts(ctx, fp2, algo, nil)
}

// CacheSiblingOpts is CacheSibling with per-call options.
func (c *Client) CacheSiblingOpts(ctx context.Context, fp2, algo string, opts *CallOpts) (*api.CacheEntryResponse, error) {
	return c.cacheEntry(ctx, opts, url.Values{"fp2": {fp2}, "algo": {algo}})
}

func (c *Client) cacheEntry(ctx context.Context, opts *CallOpts, q url.Values) (*api.CacheEntryResponse, error) {
	var out api.CacheEntryResponse
	err := c.callMethod(ctx, opts, http.MethodGet, "/v1/cache/entry?"+q.Encode(), nil,
		func(code int, data []byte) error {
			if code != http.StatusOK {
				return errors.New("expected 200")
			}
			return json.Unmarshal(data, &out)
		})
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) && he.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %v", ErrNoCacheEntry, err)
		}
		return nil, err
	}
	return &out, nil
}

// CurrentPlanIfChanged is CurrentPlan with a conditional GET: etag is
// the validator from a previous call ("" for the first), and the
// returned string is the current one to carry into the next call. When
// the server answers 304 the response is nil and the error wraps
// ErrPlanUnchanged; before the first publish it wraps ErrNoPlan.
func (c *Client) CurrentPlanIfChanged(ctx context.Context, etag string) (*api.CurrentPlanResponse, string, error) {
	return c.CurrentPlanIfChangedOpts(ctx, etag, nil)
}

// CurrentPlanIfChangedOpts is CurrentPlanIfChanged with per-call
// options.
func (c *Client) CurrentPlanIfChangedOpts(ctx context.Context, etag string, opts *CallOpts) (*api.CurrentPlanResponse, string, error) {
	var (
		out       api.CurrentPlanResponse
		newTag    string
		unchanged bool
	)
	var reqHeader http.Header
	if etag != "" {
		reqHeader = http.Header{"If-None-Match": {etag}}
	}
	err := c.callMethodHeader(ctx, opts, http.MethodGet, "/v1/plan/current", nil, reqHeader,
		func(code int, header http.Header, data []byte) error {
			switch code {
			case http.StatusOK:
				newTag = header.Get("ETag")
				return json.Unmarshal(data, &out)
			case http.StatusNotModified:
				unchanged, newTag = true, etag
				return nil
			default:
				return errors.New("expected 200 or 304")
			}
		})
	if err != nil {
		var he *HTTPError
		if errors.As(err, &he) && he.StatusCode == http.StatusNotFound {
			return nil, "", fmt.Errorf("%w: %v", ErrNoPlan, err)
		}
		return nil, "", err
	}
	if unchanged {
		return nil, newTag, fmt.Errorf("%w (etag %s)", ErrPlanUnchanged, etag)
	}
	return &out, newTag, nil
}
