package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

func TestCacheEntryExactAndSibling(t *testing.T) {
	var gotQuery atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery.Store(r.URL.RawQuery)
		switch {
		case r.URL.Path != "/v1/cache/entry":
			http.NotFound(w, r)
		case r.URL.Query().Get("key") == "hit":
			json.NewEncoder(w).Encode(api.CacheEntryResponse{
				Key:      "hit",
				Response: &api.SolveResponse{Algo: "abcc", Classifiers: []api.PlanClassifier{{Props: []string{"p"}}}},
			})
		case r.URL.Query().Get("fp2") == "f2":
			json.NewEncoder(w).Encode(api.CacheEntryResponse{Key: "other", Sibling: true,
				Response: &api.SolveResponse{Algo: "abcc"}})
		default:
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"no cache entry"}`))
		}
	}))
	defer srv.Close()
	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})

	entry, err := c.CacheEntry(context.Background(), "hit")
	if err != nil || entry.Key != "hit" || len(entry.Response.Classifiers) != 1 {
		t.Fatalf("CacheEntry = %+v, %v", entry, err)
	}

	sib, err := c.CacheSibling(context.Background(), "f2", "abcc")
	if err != nil || !sib.Sibling || sib.Key != "other" {
		t.Fatalf("CacheSibling = %+v, %v", sib, err)
	}
	if q, _ := gotQuery.Load().(string); q != "algo=abcc&fp2=f2" {
		t.Errorf("sibling query = %q", q)
	}

	// 404 is the expected cold-peer outcome: a typed sentinel, no
	// retries burned.
	if _, err := c.CacheEntry(context.Background(), "miss"); !errors.Is(err, ErrNoCacheEntry) {
		t.Fatalf("miss error = %v, want ErrNoCacheEntry", err)
	}
	if len(slept) != 0 {
		t.Errorf("cache lookups scheduled %d retries, want 0", len(slept))
	}
}

func TestCurrentPlanIfChanged(t *testing.T) {
	const tag = `"fp-7"`
	var gotINM atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inm := r.Header.Get("If-None-Match")
		gotINM.Store(inm)
		if inm == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", tag)
		json.NewEncoder(w).Encode(api.CurrentPlanResponse{Seq: 7})
	}))
	defer srv.Close()
	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})

	plan, etag, err := c.CurrentPlanIfChanged(context.Background(), "")
	if err != nil || plan == nil || plan.Seq != 7 || etag != tag {
		t.Fatalf("first poll = %+v, %q, %v", plan, etag, err)
	}
	if inm, _ := gotINM.Load().(string); inm != "" {
		t.Errorf("first poll sent If-None-Match %q, want none", inm)
	}

	plan, etag2, err := c.CurrentPlanIfChanged(context.Background(), etag)
	if !errors.Is(err, ErrPlanUnchanged) || plan != nil || etag2 != tag {
		t.Fatalf("second poll = %+v, %q, %v, want ErrPlanUnchanged with carried etag", plan, etag2, err)
	}
	if inm, _ := gotINM.Load().(string); inm != tag {
		t.Errorf("second poll sent If-None-Match %q, want %q", inm, tag)
	}
}

func TestCurrentPlanIfChangedNoPlan(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no plan published yet"}`))
	}))
	defer srv.Close()
	var slept []time.Duration
	c := newClient(t, srv.URL, &slept, Config{})
	if _, _, err := c.CurrentPlanIfChanged(context.Background(), ""); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("err = %v, want ErrNoPlan", err)
	}
}
