package partial

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/propset"
)

func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int, budget float64) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(9)))
	}
	seed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := seed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%5+5)%5)
	})
	return b.MustInstance(budget)
}

func TestGainCurves(t *testing.T) {
	for name, g := range map[string]Gain{
		"Threshold": Threshold, "Linear": Linear, "Sqrt": Sqrt, "AllButOne": AllButOne,
	} {
		if got := g(0, 3); got != 0 {
			t.Errorf("%s(0,3) = %v, want 0", name, got)
		}
		if got := g(3, 3); got != 1 {
			t.Errorf("%s(3,3) = %v, want 1", name, got)
		}
		prev := 0.0
		for k := 0; k <= 3; k++ {
			v := g(k, 3)
			if v < prev-1e-12 {
				t.Errorf("%s not monotone at %d", name, k)
			}
			prev = v
		}
	}
	if Linear(1, 2) != 0.5 {
		t.Error("Linear(1,2) != 0.5")
	}
	if math.Abs(Sqrt(1, 4)-0.5) > 1e-12 {
		t.Error("Sqrt(1,4) != 0.5")
	}
	if AllButOne(2, 3) != 0.6 {
		t.Error("AllButOne(2,3) != 0.6")
	}
}

func TestThresholdMatchesBCCUtility(t *testing.T) {
	// Under the Threshold gain the objective is exactly the BCC utility:
	// any fixed selection must score identically in both models.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 6, 10, 3, 10)
		st := newState(in, Threshold)
		sol := model.NewSolution(in)
		cls := in.Classifiers()
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := cls[rng.Intn(len(cls))]
			st.add(c.Props)
			sol.Add(c.Props)
		}
		if math.Abs(st.utility-sol.Utility()) > 1e-9 {
			t.Fatalf("trial %d: partial-threshold %v != BCC %v",
				trial, st.utility, sol.Utility())
		}
	}
}

func TestSolveThresholdComparableToABCC(t *testing.T) {
	// The partial greedy with Threshold is just a BCC heuristic; it must
	// stay within a reasonable factor of A^BCC (and never beat brute
	// force, checked elsewhere).
	rng := rand.New(rand.NewSource(2))
	var ours, abcc float64
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 8, 15, 3, 12)
		ours += Solve(in, Threshold).Utility
		abcc += core.Solve(in, core.Options{Seed: int64(trial + 1)}).Utility
	}
	if ours > abcc+1e-9 {
		t.Logf("partial-threshold greedy (%v) beat A^BCC (%v) in aggregate — fine but unusual", ours, abcc)
	}
	if ours < 0.5*abcc {
		t.Fatalf("partial greedy too weak: %v vs %v", ours, abcc)
	}
}

func TestSolveFeasibleAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 8, 12, 3, float64(3+rng.Intn(12)))
		for _, g := range []Gain{Threshold, Linear, Sqrt, AllButOne} {
			res := Solve(in, g)
			if res.Cost > in.Budget()+1e-9 {
				t.Fatalf("budget exceeded: %v > %v", res.Cost, in.Budget())
			}
			// Recompute utility from scratch.
			st := newState(in, g)
			for _, c := range res.Solution.Classifiers() {
				st.add(c.Props)
			}
			if math.Abs(st.utility-res.Utility) > 1e-9 {
				t.Fatalf("reported %v != recomputed %v", res.Utility, st.utility)
			}
		}
	}
}

func TestSolveNearOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range []Gain{Linear, Sqrt} {
		var tot, opt float64
		for trial := 0; trial < 25; trial++ {
			in := randomInstance(rng, 5, 6, 3, float64(2+rng.Intn(8)))
			res := Solve(in, g)
			ref, err := BruteForce(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Utility > ref.Utility+1e-9 {
				t.Fatalf("greedy %v beats brute force %v", res.Utility, ref.Utility)
			}
			tot += res.Utility
			opt += ref.Utility
		}
		// Submodular greedy guarantee is ½(1−1/e) ≈ 0.316; in practice it
		// should be far closer.
		if tot < 0.75*opt {
			t.Fatalf("greedy aggregate %v below 0.75 × optimal %v", tot, opt)
		}
	}
}

func TestPartialBeatsThresholdOnPartialInstances(t *testing.T) {
	// A query of length 3 with budget for only 2 conjuncts: Linear earns
	// partial utility where Threshold earns none.
	b := model.NewBuilder()
	b.AddQuery(9, "a", "b", "c")
	b.SetDefaultCost(func(s propset.Set) float64 { return float64(s.Len()) * 2 })
	in := b.MustInstance(4)
	lin := Solve(in, Linear)
	thr := Solve(in, Threshold)
	if lin.Utility <= thr.Utility {
		t.Fatalf("Linear (%v) should beat Threshold (%v) here", lin.Utility, thr.Utility)
	}
	if lin.Utility != 6 { // 2 of 3 conjuncts → 9·(2/3)
		t.Fatalf("Linear utility = %v, want 6", lin.Utility)
	}
}

func TestRandBaselineFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 8, 12, 3, float64(rng.Intn(15)))
		res := SolveRand(in, Linear, int64(trial+1))
		if res.Cost > in.Budget()+1e-9 {
			t.Fatalf("RAND exceeded budget")
		}
	}
}

func TestBruteForceRefusesLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomInstance(rng, 30, 60, 3, 10)
	if _, err := BruteForce(in, Linear); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestNilGainDefaultsToThreshold(t *testing.T) {
	b := model.NewBuilder()
	b.AddQuery(5, "a")
	b.SetCost(1, "a")
	in := b.MustInstance(2)
	res := Solve(in, nil)
	if res.Utility != 5 {
		t.Fatalf("nil gain: utility %v, want 5", res.Utility)
	}
}

func BenchmarkSolveLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 100, 500, 4, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Solve(in, Linear)
	}
}
