// Package partial implements the partial-cover extension of BCC that the
// paper's conclusion (Section 8) lists as future work: instead of the
// all-or-nothing utility of the base model, a query q whose conjunction is
// partially testable yields a fraction of its utility, U(q) · g(k/|q|),
// where k is the number of covered conjuncts and g a gain curve with
// g(0) = 0 and g(1) = 1.
//
// With the Threshold gain the model coincides exactly with BCC. With any
// monotone gain the objective is monotone; with a concave gain it is
// submodular in the selected classifier set, so the cost-benefit lazy
// greedy (plus best-single-classifier fallback) enjoys the classic
// 1/2·(1−1/e) guarantee for the budgeted maximization. The package
// provides that solver, a random baseline, and an exhaustive reference.
package partial

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// Gain maps the covered fraction of a query's conjuncts to the fraction of
// its utility earned. Implementations must be monotone with Gain(0) = 0
// and Gain(1) = 1.
type Gain func(covered, total int) float64

// Threshold is the base BCC semantics: utility only on full coverage.
func Threshold(covered, total int) float64 {
	if covered >= total {
		return 1
	}
	return 0
}

// Linear earns utility proportionally to the covered fraction.
func Linear(covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Sqrt is a concave gain: early conjuncts are worth more (a result set
// filtered by most of the intended conditions is already useful).
func Sqrt(covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return math.Sqrt(float64(covered) / float64(total))
}

// AllButOne earns nothing until at most one conjunct is missing, 60% at
// one missing, and everything on full coverage — modeling interfaces that
// can post-filter a single missing condition cheaply.
func AllButOne(covered, total int) float64 {
	switch {
	case covered >= total:
		return 1
	case covered == total-1:
		return 0.6
	default:
		return 0
	}
}

// Result reports a partial-cover solver run.
type Result struct {
	Solution *model.Solution
	// Utility is the gained (partial) utility under the configured Gain.
	Utility float64
	// Cost is the total construction cost.
	Cost float64
	// Duration is the wall-clock solve time.
	Duration time.Duration
	// Status reports how the run ended; a non-Complete result still holds
	// the (budget-feasible) selection accumulated so far.
	Status guard.Status
	// Err is the context error or contained panic for a non-Complete run.
	Err error
}

// state tracks per-query covered-conjunct counts incrementally.
type state struct {
	in      *model.Instance
	gain    Gain
	sel     map[string]bool
	covered []propset.Set // covered part of each query
	utility float64
	cost    float64
	relq    map[string][]int
}

func newState(in *model.Instance, g Gain) *state {
	st := &state{
		in:      in,
		gain:    g,
		sel:     make(map[string]bool),
		covered: make([]propset.Set, in.NumQueries()),
		relq:    make(map[string][]int),
	}
	for qi, q := range in.Queries() {
		q.Props.Subsets(func(sub propset.Set) {
			st.relq[sub.Key()] = append(st.relq[sub.Key()], qi)
		})
	}
	return st
}

func (st *state) add(c propset.Set) {
	k := c.Key()
	if st.sel[k] {
		return
	}
	st.sel[k] = true
	st.cost += st.in.Cost(c)
	for _, qi := range st.relq[k] {
		q := st.in.Queries()[qi]
		old := st.covered[qi]
		nw := old.Union(c)
		if nw.Len() == old.Len() {
			continue
		}
		st.covered[qi] = nw
		st.utility += q.Utility *
			(st.gain(nw.Len(), q.Props.Len()) - st.gain(old.Len(), q.Props.Len()))
	}
}

// marginal returns the utility gain of adding c without mutating state.
func (st *state) marginal(c propset.Set) float64 {
	if st.sel[c.Key()] {
		return 0
	}
	var gain float64
	for _, qi := range st.relq[c.Key()] {
		q := st.in.Queries()[qi]
		old := st.covered[qi]
		nw := old.Union(c)
		if nw.Len() == old.Len() {
			continue
		}
		gain += q.Utility *
			(st.gain(nw.Len(), q.Props.Len()) - st.gain(old.Len(), q.Props.Len()))
	}
	return gain
}

func (st *state) result(start time.Time) Result {
	s := model.NewSolution(st.in)
	for _, c := range st.in.Classifiers() {
		if st.sel[c.Props.Key()] {
			s.Add(c.Props)
		}
	}
	return Result{Solution: s, Utility: st.utility, Cost: st.cost, Duration: time.Since(start)}
}

// Solve maximizes partial-cover utility within the instance's budget via
// cost-benefit lazy greedy with a best-single-classifier fallback. For
// concave gains this is the classic ½(1−1/e)-approximation of budgeted
// submodular maximization.
func Solve(in *model.Instance, g Gain) Result {
	return SolveCtx(context.Background(), in, g)
}

// SolveCtx is Solve under a context: on deadline expiry or cancellation it
// returns the (budget-feasible) greedy selection accumulated so far, with
// Result.Status reporting why it stopped; contained panics surface as
// Status Recovered.
func SolveCtx(ctx context.Context, in *model.Instance, gfn Gain) (res Result) {
	start := time.Now()
	if gfn == nil {
		gfn = Threshold
	}
	g := guard.New(ctx)
	if g.Tripped() {
		return Result{
			Solution: model.NewSolution(in),
			Duration: time.Since(start),
			Status:   g.Status(),
			Err:      g.Err(),
		}
	}

	var st *state
	finish := func() Result {
		var r Result
		if st != nil {
			r = st.result(start)
		} else {
			r = Result{Solution: model.NewSolution(in), Duration: time.Since(start)}
		}
		r.Status = g.Status()
		r.Err = g.Err()
		return r
	}
	defer func() {
		if p := recover(); p != nil {
			g.NotePanic(p)
			res = finish()
		}
	}()
	guard.Inject("partial.solve")

	st = newState(in, gfn)
	// Free classifiers first.
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			st.add(c.Props)
		}
	}

	cls := in.Classifiers()
	scoreOf := func(ci int) float64 {
		c := cls[ci]
		m := st.marginal(c.Props)
		if m <= 0 {
			return 0
		}
		if c.Cost == 0 {
			return math.Inf(1)
		}
		return m / c.Cost
	}
	h := &entryHeap{}
	heap.Init(h)
	for ci := range cls {
		if sc := scoreOf(ci); sc > 0 {
			heap.Push(h, pEntry{ci, sc})
		}
	}
	for h.Len() > 0 {
		if g.Check() {
			return finish()
		}
		e := heap.Pop(h).(pEntry)
		c := cls[e.ci]
		if st.sel[c.Props.Key()] {
			continue
		}
		sc := scoreOf(e.ci)
		if sc <= 0 {
			continue
		}
		if e.score > sc+1e-12 {
			heap.Push(h, pEntry{e.ci, sc}) // stale (marginals only shrink)
			continue
		}
		if c.Cost > in.Budget()-st.cost+1e-9 {
			continue
		}
		st.add(c.Props)
	}
	greedy := finish()
	if g.Tripped() {
		return greedy
	}

	// Fallback: the single best affordable classifier (restores the
	// approximation bound when one huge item dominates).
	st2 := newState(in, gfn)
	for _, c := range in.Classifiers() {
		if c.Cost == 0 {
			st2.add(c.Props)
		}
	}
	bestCi, bestGain := -1, 0.0
	for ci, c := range cls {
		if c.Cost > in.Budget()+1e-9 {
			continue
		}
		if m := st2.marginal(c.Props); m > bestGain {
			bestCi, bestGain = ci, m
		}
	}
	if bestCi >= 0 {
		st2.add(cls[bestCi].Props)
		if single := st2.result(start); single.Utility > greedy.Utility {
			single.Status = g.Status()
			single.Err = g.Err()
			return single
		}
	}
	return greedy
}

// SolveRand is the random baseline under partial-cover semantics.
func SolveRand(in *model.Instance, g Gain, seed int64) Result {
	start := time.Now()
	if g == nil {
		g = Threshold
	}
	rng := rand.New(rand.NewSource(seed))
	st := newState(in, g)
	pool := make([]propset.Set, 0, len(in.Classifiers()))
	for _, c := range in.Classifiers() {
		pool = append(pool, c.Props)
	}
	for len(pool) > 0 {
		i := rng.Intn(len(pool))
		c := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if st.sel[c.Key()] || in.Cost(c) > in.Budget()-st.cost+1e-9 {
			continue
		}
		st.add(c)
	}
	return st.result(start)
}

// BruteForce solves small instances exactly under partial-cover semantics.
func BruteForce(in *model.Instance, g Gain) (Result, error) {
	start := time.Now()
	if g == nil {
		g = Threshold
	}
	cls := in.Classifiers()
	if len(cls) > 24 {
		return Result{}, fmt.Errorf("partial: BruteForce limited to 24 classifiers, instance has %d", len(cls))
	}
	best := newState(in, g)
	for _, c := range cls {
		if c.Cost == 0 {
			best.add(c.Props)
		}
	}
	bestRes := best.result(start)

	var rec func(idx int, st *state)
	rec = func(idx int, st *state) {
		if st.utility > bestRes.Utility {
			bestRes = st.result(start)
		}
		if idx >= len(cls) {
			return
		}
		rec(idx+1, st)
		c := cls[idx]
		if c.Cost > 0 && c.Cost <= in.Budget()-st.cost+1e-9 && !st.sel[c.Props.Key()] {
			cp := cloneState(st)
			cp.add(c.Props)
			rec(idx+1, cp)
		}
	}
	root := newState(in, g)
	for _, c := range cls {
		if c.Cost == 0 {
			root.add(c.Props)
		}
	}
	rec(0, root)
	return bestRes, nil
}

func cloneState(st *state) *state {
	cp := &state{
		in:      st.in,
		gain:    st.gain,
		sel:     make(map[string]bool, len(st.sel)),
		covered: append([]propset.Set(nil), st.covered...),
		utility: st.utility,
		cost:    st.cost,
		relq:    st.relq,
	}
	for k := range st.sel {
		cp.sel[k] = true
	}
	return cp
}

type pEntry struct {
	ci    int
	score float64
}

type entryHeap []pEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) {
	*h = append(*h, x.(pEntry))
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
