package propset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 1, 3, 1, 5, 5)
	want := Set{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New(5,1,3,1,5,5) = %v, want %v", s, want)
	}
}

func TestNewEmpty(t *testing.T) {
	if s := New(); !s.Empty() || s.Len() != 0 {
		t.Fatalf("New() = %v, want empty", s)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 8, 16)
	for _, id := range []ID{2, 4, 8, 16} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []ID{0, 1, 3, 5, 9, 17} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		s, t Set
		want bool
	}{
		{New(), New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(2), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(1, 2, 3), New(1, 2), false},
		{New(3), New(1, 2), false},
		{New(1, 3), New(1, 2, 3, 4), true},
		{New(1, 5), New(1, 2, 3, 4), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestUnion(t *testing.T) {
	cases := []struct {
		s, t, want Set
	}{
		{New(), New(), New()},
		{New(1), New(), New(1)},
		{New(), New(2), New(2)},
		{New(1, 3), New(2, 3, 4), New(1, 2, 3, 4)},
		{New(1, 2), New(1, 2), New(1, 2)},
	}
	for _, c := range cases {
		if got := c.s.Union(c.t); !got.Equal(c.want) {
			t.Errorf("%v.Union(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestIntersectAndMinus(t *testing.T) {
	s := New(1, 2, 3, 5)
	u := New(2, 4, 5, 6)
	if got := s.Intersect(u); !got.Equal(New(2, 5)) {
		t.Errorf("Intersect = %v, want {2 5}", got)
	}
	if got := s.Minus(u); !got.Equal(New(1, 3)) {
		t.Errorf("Minus = %v, want {1 3}", got)
	}
	if got := u.Minus(s); !got.Equal(New(4, 6)) {
		t.Errorf("Minus = %v, want {4 6}", got)
	}
	if !s.Intersects(u) {
		t.Error("Intersects = false, want true")
	}
	if s.Intersects(New(7, 8)) {
		t.Error("Intersects({7 8}) = true, want false")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]Set{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(5)
		ids := make([]ID, n)
		for j := range ids {
			ids[j] = ID(rng.Intn(50))
		}
		s := New(ids...)
		k := s.Key()
		if prev, ok := seen[k]; ok {
			if !prev.Equal(s) {
				t.Fatalf("key collision: %v and %v share key", prev, s)
			}
		}
		seen[k] = s
	}
}

func TestSubsetsEnumeratesAll(t *testing.T) {
	s := New(1, 2, 3)
	var got []string
	s.Subsets(func(sub Set) { got = append(got, sub.String()) })
	if len(got) != 7 {
		t.Fatalf("Subsets produced %d subsets, want 7: %v", len(got), got)
	}
	sort.Strings(got)
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate subset %s", got[i])
		}
	}
}

func TestSubsetsOfSingleton(t *testing.T) {
	count := 0
	New(9).Subsets(func(sub Set) {
		count++
		if !sub.Equal(New(9)) {
			t.Errorf("unexpected subset %v", sub)
		}
	})
	if count != 1 {
		t.Fatalf("singleton has %d subsets, want 1", count)
	}
}

func TestUniverseIntern(t *testing.T) {
	u := NewUniverse()
	a := u.Intern("wooden")
	b := u.Intern("table")
	if a == b {
		t.Fatal("distinct names interned to same ID")
	}
	if got := u.Intern("wooden"); got != a {
		t.Fatalf("re-intern changed ID: %d vs %d", got, a)
	}
	if u.Size() != 2 {
		t.Fatalf("Size = %d, want 2", u.Size())
	}
	if u.Name(a) != "wooden" || u.Name(b) != "table" {
		t.Fatal("Name mismatch")
	}
	if id, ok := u.Lookup("table"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := u.Lookup("metal"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

func TestUniverseSetOfAndFormat(t *testing.T) {
	u := NewUniverse()
	s := u.SetOf("round", "wooden", "table")
	if s.Len() != 3 {
		t.Fatalf("SetOf produced %v", s)
	}
	str := u.Format(s)
	if str != "{round wooden table}" {
		t.Fatalf("Format = %q", str)
	}
}

func TestZeroUniverseUsable(t *testing.T) {
	var u Universe
	id := u.Intern("x")
	if u.Name(id) != "x" {
		t.Fatal("zero-value Universe not usable")
	}
}

// Property-based tests.

func randomSet(rng *rand.Rand, maxID, maxLen int) Set {
	n := rng.Intn(maxLen + 1)
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(rng.Intn(maxID))
	}
	return New(ids...)
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		return sa.Union(sb).Equal(sb.Union(sa))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionSuperset(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		u := sa.Union(sb)
		return sa.SubsetOf(u) && sb.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinusDisjoint(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		return !sa.Minus(sb).Intersects(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectSubset(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		in := sa.Intersect(sb)
		return in.SubsetOf(sa) && in.SubsetOf(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartition(t *testing.T) {
	// Minus(b) ∪ Intersect(b) == s, always.
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		return sa.Minus(sb).Union(sa.Intersect(sb)).Equal(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromBytes(b []uint8) Set {
	ids := make([]ID, len(b))
	for i, v := range b {
		ids[i] = ID(v % 32)
	}
	return New(ids...)
}

func BenchmarkUnionSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomSet(rng, 1000, 5)
	u := randomSet(rng, 1000, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Union(u)
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomSet(rng, 1000, 3)
	u := randomSet(rng, 1000, 6).Union(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.SubsetOf(u)
	}
}
