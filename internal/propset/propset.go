// Package propset provides the property universe and property-set
// representation shared by every other package in the repository.
//
// A property is an atomic filtering condition appearing in a search query
// ("wooden", "table", "running"). Properties are interned into dense
// integer identifiers by a Universe, and both queries and classifiers are
// represented as a Set: an immutable, canonically sorted, duplicate-free
// slice of property identifiers. Sets of the small cardinalities that occur
// in practice (the paper's length parameter l rarely exceeds 5) are cheap to
// copy, compare, hash and unite in this representation.
package propset

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a property within a Universe. IDs are dense: the first
// interned property receives ID 0, the next ID 1, and so on.
type ID uint32

// Set is a canonically sorted, duplicate-free collection of property IDs.
// The zero value is the empty set. Sets are treated as immutable: none of
// the methods mutate the receiver, and callers must not modify a Set after
// sharing it.
type Set []ID

// New builds a Set from the given ids, sorting and de-duplicating them.
func New(ids ...ID) Set {
	if len(ids) == 0 {
		return nil
	}
	s := make(Set, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// De-duplicate in place.
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[r-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// Len reports the number of properties in the set (the paper's "length" of
// a query or classifier).
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no properties.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether id is a member of the set.
func (s Set) Contains(id ID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s[mid] < id:
			lo = mid + 1
		case s[mid] > id:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same properties.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every property of s is also in t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Union returns the set of properties appearing in s or t.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the set of properties appearing in both s and t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns the set of properties in s but not in t.
func (s Set) Minus(t Set) Set {
	var out Set
	j := 0
	for i := 0; i < len(s); i++ {
		for j < len(t) && t[j] < s[i] {
			j++
		}
		if j < len(t) && t[j] == s[i] {
			continue
		}
		out = append(out, s[i])
	}
	return out
}

// Intersects reports whether s and t share at least one property.
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Key returns a canonical map key for the set. Two sets have the same key
// iff they are Equal. The encoding is compact (4 bytes per property) and
// not intended to be human readable; use String for display.
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 0, len(s)*4)
	for _, id := range s {
		b = append(b, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return string(b)
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Subsets calls fn for every non-empty subset of s, in an unspecified
// order. It panics if s has more than 30 properties; queries in this
// problem domain are tiny, so the exponential enumeration is intentional.
func (s Set) Subsets(fn func(Set)) {
	if len(s) > 30 {
		panic(fmt.Sprintf("propset: refusing to enumerate 2^%d subsets", len(s)))
	}
	n := len(s)
	for mask := 1; mask < 1<<n; mask++ {
		sub := make(Set, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s[i])
			}
		}
		fn(sub)
	}
}

// String renders the set as its ID list, e.g. "{0 3 7}". For named output
// use Universe.Format.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// Universe interns property names into dense IDs. The zero value is ready
// to use. Universe is not safe for concurrent mutation; build it up front
// and share it read-only afterwards.
type Universe struct {
	byName map[string]ID
	names  []string
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{byName: make(map[string]ID)}
}

// Intern returns the ID of the named property, assigning a fresh ID on
// first use.
func (u *Universe) Intern(name string) ID {
	if u.byName == nil {
		u.byName = make(map[string]ID)
	}
	if id, ok := u.byName[name]; ok {
		return id
	}
	id := ID(len(u.names))
	u.byName[name] = id
	u.names = append(u.names, name)
	return id
}

// Lookup returns the ID of the named property and whether it exists.
func (u *Universe) Lookup(name string) (ID, bool) {
	id, ok := u.byName[name]
	return id, ok
}

// Name returns the name of the property with the given ID. It panics if id
// was never interned.
func (u *Universe) Name(id ID) string { return u.names[id] }

// Size reports the number of interned properties (the paper's n = |P|).
func (u *Universe) Size() int { return len(u.names) }

// SetOf interns all names and returns the resulting Set.
func (u *Universe) SetOf(names ...string) Set {
	ids := make([]ID, len(names))
	for i, name := range names {
		ids[i] = u.Intern(name)
	}
	return New(ids...)
}

// Format renders a set using property names, e.g. "{table wooden}".
func (u *Universe) Format(s Set) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		if int(id) < len(u.names) {
			b.WriteString(u.names[id])
		} else {
			fmt.Fprintf(&b, "#%d", id)
		}
	}
	b.WriteByte('}')
	return b.String()
}
