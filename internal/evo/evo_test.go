package evo

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/model"
	"repro/internal/propset"
)

// randomInstance mirrors the generator of internal/core's tests so the
// anytime-contract suite runs on comparable workloads.
func randomInstance(rng *rand.Rand, nProps, nQueries, maxLen int, budget float64) *model.Instance {
	b := model.NewBuilder()
	u := b.Universe()
	names := make([]string, nProps)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < nQueries; i++ {
		ln := 1 + rng.Intn(maxLen)
		ids := make([]propset.ID, ln)
		for j := range ids {
			ids[j] = u.Intern(names[rng.Intn(nProps)])
		}
		b.AddQuerySet(propset.New(ids...), 1+float64(rng.Intn(20)))
	}
	costSeed := rng.Int63()
	b.SetDefaultCost(func(s propset.Set) float64 {
		h := costSeed
		for _, id := range s {
			h = h*31 + int64(id) + 7
		}
		return 1 + float64((h%7+7)%7)
	})
	return b.MustInstance(budget)
}

func anytimeInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, 30, 400, 3, 60)
}

// smallInstance is a quick workload for the full-run tests: population
// and generation counts are trimmed so the suite stays fast.
func smallInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, 12, 60, 3, 20)
}

func quickOpts(seed int64) Options {
	return Options{Seed: seed, Population: 10, Generations: 12, StallLimit: 5}
}

func checkFeasible(t *testing.T, in *model.Instance, res Result) {
	t.Helper()
	if res.Solution == nil {
		t.Fatal("nil Solution")
	}
	if res.Cost > in.Budget()+1e-9 {
		t.Fatalf("cost %v exceeds budget %v", res.Cost, in.Budget())
	}
	if got := res.Solution.Cost(); got > in.Budget()+1e-9 {
		t.Fatalf("solution cost %v exceeds budget %v", got, in.Budget())
	}
}

// planKeys renders a plan into comparable classifier keys.
func planKeys(res Result) []string {
	var out []string
	for _, c := range res.Solution.Classifiers() {
		out = append(out, c.Props.Key())
	}
	return out
}

func TestSolveFeasibleAndNeverBelowIG1(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := smallInstance(seed)
		res := Solve(in, quickOpts(seed))
		if res.Status != guard.Complete {
			t.Fatalf("seed %d: Status = %v, want Complete", seed, res.Status)
		}
		checkFeasible(t, in, res)
		ig1 := core.SolveIG1(in)
		if res.Utility < ig1.Utility {
			t.Errorf("seed %d: utility %v below IG1 floor %v", seed, res.Utility, ig1.Utility)
		}
		if res.Generations == 0 {
			t.Errorf("seed %d: ran zero generations", seed)
		}
	}
}

// TestSeedDeterminism is the bit-for-bit contract behind
// `bccsolve -algo evo -seed N`: identical seed, identical plan.
func TestSeedDeterminism(t *testing.T) {
	in := smallInstance(7)
	opts := quickOpts(9)
	a := Solve(in, opts)
	b := Solve(in, opts)
	if a.Utility != b.Utility || a.Cost != b.Cost || a.Generations != b.Generations {
		t.Fatalf("two runs diverged: %v/%v/%d vs %v/%v/%d",
			a.Utility, a.Cost, a.Generations, b.Utility, b.Cost, b.Generations)
	}
	ka, kb := planKeys(a), planKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("plans differ in size: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("plan diverged at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
}

func TestWarmStartNeverRegresses(t *testing.T) {
	in := smallInstance(4)
	first := Solve(in, quickOpts(2))
	var warm []propset.Set
	for _, c := range first.Solution.Classifiers() {
		warm = append(warm, c.Props)
	}
	// A warm-started slice (different seed, floor disabled) must keep
	// the checkpoint it was handed — the jobs-slice monotonicity.
	opts := quickOpts(11)
	opts.DisableGreedyFloor = true
	opts.Warm = warm
	res := Solve(in, opts)
	checkFeasible(t, in, res)
	if res.Utility < first.Utility {
		t.Errorf("warm-started utility %v below incumbent %v", res.Utility, first.Utility)
	}
}

func TestExpiredDeadlineReturnsFast(t *testing.T) {
	in := anytimeInstance(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	res := SolveCtx(ctx, in, Options{})
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("expired-context solve took %v, want < 10ms", elapsed)
	}
	if res.Status != guard.DeadlineExceeded {
		t.Errorf("Status = %v, want DeadlineExceeded", res.Status)
	}
	if res.Err == nil {
		t.Error("Err = nil on a deadline-exceeded run")
	}
	checkFeasible(t, in, res)
}

func TestGenerousDeadlineMatchesSolve(t *testing.T) {
	in := smallInstance(2)
	opts := quickOpts(3)
	plain := Solve(in, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	res := SolveCtx(ctx, in, opts)
	if res.Status != guard.Complete {
		t.Fatalf("Status = %v (err %v), want Complete", res.Status, res.Err)
	}
	if res.Utility != plain.Utility || res.Cost != plain.Cost {
		t.Errorf("generous deadline diverged: utility %v/%v, cost %v/%v",
			res.Utility, plain.Utility, res.Cost, plain.Cost)
	}
}

func TestCancelMidEvolutionKeepsIG1Floor(t *testing.T) {
	// The floor individual enters the incumbent before the first
	// generation, so a cancellation armed at the generation boundary
	// must still return at least the IG1 result.
	in := anytimeInstance(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	guard.Arm("evo.generation", guard.CancelFault(cancel))
	defer guard.DisarmAll()
	res := SolveCtx(ctx, in, Options{})
	if res.Status != guard.Canceled {
		t.Errorf("Status = %v, want Canceled", res.Status)
	}
	checkFeasible(t, in, res)
	ig1 := core.SolveIG1(in)
	if res.Utility < ig1.Utility {
		t.Errorf("canceled run utility %v below IG1 floor %v", res.Utility, ig1.Utility)
	}
}

func TestArmedPanicSurfacesAsRecovered(t *testing.T) {
	in := anytimeInstance(5)
	guard.Arm("evo.generation", guard.PanicFault("injected: evo.generation"))
	defer guard.DisarmAll()
	res := SolveCtx(context.Background(), in, Options{})
	if res.Status != guard.Recovered {
		t.Fatalf("Status = %v, want Recovered", res.Status)
	}
	if res.Err == nil {
		t.Fatal("Err = nil on a recovered run")
	}
	checkFeasible(t, in, res)
	ig1 := core.SolveIG1(in)
	if res.Utility < ig1.Utility {
		t.Errorf("recovered run utility %v below IG1 floor %v", res.Utility, ig1.Utility)
	}
}

func TestStallLimitStopsEarly(t *testing.T) {
	in := smallInstance(6)
	opts := Options{Seed: 5, Population: 8, Generations: 500, StallLimit: 3}
	res := Solve(in, opts)
	if res.Status != guard.Complete {
		t.Fatalf("Status = %v, want Complete", res.Status)
	}
	if res.Generations >= 500 {
		t.Errorf("ran all %d generations; stall limit never fired", res.Generations)
	}
}
